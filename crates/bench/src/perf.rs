//! The measured workload suite and timing lanes behind `tpcp-perf`.
//!
//! The suite is three scripted [`SyntheticTrace`] programs with distinct
//! phase structure (steady, rapidly alternating, many-phase), encoded once
//! into the `tpcp-trace` codec. Every lane then consumes the *encoded*
//! buffers, so a lane's cost is decode + its own work:
//!
//! * the `*_streaming` lanes go through [`StreamingDecoder`] and never
//!   materialize a [`RecordedTrace`];
//! * the `*_eager` lanes decode into a full `RecordedTrace` first and
//!   then replay it — the pre-engine pipeline.
//!
//! Each lane folds what it saw into a checksum ([`LaneRun::checksum`]);
//! paired lanes must agree, which both prevents the optimizer from
//! discarding the work and re-proves streaming/eager equivalence on every
//! perf run.

use bytes::Bytes;
use tpcp_core::{ClassifierConfig, PhaseClassifier};
use tpcp_experiments::{Engine, EngineError, EngineStats, SuiteParams, TraceCache};
use tpcp_trace::{
    decode_trace, IntervalSource, PhaseSpec, RecordedTrace, StreamingDecoder, SyntheticTrace,
};
use tpcp_workloads::BenchmarkKind;

/// One synthetic program of the perf suite, in encoded form.
#[derive(Debug, Clone)]
pub struct PerfTrace {
    /// Short stable name, for logs.
    pub name: &'static str,
    /// The `TPCPTRC2` buffer every lane decodes from.
    pub encoded: Bytes,
    /// Interval count (decoded once at suite-build time).
    pub intervals: u64,
    /// Event count (decoded once at suite-build time).
    pub events: u64,
}

impl PerfTrace {
    /// Encodes a generated trace and records its totals.
    pub fn from_trace(name: &'static str, trace: &RecordedTrace) -> Self {
        let intervals = trace.len() as u64;
        let events = trace
            .intervals
            .iter()
            .map(|iv| iv.events.len() as u64)
            .sum();
        Self {
            name,
            encoded: tpcp_trace::encode_trace(trace),
            intervals,
            events,
        }
    }
}

/// Suite sizing: `Smoke` is the CI-friendly quarter-length variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Quarter-length schedules for CI smoke runs.
    Smoke,
    /// The default measurement size.
    Full,
}

/// A phase whose blocks are `insns`-instruction basic blocks in a bank of
/// `n_blocks` PCs — denser branches than [`PhaseSpec::uniform`], matching
/// branch-per-handful-of-instructions integer code.
fn dense(base_pc: u64, n_blocks: u64, insns: u32, cpi: f64) -> PhaseSpec {
    PhaseSpec {
        blocks: (0..n_blocks).map(|i| (base_pc + i * 0x40, insns)).collect(),
        cpi,
        cpi_jitter: 0.01,
    }
}

/// Builds and encodes the three-program synthetic perf suite.
///
/// Deterministic: the same [`Scale`] always produces byte-identical
/// buffers, so intervals/sec is comparable across runs and commits (as
/// long as the trace codec and workload scripts are unchanged).
pub fn perf_suite(scale: Scale) -> Vec<PerfTrace> {
    let run = |n: u64| match scale {
        Scale::Smoke => (n / 4).max(1),
        Scale::Full => n,
    };
    // 256k-instruction intervals of 16-instruction blocks: 16 384 events
    // per interval, in the regime the paper profiles (branch every
    // handful of instructions over long intervals). Eager replay must
    // materialize a multi-hundred-KB event vector per interval and tens
    // of MB per trace; streaming holds only the scratch state.
    let interval_size = 256_000;

    let steady = SyntheticTrace::new(interval_size)
        .phase(dense(0x10_000, 64, 16, 1.0))
        .phase(dense(0x90_000, 64, 16, 2.4))
        .schedule(&[(0, run(32)), (1, run(32)), (0, run(32))]);

    let mut alternating = SyntheticTrace::new(interval_size)
        .phase(dense(0x10_000, 48, 16, 0.8))
        .phase(dense(0x50_000, 48, 16, 1.9));
    for _ in 0..run(8) {
        alternating = alternating.schedule(&[(0, 6), (1, 6)]);
    }

    let mut many_phase = SyntheticTrace::new(interval_size);
    for p in 0..6u64 {
        many_phase = many_phase.phase(dense(
            0x10_000 + p * 0x40_000,
            32 + (p as usize as u64) * 8,
            16,
            0.9 + 0.3 * p as f64,
        ));
    }
    for round in 0..run(4) {
        for p in 0..6 {
            many_phase = many_phase.schedule(&[((p + round as usize) % 6, 4)]);
        }
    }

    [
        ("steady-2phase", steady),
        ("alternating", alternating),
        ("many-phase", many_phase),
    ]
    .into_iter()
    .map(|(name, script)| PerfTrace::from_trace(name, &script.generate()))
    .collect()
}

/// Host-speed calibration: best-of-N rate of a frozen arithmetic-plus-
/// memory kernel, in word-operations per second.
///
/// The kernel is independent of every measured lane and must never
/// change: the regression gate divides lane rates by this reference, so
/// host-speed swings (hypervisor steal time on shared runners, different
/// CI hardware generations) cancel out of the baseline comparison while
/// genuine lane regressions do not. The working set (512 KiB) is larger
/// than L1 so the kernel, like the decode lanes, mixes ALU work with
/// cache traffic.
pub fn calibration_ops_per_sec() -> f64 {
    const WORDS: usize = 1 << 16;
    const PASSES: u64 = 48;
    const REPS: usize = 7;
    let mut buf: Vec<u64> = (0..WORDS as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let mut best = f64::INFINITY;
    for rep in 0..=REPS {
        let start = std::time::Instant::now();
        let mut acc = 0u64;
        for pass in 0..PASSES {
            for word in buf.iter_mut() {
                *word = word.rotate_left(7) ^ pass;
                acc = acc.wrapping_add(*word);
            }
        }
        std::hint::black_box(acc);
        let secs = start.elapsed().as_secs_f64();
        // The first repetition is warm-up (page faults, frequency ramp).
        if rep > 0 && secs < best {
            best = secs;
        }
    }
    (WORDS as u64 * PASSES) as f64 / best
}

/// Totals for a suite: `(intervals, events, encoded bytes)`.
pub fn suite_totals(suite: &[PerfTrace]) -> (u64, u64, u64) {
    suite.iter().fold((0, 0, 0), |(i, e, b), t| {
        (i + t.intervals, e + t.events, b + t.encoded.len() as u64)
    })
}

/// What one lane repetition processed, plus an order-sensitive checksum
/// over everything it observed. Paired eager/streaming lanes must produce
/// identical checksums.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneRun {
    /// Intervals delivered.
    pub intervals: u64,
    /// Events delivered (for classify lanes: taken from the suite totals).
    pub events: u64,
    /// FNV-style fold of the delivered stream.
    pub checksum: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fold(acc: u64, x: u64) -> u64 {
    (acc ^ x).wrapping_mul(FNV_PRIME)
}

/// Order-sensitive per-event fold for the decode lanes. The FNV multiply
/// is a ~5-cycle serial dependency chain per event — at one fold per
/// decoded event it dominates the lane and hides the kernel difference the
/// decode lanes exist to measure. A fixed rotate-xor keeps the checksum
/// order-sensitive at two cycles of latency and one uop of throughput.
/// Interval summaries (rare) still go through [`fold`].
#[inline]
fn fold_event(acc: u64, x: u64) -> u64 {
    acc.rotate_left(7) ^ x
}

/// Decode-only, streaming: every event and interval summary is delivered
/// from the encoded buffer without materializing anything. Uses the
/// decoder's default kernel — the SWAR batch path when the crate is built
/// with the `simd` feature, the scalar path otherwise.
pub fn decode_streaming(suite: &[PerfTrace]) -> LaneRun {
    decode_streaming_kernel(suite, false)
}

/// Decode-only, streaming, with the decoder's scalar event kernel forced
/// — the reference half of the decode speedup measurement. Identical to
/// [`decode_streaming`] in builds without the `simd` feature.
pub fn decode_scalar(suite: &[PerfTrace]) -> LaneRun {
    decode_streaming_kernel(suite, true)
}

/// Decode-only, streaming, through the SWAR batch kernel. Must produce
/// the same [`LaneRun`] as [`decode_scalar`] bit for bit.
#[cfg(feature = "simd")]
pub fn decode_simd(suite: &[PerfTrace]) -> LaneRun {
    decode_streaming_kernel(suite, false)
}

fn decode_streaming_kernel(suite: &[PerfTrace], force_scalar: bool) -> LaneRun {
    let mut intervals = 0u64;
    let mut events = 0u64;
    let mut checksum = 0u64;
    for t in suite {
        let mut decoder =
            StreamingDecoder::new(&t.encoded).expect("perf suite traces are well-formed");
        decoder.force_scalar(force_scalar);
        loop {
            let next = decoder
                .try_next_interval_with(&mut |ev: tpcp_trace::BranchEvent| {
                    checksum = fold_event(checksum, ev.pc ^ u64::from(ev.insns));
                })
                .expect("perf suite traces are well-formed");
            let Some(summary) = next else { break };
            intervals += 1;
            checksum = fold(checksum, summary.instructions ^ summary.cycles);
        }
        // The checksum certifies the exact event stream; the count comes
        // from the suite totals (as in the classify lanes), keeping the
        // per-event closure down to the fold itself.
        events += t.events;
    }
    LaneRun {
        intervals,
        events,
        checksum,
    }
}

/// Decode-only, eager: materialize the whole [`RecordedTrace`], then
/// deliver the same stream by replaying it.
pub fn decode_eager(suite: &[PerfTrace]) -> LaneRun {
    let mut intervals = 0u64;
    let mut events = 0u64;
    let mut checksum = 0u64;
    for t in suite {
        let trace = decode_trace(t.encoded.clone()).expect("perf suite traces are well-formed");
        let mut replay = trace.replay();
        while let Some(summary) = replay.next_interval(&mut |ev| {
            checksum = fold_event(checksum, ev.pc ^ u64::from(ev.insns));
        }) {
            intervals += 1;
            checksum = fold(checksum, summary.instructions ^ summary.cycles);
        }
        events += t.events;
    }
    LaneRun {
        intervals,
        events,
        checksum,
    }
}

/// Every `REPLAY_SAMPLE_STEP`-th interval is on the sampled-replay
/// lane pair's plan: an 8x decode cut, matching the sampling figure's
/// default budget.
const REPLAY_SAMPLE_STEP: u64 = 8;

/// Builds the interval index sidecar for each suite trace — the fixture
/// for [`replay_sampled`], built once outside the timed lane (a cached
/// sidecar is loaded, not rebuilt, in production).
pub fn replay_indices(suite: &[PerfTrace]) -> Vec<tpcp_trace::TraceIndex> {
    suite
        .iter()
        .map(|t| {
            tpcp_trace::TraceIndex::build(&t.encoded).expect("perf suite traces are well-formed")
        })
        .collect()
}

/// Full-decode half of the sampled-replay pair: decodes *every* interval
/// but folds only those on the sampling plan. Its checksum must equal
/// [`replay_sampled`]'s bit for bit — same delivered stream — while its
/// decode work covers the whole trace, so the pair's throughput ratio is
/// the seek win and their equality re-proves seek correctness on every
/// perf run.
pub fn replay_full(suite: &[PerfTrace]) -> LaneRun {
    let mut intervals = 0u64;
    let mut events = 0u64;
    let mut checksum = 0u64;
    for t in suite {
        let mut decoder =
            StreamingDecoder::new(&t.encoded).expect("perf suite traces are well-formed");
        let mut i = 0u64;
        loop {
            let planned = i.is_multiple_of(REPLAY_SAMPLE_STEP);
            let mut seen = 0u64;
            let next = decoder
                .try_next_interval_with(&mut |ev: tpcp_trace::BranchEvent| {
                    if planned {
                        checksum = fold_event(checksum, ev.pc ^ u64::from(ev.insns));
                        seen += 1;
                    }
                })
                .expect("perf suite traces are well-formed");
            let Some(summary) = next else { break };
            if planned {
                intervals += 1;
                events += seen;
                checksum = fold(checksum, summary.instructions ^ summary.cycles);
            }
            i += 1;
        }
    }
    LaneRun {
        intervals,
        events,
        checksum,
    }
}

/// Seek-driven half of the sampled-replay pair: a [`PlannedReplay`](tpcp_trace::PlannedReplay) over
/// the same plan decodes only the planned intervals, seeking across the
/// gaps via the interval index. Must produce the same [`LaneRun`] as
/// [`replay_full`].
pub fn replay_sampled(suite: &[PerfTrace], indices: &[tpcp_trace::TraceIndex]) -> LaneRun {
    let mut intervals = 0u64;
    let mut events = 0u64;
    let mut checksum = 0u64;
    for (t, index) in suite.iter().zip(indices) {
        let decoder = StreamingDecoder::new(&t.encoded).expect("perf suite traces are well-formed");
        let plan = tpcp_trace::ReplayPlan::from_intervals(
            (0..t.intervals).filter(|i| i.is_multiple_of(REPLAY_SAMPLE_STEP)),
        );
        let mut replay = tpcp_trace::PlannedReplay::new(decoder, index, &plan)
            .expect("suite index matches its trace");
        loop {
            let mut seen = 0u64;
            let next = replay.next_interval(&mut |ev| {
                checksum = fold_event(checksum, ev.pc ^ u64::from(ev.insns));
                seen += 1;
            });
            let Some(summary) = next else { break };
            intervals += 1;
            events += seen;
            checksum = fold(checksum, summary.instructions ^ summary.cycles);
        }
        assert!(
            replay.error().is_none(),
            "perf suite traces are well-formed"
        );
    }
    LaneRun {
        intervals,
        events,
        checksum,
    }
}

/// Replay+classify, streaming: a fresh [`PhaseClassifier`] per trace fed
/// straight from the encoded buffer. The checksum folds the phase-ID
/// stream, so it certifies identical classifications, not just identical
/// bytes.
pub fn classify_streaming(suite: &[PerfTrace], config: ClassifierConfig) -> LaneRun {
    let mut intervals = 0u64;
    let mut events = 0u64;
    let mut checksum = 0u64;
    for t in suite {
        let mut classifier = PhaseClassifier::new(config);
        let mut decoder =
            StreamingDecoder::new(&t.encoded).expect("perf suite traces are well-formed");
        loop {
            let next = decoder
                .try_next_interval_with(&mut |ev| classifier.observe(ev))
                .expect("perf suite traces are well-formed");
            let Some(summary) = next else { break };
            let id = classifier.end_interval(summary.cpi());
            intervals += 1;
            checksum = fold(checksum, u64::from(u32::from(id)));
        }
        events += t.events;
        checksum = fold(checksum, classifier.phases_created());
    }
    LaneRun {
        intervals,
        events,
        checksum,
    }
}

/// Replay+classify, eager: identical classifier work, but decoding into a
/// materialized [`RecordedTrace`] first — the pre-engine pipeline this
/// harness exists to measure against.
pub fn classify_eager(suite: &[PerfTrace], config: ClassifierConfig) -> LaneRun {
    let mut intervals = 0u64;
    let mut events = 0u64;
    let mut checksum = 0u64;
    for t in suite {
        let trace = decode_trace(t.encoded.clone()).expect("perf suite traces are well-formed");
        let mut classifier = PhaseClassifier::new(config);
        let mut replay = trace.replay();
        while let Some(summary) = replay.next_interval(&mut |ev| classifier.observe(ev)) {
            let id = classifier.end_interval(summary.cpi());
            intervals += 1;
            checksum = fold(checksum, u64::from(u32::from(id)));
        }
        events += t.events;
        checksum = fold(checksum, classifier.phases_created());
    }
    LaneRun {
        intervals,
        events,
        checksum,
    }
}

/// Deterministic fixture for the distance micro-lanes: a full signature
/// table plus a batch of probe signatures, all derived from a fixed
/// xorshift stream. The table threshold (0.85) keeps most entry scans
/// running deep before the early exit can fire, so the lanes measure the
/// distance kernels rather than the exit branch.
pub fn distance_fixture() -> (tpcp_core::SignatureTable, Vec<tpcp_core::Signature>) {
    use tpcp_core::{AccumulatorTable, Signature, SignatureTable};

    let mut state = 0x6A09_E667_F3BC_C908u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let sig = |next: &mut dyn FnMut() -> u64| {
        let mut acc = AccumulatorTable::new(64);
        for _ in 0..48 {
            acc.observe(tpcp_trace::BranchEvent::new(
                next(),
                (next() % 30_000) as u32,
            ));
        }
        Signature::from_accumulator(&acc, 6)
    };

    let mut table = SignatureTable::new(Some(512), 0.85);
    for _ in 0..512 {
        table.insert(sig(&mut next));
    }
    let probes: Vec<Signature> = (0..2_048).map(|_| sig(&mut next)).collect();
    (table, probes)
}

/// Distance micro-lane through the scalar per-entry search
/// ([`tpcp_core::SignatureTable::find_best_match_scalar`]): every probe
/// best-matched against the whole fixture table. `intervals` counts
/// probes, `events` counts probe×entry comparisons.
pub fn distance_scalar(
    table: &tpcp_core::SignatureTable,
    probes: &[tpcp_core::Signature],
) -> LaneRun {
    distance_lane(table, probes, true)
}

/// Distance micro-lane through the default search — the struct-of-arrays
/// SWAR column scan in `simd` builds. Must produce the same [`LaneRun`]
/// as [`distance_scalar`] bit for bit.
#[cfg(feature = "simd")]
pub fn distance_simd(
    table: &tpcp_core::SignatureTable,
    probes: &[tpcp_core::Signature],
) -> LaneRun {
    distance_lane(table, probes, false)
}

fn distance_lane(
    table: &tpcp_core::SignatureTable,
    probes: &[tpcp_core::Signature],
    scalar: bool,
) -> LaneRun {
    use tpcp_core::MatchOutcome;
    let mut checksum = 0u64;
    for probe in probes {
        let outcome = if scalar {
            table.find_best_match_scalar(probe)
        } else {
            table.find_best_match(probe)
        };
        checksum = fold(
            checksum,
            match outcome {
                MatchOutcome::Matched { index, distance } => (index as u64) ^ distance.to_bits(),
                MatchOutcome::NoMatch => u64::MAX,
            },
        );
    }
    LaneRun {
        intervals: probes.len() as u64,
        events: probes.len() as u64 * table.len() as u64,
        checksum,
    }
}

/// One full experiment-engine sweep: every benchmark of the simulated
/// suite under two classifier configurations, streamed through the engine
/// exactly once per trace. The cache must be warm for the timing to
/// measure replay rather than simulation — run once untimed first.
///
/// # Errors
///
/// Returns the first [`EngineError`] from the sweep's failure report; a
/// perf lane over a failed sweep would time a different workload than the
/// baseline.
pub fn engine_suite(cache: &TraceCache, params: &SuiteParams) -> Result<EngineStats, EngineError> {
    let configs = [
        ClassifierConfig::hpca2005(),
        ClassifierConfig::builder().best_match(false).build(),
    ];
    let mut engine = Engine::new(*params);
    let cells: Vec<_> = BenchmarkKind::ALL
        .iter()
        .flat_map(|&kind| configs.iter().map(move |&config| (kind, config)))
        .map(|(kind, config)| engine.classified(kind, config))
        .collect();
    let stats = engine.run(cache);
    for cell in cells {
        std::hint::black_box(cell.try_take()?);
    }
    Ok(stats)
}

/// One cross-technique engine sweep: every benchmark of the simulated
/// suite classified by all three feature back-ends
/// ([`ExtractorKind::ALL`](tpcp_core::ExtractorKind::ALL)) in a single
/// replay pass — the workload behind the `engine_extractors` lane and
/// the `extractors` figure. Like [`engine_suite`], the cache must be
/// warm before timing.
///
/// # Errors
///
/// Returns the first [`EngineError`] from the sweep's failure report.
pub fn engine_extractors(
    cache: &TraceCache,
    params: &SuiteParams,
) -> Result<EngineStats, EngineError> {
    let configs: Vec<ClassifierConfig> = tpcp_core::ExtractorKind::ALL
        .iter()
        .map(|&kind| ClassifierConfig::builder().extractor(kind).build())
        .collect();
    let mut engine = Engine::new(*params);
    let cells: Vec<_> = BenchmarkKind::ALL
        .iter()
        .flat_map(|&kind| configs.iter().map(move |&config| (kind, config)))
        .map(|(kind, config)| engine.classified(kind, config))
        .collect();
    let stats = engine.run(cache);
    for cell in cells {
        std::hint::black_box(cell.try_take()?);
    }
    Ok(stats)
}

/// `n` distinct classifier configurations for the lanes-scaling lane,
/// cycling through 16/32/64 accumulators the way an ablation sweep mixes
/// dimensionalities. Each config is distinct (the engine deduplicates
/// identical ones), so registering all of them yields exactly `n` lanes.
pub fn lane_configs(n: usize) -> Vec<ClassifierConfig> {
    (0..n)
        .map(|i| {
            ClassifierConfig::builder()
                .accumulators([16, 32, 64][i % 3])
                .table_entries(Some(24 + i))
                .build()
        })
        .collect()
}

/// One lanes-scaling engine run: `n` classifier lanes riding a single
/// benchmark trace. Returns the sweep stats plus the fanned-out interval
/// count (`trace intervals × n`), which is what the lane's intervals/sec
/// is measured over.
///
/// # Errors
///
/// Returns the first [`EngineError`] from the sweep, like
/// [`engine_suite`].
pub fn engine_lanes(
    cache: &TraceCache,
    params: &SuiteParams,
    n: usize,
) -> Result<(EngineStats, u64), EngineError> {
    let mut engine = Engine::new(*params);
    let cells: Vec<_> = lane_configs(n)
        .into_iter()
        .map(|config| engine.classified(BenchmarkKind::Mcf, config))
        .collect();
    let stats = engine.run(cache);
    for cell in cells {
        std::hint::black_box(cell.try_take()?);
    }
    let fanned = stats.total_intervals() * n as u64;
    Ok((stats, fanned))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately tiny suite so debug-mode tests stay fast.
    fn tiny_suite() -> Vec<PerfTrace> {
        let script = SyntheticTrace::new(4_000)
            .phase(dense(0x1000, 8, 16, 1.0))
            .phase(dense(0x9000, 8, 16, 2.0))
            .schedule(&[(0, 10), (1, 10), (0, 10)]);
        vec![PerfTrace::from_trace("tiny", &script.generate())]
    }

    #[test]
    fn decode_lanes_agree() {
        let suite = tiny_suite();
        let streaming = decode_streaming(&suite);
        let eager = decode_eager(&suite);
        assert_eq!(streaming, eager);
        assert_eq!(streaming.intervals, 30);
        assert_eq!(streaming.events, suite_totals(&suite).1);
        assert_ne!(streaming.checksum, 0);
    }

    #[test]
    fn classify_lanes_agree() {
        let suite = tiny_suite();
        let config = ClassifierConfig::hpca2005();
        let streaming = classify_streaming(&suite, config);
        let eager = classify_eager(&suite, config);
        assert_eq!(streaming, eager);
        assert_eq!(streaming.intervals, 30);
    }

    #[test]
    fn decode_kernel_lanes_agree() {
        let suite = tiny_suite();
        assert_eq!(decode_scalar(&suite), decode_streaming(&suite));
        #[cfg(feature = "simd")]
        assert_eq!(decode_scalar(&suite), decode_simd(&suite));
    }

    #[test]
    fn replay_lanes_agree() {
        let suite = tiny_suite();
        let indices = replay_indices(&suite);
        let full = replay_full(&suite);
        let sampled = replay_sampled(&suite, &indices);
        assert_eq!(
            full, sampled,
            "seek-driven replay must match the filtered full decode"
        );
        // 30 intervals, every 8th planned: 0, 8, 16, 24.
        assert_eq!(full.intervals, 4);
        assert!(full.events > 0 && full.events < suite_totals(&suite).1);
        assert_ne!(full.checksum, 0);
    }

    #[test]
    fn distance_lanes_agree() {
        let (table, probes) = distance_fixture();
        // A probe subset keeps the debug-mode test fast; the lanes
        // themselves run the full batch.
        let subset = &probes[..64];
        let scalar = distance_scalar(&table, subset);
        assert_eq!(scalar.intervals, 64);
        assert_ne!(scalar.checksum, 0);
        #[cfg(feature = "simd")]
        assert_eq!(scalar, distance_simd(&table, subset));
    }

    #[test]
    fn suite_is_deterministic() {
        let a = perf_suite(Scale::Smoke);
        let b = perf_suite(Scale::Smoke);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.encoded.as_slice(), y.encoded.as_slice(), "{}", x.name);
            assert_eq!((x.intervals, x.events), (y.intervals, y.events));
        }
    }

    #[test]
    fn smoke_suite_is_smaller_than_full() {
        let smoke = suite_totals(&perf_suite(Scale::Smoke));
        let full = suite_totals(&perf_suite(Scale::Full));
        assert!(smoke.0 < full.0);
        assert!(smoke.1 < full.1);
    }
}
