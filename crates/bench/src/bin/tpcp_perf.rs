//! `tpcp-perf` — the repeatable performance harness.
//!
//! Times three lane families over the encoded synthetic suite:
//!
//! * **decode-only** — streaming vs. eager trace decode;
//! * **sampled replay** — a seek-driven [`PlannedReplay`] over an 8x
//!   sampling plan vs. a full decode folding the same planned intervals
//!   (identical checksums re-prove seek correctness on every run);
//! * **replay+classify** — a fresh phase classifier fed streaming vs.
//!   from a materialized trace (paired lanes must produce identical
//!   phase-ID checksums, re-proving equivalence on every run);
//! * **engine-suite** — a full experiment-engine sweep (11 benchmarks ×
//!   2 classifier configs) from the on-disk trace cache, plus the
//!   cross-technique `engine_extractors` sweep (11 benchmarks × 3
//!   feature back-ends in one replay pass).
//!
//! Emits `BENCH_<git-sha>.json` (best/median/p90 wall-clock, intervals/sec
//! at the fastest repetition — noise-robust on busy hosts,
//! peak RSS, replay counts) into `--out` and can gate the run against a
//! checked-in baseline with `--check` (non-zero exit on regression).
//! The gate normalizes by a frozen calibration kernel measured at the
//! start of every run, so a host that is globally slower than the one
//! that produced the baseline (steal time, older CI hardware) does not
//! read as a lane regression.
//! `--strict` additionally fails the gate when the baseline and the run
//! disagree on the lane set, so a renamed or dropped lane cannot pass
//! unchecked forever.
//!
//! ```text
//! tpcp-perf [--smoke] [--iters N] [--out DIR] [--check FILE] [--strict]
//!           [--tolerance FRAC] [--no-engine] [--refresh-baseline]
//!           [--telemetry PATH]
//! ```
//!
//! [`PlannedReplay`]: tpcp_trace::PlannedReplay

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use tpcp_bench::perf::{
    calibration_ops_per_sec, classify_eager, classify_streaming, decode_eager, decode_scalar,
    decode_streaming, distance_fixture, distance_scalar, engine_extractors, engine_lanes,
    engine_suite, perf_suite, replay_full, replay_indices, replay_sampled, suite_totals, LaneRun,
    PerfTrace, Scale,
};
use tpcp_bench::report::{
    check_against_baseline, git_sha, parse_calibration, peak_rss_bytes, summarize, unmatched_lanes,
    EngineSummary, LaneStats, PerfReport,
};
use tpcp_core::ClassifierConfig;
use tpcp_experiments::{SuiteParams, TraceCache};

struct Args {
    smoke: bool,
    iters: u32,
    out: PathBuf,
    check: Option<PathBuf>,
    strict: bool,
    tolerance: f64,
    engine: bool,
    lanes: Vec<usize>,
    refresh_baseline: bool,
    telemetry: Option<PathBuf>,
    serve: bool,
}

const USAGE: &str = "usage: tpcp-perf [--smoke] [--iters N] [--out DIR] [--check FILE] [--strict] \
                     [--tolerance FRAC] [--no-engine] [--lanes N,N,...] [--refresh-baseline] \
                     [--telemetry PATH] [--serve]";

fn parse_args() -> Result<Args, String> {
    let mut smoke = false;
    let mut iters: Option<u32> = None;
    let mut out = PathBuf::from("results");
    let mut check = None;
    let mut strict = false;
    let mut tolerance = 0.15;
    let mut engine = true;
    let mut lanes = vec![1usize, 8, 32];
    let mut refresh_baseline = false;
    let mut telemetry = None;
    let mut serve = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |flag: &str| {
            argv.next()
                .ok_or_else(|| format!("{flag} requires a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--iters" => {
                iters = Some(
                    value("--iters")?
                        .parse()
                        .map_err(|e| format!("--iters: {e}"))?,
                );
            }
            "--out" => out = PathBuf::from(value("--out")?),
            "--check" => check = Some(PathBuf::from(value("--check")?)),
            "--strict" => strict = true,
            "--tolerance" => {
                tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?;
            }
            "--no-engine" => engine = false,
            "--lanes" => {
                lanes = value("--lanes")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| format!("--lanes: {e}"))?;
                if lanes.contains(&0) {
                    return Err("--lanes: counts must be positive".to_owned());
                }
            }
            "--refresh-baseline" => refresh_baseline = true,
            "--telemetry" => telemetry = Some(PathBuf::from(value("--telemetry")?)),
            // Opt-in: the serve lane times a socket round-trip fleet, so
            // it never joins the default lane set a strict baseline pins.
            "--serve" => serve = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(Args {
        smoke,
        // Smoke reps are milliseconds long — the same scale as load
        // bursts on shared CI hosts — so the best-of-N rate needs many
        // draws to reliably land in a quiet window. Full-scale reps are
        // long enough to average the bursts out instead.
        iters: iters.unwrap_or(if smoke { 15 } else { 7 }),
        out,
        check,
        strict,
        tolerance,
        engine,
        lanes,
        refresh_baseline,
        telemetry,
        serve,
    })
}

/// Runs `body` once untimed (warm-up, reference result), then `iters`
/// timed repetitions, asserting each repetition reproduces the reference
/// checksum.
fn time_lane(iters: u32, mut body: impl FnMut() -> LaneRun) -> (LaneRun, Vec<Duration>) {
    let reference = body();
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let start = Instant::now();
        let run = body();
        samples.push(start.elapsed());
        assert_eq!(
            run, reference,
            "lane produced different results across repetitions"
        );
    }
    (reference, samples)
}

/// Times two lanes that decode the same stream through different kernels
/// by interleaving their repetitions A,B,A,B,… Slow drift of the host
/// (frequency scaling, co-tenant load) then hits both lanes roughly
/// equally instead of whichever lane happened to be timed second, which is
/// what makes the reported kernel speedups reproducible on shared
/// machines.
fn time_lane_pair(
    iters: u32,
    mut a: impl FnMut() -> LaneRun,
    mut b: impl FnMut() -> LaneRun,
) -> (LaneRun, Vec<Duration>, LaneRun, Vec<Duration>) {
    let reference_a = a();
    let reference_b = b();
    let mut samples_a = Vec::with_capacity(iters as usize);
    let mut samples_b = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let start = Instant::now();
        let run = a();
        samples_a.push(start.elapsed());
        assert_eq!(
            run, reference_a,
            "lane produced different results across repetitions"
        );
        let start = Instant::now();
        let run = b();
        samples_b.push(start.elapsed());
        assert_eq!(
            run, reference_b,
            "lane produced different results across repetitions"
        );
    }
    (reference_a, samples_a, reference_b, samples_b)
}

fn lane_line(stats: &LaneStats) {
    println!(
        "  {:<24} best {:>9.3} ms   median {:>9.3} ms   p90 {:>9.3} ms   {:>12.0} intervals/s",
        stats.name, stats.best_ms, stats.median_ms, stats.p90_ms, stats.intervals_per_sec
    );
}

/// One `serve_echo` repetition: a concurrent client fleet runs its full
/// deterministic scripts against an already-listening `tpcp-serve`
/// instance, folding every classification and query answer into the
/// lane checksum (so a serve-path regression that corrupts results fails
/// the repetition-equality assertion, not just the clock).
fn serve_echo(addr: std::net::SocketAddr, scripts: &[tpcp_serve::SessionScript]) -> LaneRun {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let fold = |acc: u64, x: u64| (acc ^ x).wrapping_mul(FNV_PRIME);
    let results = tpcp_serve::drive_sessions(
        addr,
        scripts,
        &tpcp_serve::client::no_faults,
        Duration::from_millis(200),
    );
    let mut run = LaneRun {
        intervals: 0,
        events: 0,
        checksum: FNV_OFFSET,
    };
    for (script, result) in scripts.iter().zip(results) {
        let transcript = result.unwrap_or_else(|e| {
            panic!("serve_echo session {} failed: {e}", script.session);
        });
        assert!(
            transcript.completed,
            "serve_echo session {} did not run to completion",
            script.session
        );
        run.intervals += transcript.classified.len() as u64;
        run.events += script.intervals * script.events_per_interval;
        for &(phase, transition, count) in &transcript.classified {
            run.checksum = fold(run.checksum, phase << 1 | u64::from(transition));
            run.checksum = fold(run.checksum, count);
        }
        for &(kind, value) in &transcript.answers {
            run.checksum = fold(run.checksum, kind as u64);
            match value {
                Some((v, confident)) => {
                    run.checksum = fold(run.checksum, v << 1 | u64::from(confident));
                }
                None => run.checksum = fold(run.checksum, u64::MAX),
            }
        }
    }
    run
}

/// One `serve_fleet` repetition: a wide connection fleet (one session per
/// connection, pipelined intervals, no queries) against an
/// already-listening server. The fleet digest is thread-schedule
/// independent, so the same script against the thread-per-connection
/// baseline and the sharded worker-pool server must produce identical
/// `LaneRun`s — the cross-mode equality assertion rides on that.
fn serve_fleet(addr: std::net::SocketAddr, fleet: &tpcp_serve::FleetScript) -> LaneRun {
    let run = tpcp_serve::drive_fleet(addr, fleet)
        .unwrap_or_else(|e| panic!("serve_fleet run failed: {e}"));
    LaneRun {
        intervals: run.intervals,
        events: run.intervals * fleet.events_per_interval,
        checksum: run.checksum,
    }
}

/// Spawns a serve instance sized for the fleet lane: every session stays
/// live (no eviction churn in the timed region) and the idle timeout is
/// generous enough that lane setup never trips it.
fn spawn_fleet_server(
    workers: usize,
    shards: usize,
    connections: u64,
) -> Result<tpcp_serve::ServerHandle, std::io::Error> {
    let config = tpcp_serve::ServeConfig {
        workers,
        shards,
        max_live: connections as usize + 8,
        max_parked: connections as usize + 8,
        idle_timeout: Duration::from_secs(120),
        ..tpcp_serve::ServeConfig::default()
    };
    tpcp_serve::Server::spawn(config)
}

/// Flushes a `BENCH_<sha>.partial.json` for the lanes measured before a
/// SIGINT/SIGTERM arrived, then exits with the conventional interrupted
/// status. Partial reports use a distinct filename so they can never be
/// mistaken for (or gate against) a complete run.
fn flush_partial(
    args: &Args,
    suite_traces: usize,
    totals: (u64, u64, u64),
    calibration: f64,
    lanes: Vec<LaneStats>,
) -> ExitCode {
    let (suite_intervals, suite_events, suite_bytes) = totals;
    let report = PerfReport {
        git_sha: git_sha(),
        smoke: args.smoke,
        suite_traces,
        suite_intervals,
        suite_events,
        suite_encoded_bytes: suite_bytes,
        peak_rss_bytes: peak_rss_bytes(),
        calibration_ops_per_sec: calibration,
        replay_classify_speedup: 0.0,
        lanes,
        engine: None,
    };
    let _ = std::fs::create_dir_all(&args.out);
    let path = args
        .out
        .join(format!("BENCH_{}.partial.json", report.git_sha));
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => eprintln!(
            "# interrupted: partial report ({} lanes) flushed to {}",
            report.lanes.len(),
            path.display()
        ),
        Err(e) => eprintln!("# interrupted: failed to flush partial report: {e}"),
    }
    ExitCode::from(130)
}

/// Between lane families: if a shutdown signal arrived, flush what we
/// have and stop instead of discarding minutes of measurements.
macro_rules! bail_if_interrupted {
    ($args:expr, $suite_traces:expr, $totals:expr, $calibration:expr, $lanes:expr) => {
        if tpcp_experiments::shutdown::requested() {
            return flush_partial($args, $suite_traces, $totals, $calibration, $lanes);
        }
    };
}

/// Unwraps an engine-lane result; on a `tpcp_experiments::EngineError`
/// prints the one-line cause (trace name, lane, cause) and exits nonzero
/// instead of unwinding with a backtrace.
macro_rules! try_engine {
    ($result:expr) => {
        match $result {
            Ok(value) => value,
            Err(e) => {
                eprintln!("tpcp-perf: engine failure: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    // Catch SIGINT/SIGTERM so an interrupted run flushes a partial
    // report instead of discarding everything measured so far.
    tpcp_experiments::shutdown::install();

    let scale = if args.smoke {
        Scale::Smoke
    } else {
        Scale::Full
    };
    println!(
        "tpcp-perf: building {} synthetic suite ...",
        if args.smoke { "smoke" } else { "full" }
    );
    let suite: Vec<PerfTrace> = perf_suite(scale);
    let (suite_intervals, suite_events, suite_bytes) = suite_totals(&suite);
    for t in &suite {
        println!(
            "  {:<16} {:>7} intervals  {:>9} events  {:>9} bytes encoded",
            t.name,
            t.intervals,
            t.events,
            t.encoded.len()
        );
    }

    let calibration = calibration_ops_per_sec();
    println!("host calibration: {:.1} Mops/s", calibration / 1e6);

    let config = ClassifierConfig::hpca2005();
    let mut lanes: Vec<LaneStats> = Vec::new();

    println!("timing decode lanes ({} iters) ...", args.iters);
    let (dec_eager_run, samples) = time_lane(args.iters, || decode_eager(&suite));
    lanes.push(summarize(
        "decode_eager",
        &samples,
        dec_eager_run.intervals,
        dec_eager_run.events,
    ));
    let (dec_stream_run, samples) = time_lane(args.iters, || decode_streaming(&suite));
    lanes.push(summarize(
        "decode_streaming",
        &samples,
        dec_stream_run.intervals,
        dec_stream_run.events,
    ));
    assert_eq!(
        dec_eager_run, dec_stream_run,
        "streaming and eager decode disagree on the event stream"
    );

    println!("timing decode kernel lanes ({} iters) ...", args.iters);
    #[cfg(feature = "simd")]
    {
        let (dec_scalar_run, scalar_samples, dec_simd_run, simd_samples) = time_lane_pair(
            args.iters,
            || decode_scalar(&suite),
            || tpcp_bench::perf::decode_simd(&suite),
        );
        lanes.push(summarize(
            "decode_scalar",
            &scalar_samples,
            dec_scalar_run.intervals,
            dec_scalar_run.events,
        ));
        assert_eq!(
            dec_scalar_run, dec_stream_run,
            "scalar decode kernel disagrees with the default decode path"
        );
        lanes.push(summarize(
            "decode_simd",
            &simd_samples,
            dec_simd_run.intervals,
            dec_simd_run.events,
        ));
        assert_eq!(
            dec_simd_run, dec_scalar_run,
            "SWAR decode kernel disagrees with the scalar kernel"
        );
        let scalar_rate = lanes[lanes.len() - 2].intervals_per_sec;
        let simd_rate = lanes[lanes.len() - 1].intervals_per_sec;
        if scalar_rate > 0.0 {
            println!(
                "  decode simd/scalar speedup: {:.2}x",
                simd_rate / scalar_rate
            );
        }
    }
    #[cfg(not(feature = "simd"))]
    {
        let (dec_scalar_run, samples) = time_lane(args.iters, || decode_scalar(&suite));
        lanes.push(summarize(
            "decode_scalar",
            &samples,
            dec_scalar_run.intervals,
            dec_scalar_run.events,
        ));
        assert_eq!(
            dec_scalar_run, dec_stream_run,
            "scalar decode kernel disagrees with the default decode path"
        );
    }

    let totals = (suite_intervals, suite_events, suite_bytes);
    bail_if_interrupted!(&args, suite.len(), totals, calibration, lanes);

    println!("timing sampled replay lanes ({} iters) ...", args.iters);
    let indices = replay_indices(&suite);
    let (replay_full_run, full_samples, replay_sampled_run, sampled_samples) = time_lane_pair(
        args.iters,
        || replay_full(&suite),
        || replay_sampled(&suite, &indices),
    );
    lanes.push(summarize(
        "replay_full",
        &full_samples,
        replay_full_run.intervals,
        replay_full_run.events,
    ));
    lanes.push(summarize(
        "replay_sampled",
        &sampled_samples,
        replay_sampled_run.intervals,
        replay_sampled_run.events,
    ));
    assert_eq!(
        replay_sampled_run, replay_full_run,
        "seek-driven sampled replay disagrees with the filtered full decode"
    );
    {
        let full_rate = lanes[lanes.len() - 2].intervals_per_sec;
        let sampled_rate = lanes[lanes.len() - 1].intervals_per_sec;
        if full_rate > 0.0 {
            println!(
                "  sampled replay seek speedup: {:.2}x",
                sampled_rate / full_rate
            );
        }
    }

    bail_if_interrupted!(&args, suite.len(), totals, calibration, lanes);

    println!("timing distance micro lanes ({} iters) ...", args.iters);
    let (dist_table, dist_probes) = distance_fixture();
    #[cfg(feature = "simd")]
    {
        let (dist_scalar_run, scalar_samples, dist_simd_run, simd_samples) = time_lane_pair(
            args.iters,
            || distance_scalar(&dist_table, &dist_probes),
            || tpcp_bench::perf::distance_simd(&dist_table, &dist_probes),
        );
        lanes.push(summarize(
            "distance_scalar",
            &scalar_samples,
            dist_scalar_run.intervals,
            dist_scalar_run.events,
        ));
        lanes.push(summarize(
            "distance_simd",
            &simd_samples,
            dist_simd_run.intervals,
            dist_simd_run.events,
        ));
        assert_eq!(
            dist_simd_run, dist_scalar_run,
            "SWAR column scan disagrees with the scalar table search"
        );
        let scalar_rate = lanes[lanes.len() - 2].intervals_per_sec;
        let simd_rate = lanes[lanes.len() - 1].intervals_per_sec;
        if scalar_rate > 0.0 {
            println!(
                "  distance simd/scalar speedup: {:.2}x",
                simd_rate / scalar_rate
            );
        }
    }
    #[cfg(not(feature = "simd"))]
    {
        let (dist_scalar_run, samples) =
            time_lane(args.iters, || distance_scalar(&dist_table, &dist_probes));
        lanes.push(summarize(
            "distance_scalar",
            &samples,
            dist_scalar_run.intervals,
            dist_scalar_run.events,
        ));
    }

    bail_if_interrupted!(&args, suite.len(), totals, calibration, lanes);

    println!("timing replay+classify lanes ({} iters) ...", args.iters);
    let (cls_eager_run, samples) = time_lane(args.iters, || classify_eager(&suite, config));
    lanes.push(summarize(
        "replay_classify_eager",
        &samples,
        cls_eager_run.intervals,
        cls_eager_run.events,
    ));
    let (cls_stream_run, samples) = time_lane(args.iters, || classify_streaming(&suite, config));
    lanes.push(summarize(
        "replay_classify_streaming",
        &samples,
        cls_stream_run.intervals,
        cls_stream_run.events,
    ));
    assert_eq!(
        cls_eager_run, cls_stream_run,
        "streaming and eager classification disagree on the phase-ID stream"
    );
    println!("  equivalence: streaming == eager on both lane pairs");

    let rate_of = |lanes: &[LaneStats], name: &str| {
        lanes
            .iter()
            .find(|l| l.name == name)
            .map(|l| l.intervals_per_sec)
            .unwrap_or(0.0)
    };
    let eager_rate = rate_of(&lanes, "replay_classify_eager");
    let streaming_rate = rate_of(&lanes, "replay_classify_streaming");
    let speedup = if eager_rate > 0.0 {
        streaming_rate / eager_rate
    } else {
        0.0
    };

    if args.serve {
        println!("timing serve round-trip lane ({} iters) ...", args.iters);
        let handle = match tpcp_serve::Server::spawn(tpcp_serve::ServeConfig::default()) {
            Ok(handle) => handle,
            Err(e) => {
                eprintln!("tpcp-perf: cannot start tpcp-serve for the serve lane: {e}");
                return ExitCode::FAILURE;
            }
        };
        let addr = match handle.tcp_addr() {
            Some(addr) => addr,
            None => {
                eprintln!("tpcp-perf: serve lane server bound no TCP address");
                return ExitCode::FAILURE;
            }
        };
        let serve_intervals: u64 = if args.smoke { 32 } else { 256 };
        // Scripts close their sessions, so every repetition reuses the
        // same ids against the same long-lived server — exactly the
        // steady-state serve path, with no rebind in the timed region.
        let scripts: Vec<tpcp_serve::SessionScript> = (1..=8)
            .map(|s| tpcp_serve::SessionScript::for_session(s, serve_intervals))
            .collect();
        let (serve_run, samples) = time_lane(args.iters, || serve_echo(addr, &scripts));
        lanes.push(summarize(
            "serve_echo",
            &samples,
            serve_run.intervals,
            serve_run.events,
        ));
        let telemetry = handle.join();
        assert!(
            telemetry.malformed_frames == 0 && telemetry.oversized_frames == 0,
            "serve lane tripped the server's error paths"
        );

        // Fleet lanes: the same wide fleet against the
        // thread-per-connection single-lock baseline and the sharded
        // worker-pool server. Repetitions are capped — each one opens
        // (and the baseline mode threads) hundreds of connections.
        let fleet_iters = args.iters.clamp(1, 5);
        let fleet_connections: u64 = if args.smoke { 128 } else { 512 };
        let fleet_intervals: u64 = if args.smoke { 8 } else { 16 };
        let fleet = tpcp_serve::FleetScript::new(fleet_connections, fleet_intervals);
        println!(
            "timing serve fleet lanes ({fleet_connections} connections, {fleet_iters} iters) ..."
        );

        let threads_handle = match spawn_fleet_server(0, 1, fleet_connections) {
            Ok(handle) => handle,
            Err(e) => {
                eprintln!("tpcp-perf: cannot start the thread-per-connection fleet server: {e}");
                return ExitCode::FAILURE;
            }
        };
        let threads_addr = threads_handle.tcp_addr().expect("fleet server binds tcp");
        let (threads_run, threads_samples) =
            time_lane(fleet_iters, || serve_fleet(threads_addr, &fleet));
        lanes.push(summarize(
            "serve_fleet_threads",
            &threads_samples,
            threads_run.intervals,
            threads_run.events,
        ));
        threads_handle.join();

        let pool_handle = match spawn_fleet_server(8, 16, fleet_connections) {
            Ok(handle) => handle,
            Err(e) => {
                eprintln!("tpcp-perf: cannot start the worker-pool fleet server: {e}");
                return ExitCode::FAILURE;
            }
        };
        let pool_addr = pool_handle.tcp_addr().expect("fleet server binds tcp");
        let (pool_run, pool_samples) = time_lane(fleet_iters, || serve_fleet(pool_addr, &fleet));
        lanes.push(summarize(
            "serve_fleet_pool",
            &pool_samples,
            pool_run.intervals,
            pool_run.events,
        ));
        pool_handle.join();

        assert_eq!(
            threads_run, pool_run,
            "the fleet digest must be bit-identical across serve modes"
        );
        let threads_rate = lanes[lanes.len() - 2].intervals_per_sec;
        let pool_rate = lanes[lanes.len() - 1].intervals_per_sec;
        if threads_rate > 0.0 {
            println!(
                "  serve fleet pool/threads speedup: {:.2}x",
                pool_rate / threads_rate
            );
        }
    }

    bail_if_interrupted!(&args, suite.len(), totals, calibration, lanes);

    let engine = if args.engine {
        println!("timing engine suite (quick params; first run warms the trace cache) ...");
        let cache = TraceCache::default_location();
        let params = SuiteParams::quick();
        let reference = try_engine!(engine_suite(&cache, &params)); // warm-up + cache fill
        let mut samples = Vec::with_capacity(args.iters as usize);
        for _ in 0..args.iters {
            let start = Instant::now();
            let stats = try_engine!(engine_suite(&cache, &params));
            samples.push(start.elapsed());
            assert_eq!(
                stats.total_intervals(),
                reference.total_intervals(),
                "engine sweep interval totals drifted across repetitions"
            );
        }
        lanes.push(summarize(
            "engine_suite",
            &samples,
            reference.total_intervals(),
            0,
        ));

        println!(
            "timing cross-extractor engine sweep ({} iters) ...",
            args.iters
        );
        let ext_reference = try_engine!(engine_extractors(&cache, &params)); // warm-up
        assert!(
            ext_reference.max_replays_per_trace() <= 1,
            "cross-extractor sweep replayed a trace more than once"
        );
        let mut ext_samples = Vec::with_capacity(args.iters as usize);
        for _ in 0..args.iters {
            let start = Instant::now();
            let stats = try_engine!(engine_extractors(&cache, &params));
            ext_samples.push(start.elapsed());
            assert_eq!(
                stats.total_intervals(),
                ext_reference.total_intervals(),
                "cross-extractor sweep interval totals drifted across repetitions"
            );
        }
        lanes.push(summarize(
            "engine_extractors",
            &ext_samples,
            ext_reference.total_intervals(),
            0,
        ));

        Some(EngineSummary {
            traces_replayed: reference.traces_replayed(),
            max_replays_per_trace: reference.max_replays_per_trace(),
            total_intervals: reference.total_intervals(),
            replay_counts: reference
                .replay_counts()
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            telemetry: reference.telemetry().clone(),
        })
    } else {
        None
    };

    if args.engine && !args.lanes.is_empty() {
        println!(
            "timing lanes-scaling engine runs ({:?} lanes, {} iters) ...",
            args.lanes, args.iters
        );
        let cache = TraceCache::default_location();
        let params = SuiteParams::quick();
        for &n in &args.lanes {
            let (reference, fanned) = try_engine!(engine_lanes(&cache, &params, n)); // warm-up + cache fill
            assert!(
                reference.max_replays_per_trace() <= 1,
                "lanes-scaling run replayed a trace more than once"
            );
            let mut samples = Vec::with_capacity(args.iters as usize);
            for _ in 0..args.iters {
                let start = Instant::now();
                let (stats, fanned_now) = try_engine!(engine_lanes(&cache, &params, n));
                samples.push(start.elapsed());
                assert_eq!(
                    fanned_now, fanned,
                    "lanes-scaling interval totals drifted across repetitions"
                );
                assert!(stats.max_replays_per_trace() <= 1);
            }
            lanes.push(summarize(&format!("engine_lanes_{n}"), &samples, fanned, 0));
        }
    }

    println!();
    for lane in &lanes {
        lane_line(lane);
    }
    println!("  replay+classify streaming/eager speedup: {speedup:.2}x");

    let report = PerfReport {
        git_sha: git_sha(),
        smoke: args.smoke,
        suite_traces: suite.len(),
        suite_intervals,
        suite_events,
        suite_encoded_bytes: suite_bytes,
        peak_rss_bytes: peak_rss_bytes(),
        calibration_ops_per_sec: calibration,
        replay_classify_speedup: speedup,
        lanes,
        engine,
    };
    let json = report.to_json();

    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("cannot create {}: {e}", args.out.display());
        return ExitCode::from(2);
    }
    let bench_path = args.out.join(format!("BENCH_{}.json", report.git_sha));
    if let Err(e) = std::fs::write(&bench_path, &json) {
        eprintln!("cannot write {}: {e}", bench_path.display());
        return ExitCode::from(2);
    }
    println!("wrote {}", bench_path.display());
    if let Some(path) = &args.telemetry {
        // An engine-less run exports an empty (disabled) snapshot so the
        // output file always exists and parses.
        let snapshot = report
            .engine
            .as_ref()
            .map(|e| e.telemetry.to_json())
            .unwrap_or_else(|| tpcp_experiments::TelemetrySnapshot::default().to_json());
        if let Err(e) = std::fs::write(path, snapshot) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }
    if args.refresh_baseline {
        let baseline_path = args.out.join("bench-baseline.json");
        if let Err(e) = std::fs::write(&baseline_path, &json) {
            eprintln!("cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!("refreshed {}", baseline_path.display());
    }

    if let Some(baseline_path) = &args.check {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        };
        let checks =
            check_against_baseline(&report.lanes, &baseline, args.tolerance, Some(calibration));
        if checks.is_empty() {
            eprintln!(
                "baseline {} has no lanes in common with this run",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        if args.strict {
            let (current_only, baseline_only) = unmatched_lanes(&report.lanes, &baseline);
            if !current_only.is_empty() || !baseline_only.is_empty() {
                for name in &current_only {
                    eprintln!("strict: lane {name:?} has no baseline entry");
                }
                for name in &baseline_only {
                    eprintln!("strict: baseline lane {name:?} was not measured");
                }
                eprintln!(
                    "strict: lane sets differ; refresh {} with --refresh-baseline",
                    baseline_path.display()
                );
                return ExitCode::FAILURE;
            }
        }
        match parse_calibration(&baseline) {
            Some(base_cal) => println!(
                "checking against {} (tolerance {:.0}%, host speed {:.2}x of baseline's):",
                baseline_path.display(),
                args.tolerance * 100.0,
                calibration / base_cal
            ),
            None => println!(
                "checking against {} (tolerance {:.0}%, no baseline calibration — raw rates):",
                baseline_path.display(),
                args.tolerance * 100.0
            ),
        }
        let mut failed = false;
        for check in &checks {
            println!(
                "  {} {:<24} {:>12.0} -> {:>12.0} intervals/s ({:+.1}%)",
                if check.regressed { "FAIL" } else { "ok  " },
                check.name,
                check.baseline,
                check.current,
                (check.ratio - 1.0) * 100.0
            );
            failed |= check.regressed;
        }
        if failed {
            eprintln!("perf regression beyond {:.0}%", args.tolerance * 100.0);
            return ExitCode::FAILURE;
        }
    }

    ExitCode::SUCCESS
}
