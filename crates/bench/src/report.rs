//! Machine-readable perf reports for the `tpcp-perf` harness.
//!
//! A run produces a [`PerfReport`] — per-lane wall-clock statistics plus
//! process-level facts (peak RSS, git revision, engine replay counts) —
//! serialized as `BENCH_<git-sha>.json` so CI can archive one data point
//! per commit. The JSON is hand-rolled (the workspace deliberately has no
//! JSON dependency); [`parse_lane_rates`] reads back exactly the subset a
//! regression check needs, so the emitter and parser must stay in sync:
//! `"name"` keys appear only inside lane objects, and each lane object
//! carries an `"intervals_per_sec"` field after its `"name"`.

use std::time::Duration;

use tpcp_experiments::TelemetrySnapshot;

/// Timing statistics for one measured lane.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneStats {
    /// Lane identifier (stable across runs; baseline keys match on it).
    pub name: String,
    /// Number of timed repetitions (warm-up excluded).
    pub iters: u32,
    /// Fastest wall-clock repetition, milliseconds.
    pub best_ms: f64,
    /// Median wall-clock per repetition, milliseconds.
    pub median_ms: f64,
    /// 90th-percentile (nearest-rank) wall-clock per repetition, ms.
    pub p90_ms: f64,
    /// Intervals processed per second at the fastest repetition.
    ///
    /// Rates use the best repetition, not the median: co-tenant load
    /// only ever slows a run down, so min-of-N converges to the
    /// machine's true capability and keeps the regression gate stable
    /// on noisy hosts. Median and p90 stay reported for latency shape.
    pub intervals_per_sec: f64,
    /// Events processed per second at the fastest repetition.
    pub events_per_sec: f64,
    /// Intervals processed by one repetition.
    pub intervals: u64,
    /// Events processed by one repetition.
    pub events: u64,
}

/// Collapses raw per-repetition durations into a [`LaneStats`].
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn summarize(name: &str, samples: &[Duration], intervals: u64, events: u64) -> LaneStats {
    assert!(!samples.is_empty(), "lane {name} measured zero repetitions");
    let mut ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    ms.sort_by(f64::total_cmp);
    let best_ms = ms[0];
    let median_ms = median(&ms);
    let p90_ms = percentile(&ms, 0.90);
    let best_s = best_ms / 1e3;
    let rate = |n: u64| {
        if best_s > 0.0 {
            n as f64 / best_s
        } else {
            0.0
        }
    };
    LaneStats {
        name: name.to_owned(),
        iters: samples.len() as u32,
        best_ms,
        median_ms,
        p90_ms,
        intervals_per_sec: rate(intervals),
        events_per_sec: rate(events),
        intervals,
        events,
    }
}

/// Median of an already-sorted slice.
fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Nearest-rank percentile of an already-sorted slice (`p` in `0.0..=1.0`).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// What the experiment-engine lane did, beyond its timing.
#[derive(Debug, Clone, Default)]
pub struct EngineSummary {
    /// Distinct traces replayed per engine run.
    pub traces_replayed: usize,
    /// Largest per-trace replay count. The engine invariant is `1` on a
    /// healthy run; `2` means a corrupt cache entry was quarantined and
    /// its trace re-simulated.
    pub max_replays_per_trace: u64,
    /// Total intervals fanned out per engine run.
    pub total_intervals: u64,
    /// Per-trace replay counts, keyed by `<benchmark>-<fingerprint>`.
    pub replay_counts: Vec<(String, u64)>,
    /// The engine's own telemetry snapshot (per-stage timings, cache and
    /// shard counters) from the reference run.
    pub telemetry: TelemetrySnapshot,
}

/// One full `tpcp-perf` run, ready to serialize.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Abbreviated git revision the binary was built from.
    pub git_sha: String,
    /// Whether this was a `--smoke` run (reduced suite and iterations).
    pub smoke: bool,
    /// Number of synthetic traces in the measured suite.
    pub suite_traces: usize,
    /// Intervals one repetition of a suite-wide lane processes.
    pub suite_intervals: u64,
    /// Events one repetition of a suite-wide lane processes.
    pub suite_events: u64,
    /// Total encoded size of the suite, bytes.
    pub suite_encoded_bytes: u64,
    /// Process peak resident set size, bytes (0 if unavailable).
    pub peak_rss_bytes: u64,
    /// Host-speed reference from the frozen calibration kernel
    /// ([`crate::perf::calibration_ops_per_sec`]), word-ops per second.
    /// The baseline gate divides lane rates by this so host-speed swings
    /// cancel out of the comparison (0 disables normalization).
    pub calibration_ops_per_sec: f64,
    /// Streaming-over-eager intervals/sec ratio on the replay+classify lane.
    pub replay_classify_speedup: f64,
    /// Per-lane timing statistics.
    pub lanes: Vec<LaneStats>,
    /// Engine lane facts, if the engine lane ran.
    pub engine: Option<EngineSummary>,
}

impl PerfReport {
    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"tpcp-bench-v1\",\n");
        s.push_str(&format!("  \"git_sha\": {},\n", json_string(&self.git_sha)));
        s.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        s.push_str("  \"suite\": {\n");
        s.push_str(&format!("    \"traces\": {},\n", self.suite_traces));
        s.push_str(&format!("    \"intervals\": {},\n", self.suite_intervals));
        s.push_str(&format!("    \"events\": {},\n", self.suite_events));
        s.push_str(&format!(
            "    \"encoded_bytes\": {}\n  }},\n",
            self.suite_encoded_bytes
        ));
        s.push_str(&format!("  \"peak_rss_bytes\": {},\n", self.peak_rss_bytes));
        s.push_str(&format!(
            "  \"calibration_ops_per_sec\": {},\n",
            json_f64(self.calibration_ops_per_sec)
        ));
        s.push_str(&format!(
            "  \"replay_classify_speedup\": {},\n",
            json_f64(self.replay_classify_speedup)
        ));
        s.push_str("  \"lanes\": [\n");
        for (i, lane) in self.lanes.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": {},\n", json_string(&lane.name)));
            s.push_str(&format!("      \"iters\": {},\n", lane.iters));
            s.push_str(&format!("      \"best_ms\": {},\n", json_f64(lane.best_ms)));
            s.push_str(&format!(
                "      \"median_ms\": {},\n",
                json_f64(lane.median_ms)
            ));
            s.push_str(&format!("      \"p90_ms\": {},\n", json_f64(lane.p90_ms)));
            s.push_str(&format!(
                "      \"intervals_per_sec\": {},\n",
                json_f64(lane.intervals_per_sec)
            ));
            s.push_str(&format!(
                "      \"events_per_sec\": {},\n",
                json_f64(lane.events_per_sec)
            ));
            s.push_str(&format!("      \"intervals\": {},\n", lane.intervals));
            s.push_str(&format!("      \"events\": {}\n", lane.events));
            s.push_str(if i + 1 == self.lanes.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        s.push_str("  ],\n");
        match &self.engine {
            None => s.push_str("  \"engine\": null\n"),
            Some(engine) => {
                s.push_str("  \"engine\": {\n");
                s.push_str(&format!(
                    "    \"traces_replayed\": {},\n",
                    engine.traces_replayed
                ));
                s.push_str(&format!(
                    "    \"max_replays_per_trace\": {},\n",
                    engine.max_replays_per_trace
                ));
                s.push_str(&format!(
                    "    \"total_intervals\": {},\n",
                    engine.total_intervals
                ));
                s.push_str("    \"replay_counts\": {");
                for (i, (key, count)) in engine.replay_counts.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!("\n      {}: {}", json_string(key), count));
                }
                if !engine.replay_counts.is_empty() {
                    s.push_str("\n    ");
                }
                s.push_str("},\n    \"telemetry\": ");
                // Telemetry lane objects use "label" keys, so embedding
                // them here cannot confuse `parse_lane_rates`' reliance
                // on "name" appearing only in lane objects.
                engine.telemetry.write_json(&mut s, 2);
                s.push_str("\n  }\n");
            }
        }
        s.push_str("}\n");
        s
    }
}

/// JSON-escapes and quotes a string.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (finite, fixed 3-decimal precision).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "0.000".to_owned()
    }
}

/// Extracts `(lane name, intervals_per_sec)` pairs from a report produced
/// by [`PerfReport::to_json`].
///
/// This is a deliberately narrow scanner, not a JSON parser: it relies on
/// the emitter's invariant that `"name"` keys occur only in lane objects
/// and are followed by that lane's `"intervals_per_sec"`. Lanes it cannot
/// make sense of are skipped rather than reported as errors.
pub fn parse_lane_rates(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"name\"") {
        rest = &rest[at + "\"name\"".len()..];
        let Some((name, after_name)) = scan_string_value(rest) else {
            continue;
        };
        // The rate must belong to this lane object: stop at the next lane.
        let scope_end = after_name.find("\"name\"").unwrap_or(after_name.len());
        if let Some(rate) = scan_number_after(&after_name[..scope_end], "\"intervals_per_sec\"") {
            out.push((name, rate));
        }
        rest = after_name;
    }
    out
}

/// After a key, skips `: "` and returns the quoted value plus the rest.
fn scan_string_value(s: &str) -> Option<(String, &str)> {
    let open = s.find('"')?;
    let body = &s[open + 1..];
    let close = body.find('"')?;
    Some((body[..close].to_owned(), &body[close + 1..]))
}

/// Finds `key` in `s` and parses the number following its colon.
fn scan_number_after(s: &str, key: &str) -> Option<f64> {
    let at = s.find(key)?;
    let after = &s[at + key.len()..];
    let colon = after.find(':')?;
    let num: String = after[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        .collect();
    num.parse().ok()
}

/// Extracts the top-level `calibration_ops_per_sec` value from a report
/// produced by [`PerfReport::to_json`], if present and positive.
///
/// Reports written before the calibration kernel existed lack the key;
/// callers fall back to unnormalized comparison.
pub fn parse_calibration(json: &str) -> Option<f64> {
    scan_number_after(json, "\"calibration_ops_per_sec\"").filter(|&c| c > 0.0)
}

/// The verdict for one lane of a baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneCheck {
    /// Lane name common to both runs.
    pub name: String,
    /// Baseline intervals/sec, scaled to the current host's speed when
    /// both reports carry a calibration value.
    pub baseline: f64,
    /// Current intervals/sec.
    pub current: f64,
    /// `current / baseline`.
    pub ratio: f64,
    /// Whether the lane regressed beyond the tolerance.
    pub regressed: bool,
}

/// Compares the current lanes against a baseline report's JSON.
///
/// When `calibration` is `Some` and the baseline also carries a
/// calibration value, every baseline rate is first scaled by
/// `current_calibration / baseline_calibration`: both runs are expressed
/// in the *current* host's speed, so a globally slower (or faster) host —
/// hypervisor steal, a different CI machine generation — does not read as
/// a lane regression (or mask one). A lane then regresses when its
/// intervals/sec falls below `scaled_baseline * (1 - tolerance)`. Lanes
/// present on only one side are ignored (new lanes must not fail an old
/// baseline, and retired lanes must not block forever); `--strict` turns
/// those into failures via [`unmatched_lanes`].
pub fn check_against_baseline(
    current: &[LaneStats],
    baseline_json: &str,
    tolerance: f64,
    calibration: Option<f64>,
) -> Vec<LaneCheck> {
    let scale = match (calibration, parse_calibration(baseline_json)) {
        (Some(cur), Some(base)) if cur > 0.0 => cur / base,
        _ => 1.0,
    };
    let baseline = parse_lane_rates(baseline_json);
    let mut checks = Vec::new();
    for lane in current {
        let Some(&(_, raw_rate)) = baseline.iter().find(|(name, _)| *name == lane.name) else {
            continue;
        };
        let base_rate = raw_rate * scale;
        let ratio = if base_rate > 0.0 {
            lane.intervals_per_sec / base_rate
        } else {
            1.0
        };
        checks.push(LaneCheck {
            name: lane.name.clone(),
            baseline: base_rate,
            current: lane.intervals_per_sec,
            ratio,
            regressed: base_rate > 0.0 && ratio < 1.0 - tolerance,
        });
    }
    checks
}

/// Lane names present on only one side of a baseline comparison, as
/// `(current_only, baseline_only)`.
///
/// [`check_against_baseline`] ignores unmatched lanes so a new lane
/// cannot fail an old baseline mid-transition; strict mode turns either
/// kind into a failure so the checked-in baseline can never silently
/// drift out of sync with the measured lane set (a renamed lane would
/// otherwise pass the gate forever, unchecked).
pub fn unmatched_lanes(current: &[LaneStats], baseline_json: &str) -> (Vec<String>, Vec<String>) {
    let baseline = parse_lane_rates(baseline_json);
    let current_only = current
        .iter()
        .filter(|l| !baseline.iter().any(|(name, _)| *name == l.name))
        .map(|l| l.name.clone())
        .collect();
    let baseline_only = baseline
        .iter()
        .filter(|(name, _)| !current.iter().any(|l| l.name == *name))
        .map(|(name, _)| name.clone())
        .collect();
    (current_only, baseline_only)
}

/// The process's peak resident set size in bytes (`VmHWM`), or 0 when the
/// platform does not expose `/proc/self/status`.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// The abbreviated git revision of the working tree, falling back to the
/// `GITHUB_SHA` environment variable, then `"unknown"`.
pub fn git_sha() -> String {
    let from_git = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty());
    from_git
        .or_else(|| {
            std::env::var("GITHUB_SHA")
                .ok()
                .map(|s| s.chars().take(12).collect())
        })
        .unwrap_or_else(|| "unknown".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane(name: &str, rate: f64) -> LaneStats {
        LaneStats {
            name: name.to_owned(),
            iters: 3,
            best_ms: 9.0,
            median_ms: 10.0,
            p90_ms: 11.0,
            intervals_per_sec: rate,
            events_per_sec: rate * 100.0,
            intervals: 1000,
            events: 100_000,
        }
    }

    fn sample_report() -> PerfReport {
        PerfReport {
            git_sha: "abc123".to_owned(),
            smoke: true,
            suite_traces: 3,
            suite_intervals: 1000,
            suite_events: 100_000,
            suite_encoded_bytes: 42_000,
            peak_rss_bytes: 1 << 20,
            calibration_ops_per_sec: 1_000_000.0,
            replay_classify_speedup: 2.5,
            lanes: vec![
                lane("decode_eager", 50_000.0),
                lane("decode_streaming", 90_000.0),
            ],
            engine: Some(EngineSummary {
                traces_replayed: 11,
                max_replays_per_trace: 1,
                total_intervals: 5000,
                replay_counts: vec![("mcf-v1".to_owned(), 1)],
                telemetry: TelemetrySnapshot::default(),
            }),
        }
    }

    #[test]
    fn summarize_median_and_p90() {
        let samples: Vec<Duration> = [5, 1, 4, 2, 3]
            .iter()
            .map(|&s| Duration::from_millis(s))
            .collect();
        let stats = summarize("x", &samples, 300, 30_000);
        assert_eq!(stats.best_ms, 1.0);
        assert_eq!(stats.median_ms, 3.0);
        assert_eq!(stats.p90_ms, 5.0);
        assert_eq!(stats.iters, 5);
        // Rates come from the fastest repetition (1 ms).
        assert!((stats.intervals_per_sec - 300_000.0).abs() < 1e-6);
        assert!((stats.events_per_sec - 30_000_000.0).abs() < 1e-3);
    }

    #[test]
    fn summarize_even_sample_count_averages_middle() {
        let samples: Vec<Duration> = [2, 4].iter().map(|&s| Duration::from_millis(s)).collect();
        assert_eq!(summarize("x", &samples, 1, 1).median_ms, 3.0);
    }

    #[test]
    fn emitted_json_round_trips_through_the_rate_parser() {
        let report = sample_report();
        let json = report.to_json();
        let rates = parse_lane_rates(&json);
        assert_eq!(rates.len(), 2);
        assert_eq!(rates[0].0, "decode_eager");
        assert!((rates[0].1 - 50_000.0).abs() < 0.01);
        assert_eq!(rates[1].0, "decode_streaming");
        assert!((rates[1].1 - 90_000.0).abs() < 0.01);
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(f64::NAN), "0.000");
        assert_eq!(json_f64(f64::INFINITY), "0.000");
    }

    #[test]
    fn regression_detected_beyond_tolerance() {
        let baseline = sample_report().to_json();
        let current = vec![
            lane("decode_eager", 50_000.0 * 0.80),    // -20%: regression
            lane("decode_streaming", 90_000.0 * 0.9), // -10%: within tolerance
            lane("brand_new_lane", 1.0),              // not in baseline: skipped
        ];
        let checks = check_against_baseline(&current, &baseline, 0.15, None);
        assert_eq!(checks.len(), 2);
        assert!(checks[0].regressed, "{checks:?}");
        assert!(!checks[1].regressed, "{checks:?}");
        assert!((checks[0].ratio - 0.80).abs() < 1e-9);
    }

    #[test]
    fn calibration_cancels_uniform_host_slowdown() {
        // Baseline host ran at 1.0 Mops; current host at 0.5 Mops. Every
        // lane measured 50% slower — pure host speed, not a regression.
        let baseline = sample_report().to_json();
        assert_eq!(parse_calibration(&baseline), Some(1_000_000.0));
        let current = vec![
            lane("decode_eager", 50_000.0 * 0.5),
            lane("decode_streaming", 90_000.0 * 0.5),
        ];
        let checks = check_against_baseline(&current, &baseline, 0.15, Some(500_000.0));
        assert!(checks.iter().all(|c| !c.regressed), "{checks:?}");
        assert!((checks[0].ratio - 1.0).abs() < 1e-9);
        // A genuine lane regression still shows through the same scaling.
        let current = vec![lane("decode_eager", 50_000.0 * 0.5 * 0.7)];
        let checks = check_against_baseline(&current, &baseline, 0.15, Some(500_000.0));
        assert!(checks[0].regressed, "{checks:?}");
        // And a baseline without a calibration value compares raw.
        let old_baseline = baseline.replace("\"calibration_ops_per_sec\": 1000000.000,\n", "");
        assert_eq!(parse_calibration(&old_baseline), None);
        let current = vec![lane("decode_eager", 50_000.0)];
        let checks = check_against_baseline(&current, &old_baseline, 0.15, Some(500_000.0));
        assert!(!checks[0].regressed, "{checks:?}");
        assert!((checks[0].ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unmatched_lanes_reported_on_both_sides() {
        let baseline = sample_report().to_json();
        let current = vec![
            lane("decode_eager", 50_000.0),
            lane("brand_new_lane", 1.0), // current only
                                         // decode_streaming missing: baseline only
        ];
        let (current_only, baseline_only) = unmatched_lanes(&current, &baseline);
        assert_eq!(current_only, vec!["brand_new_lane".to_owned()]);
        assert_eq!(baseline_only, vec!["decode_streaming".to_owned()]);

        let full = vec![
            lane("decode_eager", 50_000.0),
            lane("decode_streaming", 90_000.0),
        ];
        let (current_only, baseline_only) = unmatched_lanes(&full, &baseline);
        assert!(current_only.is_empty() && baseline_only.is_empty());
    }

    #[test]
    fn improvement_never_regresses() {
        let baseline = sample_report().to_json();
        let current = vec![lane("decode_eager", 500_000.0)];
        let checks = check_against_baseline(&current, &baseline, 0.15, None);
        assert_eq!(checks.len(), 1);
        assert!(!checks[0].regressed);
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_bytes() > 0);
        }
    }
}
