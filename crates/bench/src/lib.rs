//! Performance measurement for the tpcp workspace.
//!
//! Two kinds of benchmarks live here:
//!
//! * `benches/` — criterion micro-benchmarks (`classifier`, `predictors`,
//!   `figures`, `substrate`, `ablations`) for interactive profiling;
//! * the `tpcp-perf` binary (backed by [`perf`] and [`report`]) — the
//!   repeatable macro harness that times decode-only, replay+classify,
//!   and full-engine-suite lanes and emits one `BENCH_<git-sha>.json`
//!   per run, which CI archives and gates against
//!   `results/bench-baseline.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;
pub mod report;
