//! Benchmark-only crate; all content lives in `benches/`. See each bench
//! target (`classifier`, `predictors`, `figures`, `substrate`,
//! `ablations`) for what it measures.
