//! Benchmarks of the online classification architecture: the per-branch
//! fast path and the per-interval classification step, across the design
//! knobs of Figures 2 and 3 (table size, dimensionality).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use tpcp_core::{AccumulatorTable, ClassifierConfig, PhaseClassifier, Signature};
use tpcp_trace::{BranchEvent, IntervalSource, PhaseSpec, RecordedTrace, SyntheticTrace};

fn synthetic_trace() -> RecordedTrace {
    SyntheticTrace::new(100_000)
        .phase(PhaseSpec::uniform(0x10_0000, 8, 1.0))
        .phase(PhaseSpec::uniform(0x90_0000, 8, 2.0))
        .phase(PhaseSpec::uniform(0x50_0000, 8, 3.0))
        .schedule(&[(0, 20), (1, 10), (2, 5), (0, 20), (1, 10)])
        .generate()
}

/// The per-branch fast path: hash + saturating accumulate.
fn bench_observe(c: &mut Criterion) {
    let mut group = c.benchmark_group("classifier/observe");
    let events: Vec<BranchEvent> = (0..4096u64)
        .map(|i| BranchEvent::new(0x40_0000 + (i % 64) * 0x80, 50))
        .collect();
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("16dim", |b| {
        let mut classifier = PhaseClassifier::new(ClassifierConfig::hpca2005());
        b.iter(|| {
            for &ev in &events {
                classifier.observe(black_box(ev));
            }
        });
    });
    group.finish();
}

/// Per-interval classification (signature formation + table search) as the
/// Figure 2 table-size knob varies.
fn bench_end_interval_table_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("classifier/end_interval/table");
    let trace = synthetic_trace();
    for entries in [16usize, 32, 64, 256] {
        group.bench_with_input(
            BenchmarkId::from_parameter(entries),
            &entries,
            |b, &entries| {
                let cfg = ClassifierConfig::builder()
                    .table_entries(Some(entries))
                    .build();
                b.iter(|| {
                    let mut classifier = PhaseClassifier::new(cfg);
                    let mut replay = trace.replay();
                    while let Some(s) = replay.next_interval(&mut |ev| classifier.observe(ev)) {
                        black_box(classifier.end_interval(s.cpi()));
                    }
                });
            },
        );
    }
    group.finish();
}

/// The Figure 3 dimensionality knob.
fn bench_end_interval_dims(c: &mut Criterion) {
    let mut group = c.benchmark_group("classifier/end_interval/dims");
    let trace = synthetic_trace();
    for dims in [8usize, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(dims), &dims, |b, &dims| {
            let cfg = ClassifierConfig::builder().accumulators(dims).build();
            b.iter(|| {
                let mut classifier = PhaseClassifier::new(cfg);
                let mut replay = trace.replay();
                while let Some(s) = replay.next_interval(&mut |ev| classifier.observe(ev)) {
                    black_box(classifier.end_interval(s.cpi()));
                }
            });
        });
    }
    group.finish();
}

/// Raw signature distance computation.
fn bench_signature_distance(c: &mut Criterion) {
    let mut acc_a = AccumulatorTable::new(16);
    let mut acc_b = AccumulatorTable::new(16);
    for i in 0..64u64 {
        acc_a.observe(BranchEvent::new(i * 0x40, 100));
        acc_b.observe(BranchEvent::new(i * 0x48, 100));
    }
    let a = Signature::from_accumulator(&acc_a, 6);
    let b = Signature::from_accumulator(&acc_b, 6);
    c.bench_function("signature/normalized_distance", |bench| {
        bench.iter(|| black_box(a.normalized_distance(black_box(&b))))
    });
}

criterion_group!(
    benches,
    bench_observe,
    bench_end_interval_table_sizes,
    bench_end_interval_dims,
    bench_signature_distance
);
criterion_main!(benches);
