//! Micro-benchmarks for the thresholded signature distance: the
//! early-exit `within_distance` scan against the unconditional
//! `normalized_distance`, and a full table search routed through each.
//!
//! Three probe/entry relationships matter: *near* pairs (the scan runs to
//! the end and accepts — the early exit must not cost anything), *far*
//! pairs (the scan bails in the first chunks — the win case), and a
//! realistic LRU table where most entries are far.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tpcp_core::{AccumulatorTable, Signature, SignatureTable};
use tpcp_trace::BranchEvent;

fn signature(seed: u64, n: usize) -> Signature {
    let mut acc = AccumulatorTable::new(n);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for _ in 0..64 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        acc.observe(BranchEvent::new(state, (state % 10_000) as u32));
    }
    Signature::from_accumulator(&acc, 6)
}

/// A signature close to `base`: same code, slightly perturbed weights.
fn near(base_seed: u64, n: usize) -> (Signature, Signature) {
    let mut acc = AccumulatorTable::new(n);
    let mut state = base_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut pcs = Vec::new();
    for _ in 0..64 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        pcs.push(state);
        acc.observe(BranchEvent::new(state, (state % 10_000) as u32));
    }
    let a = Signature::from_accumulator(&acc, 6);
    acc.reset();
    for &pc in &pcs {
        acc.observe(BranchEvent::new(pc, (pc % 10_000) as u32 + 37));
    }
    (a, Signature::from_accumulator(&acc, 6))
}

fn bench_pairwise(c: &mut Criterion) {
    for n in [16usize, 64] {
        let mut group = c.benchmark_group(format!("distance/pairwise_{n}"));
        let (a, b) = near(1, n);
        let far_a = signature(2, n);
        let far_b = signature(999_983, n);
        group.bench_function("near_full", |bch| {
            bch.iter(|| black_box(a.normalized_distance(&b)))
        });
        group.bench_function("near_within", |bch| {
            bch.iter(|| black_box(a.within_distance(&b, 0.25)))
        });
        group.bench_function("far_full", |bch| {
            bch.iter(|| black_box(far_a.normalized_distance(&far_b)))
        });
        group.bench_function("far_within", |bch| {
            bch.iter(|| black_box(far_a.within_distance(&far_b, 0.25)))
        });
        group.finish();
    }
}

fn bench_table_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance/table_search");
    for n in [16usize, 64] {
        let mut table = SignatureTable::new(Some(64), 0.25);
        for seed in 10..74 {
            table.insert(signature(seed, n));
        }
        // A probe unrelated to the stored entries: best-match still scans
        // the whole table, so the per-entry early exit dominates the cost.
        let probe = signature(1_000_003, n);
        group.bench_function(format!("best_match_{n}"), |bch| {
            bch.iter(|| black_box(table.find_best_match(&probe)))
        });
        group.bench_function(format!("first_match_{n}"), |bch| {
            bch.iter(|| black_box(table.find_first_match(&probe)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pairwise, bench_table_search);
criterion_main!(benches);
