//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! best-match vs first-match table search, transition-phase min counts,
//! signature resolution (bits per dimension), and adaptive thresholds.
//! Each group measures the runtime cost of the choice on the same replayed
//! trace; the *quality* impact of the same knobs is reported by the
//! `repro` binary (Figures 2–6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tpcp_core::{AdaptiveConfig, ClassifierConfig, PhaseClassifier};
use tpcp_trace::{IntervalSource, PhaseSpec, RecordedTrace, SyntheticTrace};

fn trace() -> RecordedTrace {
    SyntheticTrace::new(50_000)
        .phase(PhaseSpec::uniform(0x10_0000, 12, 1.0))
        .phase(PhaseSpec::uniform(0x90_0000, 12, 2.5))
        .phase(PhaseSpec::uniform(0x50_0000, 12, 4.0))
        .schedule(&[(0, 30), (1, 8), (2, 4), (0, 30), (1, 8), (2, 4), (0, 30)])
        .generate()
}

fn classify_all(trace: &RecordedTrace, cfg: ClassifierConfig) -> u64 {
    let mut classifier = PhaseClassifier::new(cfg);
    let mut replay = trace.replay();
    while let Some(s) = replay.next_interval(&mut |ev| classifier.observe(ev)) {
        black_box(classifier.end_interval(s.cpi()));
    }
    classifier.phases_created()
}

fn bench_match_policy(c: &mut Criterion) {
    let trace = trace();
    let mut group = c.benchmark_group("ablation/match_policy");
    for (name, best) in [("best_match", true), ("first_match", false)] {
        let cfg = ClassifierConfig::builder().best_match(best).build();
        group.bench_function(name, |b| b.iter(|| classify_all(&trace, cfg)));
    }
    group.finish();
}

fn bench_min_count(c: &mut Criterion) {
    let trace = trace();
    let mut group = c.benchmark_group("ablation/min_count");
    for min in [0u8, 4, 8] {
        let cfg = ClassifierConfig::builder().min_count(min).build();
        group.bench_with_input(BenchmarkId::from_parameter(min), &cfg, |b, &cfg| {
            b.iter(|| classify_all(&trace, cfg))
        });
    }
    group.finish();
}

fn bench_bits_per_dim(c: &mut Criterion) {
    let trace = trace();
    let mut group = c.benchmark_group("ablation/bits_per_dim");
    for bits in [4u32, 6, 8] {
        let cfg = ClassifierConfig::builder().bits_per_dim(bits).build();
        group.bench_with_input(BenchmarkId::from_parameter(bits), &cfg, |b, &cfg| {
            b.iter(|| classify_all(&trace, cfg))
        });
    }
    group.finish();
}

fn bench_adaptive(c: &mut Criterion) {
    let trace = trace();
    let mut group = c.benchmark_group("ablation/adaptive");
    for (name, adaptive) in [
        ("static", None),
        (
            "dynamic_25dev",
            Some(AdaptiveConfig {
                deviation_threshold: 0.25,
            }),
        ),
    ] {
        let cfg = ClassifierConfig::builder().adaptive(adaptive).build();
        group.bench_function(name, |b| b.iter(|| classify_all(&trace, cfg)));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_match_policy,
    bench_min_count,
    bench_bits_per_dim,
    bench_adaptive
);
criterion_main!(benches);
