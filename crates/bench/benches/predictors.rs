//! Benchmarks of the prediction architectures over phase ID streams.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use tpcp_core::PhaseId;
use tpcp_predict::{
    ChangeEvaluator, ChangePolicy, EwmaMetric, HistoryKind, LastValueMetric, LengthClassPredictor,
    MetricPredictor, NextPhasePredictor, OutlookPredictor, PerfectMarkov, PhaseChangePredictor,
    PhaseIndexedMetric, PredictorKind,
};

/// A phase stream with realistic structure: stable runs with periodic
/// changes and occasional noise.
fn stream(len: usize) -> Vec<PhaseId> {
    let mut out = Vec::with_capacity(len);
    let mut x = 0x1234_5678u64;
    while out.len() < len {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let phase = PhaseId::new((x >> 60) as u32 % 5 + 1);
        let run = 1 + (x >> 32) as usize % 20;
        for _ in 0..run.min(len - out.len()) {
            out.push(phase);
        }
    }
    out
}

fn bench_next_phase(c: &mut Criterion) {
    let ids = stream(10_000);
    let mut group = c.benchmark_group("predict/next_phase");
    group.throughput(Throughput::Elements(ids.len() as u64));
    for (name, kind) in [
        ("last_value", PredictorKind::last_value()),
        ("markov2", PredictorKind::markov(2)),
        ("rle2", PredictorKind::rle(2)),
        ("last4_rle2", PredictorKind::rle(2).with_last4()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut p = NextPhasePredictor::new(kind);
                for &id in &ids {
                    black_box(p.observe(id));
                }
                p.breakdown()
            });
        });
    }
    group.finish();
}

fn bench_change_evaluation(c: &mut Criterion) {
    let ids = stream(10_000);
    let mut group = c.benchmark_group("predict/change");
    group.throughput(Throughput::Elements(ids.len() as u64));
    for (name, kind, policy) in [
        ("markov2", HistoryKind::Markov(2), ChangePolicy::MostRecent),
        (
            "top4_markov1",
            HistoryKind::Markov(1),
            ChangePolicy::TopK(4),
        ),
        ("rle2", HistoryKind::Rle(2), ChangePolicy::MostRecent),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut e =
                    ChangeEvaluator::new(PhaseChangePredictor::new(kind, policy, true, 32, 4));
                for &id in &ids {
                    black_box(e.observe(id));
                }
                e.breakdown()
            });
        });
    }
    group.bench_function("perfect_markov1", |b| {
        b.iter(|| {
            let mut p = PerfectMarkov::new(HistoryKind::Markov(1));
            for &id in &ids {
                black_box(p.observe(id));
            }
            p.correct_fraction()
        });
    });
    group.finish();
}

fn bench_length_prediction(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict/length");
    for len in [1_000usize, 10_000] {
        let ids = stream(len);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &ids, |b, ids| {
            b.iter(|| {
                let mut p = LengthClassPredictor::new(32, 4);
                for &id in ids {
                    black_box(p.observe(id));
                }
                p.misprediction_rate()
            });
        });
    }
    group.finish();
}

fn bench_outlook(c: &mut Criterion) {
    let ids = stream(10_000);
    let mut group = c.benchmark_group("predict/outlook");
    group.throughput(Throughput::Elements(ids.len() as u64));
    group.bench_function("hpca2005", |b| {
        b.iter(|| {
            let mut p = OutlookPredictor::hpca2005();
            for &id in &ids {
                black_box(p.observe(id));
            }
        });
    });
    group.finish();
}

fn bench_metric_predictors(c: &mut Criterion) {
    let ids = stream(10_000);
    let cpis: Vec<f64> = ids.iter().map(|id| 1.0 + f64::from(id.value())).collect();
    let mut group = c.benchmark_group("predict/metric");
    group.throughput(Throughput::Elements(ids.len() as u64));
    group.bench_function("last_value", |b| {
        b.iter(|| {
            let mut p = LastValueMetric::new();
            for (&id, &cpi) in ids.iter().zip(&cpis) {
                black_box(p.predict());
                p.observe(id, cpi);
            }
        });
    });
    group.bench_function("ewma", |b| {
        b.iter(|| {
            let mut p = EwmaMetric::new(0.5);
            for (&id, &cpi) in ids.iter().zip(&cpis) {
                black_box(p.predict());
                p.observe(id, cpi);
            }
        });
    });
    group.bench_function("phase_indexed", |b| {
        b.iter(|| {
            let mut p = PhaseIndexedMetric::new();
            for (&id, &cpi) in ids.iter().zip(&cpis) {
                black_box(p.predict());
                p.observe(id, cpi);
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_next_phase,
    bench_change_evaluation,
    bench_length_prediction,
    bench_outlook,
    bench_metric_predictors
);
criterion_main!(benches);
