//! Benchmarks of the microarchitecture substrate: caches, branch
//! predictors, TLB, and end-to-end workload simulation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use tpcp_trace::IntervalSource;
use tpcp_uarch::stream::{AddressStream, PointerChaseStream, RandomStream, StridedStream};
use tpcp_uarch::{
    AccessKind, Cache, CacheConfig, HybridPredictor, MachineConfig, MemoryHierarchy, Tlb,
};
use tpcp_workloads::{BenchmarkKind, WorkloadParams};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("uarch/cache");
    const N: u64 = 16_384;
    group.throughput(Throughput::Elements(N));
    let streams: Vec<(&str, Box<dyn AddressStream>)> = vec![
        (
            "strided_l1_resident",
            Box::new(StridedStream::new(0, 32, 8 * 1024)) as Box<dyn AddressStream>,
        ),
        (
            "random_l2_spill",
            Box::new(RandomStream::new(0, 1 << 20, 7)),
        ),
        (
            "pointer_chase",
            Box::new(PointerChaseStream::new(0, 1 << 16, 64)),
        ),
    ];
    for (name, mut stream) in streams {
        group.bench_function(name, |b| {
            let mut cache = Cache::new(CacheConfig::new(16 * 1024, 4, 32));
            b.iter(|| {
                for _ in 0..N {
                    black_box(cache.access(stream.next_addr(), AccessKind::Read));
                }
            });
        });
    }
    group.finish();
}

fn bench_branch_predictor(c: &mut Criterion) {
    let mut group = c.benchmark_group("uarch/branch");
    const N: u64 = 16_384;
    group.throughput(Throughput::Elements(N));
    group.bench_function("hybrid_biased", |b| {
        let mut bp = HybridPredictor::hpca2005();
        b.iter(|| {
            for i in 0..N {
                black_box(bp.observe(0x1000 + (i % 16) * 4, i % 10 != 0));
            }
        });
    });
    group.finish();
}

fn bench_tlb(c: &mut Criterion) {
    const N: u64 = 16_384;
    let mut group = c.benchmark_group("uarch/tlb");
    group.throughput(Throughput::Elements(N));
    group.bench_function("sequential_pages", |b| {
        let mut tlb = Tlb::hpca2005();
        b.iter(|| {
            for i in 0..N {
                black_box(tlb.access((i % 128) * 8192));
            }
        });
    });
    group.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    const N: u64 = 8_192;
    let mut group = c.benchmark_group("uarch/hierarchy");
    group.throughput(Throughput::Elements(N));
    group.bench_function("mixed_traffic", |b| {
        let mut mem = MemoryHierarchy::new(&MachineConfig::hpca2005());
        let mut data = RandomStream::new(0, 1 << 22, 3);
        b.iter(|| {
            for i in 0..N {
                black_box(mem.fetch_instruction(0x40_0000 + (i % 512) * 32));
                black_box(mem.access_data(data.next_addr(), i % 4 == 0));
            }
        });
    });
    group.finish();
}

/// End-to-end workload simulation: intervals per second for two extremes
/// of the model suite.
fn bench_workload_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads/simulate");
    group.sample_size(10);
    for kind in [BenchmarkKind::GzipGraphic, BenchmarkKind::GccScilab] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label().replace('/', "_")),
            &kind,
            |b, &kind| {
                let params = WorkloadParams {
                    length_scale: 0.005,
                    ..Default::default()
                };
                let benchmark = kind.build(&params);
                b.iter(|| {
                    let mut sim = benchmark.simulate(&params);
                    black_box(sim.drain_summaries().len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_branch_predictor,
    bench_tlb,
    bench_hierarchy,
    bench_workload_sim
);
criterion_main!(benches);
