//! One benchmark group per reproduced table/figure: each runs the figure's
//! measurement kernel on a reduced-scale suite, so `cargo bench` exercises
//! the exact code paths that regenerate the paper's evaluation. (Full-scale
//! tables come from `cargo run --release -p tpcp-experiments --bin repro`.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tpcp_experiments::figures;
use tpcp_experiments::{SuiteParams, TraceCache};

/// Shared reduced-scale suite; traces are cached on first use, so the
/// per-iteration cost is classification/prediction, not simulation.
fn setup() -> (TraceCache, SuiteParams) {
    let params = SuiteParams::quick();
    let cache = TraceCache::new("target/tpcp-traces-bench");
    // Warm the cache once outside the timed region.
    for kind in tpcp_workloads::BenchmarkKind::ALL {
        let _ = cache.load_or_simulate(kind, &params);
    }
    (cache, params)
}

macro_rules! figure_bench {
    ($fn_name:ident, $module:ident, $label:literal) => {
        fn $fn_name(c: &mut Criterion) {
            let (cache, params) = setup();
            let mut group = c.benchmark_group("figures");
            group.sample_size(10);
            group.bench_function($label, |b| {
                b.iter(|| black_box(figures::$module::run(&cache, &params)))
            });
            group.finish();
        }
    };
}

figure_bench!(bench_fig2, fig2, "fig2_table_sizes");
figure_bench!(bench_fig3, fig3, "fig3_dimensions");
figure_bench!(bench_fig4, fig4, "fig4_transition_phase");
figure_bench!(bench_fig5, fig5, "fig5_phase_lengths");
figure_bench!(bench_fig6, fig6, "fig6_adaptive_thresholds");
figure_bench!(bench_fig7, fig7, "fig7_next_phase_prediction");
figure_bench!(bench_fig8, fig8, "fig8_change_prediction");
figure_bench!(bench_fig9, fig9, "fig9_length_prediction");
figure_bench!(bench_simpoint, simpoint_cmp, "simpoint_comparison");

/// The batched path the `repro` binary takes: several figures registered
/// on one engine, every trace replayed once for all of them. Compare
/// against the sum of the individual figure benches above to see what the
/// single-replay sweep saves.
fn bench_engine_batch(c: &mut Criterion) {
    let (cache, params) = setup();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("engine_batch_section5", |b| {
        b.iter(|| {
            let mut engine = tpcp_experiments::Engine::new(params);
            let pending = [
                figures::fig7::register(&mut engine),
                figures::fig8::register(&mut engine),
                figures::fig9::register(&mut engine),
                figures::metric_pred::register(&mut engine),
                figures::multi_metric::register(&mut engine),
            ];
            engine.run(&cache);
            black_box(pending.map(|p| p()))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_simpoint,
    bench_engine_batch
);
criterion_main!(benches);
