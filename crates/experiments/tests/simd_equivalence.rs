//! End-to-end scalar-vs-SIMD bit-identity over the paper's workloads.
//!
//! The `simd` feature swaps in two vectorized kernels — the SWAR batched
//! varint decode in `tpcp-trace` and the struct-of-arrays column scan in
//! `tpcp-core`'s signature table. Their contract is *bit identity*: every
//! phase ID, in order, on every one of the paper's 11 benchmark models,
//! must be unchanged. These tests drive whole classification pipelines
//! through both kernel sets from one binary (via the `force_scalar`
//! knobs) and compare the full outputs.
//!
//! Compiled only under the `simd` feature:
//! `cargo test -p tpcp-experiments --features simd`.
#![cfg(feature = "simd")]

use tpcp_core::{ClassifierConfig, PhaseClassifier, PhaseId};
use tpcp_trace::{encode_trace, RecordedTrace, StreamingDecoder};
use tpcp_workloads::{BenchmarkKind, WorkloadParams};

fn tiny_params() -> WorkloadParams {
    WorkloadParams {
        length_scale: 0.02,
        ..Default::default()
    }
}

fn model_trace(kind: BenchmarkKind, params: &WorkloadParams) -> RecordedTrace {
    RecordedTrace::record(kind.build(params).simulate(params))
}

/// Classifies an encoded trace end to end — streaming decode feeding a
/// fresh classifier — with both vectorized kernels either enabled
/// (`scalar = false`) or forced off (`scalar = true`).
fn classify(encoded: &[u8], config: ClassifierConfig, scalar: bool) -> (Vec<PhaseId>, u64) {
    let mut decoder = StreamingDecoder::new(encoded).expect("test traces are well-formed");
    decoder.force_scalar(scalar);
    assert_eq!(decoder.uses_simd(), !scalar);
    let mut classifier = PhaseClassifier::new(config);
    classifier.force_scalar_kernels(scalar);
    let mut ids = Vec::new();
    loop {
        let next = decoder
            .try_next_interval_with(&mut |ev| classifier.observe(ev))
            .expect("test traces are well-formed");
        let Some(summary) = next else { break };
        ids.push(classifier.end_interval(summary.cpi()));
    }
    (ids, classifier.phases_created())
}

/// The acceptance test: all 11 benchmark models classify bit-identically
/// through the SIMD kernels and the scalar kernels under the paper's
/// configuration.
#[test]
fn simd_all_eleven_models_classify_identically() {
    let params = tiny_params();
    for kind in BenchmarkKind::ALL {
        let encoded = encode_trace(&model_trace(kind, &params));
        let config = ClassifierConfig::hpca2005();
        let simd = classify(&encoded, config, false);
        let scalar = classify(&encoded, config, true);
        assert!(
            !simd.0.is_empty(),
            "{}: model produced no intervals",
            kind.label()
        );
        assert_eq!(simd, scalar, "{}: phase-ID streams diverged", kind.label());
    }
}

/// Kernel-churn chaos: a small table capacity forces continuous LRU
/// eviction, per-entry adaptive thresholds tighten mid-run, and the
/// column mirror must track every insert/touch/evict exactly. Any drift
/// between the mirror and the entries shows up as a diverging phase ID.
#[test]
fn simd_equivalence_survives_lru_churn_and_adaptive_thresholds() {
    let params = tiny_params();
    for kind in [BenchmarkKind::Mcf, BenchmarkKind::Gcc166] {
        let encoded = encode_trace(&model_trace(kind, &params));
        for capacity in [4usize, 8, 20] {
            let config = ClassifierConfig::builder()
                .table_entries(Some(capacity))
                .build();
            let simd = classify(&encoded, config, false);
            let scalar = classify(&encoded, config, true);
            assert_eq!(
                simd,
                scalar,
                "{} capacity {}: phase-ID streams diverged",
                kind.label(),
                capacity
            );
        }
    }
}

/// First-match selection takes a different early-exit path through the
/// column scan than best-match; pin its equivalence separately.
#[test]
fn simd_equivalence_holds_for_first_match_selection() {
    let params = tiny_params();
    let encoded = encode_trace(&model_trace(BenchmarkKind::GzipGraphic, &params));
    let config = ClassifierConfig::builder().best_match(false).build();
    let simd = classify(&encoded, config, false);
    let scalar = classify(&encoded, config, true);
    assert_eq!(simd, scalar, "first-match phase-ID streams diverged");
}
