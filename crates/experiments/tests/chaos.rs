//! Chaos tests: deterministic fault injection against the sweep engine.
//!
//! Each test builds a [`FaultPlan`], wires it into the cache and/or the
//! engine, and asserts the sweep's *contract under faults*: it never
//! hangs, never unwinds, reports exactly the injected failures in
//! [`EngineStats::failure_report`], and leaves every surviving lane
//! bit-identical to a fault-free run over the same cache.
//!
//! Compiled only under the `fault-inject` feature:
//! `cargo test -p tpcp-experiments --features fault-inject`.
#![cfg(feature = "fault-inject")]

use std::path::PathBuf;

use tpcp_core::ClassifierConfig;
use tpcp_experiments::fault::FaultPlan;
use tpcp_experiments::{
    CacheError, ClassifiedRun, Engine, EngineError, FailureCause, Pending, SuiteParams, SweepError,
    TraceCache,
};
use tpcp_workloads::{BenchmarkKind, WorkloadParams};

const MCF: BenchmarkKind = BenchmarkKind::Mcf;
const GZIP: BenchmarkKind = BenchmarkKind::GzipGraphic;

fn tiny_params() -> SuiteParams {
    SuiteParams {
        workload: WorkloadParams {
            length_scale: 0.01,
            ..Default::default()
        },
    }
}

/// A private cache directory per test: chaos tests rename and rewrite
/// entries, so they must not share the repo-wide test cache.
fn fresh_cache(tag: &str) -> (TraceCache, PathBuf) {
    let dir = std::env::temp_dir().join(format!("tpcp-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (TraceCache::new(&dir), dir)
}

fn configs(n: usize) -> Vec<ClassifierConfig> {
    (0..n)
        .map(|i| {
            ClassifierConfig::builder()
                .accumulators([16, 32, 64][i % 3])
                .table_entries(Some(20 + i))
                .build()
        })
        .collect()
}

/// Registers `n` classifier lanes on each of mcf and gzip/g, returning
/// each cell with its (kind, lane index).
fn register(engine: &mut Engine, n: usize) -> Vec<(BenchmarkKind, usize, Pending<ClassifiedRun>)> {
    let mut cells = Vec::new();
    for kind in [MCF, GZIP] {
        for (i, config) in configs(n).into_iter().enumerate() {
            cells.push((kind, i, engine.classified(kind, config)));
        }
    }
    cells
}

/// Fault-free reference run; also warms the cache so the faulted run
/// under test starts from on-disk entries.
fn baseline(cache: &TraceCache, n: usize) -> Vec<(BenchmarkKind, usize, ClassifiedRun)> {
    let mut engine = Engine::new(tiny_params());
    let cells = register(&mut engine, n);
    let stats = engine.run(cache);
    assert!(stats.failure_report().is_empty(), "baseline must be clean");
    cells
        .into_iter()
        .map(|(k, i, c)| (k, i, c.take()))
        .collect()
}

/// An injected lane panic fails exactly that lane; its siblings on the
/// same trace and every other benchmark stay bit-identical.
#[test]
fn lane_panic_is_isolated_to_its_lane() {
    let (cache, dir) = fresh_cache("lane-panic");
    let reference = baseline(&cache, 3);
    let faults = FaultPlan::new().panic_lane("mcf", 1, 3).build();
    let mut engine = Engine::new(tiny_params()).with_faults(faults);
    let cells = register(&mut engine, 3);
    let stats = engine.run(&cache);

    let report = stats.failure_report();
    assert_eq!(report.failures().len(), 1, "{:?}", report.failures());
    match &report.failures()[0] {
        EngineError::Sweep(SweepError::Lane(f)) => {
            assert!(f.group.starts_with("mcf-"), "{}", f.group);
            assert!(matches!(f.cause, FailureCause::Panic(_)));
        }
        other => panic!("expected a lane failure, got {other}"),
    }
    assert!(report.quarantined().is_empty());
    assert_eq!(stats.max_replays_per_trace(), 1);

    for ((kind, lane, cell), (_, _, want)) in cells.iter().zip(&reference) {
        if *kind == MCF && *lane == 1 {
            let err = cell.try_take().expect_err("injected lane must fail");
            assert!(matches!(err, EngineError::Sweep(SweepError::Lane(_))));
        } else {
            assert_eq!(&cell.take(), want, "{kind:?} lane {lane} must survive");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupt cache entry (truncated past the header, so validation fails
/// mid-stream) is quarantined together with its index sidecar and
/// re-simulated; the sweep converges with zero failures, one quarantine
/// repair (two evidence files), and bit-identical results.
#[test]
fn midstream_corruption_is_quarantined_and_retried() {
    let (cache, dir) = fresh_cache("quarantine");
    let reference = baseline(&cache, 2);
    let faults = FaultPlan::new().truncate_load("mcf", 64, 1).build();
    let faulted_cache = cache.clone().with_faults(faults);
    let mut engine = Engine::new(tiny_params());
    let cells = register(&mut engine, 2);
    let stats = engine.run(&faulted_cache);

    let report = stats.failure_report();
    assert!(
        report.is_empty(),
        "quarantine + retry must converge: {:?}",
        report.failures()
    );
    // The payload and its index sidecar are quarantined as a pair, so
    // the report carries two evidence paths for the one repair.
    assert_eq!(report.quarantined().len(), 2, "{:?}", report.quarantined());
    assert_eq!(
        stats.max_replays_per_trace(),
        2,
        "quarantine + retry re-simulates the damaged trace once"
    );
    assert_eq!(stats.telemetry().cache().quarantines, 1);
    for evidence in report.quarantined() {
        assert!(
            evidence.to_string_lossy().ends_with(".corrupt"),
            "{evidence:?}"
        );
        assert!(evidence.exists(), "quarantined evidence file must persist");
    }
    assert!(
        report
            .quarantined()
            .iter()
            .any(|p| p.to_string_lossy().ends_with(".tpcpidx.corrupt")),
        "index sidecar evidence missing: {:?}",
        report.quarantined()
    );
    for ((kind, lane, cell), (_, _, want)) in cells.iter().zip(&reference) {
        assert_eq!(&cell.take(), want, "{kind:?} lane {lane}");
    }

    // The repaired entry is valid: a fresh fault-free load hits cleanly.
    let healed = cache
        .try_load_bytes_or_simulate(MCF, &tiny_params())
        .unwrap();
    assert!(healed.quarantined.is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A byte-flipped index sidecar (payload intact): the cache quarantines
/// the pair, re-simulates once, and the sweep converges — zero failures,
/// two evidence files, results bit-identical to the fault-free run. The
/// next sweep hits the healed pair cleanly.
#[test]
fn corrupt_sidecar_quarantine_converges_after_one_retry() {
    let (cache, dir) = fresh_cache("sidecar");
    let reference = baseline(&cache, 2);

    // Flip one byte in the middle of mcf's on-disk index sidecar. The
    // index's self-checksum makes any flip a CorruptIndex at load time.
    let sidecar = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| {
            p.extension().is_some_and(|e| e == "tpcpidx")
                && p.file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with("mcf"))
        })
        .expect("warm cache has mcf's index sidecar");
    let mut bytes = std::fs::read(&sidecar).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&sidecar, &bytes).unwrap();

    let mut engine = Engine::new(tiny_params());
    let cells = register(&mut engine, 2);
    let stats = engine.run(&cache);

    let report = stats.failure_report();
    assert!(
        report.is_empty(),
        "sidecar quarantine + retry must converge: {:?}",
        report.failures()
    );
    assert_eq!(report.quarantined().len(), 2, "{:?}", report.quarantined());
    assert!(report
        .quarantined()
        .iter()
        .any(|p| p.to_string_lossy().ends_with(".tpcpidx.corrupt")));
    assert_eq!(stats.max_replays_per_trace(), 2, "one re-simulation");
    assert_eq!(stats.telemetry().cache().quarantines, 1);
    for ((kind, lane, cell), (_, _, want)) in cells.iter().zip(&reference) {
        assert_eq!(&cell.take(), want, "{kind:?} lane {lane}");
    }

    // Healed: the rewritten pair hits with no further quarantine.
    let healed = cache
        .try_load_bytes_or_simulate(MCF, &tiny_params())
        .unwrap();
    assert!(healed.hit && healed.quarantined.is_none() && healed.quarantined_index.is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corruption that survives the one re-simulation retry is a hard,
/// structured error on that group — bounded, not an infinite retry loop —
/// while other groups complete.
#[test]
fn persistent_corruption_is_a_bounded_hard_error() {
    let (cache, dir) = fresh_cache("persistent");
    let reference = baseline(&cache, 2);
    let faults = FaultPlan::new().truncate_load("mcf", 64, 2).build();
    let faulted_cache = cache.clone().with_faults(faults);
    let mut engine = Engine::new(tiny_params());
    let cells = register(&mut engine, 2);
    let stats = engine.run(&faulted_cache);

    let report = stats.failure_report();
    assert_eq!(report.failures().len(), 1, "{:?}", report.failures());
    match &report.failures()[0] {
        EngineError::Cache {
            group,
            error: CacheError::CorruptAfterRetry { trace, .. },
        } => {
            assert!(group.starts_with("mcf-"), "{group}");
            assert_eq!(trace, "mcf");
        }
        other => panic!("expected CorruptAfterRetry, got {other}"),
    }
    // Telemetry degrades gracefully: the failed group still reports the
    // time spent in the (doomed) cache load, flagged as partial.
    let (_, failed) = stats
        .telemetry()
        .groups()
        .iter()
        .find(|(key, _)| key.starts_with("mcf-"))
        .expect("failed group must still appear in telemetry");
    assert!(
        failed.partial,
        "failed group timings must be flagged partial"
    );
    assert!(failed.stages.cache_load_ns > 0, "cache-load time is banked");
    for ((kind, lane, cell), (_, _, want)) in cells.iter().zip(&reference) {
        if *kind == MCF {
            assert!(matches!(
                cell.try_take().expect_err("mcf group must fail"),
                EngineError::Cache { .. }
            ));
        } else {
            assert_eq!(&cell.take(), want, "{kind:?} lane {lane}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A failed cache-file read degrades to a miss: the trace is re-simulated
/// and the sweep completes with no failures and no quarantine.
#[test]
fn failed_cache_read_degrades_to_resimulation() {
    let (cache, dir) = fresh_cache("fail-read");
    let reference = baseline(&cache, 2);
    let faults = FaultPlan::new().fail_read("mcf", 1).build();
    let faulted_cache = cache.clone().with_faults(faults);
    let mut engine = Engine::new(tiny_params());
    let cells = register(&mut engine, 2);
    let stats = engine.run(&faulted_cache);

    let report = stats.failure_report();
    assert!(report.is_empty(), "{:?}", report.failures());
    assert!(report.quarantined().is_empty());
    for ((kind, lane, cell), (_, _, want)) in cells.iter().zip(&reference) {
        assert_eq!(&cell.take(), want, "{kind:?} lane {lane}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A decode error *past the cache's validation* (injected into the bytes
/// handed to the replay) fails that whole group with a structured decode
/// cause; other groups are untouched.
#[test]
fn midreplay_decode_error_fails_only_that_group() {
    let (cache, dir) = fresh_cache("midreplay");
    let reference = baseline(&cache, 2);
    let faults = FaultPlan::new().truncate_replay("mcf", 64, 1).build();
    let mut engine = Engine::new(tiny_params()).with_faults(faults);
    let cells = register(&mut engine, 2);
    let stats = engine.run(&cache);

    let report = stats.failure_report();
    assert_eq!(report.failures().len(), 1, "{:?}", report.failures());
    match &report.failures()[0] {
        EngineError::Sweep(SweepError::Group { group, cause }) => {
            assert!(group.starts_with("mcf-"), "{group}");
            assert!(
                matches!(cause, FailureCause::Decode(_)),
                "mid-replay truncation must surface as a decode error, got {cause:?}"
            );
        }
        other => panic!("expected a group failure, got {other}"),
    }
    // The aborted replay reports partial timings: the cache load landed
    // and the healthy gzip/g group is complete alongside it.
    let telemetry = stats.telemetry();
    let (_, failed) = telemetry
        .groups()
        .iter()
        .find(|(key, _)| key.starts_with("mcf-"))
        .expect("failed group must still appear in telemetry");
    assert!(failed.partial);
    assert!(failed.stages.cache_load_ns > 0);
    let (_, healthy) = telemetry
        .groups()
        .iter()
        .find(|(key, _)| key.starts_with("gzip/g-"))
        .expect("healthy group telemetry");
    assert!(!healthy.partial);
    for ((kind, lane, cell), (_, _, want)) in cells.iter().zip(&reference) {
        if *kind == MCF {
            assert!(cell.try_take().is_err(), "partial results must not leak");
        } else {
            assert_eq!(&cell.take(), want, "{kind:?} lane {lane}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance scenario: one injected lane panic *and* one injected
/// mid-stream cache corruption in the same sweep. The sweep completes,
/// the report itemizes exactly the injected faults, and every unaffected
/// lane is bit-identical to the fault-free run.
#[test]
fn combined_lane_panic_and_corruption_in_one_sweep() {
    let (cache, dir) = fresh_cache("combined");
    let reference = baseline(&cache, 2);
    let faults = FaultPlan::new()
        .truncate_load("mcf", 100, 1)
        .panic_lane("gzip/g", 0, 2)
        .build();
    let faulted_cache = cache.clone().with_faults(faults.clone());
    let mut engine = Engine::new(tiny_params()).with_faults(faults);
    let cells = register(&mut engine, 2);
    let stats = engine.run(&faulted_cache);

    let report = stats.failure_report();
    assert_eq!(report.failures().len(), 1, "{:?}", report.failures());
    assert!(matches!(
        &report.failures()[0],
        EngineError::Sweep(SweepError::Lane(f)) if f.group.starts_with("gzip/g-")
    ));
    assert_eq!(
        report.quarantined().len(),
        2,
        "mcf payload and index sidecar were quarantined as a pair"
    );
    assert_eq!(stats.traces_replayed(), 2, "both groups replayed");
    assert_eq!(
        stats.max_replays_per_trace(),
        2,
        "the quarantined mcf entry costs one extra replay; gzip/g stays at 1"
    );

    for ((kind, lane, cell), (_, _, want)) in cells.iter().zip(&reference) {
        if *kind == GZIP && *lane == 0 {
            assert!(cell.try_take().is_err());
        } else {
            assert_eq!(&cell.take(), want, "{kind:?} lane {lane} not bit-identical");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Lane panics under the sharded (broadcast) front-end: 24 lanes over one
/// trace with 8 workers shard across threads; a panic on shard thread N
/// must not poison the snapshot channels or the other shards.
#[test]
fn sharded_lane_panic_keeps_survivors_bit_identical() {
    let (cache, dir) = fresh_cache("sharded");
    let n = 24;
    let reference: Vec<ClassifiedRun> = {
        let mut engine = Engine::new(tiny_params()).with_workers(8);
        let cells: Vec<_> = configs(n)
            .into_iter()
            .map(|c| engine.classified(MCF, c))
            .collect();
        let stats = engine.run(&cache);
        assert!(stats.failure_report().is_empty());
        assert!(stats.lane_sharded_groups() >= 1, "24 lanes must shard");
        cells.into_iter().map(|c| c.take()).collect()
    };

    let faults = FaultPlan::new().panic_lane("mcf", 13, 5).build();
    let mut engine = Engine::new(tiny_params())
        .with_workers(8)
        .with_faults(faults);
    let cells: Vec<_> = configs(n)
        .into_iter()
        .map(|c| engine.classified(MCF, c))
        .collect();
    let stats = engine.run(&cache);

    assert_eq!(stats.failure_report().failures().len(), 1);
    assert!(stats.lane_sharded_groups() >= 1);
    for (i, (cell, want)) in cells.iter().zip(&reference).enumerate() {
        if i == 13 {
            assert!(cell.try_take().is_err());
        } else {
            assert_eq!(&cell.take(), want, "sharded lane {i} must survive");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A panic in a lane running a non-default feature extractor is a
/// [`SweepError::Lane`], not a sweep abort: the injected panic fires
/// inside `end_interval_shared` — the same per-lane unwind boundary any
/// extractor's `finalize_into` panic crosses — and the sibling lanes on
/// the other two back-ends stay bit-identical to a fault-free run.
#[test]
fn extractor_lane_panic_is_contained_per_lane() {
    let (cache, dir) = fresh_cache("extractor-panic");
    let extractor_configs = || {
        tpcp_core::ExtractorKind::ALL.map(|kind| {
            ClassifierConfig::builder()
                .accumulators(16)
                .extractor(kind)
                .build()
        })
    };
    let reference: Vec<ClassifiedRun> = {
        let mut engine = Engine::new(tiny_params());
        let cells: Vec<_> = extractor_configs()
            .into_iter()
            .map(|c| engine.classified(MCF, c))
            .collect();
        let stats = engine.run(&cache);
        assert!(stats.failure_report().is_empty(), "baseline must be clean");
        cells.into_iter().map(|c| c.take()).collect()
    };

    // Lane 1 is the working-set lane (ExtractorKind::ALL order).
    let faults = FaultPlan::new().panic_lane("mcf", 1, 2).build();
    let mut engine = Engine::new(tiny_params()).with_faults(faults);
    let cells: Vec<_> = extractor_configs()
        .into_iter()
        .map(|c| engine.classified(MCF, c))
        .collect();
    let stats = engine.run(&cache);

    let report = stats.failure_report();
    assert_eq!(report.failures().len(), 1, "{:?}", report.failures());
    match &report.failures()[0] {
        EngineError::Sweep(SweepError::Lane(f)) => {
            assert!(f.group.starts_with("mcf-"), "{}", f.group);
            assert!(
                f.lane.contains("WorkingSet"),
                "failed lane label must name its extractor: {}",
                f.lane
            );
        }
        other => panic!("expected a lane failure, got {other}"),
    }
    assert_eq!(stats.max_replays_per_trace(), 1, "no sweep abort, no retry");
    for (i, (cell, want)) in cells.iter().zip(&reference).enumerate() {
        if i == 1 {
            assert!(cell.try_take().is_err(), "injected lane must fail");
        } else {
            assert_eq!(&cell.take(), want, "extractor lane {i} must survive");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Seed-randomized chaos: across several seeds, each generated plan's
/// sweep terminates (no hang, no poisoned-mutex unwind), and every cell
/// resolves to either a bit-identical value or a typed error.
#[test]
fn randomized_seeded_chaos_terminates_and_stays_deterministic() {
    let (cache, dir) = fresh_cache("randomized");
    let reference = baseline(&cache, 2);
    for seed in 0..6u64 {
        let faults = FaultPlan::randomized(seed, &["mcf", "gzip/g"], 2).build();
        let faulted_cache = cache.clone().with_faults(faults.clone());
        let mut engine = Engine::new(tiny_params()).with_faults(faults);
        let cells = register(&mut engine, 2);
        let stats = engine.run(&faulted_cache);

        // At most one fault was planned per group.
        assert!(
            stats.failure_report().failures().len() <= 2,
            "seed {seed}: {:?}",
            stats.failure_report().failures()
        );
        for ((kind, lane, cell), (_, _, want)) in cells.iter().zip(&reference) {
            if let Ok(run) = cell.try_take() {
                assert_eq!(&run, want, "seed {seed}: {kind:?} lane {lane}");
            }
        }
        // Randomized truncations use a single trigger, so any damaged
        // entry was quarantined and healed for the next seed's run.
    }
    let _ = std::fs::remove_dir_all(&dir);
}
