//! Regression tests for the experiment engine: the single-replay sweep
//! must produce exactly the results of the old serial per-config path,
//! replay every trace at most once, and be deterministic regardless of
//! worker scheduling.

use tpcp_core::ClassifierConfig;
use tpcp_experiments::figures;
use tpcp_experiments::suite::test_cache;
use tpcp_experiments::{run_classifier, Engine, EngineError, SuiteParams, SweepError, Table};
use tpcp_workloads::BenchmarkKind;

fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Two benchmarks, two configs: the engine's classification lanes must
/// match the serial `run_classifier` reference path exactly, including a
/// table rendered from each.
#[test]
fn engine_matches_serial_reference() {
    let cache = test_cache();
    let params = SuiteParams::quick();
    let benches = [BenchmarkKind::GzipGraphic, BenchmarkKind::Mcf];
    let configs = [
        ClassifierConfig::hpca2005(),
        ClassifierConfig::builder().best_match(false).build(),
    ];

    let mut engine = Engine::new(params);
    let cells: Vec<Vec<_>> = benches
        .iter()
        .map(|&kind| {
            configs
                .iter()
                .map(|&config| engine.classified(kind, config))
                .collect()
        })
        .collect();
    let stats = engine.run(&cache);
    assert_eq!(stats.traces_replayed(), benches.len());
    assert_eq!(stats.max_replays_per_trace(), 1);

    let mut engine_table = Table::new(
        "engine",
        vec!["bench".into(), "cov a".into(), "cov b".into()],
    );
    let mut serial_table = Table::new(
        "engine",
        vec!["bench".into(), "cov a".into(), "cov b".into()],
    );
    for (&kind, row_cells) in benches.iter().zip(&cells) {
        let trace = cache.load_or_simulate(kind, &params);
        let mut engine_row = vec![kind.label().to_owned()];
        let mut serial_row = vec![kind.label().to_owned()];
        for (&config, cell) in configs.iter().zip(row_cells) {
            let from_engine = cell.take();
            let from_serial = run_classifier(&trace, config);
            assert_eq!(from_engine, from_serial, "{} {config:?}", kind.label());
            engine_row.push(pct(from_engine.cov.weighted_cov()));
            serial_row.push(pct(from_serial.cov.weighted_cov()));
        }
        engine_table.row(engine_row);
        serial_table.row(serial_row);
    }
    assert_eq!(engine_table.render(), serial_table.render());
}

/// Several figures sharing one engine: every benchmark trace is replayed
/// exactly once for the whole batch, and each figure's tables are
/// identical to the ones it produces on a private engine.
#[test]
fn shared_engine_replays_each_trace_once() {
    let cache = test_cache();
    let params = SuiteParams::quick();

    let mut engine = Engine::new(params);
    let fig2 = figures::fig2::register(&mut engine);
    let fig9 = figures::fig9::register(&mut engine);
    let metric = figures::metric_pred::register(&mut engine);
    let stats = engine.run(&cache);

    assert_eq!(stats.traces_replayed(), 11);
    assert_eq!(stats.max_replays_per_trace(), 1);
    assert!(stats.replay_counts().values().all(|&n| n == 1));

    let render = |tables: Vec<Table>| -> Vec<String> { tables.iter().map(Table::render).collect() };
    let batch = [render(fig2()), render(fig9()), render(metric())];
    let alone = [
        render(figures::fig2::run(&cache, &params)),
        render(figures::fig9::run(&cache, &params)),
        render(figures::metric_pred::run(&cache, &params)),
    ];
    assert_eq!(batch, alone);
}

/// Streaming replay (the engine's path: encoded bytes through a
/// `StreamingDecoder`) and eager replay (materialized `RecordedTrace`)
/// produce identical `ClassifiedRun`s — the zero-copy decode is
/// observationally equivalent to full materialization.
#[test]
fn streaming_and_eager_replay_classify_identically() {
    use tpcp_trace::{decode_trace, drive, IntervalSink, StreamingDecoder};

    let cache = test_cache();
    let params = SuiteParams::quick();
    for kind in [BenchmarkKind::Mcf, BenchmarkKind::GzipGraphic] {
        let bytes = cache.load_bytes_or_simulate(kind, &params);
        let config = ClassifierConfig::hpca2005();

        // Eager: materialize, then classify the replay.
        let trace = decode_trace(bytes.clone()).unwrap();
        let eager = run_classifier(&trace, config);

        // Streaming: classify straight off the encoded buffer. The engine
        // registers a classifier lane over the same byte stream.
        let mut engine = Engine::new(params);
        let cell = engine.classified(kind, config);
        engine.run(&cache);
        let streamed = cell.take();

        assert_eq!(streamed, eager, "{}", kind.label());

        // And the raw interval stream itself is identical: a counting sink
        // driven from the decoder sees the same events and summaries.
        #[derive(Default, PartialEq, Debug)]
        struct Tally {
            events: u64,
            insns: u64,
            intervals: u64,
            cycles: u64,
        }
        impl IntervalSink for Tally {
            fn observe(&mut self, ev: &tpcp_trace::BranchEvent) {
                self.events += 1;
                self.insns += u64::from(ev.insns);
            }
            fn end_interval(&mut self, summary: &tpcp_trace::IntervalSummary) {
                self.intervals += 1;
                self.cycles += summary.cycles;
            }
        }
        let mut from_stream = Tally::default();
        let mut decoder = StreamingDecoder::new(&bytes).unwrap();
        drive(&mut decoder, &mut [&mut from_stream]);
        let mut from_eager = Tally::default();
        drive(&mut trace.replay(), &mut [&mut from_eager]);
        assert_eq!(from_stream, from_eager, "{}", kind.label());
    }
}

/// Two identical engine runs produce identical output: results are keyed
/// by registration, not by worker scheduling.
#[test]
fn engine_output_is_deterministic() {
    let cache = test_cache();
    let params = SuiteParams::quick();
    let run_once = || {
        let mut engine = Engine::new(params);
        let pending = figures::fig4::register(&mut engine);
        engine.run(&cache);
        pending().iter().map(Table::render).collect::<Vec<String>>()
    };
    assert_eq!(run_once(), run_once());
}

/// A spread of configurations mixing every supported accumulator count,
/// so one group carries three shared accumulation front-ends.
fn mixed_count_configs() -> Vec<ClassifierConfig> {
    (0..24)
        .map(|i| {
            ClassifierConfig::builder()
                .accumulators([16, 32, 64][i % 3])
                .table_entries(Some(16 + i))
                .best_match(i % 2 == 0)
                .build()
        })
        .collect()
}

/// The shared accumulation front-end plus lane sharding must reproduce
/// the serial per-lane classifier bit for bit: 24 lanes mixing 16/32/64
/// accumulators over one trace, swept with 8 workers so the single group
/// shards its lanes across threads.
#[test]
fn shared_front_end_and_sharding_match_serial_reference() {
    let cache = test_cache();
    let params = SuiteParams::quick();
    let kind = BenchmarkKind::Mcf;
    let configs = mixed_count_configs();

    let mut engine = Engine::new(params).with_workers(8);
    let cells: Vec<_> = configs
        .iter()
        .map(|&config| engine.classified(kind, config))
        .collect();
    let stats = engine.run(&cache);
    assert_eq!(stats.max_replays_per_trace(), 1);
    assert!(
        stats.lane_sharded_groups() >= 1,
        "8 workers over 1 group of 24 lanes must shard"
    );

    let trace = cache.load_or_simulate(kind, &params);
    for (config, cell) in configs.iter().zip(&cells) {
        let serial = run_classifier(&trace, *config);
        assert_eq!(cell.take(), serial, "{config:?}");
    }
}

/// The worker count changes scheduling, never results: the same
/// registrations under 1, 2, and 8 workers produce identical runs.
#[test]
fn worker_count_does_not_change_results() {
    let cache = test_cache();
    let params = SuiteParams::quick();
    let configs = mixed_count_configs();
    let run_with = |workers: usize| {
        let mut engine = Engine::new(params).with_workers(workers);
        let cells: Vec<_> = [BenchmarkKind::Mcf, BenchmarkKind::GzipGraphic]
            .into_iter()
            .flat_map(|kind| {
                configs
                    .iter()
                    .map(move |&config| (kind, config))
                    .collect::<Vec<_>>()
            })
            .map(|(kind, config)| engine.classified(kind, config))
            .collect();
        let stats = engine.run(&cache);
        assert_eq!(stats.max_replays_per_trace(), 1, "workers={workers}");
        cells.into_iter().map(|c| c.take()).collect::<Vec<_>>()
    };
    let single = run_with(1);
    assert_eq!(single, run_with(2));
    assert_eq!(single, run_with(8));
}

/// A healthy sweep reports no failures and no quarantines.
#[test]
fn healthy_run_has_empty_failure_report() {
    let cache = test_cache();
    let mut engine = Engine::new(SuiteParams::quick());
    let cell = engine.classified(BenchmarkKind::Mcf, ClassifierConfig::hpca2005());
    let stats = engine.run(&cache);
    assert!(stats.failure_report().is_empty());
    assert!(stats.failure_report().failures().is_empty());
    assert!(stats.failure_report().quarantined().is_empty());
    let run = cell.try_take().expect("healthy lane resolves Ok");
    assert!(!run.ids.is_empty());
}

/// A probe whose observer panics mid-stream kills only its own lane: the
/// sibling lane on the same trace and the other benchmark still match the
/// serial reference bit for bit, and the sweep reports exactly one
/// structured lane failure instead of unwinding.
#[test]
fn panicking_probe_fails_only_its_lane() {
    use tpcp_core::{PhaseId, PhaseObserver};
    use tpcp_trace::IntervalSummary;

    struct Grenade {
        seen: u64,
    }
    impl PhaseObserver for Grenade {
        fn observe_phase(&mut self, _id: PhaseId, _summary: &IntervalSummary) {
            self.seen += 1;
            assert!(self.seen < 4, "injected probe bug");
        }
    }

    let cache = test_cache();
    let params = SuiteParams::quick();
    let good_config = ClassifierConfig::hpca2005();
    let bad_config = ClassifierConfig::builder().best_match(false).build();

    let mut engine = Engine::new(params);
    let sibling = engine.classified(BenchmarkKind::Mcf, good_config);
    let other_bench = engine.classified(BenchmarkKind::GzipGraphic, good_config);
    let doomed_run = engine.classified(BenchmarkKind::Mcf, bad_config);
    let doomed_probe = engine.probe(
        BenchmarkKind::Mcf,
        bad_config,
        Grenade { seen: 0 },
        |g, _| g.seen,
    );
    let stats = engine.run(&cache);

    let failures = stats.failure_report().failures();
    assert_eq!(failures.len(), 1, "{failures:?}");
    match &failures[0] {
        EngineError::Sweep(SweepError::Lane(f)) => {
            assert!(f.group.starts_with("mcf-"), "{}", f.group);
            assert_eq!(f.lane, format!("{bad_config:?}"), "failure names the lane");
        }
        other => panic!("expected a lane failure, got {other}"),
    }
    // Both cells of the dead lane resolve to that error...
    assert!(matches!(
        doomed_run.try_take(),
        Err(EngineError::Sweep(SweepError::Lane(_)))
    ));
    assert!(doomed_probe.try_take().is_err());
    // ...while the survivors match the serial reference exactly.
    let trace = cache.load_or_simulate(BenchmarkKind::Mcf, &params);
    assert_eq!(sibling.take(), run_classifier(&trace, good_config));
    let trace = cache.load_or_simulate(BenchmarkKind::GzipGraphic, &params);
    assert_eq!(other_bench.take(), run_classifier(&trace, good_config));
}

/// A raw interval sink that panics mid-stream fails its whole group (raw
/// sinks run inside the shared replay, so the group's lanes saw a
/// truncated stream), but other benchmarks' groups are untouched.
#[test]
fn panicking_raw_sink_fails_only_its_group() {
    use tpcp_trace::{BranchEvent, IntervalSink, IntervalSummary};

    #[derive(Default)]
    struct Bomb {
        events: u64,
    }
    impl IntervalSink for Bomb {
        fn observe(&mut self, _ev: &BranchEvent) {
            self.events += 1;
            assert!(self.events < 1000, "injected sink bug");
        }
        fn end_interval(&mut self, _summary: &IntervalSummary) {}
    }

    let cache = test_cache();
    let params = SuiteParams::quick();
    let config = ClassifierConfig::hpca2005();
    let mut engine = Engine::new(params);
    let doomed_classified = engine.classified(BenchmarkKind::Mcf, config);
    let doomed_raw = engine.interval_sink(BenchmarkKind::Mcf, Bomb::default(), |b| b.events);
    let unaffected = engine.classified(BenchmarkKind::GzipGraphic, config);
    let stats = engine.run(&cache);

    let failures = stats.failure_report().failures();
    assert_eq!(failures.len(), 1, "{failures:?}");
    assert!(matches!(
        &failures[0],
        EngineError::Sweep(SweepError::Group { group, .. }) if group.starts_with("mcf-")
    ));
    assert!(doomed_raw.try_take().is_err());
    assert!(matches!(
        doomed_classified.try_take(),
        Err(EngineError::Sweep(SweepError::Group { .. }))
    ));
    let trace = cache.load_or_simulate(BenchmarkKind::GzipGraphic, &params);
    assert_eq!(unaffected.take(), run_classifier(&trace, config));
}

/// A probe whose *reduction* panics (after the replay finished cleanly)
/// still resolves every cell: the sweep converts the finish-stage panic
/// into a structured group failure rather than hanging or unwinding.
#[test]
fn panicking_reduction_is_a_structured_group_failure() {
    let cache = test_cache();
    let config = ClassifierConfig::hpca2005();
    let mut engine = Engine::new(SuiteParams::quick());
    let doomed = engine.probe(BenchmarkKind::Mcf, config, (), |(), _| -> u64 {
        panic!("injected reduction bug")
    });
    let unaffected = engine.classified(BenchmarkKind::GzipGraphic, config);
    let stats = engine.run(&cache);

    assert_eq!(stats.failure_report().failures().len(), 1);
    assert!(matches!(
        doomed.try_take(),
        Err(EngineError::Sweep(SweepError::Group { .. }))
    ));
    assert!(unaffected.try_take().is_ok());
}

/// Telemetry collection never feeds back into classification: the same
/// registrations with collection on and off produce bit-identical
/// `ClassifiedRun`s, and only the snapshot differs (populated vs empty).
#[test]
fn telemetry_on_off_results_bit_identical() {
    let cache = test_cache();
    let params = SuiteParams::quick();
    let configs = mixed_count_configs();
    let benches = [BenchmarkKind::Mcf, BenchmarkKind::GzipGraphic];
    let run_with = |telemetry: bool| {
        let mut engine = Engine::new(params)
            .with_workers(8)
            .with_telemetry(telemetry);
        let cells: Vec<_> = benches
            .into_iter()
            .flat_map(|kind| configs.iter().map(move |&c| (kind, c)).collect::<Vec<_>>())
            .map(|(kind, config)| engine.classified(kind, config))
            .collect();
        let stats = engine.run(&cache);
        let runs: Vec<_> = cells.into_iter().map(|c| c.take()).collect();
        (runs, stats)
    };

    let (with, stats_on) = run_with(true);
    let (without, stats_off) = run_with(false);
    assert_eq!(with, without, "telemetry changed engine results");

    let on = stats_on.telemetry();
    assert!(on.enabled());
    assert_eq!(on.groups().len(), benches.len());
    assert_eq!(on.total_intervals(), stats_on.total_intervals());
    assert_eq!(on.sharded_groups(), stats_on.lane_sharded_groups());
    assert_eq!(on.cache().hits + on.cache().misses, benches.len() as u64);
    for (key, group) in on.groups() {
        assert!(!group.partial, "{key} reported partial on a healthy run");
        assert_eq!(group.lanes.len(), configs.len(), "{key}");
        assert!(group.stages.decode_accumulate_ns > 0, "{key}");
        assert!(group.stages.classify_ns > 0, "{key}");
        assert!(group.lanes.iter().all(|l| l.intervals == group.intervals));
    }

    let off = stats_off.telemetry();
    assert!(!off.enabled());
    assert!(off.groups().is_empty());
    assert_eq!(off.wall_ns(), 0);
}

/// Cache counters see through the cache: a sweep against an empty cache
/// directory records all misses, the next one all hits — and the
/// exported JSON carries the per-stage timings and shard stats.
#[test]
fn telemetry_counts_cache_hits_misses_and_exports_json() {
    let dir = std::env::temp_dir().join(format!("tpcp-telemetry-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = tpcp_experiments::TraceCache::new(&dir);
    let params = SuiteParams::quick();
    let configs = mixed_count_configs();
    let run_once = || {
        let mut engine = Engine::new(params).with_workers(8);
        for &config in &configs {
            engine.classified(BenchmarkKind::Mcf, config);
        }
        engine.run(&cache)
    };

    let cold = run_once();
    assert_eq!(cold.telemetry().cache().misses, 1);
    assert_eq!(cold.telemetry().cache().hits, 0);
    assert_eq!(cold.telemetry().cache().quarantines, 0);

    let warm = run_once();
    assert_eq!(warm.telemetry().cache().misses, 0);
    assert_eq!(warm.telemetry().cache().hits, 1);
    assert!(warm.telemetry().stages().cache_load_ns > 0);

    let json = warm.telemetry().to_json();
    assert!(json.contains("\"schema\": \"tpcp-telemetry-v1\""));
    assert!(json.contains("\"cache\": { \"hits\": 1, \"misses\": 0, \"quarantines\": 0 }"));
    assert!(json.contains("\"decode_accumulate_ns\""));
    assert!(json.contains("\"shard_send_wait_ns\""));
    assert!(json.contains("\"sharded_groups\""));
    assert!(json.contains("\"intervals_per_sec\""));
    // Lane objects use "label", never "name" — the bench report's lane
    // scanner depends on "name" appearing only in its own lane objects.
    assert!(!json.contains("\"name\""));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A fully-covering plan — both the `ReplayPlan::full()` sentinel and an
/// explicit `[(0, n)]` range — is bit-identical to not setting a plan at
/// all, and the explicit range exercises the seek-driven path.
#[test]
fn full_plan_is_bit_identical_to_streaming() {
    use tpcp_trace::ReplayPlan;

    let cache = test_cache();
    let params = SuiteParams::quick();
    let kind = BenchmarkKind::Mcf;
    let config = ClassifierConfig::hpca2005();

    let run_with = |plan: Option<ReplayPlan>| {
        let mut engine = Engine::new(params);
        let cell = engine.classified(kind, config);
        if let Some(plan) = plan {
            engine.with_plan(kind, plan);
        }
        let stats = engine.run(&cache);
        assert!(stats.failure_report().is_empty());
        (cell.take(), stats.total_intervals())
    };

    let (unplanned, n) = run_with(None);
    let (sentinel, _) = run_with(Some(ReplayPlan::full()));
    assert_eq!(unplanned, sentinel, "ReplayPlan::full() changed results");
    let (explicit, explicit_n) = run_with(Some(ReplayPlan::from_ranges([(0, n)])));
    assert_eq!(
        unplanned, explicit,
        "explicit [(0, n)] plan changed results"
    );
    assert_eq!(
        n, explicit_n,
        "explicit full coverage decoded every interval"
    );
}

/// A sampled plan delivers exactly the planned intervals — each one
/// bit-identical (summary and events) to the same interval of a full
/// replay — and the per-lane telemetry reports what was skipped.
#[test]
fn sampled_plan_matches_manually_filtered_replay() {
    use tpcp_trace::{BranchEvent, IntervalSink, IntervalSummary, ReplayPlan, StreamingDecoder};

    #[derive(Default, PartialEq, Debug)]
    struct Record {
        intervals: Vec<(u64, u64, u64)>, // (index, instructions, cycles)
        events: Vec<(u64, u32)>,         // (pc, insns)
    }
    impl IntervalSink for Record {
        fn observe(&mut self, ev: &BranchEvent) {
            self.events.push((ev.pc, ev.insns));
        }
        fn end_interval(&mut self, s: &IntervalSummary) {
            self.intervals.push((s.index, s.instructions, s.cycles));
        }
    }

    let cache = test_cache();
    let params = SuiteParams::quick();
    let kind = BenchmarkKind::GzipGraphic;
    let bytes = cache.load_bytes_or_simulate(kind, &params);
    let n = StreamingDecoder::new(&bytes).unwrap().n_intervals();
    assert!(n >= 8, "need enough intervals to sample: {n}");
    // A gappy plan: one early range, two singletons, one tail range.
    let plan = ReplayPlan::from_ranges([(1, 3), (4, 5), (n / 2, n / 2 + 1), (n - 2, n)]);
    let planned: std::collections::BTreeSet<u64> = plan
        .ranges()
        .unwrap()
        .iter()
        .flat_map(|&(s, e)| s..e)
        .collect();

    // Reference: full streaming replay, manually filtered to the plan.
    let mut want = Record::default();
    {
        let mut full = Record::default();
        let mut decoder = StreamingDecoder::new(&bytes).unwrap();
        let mut cursor = 0usize;
        while let Some(summary) =
            tpcp_trace::IntervalSource::next_interval(&mut decoder, &mut |ev| {
                full.events.push((ev.pc, ev.insns));
            })
        {
            let keep = planned.contains(&summary.index);
            if keep {
                want.events.extend_from_slice(&full.events[cursor..]);
                want.intervals
                    .push((summary.index, summary.instructions, summary.cycles));
            }
            cursor = full.events.len();
        }
        assert!(decoder.error().is_none());
    }

    // Engine: a raw sink plus a classifier lane under the sampled plan.
    let mut engine = Engine::new(params);
    let got = engine.interval_sink(kind, Record::default(), |r| r);
    let lane = engine.classified(kind, ClassifierConfig::hpca2005());
    engine.with_plan(kind, plan.clone());
    let stats = engine.run(&cache);
    assert!(
        stats.failure_report().is_empty(),
        "{:?}",
        stats.failure_report()
    );
    assert_eq!(got.take(), want, "sampled stream != filtered full stream");
    assert!(!lane.take().ids.is_empty());
    assert_eq!(stats.total_intervals(), planned.len() as u64);

    // Telemetry: the lane carries the plan's skip totals.
    let (_, group) = stats.telemetry().groups().iter().next().unwrap();
    assert_eq!(group.intervals, planned.len() as u64);
    let lane_tm = &group.lanes[0];
    assert_eq!(lane_tm.intervals, planned.len() as u64);
    assert_eq!(lane_tm.intervals_skipped, n - planned.len() as u64);
    assert!(lane_tm.bytes_skipped > 0, "gaps must skip payload bytes");
    // Normalized ranges are disjoint and non-adjacent, so every range is
    // entered by a seek (the first starts past interval 0 here).
    assert_eq!(lane_tm.seek_count, plan.ranges().unwrap().len() as u64);
    let json = stats.telemetry().to_json();
    assert!(json.contains("\"intervals_skipped\""), "{json}");
    assert!(json.contains("\"seek_count\""), "{json}");
}

/// A plan referencing intervals past the end of the trace fails its
/// group loudly — a structured `FailureCause::Plan`, not truncation.
#[test]
fn out_of_range_plan_is_a_structured_group_failure() {
    use tpcp_experiments::FailureCause;
    use tpcp_trace::ReplayPlan;

    let cache = test_cache();
    let mut engine = Engine::new(SuiteParams::quick());
    let doomed = engine.classified(BenchmarkKind::Mcf, ClassifierConfig::hpca2005());
    let unaffected = engine.classified(BenchmarkKind::GzipGraphic, ClassifierConfig::hpca2005());
    engine.with_plan(BenchmarkKind::Mcf, ReplayPlan::from_ranges([(0, u64::MAX)]));
    let stats = engine.run(&cache);

    let failures = stats.failure_report().failures();
    assert_eq!(failures.len(), 1, "{failures:?}");
    assert!(matches!(
        &failures[0],
        EngineError::Sweep(SweepError::Group {
            cause: FailureCause::Plan(_),
            ..
        })
    ));
    assert!(doomed.try_take().is_err());
    assert!(unaffected.try_take().is_ok());
}

/// A cancellation probe that is already true when the sweep starts fails
/// every group with `FailureCause::Cancelled` — the cooperative-shutdown
/// path binaries wire to SIGINT/SIGTERM — without replaying anything.
#[test]
fn pre_cancelled_sweep_fails_all_groups_without_replaying() {
    use tpcp_experiments::FailureCause;

    let cache = test_cache();
    let mut engine = Engine::new(SuiteParams::quick())
        .with_workers(1)
        .with_cancel(|| true);
    let a = engine.classified(BenchmarkKind::Mcf, ClassifierConfig::hpca2005());
    let b = engine.classified(BenchmarkKind::GzipGraphic, ClassifierConfig::hpca2005());
    let stats = engine.run(&cache);

    assert_eq!(
        stats.traces_replayed(),
        0,
        "no group replays once cancelled"
    );
    let failures = stats.failure_report().failures();
    assert_eq!(failures.len(), 2, "{failures:?}");
    for failure in failures {
        assert!(matches!(
            failure,
            EngineError::Sweep(SweepError::Group {
                cause: FailureCause::Cancelled,
                ..
            })
        ));
    }
    for cell in [a, b] {
        let err = cell
            .try_take()
            .expect_err("cancelled cells resolve to errors");
        assert!(err.to_string().contains("cancelled before replay"), "{err}");
    }
}

/// Cancellation is cooperative and per-group: a probe that flips after
/// the first claim lets the in-flight group finish bit-identically and
/// only cancels the unclaimed remainder.
#[test]
fn mid_sweep_cancel_finishes_claimed_group_and_cancels_the_rest() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use tpcp_experiments::FailureCause;

    let cache = test_cache();
    let params = SuiteParams::quick();
    let claims = Arc::new(AtomicUsize::new(0));
    let probe = Arc::clone(&claims);
    // The probe runs once per claimed group: first poll false (group one
    // replays), every later poll true (the rest cancel).
    let mut engine = Engine::new(params)
        .with_workers(1)
        .with_cancel(move || probe.fetch_add(1, Ordering::SeqCst) >= 1);
    let first = engine.classified(BenchmarkKind::Mcf, ClassifierConfig::hpca2005());
    let second = engine.classified(BenchmarkKind::GzipGraphic, ClassifierConfig::hpca2005());
    let stats = engine.run(&cache);

    assert_eq!(stats.traces_replayed(), 1);
    let completed = first.take();
    let trace = cache.load_or_simulate(BenchmarkKind::Mcf, &params);
    assert_eq!(
        completed,
        run_classifier(&trace, ClassifierConfig::hpca2005()),
        "the claimed group's results are complete, not truncated"
    );
    let failures = stats.failure_report().failures();
    assert_eq!(failures.len(), 1, "{failures:?}");
    assert!(matches!(
        &failures[0],
        EngineError::Sweep(SweepError::Group {
            cause: FailureCause::Cancelled,
            ..
        })
    ));
    assert!(second.try_take().is_err());
}

mod randomized {
    use super::*;
    use proptest::prelude::*;

    fn arb_config() -> impl Strategy<Value = ClassifierConfig> {
        (0usize..3, 1usize..40, any::<bool>(), any::<bool>()).prop_map(
            |(acc_idx, entries, best_match, unbounded)| {
                ClassifierConfig::builder()
                    .accumulators([16, 32, 64][acc_idx])
                    .table_entries((!unbounded).then_some(entries))
                    .best_match(best_match)
                    .build()
            },
        )
    }

    proptest! {
        /// Randomized lane mixes (counts, table capacities, match
        /// policies) swept through the shared front-end match the serial
        /// reference classifier on every lane.
        #[test]
        fn randomized_configs_match_serial_reference(
            configs in prop::collection::vec(arb_config(), 1..6),
            workers in 1usize..9,
        ) {
            let cache = test_cache();
            let params = SuiteParams::quick();
            let kind = BenchmarkKind::GzipGraphic;

            let mut engine = Engine::new(params).with_workers(workers);
            let cells: Vec<_> = configs
                .iter()
                .map(|&config| engine.classified(kind, config))
                .collect();
            let stats = engine.run(&cache);
            prop_assert!(stats.max_replays_per_trace() <= 1);

            let trace = cache.load_or_simulate(kind, &params);
            for (config, cell) in configs.iter().zip(&cells) {
                let serial = run_classifier(&trace, *config);
                prop_assert_eq!(cell.take(), serial);
            }
        }
    }
}
