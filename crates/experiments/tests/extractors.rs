//! Equivalence tests for the pluggable feature-extractor refactor.
//!
//! The refactor's contract has two halves:
//!
//! 1. **Bit-identity for the default path.** The BBV extractor *is* the
//!    pre-refactor `AccumulatorTable`; every route to a phase-ID stream —
//!    the owned classifier, the legacy `end_interval_from(&acc, ..)`
//!    call shape, and the engine's shared-accumulation sweep — must
//!    reproduce the exact IDs the seed produced, on every workload model.
//! 2. **Shape-keyed sharing for the new back-ends.** Lanes that differ in
//!    extractor kind must *not* share a front-end even when they agree on
//!    dimension count, and each must match the serial single-classifier
//!    reference for its kind, all within one replay per trace.

use tpcp_core::{AccumulatorTable, ClassifierConfig, ExtractorKind, PhaseClassifier, PhaseId};
use tpcp_experiments::suite::test_cache;
use tpcp_experiments::{run_classifier, Engine, SuiteParams};
use tpcp_trace::IntervalSource;
use tpcp_workloads::BenchmarkKind;

fn config_for(kind: ExtractorKind) -> ClassifierConfig {
    ClassifierConfig::builder()
        .accumulators(16)
        .table_entries(Some(32))
        .extractor(kind)
        .build()
}

/// The legacy shared-accumulation call shape: an external
/// [`AccumulatorTable`] driven through `end_interval_from`, reset by the
/// caller each interval — exactly what pre-trait call sites did.
fn classify_via_external_accumulator(
    trace: &tpcp_trace::RecordedTrace,
    config: ClassifierConfig,
) -> Vec<PhaseId> {
    let mut acc = AccumulatorTable::new(config.accumulators);
    let mut classifier = PhaseClassifier::new(config);
    let mut ids = Vec::new();
    let mut replay = trace.replay();
    while let Some(summary) = replay.next_interval(&mut |ev| acc.observe(ev)) {
        ids.push(classifier.end_interval_from(&acc, summary.cpi()));
        acc.reset();
    }
    ids
}

/// On all 11 workload models, the BBV extractor behind the trait produces
/// the same phase-ID stream through the owned path, the legacy external
/// `&AccumulatorTable` path, and the engine's shared sweep.
#[test]
fn bbv_trait_path_reproduces_legacy_ids_on_all_models() {
    let cache = test_cache();
    let params = SuiteParams::quick();
    let config = config_for(ExtractorKind::Bbv);

    let mut engine = Engine::new(params);
    let cells: Vec<_> = BenchmarkKind::ALL
        .iter()
        .map(|&kind| (kind, engine.classified(kind, config)))
        .collect();
    let stats = engine.run(&cache);
    assert!(stats.failure_report().is_empty());
    assert_eq!(stats.max_replays_per_trace(), 1);

    for (kind, cell) in cells {
        let trace = cache.load_or_simulate(kind, &params);
        let owned = run_classifier(&trace, config);
        let external = classify_via_external_accumulator(&trace, config);
        let engine_run = cell.take();
        assert_eq!(
            owned.ids,
            external,
            "{}: owned vs external accumulator",
            kind.label()
        );
        assert_eq!(
            owned,
            engine_run,
            "{}: owned vs engine shared sweep",
            kind.label()
        );
    }
}

/// All three extractor kinds at the *same* dimension count ride one
/// replay per trace, each matching its serial reference — proving the
/// sweep keys front-ends by `(kind, dims)`, not by dims alone (a
/// dims-only key would feed working-set lanes BBV counters).
#[test]
fn cross_extractor_lanes_match_serial_reference_in_one_replay() {
    let cache = test_cache();
    let params = SuiteParams::quick();
    let models = [
        BenchmarkKind::Mcf,
        BenchmarkKind::GzipGraphic,
        BenchmarkKind::Gcc166,
    ];

    let mut engine = Engine::new(params);
    let cells: Vec<_> = models
        .iter()
        .flat_map(|&kind| {
            ExtractorKind::ALL
                .iter()
                .map(move |&ext| (kind, ext, config_for(ext)))
        })
        .map(|(kind, ext, config)| (kind, ext, config, engine.classified(kind, config)))
        .collect();
    let stats = engine.run(&cache);
    assert!(stats.failure_report().is_empty());
    assert_eq!(
        stats.max_replays_per_trace(),
        1,
        "three extractor kinds must share one replay pass"
    );

    for (kind, ext, config, cell) in cells {
        let trace = cache.load_or_simulate(kind, &params);
        let reference = run_classifier(&trace, config);
        assert_eq!(
            reference,
            cell.take(),
            "{} with {ext} extractor",
            kind.label()
        );
    }
}

/// The back-ends genuinely differ: on at least one model the three
/// extractors disagree about the phase structure (otherwise the
/// comparison figure would be three copies of one column).
#[test]
fn extractor_kinds_produce_distinct_classifications() {
    let cache = test_cache();
    let params = SuiteParams::quick();
    let trace = cache.load_or_simulate(BenchmarkKind::Gcc166, &params);
    let runs: Vec<_> = ExtractorKind::ALL
        .iter()
        .map(|&ext| run_classifier(&trace, config_for(ext)))
        .collect();
    assert!(
        runs[0].ids != runs[1].ids || runs[0].ids != runs[2].ids,
        "extractors collapsed to identical phase-ID streams"
    );
}
