//! The sweep driver: replays each registered trace exactly once.
//!
//! [`Engine::run`] claims trace groups off a shared queue with a small
//! pool of crossbeam scoped worker threads (one per available core, at
//! most one per group). Each worker loads its group's *encoded* trace
//! bytes from the [`TraceCache`] and streams them through every lane with
//! one [`drive`] pass over a [`StreamingDecoder`] — the trace is never
//! materialized, so a worker's memory footprint is the encoded buffer
//! plus the lanes' own state regardless of trace length. Lanes are then
//! finalized, filling the [`Pending`](crate::engine::Pending) handles.
//! Output is deterministic under any scheduling because each handle has
//! exactly one writer.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use tpcp_trace::{drive, IntervalSink, StreamingDecoder};

use crate::engine::{Engine, TraceGroup};
use crate::suite::TraceCache;

/// What the sweep did: per-trace replay counts and interval totals.
///
/// The headline invariant — the reason the engine exists — is
/// [`max_replays_per_trace`](EngineStats::max_replays_per_trace)` <= 1`:
/// no matter how many figures and configurations were registered, no
/// trace is decoded or replayed twice.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    replays: BTreeMap<String, u64>,
    intervals: u64,
}

impl EngineStats {
    /// Number of distinct `(benchmark, params)` traces replayed.
    pub fn traces_replayed(&self) -> usize {
        self.replays.len()
    }

    /// The largest number of times any single trace was replayed
    /// (`1` for any engine run with registrations, `0` for an empty one).
    pub fn max_replays_per_trace(&self) -> u64 {
        self.replays.values().copied().max().unwrap_or(0)
    }

    /// Total intervals fanned out across all traces.
    pub fn total_intervals(&self) -> u64 {
        self.intervals
    }

    /// Per-trace replay counts, keyed by `<benchmark>-<fingerprint>`.
    pub fn replay_counts(&self) -> &BTreeMap<String, u64> {
        &self.replays
    }
}

impl Engine {
    /// Sweeps every registered trace once, filling all
    /// [`Pending`](crate::engine::Pending) handles.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (a classifier or probe bug).
    pub fn run(self, cache: &TraceCache) -> EngineStats {
        let groups: Vec<Mutex<Option<TraceGroup>>> = self
            .into_groups()
            .into_iter()
            .map(|g| Mutex::new(Some(g)))
            .collect();
        let next = AtomicUsize::new(0);
        let stats = Mutex::new(EngineStats::default());
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(groups.len())
            .max(1);
        crossbeam::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    let Some(slot) = groups.get(i) else { break };
                    let group = slot
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .take()
                        .expect("each group is claimed exactly once");
                    let key = format!("{}-{}", group.kind.label(), group.params.fingerprint());
                    let bytes = cache.load_bytes_or_simulate(group.kind, &group.params);
                    let intervals = replay_group(group, &bytes);
                    let mut s = stats
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    *s.replays.entry(key).or_insert(0) += 1;
                    s.intervals += intervals as u64;
                });
            }
        })
        .expect("sweep workers do not panic");
        stats
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Streams the encoded trace `bytes` once through every lane of `group`,
/// then finalizes the lanes. Returns the interval count.
fn replay_group(mut group: TraceGroup, bytes: &[u8]) -> usize {
    // The cache validated the buffer (and freshly encoded buffers are
    // well-formed by construction), so streaming cannot fail mid-replay.
    let mut replay = StreamingDecoder::new(bytes).expect("cache returned a validated trace buffer");
    let mut sinks: Vec<&mut dyn IntervalSink> =
        Vec::with_capacity(group.lanes.len() + group.raw.len());
    for lane in &mut group.lanes {
        sinks.push(lane);
    }
    for raw in &mut group.raw {
        sinks.push(raw.as_mut() as &mut dyn IntervalSink);
    }
    let intervals = drive(&mut replay, &mut sinks);
    drop(sinks);
    assert!(
        replay.error().is_none(),
        "validated trace buffer failed to stream: {:?}",
        replay.error()
    );
    for lane in group.lanes {
        lane.finish();
    }
    for raw in group.raw {
        raw.finish();
    }
    intervals
}
