//! The sweep driver: replays each registered trace exactly once, with a
//! two-level division of work.
//!
//! **Level 1 — groups.** [`Engine::run`] claims trace groups off a shared
//! queue with a pool of crossbeam scoped worker threads. Each claimer
//! loads its group's *encoded* trace bytes from the [`TraceCache`] and
//! streams them with one [`drive`] pass over a [`StreamingDecoder`] — the
//! trace is never materialized, so a worker's memory footprint is the
//! encoded buffer plus the lanes' own state regardless of trace length.
//!
//! **Level 2 — lanes.** Inside a group, classifier lanes do not each
//! re-run the per-branch feature extraction. A shared front-end keeps one
//! [`AnyExtractor`] per *distinct extractor shape* — the `(kind, dims)`
//! pair of feature back-end and signature dimensionality — among the
//! group's lanes and hands every lane the finished extractor snapshot at
//! each interval boundary ([`ClassifierLane::end_interval_shared`]),
//! turning O(lanes × events) hashing into O(distinct_shapes × events +
//! lanes × intervals). When the pool has spare workers beyond the group
//! count, wide groups additionally shard their lanes across those
//! workers: the replaying thread broadcasts an [`Arc`]'d per-interval
//! snapshot over bounded channels and each shard thread classifies its
//! own lanes. Raw (unclassified) sinks always stay inline with the
//! replay.
//!
//! Output is deterministic under any scheduling: every lane lives on
//! exactly one thread, snapshots arrive in interval order through its
//! channel, and each [`Pending`](crate::engine::Pending) handle has
//! exactly one writer. Sharding divides consumers of one replay, never
//! adds a replay: [`EngineStats::max_replays_per_trace`] stays `1` on a
//! healthy run and only reaches `2` when the cache had to quarantine a
//! corrupt entry and re-simulate the trace (the repair produces the
//! trace a second time).
//!
//! **Fault isolation.** A failure degrades the smallest unit that
//! contains it and never escapes the sweep (see DESIGN.md "Failure
//! model"). Each classifier lane's interval boundary runs under
//! `catch_unwind`: a panicking lane is dropped from its group, its
//! [`Pending`] cells resolve to [`SweepError::Lane`], and the sibling
//! lanes — which only ever *read* the shared extractor state — continue
//! bit-identically. Each group's replay runs under a second
//! `catch_unwind`: a raw-sink panic, probe-reduction panic, or
//! mid-stream decode error fails the whole group ([`SweepError::Group`])
//! but leaves every other group untouched. Cache entries found corrupt
//! are quarantined and re-simulated by the cache itself
//! ([`TraceCache::try_load_bytes_or_simulate`]); a cache error after the
//! bounded retry fails only that group. All failures are collected into
//! the [`FailureReport`] carried by [`EngineStats`].
//!
//! [`Pending`]: crate::engine::Pending

use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use tpcp_core::{AnyExtractor, ExtractorKind, FeatureExtractor};
use tpcp_trace::{
    drive, BranchEvent, CodecError, IntervalSink, IntervalSource, IntervalSummary, PlannedReplay,
    StreamingDecoder, TraceIndex,
};

use crate::engine::error::{
    lock_ignore_poison, panic_message, EngineError, FailureCause, FailureReport, LaneFailure,
    SweepError,
};
use crate::engine::sink::ClassifierLane;
use crate::engine::telemetry::{elapsed_ns, span_ns, GroupCollector, LaneSlot, TelemetrySnapshot};
use crate::engine::{Engine, TraceGroup};
use crate::suite::TraceCache;

/// A group only shards when each shard thread gets at least this many
/// lanes; below that the per-interval snapshot clone + channel hop costs
/// more than the classification it offloads.
const MIN_LANES_PER_SHARD: usize = 4;

/// In-flight snapshots per shard channel. Bounded so a slow shard applies
/// backpressure to the replay instead of queueing unbounded accumulator
/// clones.
const SNAPSHOT_CHANNEL_DEPTH: usize = 2;

/// What the sweep did: per-trace replay counts, interval totals, the
/// [`TelemetrySnapshot`] of where the time went, and the
/// [`FailureReport`] of everything that went wrong (or was repaired).
///
/// The headline invariant — the reason the engine exists — is
/// [`max_replays_per_trace`](EngineStats::max_replays_per_trace)` <= 1`
/// *on a healthy run*: no matter how many figures and configurations
/// were registered, no trace is decoded or replayed twice. The one
/// exception is cache self-repair — a corrupt entry is quarantined and
/// its trace re-simulated, which produces that trace a second time and
/// is counted as such.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    replays: BTreeMap<String, u64>,
    intervals: u64,
    sharded_groups: u64,
    report: FailureReport,
    telemetry: TelemetrySnapshot,
}

impl EngineStats {
    /// Number of distinct `(benchmark, params)` traces replayed.
    pub fn traces_replayed(&self) -> usize {
        self.replays.len()
    }

    /// The largest number of times any single trace was produced during
    /// the sweep: `1` for every trace on a healthy run, `2` for a trace
    /// whose corrupt cache entry was quarantined and re-simulated (the
    /// bounded repair produces the trace a second time — see
    /// [`TraceCache::try_load_bytes_or_simulate`]), `0` for an empty run.
    pub fn max_replays_per_trace(&self) -> u64 {
        self.replays.values().copied().max().unwrap_or(0)
    }

    /// Total intervals fanned out across all traces.
    pub fn total_intervals(&self) -> u64 {
        self.intervals
    }

    /// Number of groups whose classifier lanes were sharded across
    /// multiple worker threads (0 when the pool had no spare workers or
    /// no group was wide enough).
    pub fn lane_sharded_groups(&self) -> u64 {
        self.sharded_groups
    }

    /// Per-trace replay counts, keyed by `<benchmark>-<fingerprint>`.
    pub fn replay_counts(&self) -> &BTreeMap<String, u64> {
        &self.replays
    }

    /// Everything that failed (or was quarantined and repaired) during
    /// the sweep. Empty on a healthy run.
    pub fn failure_report(&self) -> &FailureReport {
        &self.report
    }

    /// Where the sweep's time went: per-stage timers, cache counters,
    /// and shard stats (empty when collection was disabled with
    /// [`Engine::with_telemetry`]).
    pub fn telemetry(&self) -> &TelemetrySnapshot {
        &self.telemetry
    }
}

/// Resolves the worker-thread count: an explicit [`Engine::with_workers`]
/// override wins, then a positive `TPCP_WORKERS` environment variable,
/// then one worker per available core. Overrides pin the pool size
/// exactly (no clamping to the group count) so perf runs are reproducible
/// and `workers = 1` really is single-threaded classification.
fn resolve_workers(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Some(n) = std::env::var("TPCP_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl Engine {
    /// Sweeps every registered trace once, filling or failing all
    /// [`Pending`](crate::engine::Pending) handles.
    ///
    /// The sweep is fault-isolated: a panicking lane, a panicking sink,
    /// a mid-stream decode error, or an unrepairable cache entry fails
    /// only the handles that depended on it — every other lane and group
    /// completes normally, and the damage is itemized in
    /// [`EngineStats::failure_report`].
    ///
    /// # Panics
    ///
    /// Panics only on an internal engine bug (a panic escaping the
    /// worker loop outside the isolated replay), never on lane, sink, or
    /// trace failures.
    pub fn run(self, cache: &TraceCache) -> EngineStats {
        let workers = resolve_workers(self.workers);
        let collect = self.telemetry;
        let run_start = collect.then(Instant::now);
        let cancel = self.cancel.clone();
        #[cfg(feature = "fault-inject")]
        let faults = self.faults.clone();
        #[allow(unused_mut)]
        let mut group_list = self.into_groups();
        #[cfg(feature = "fault-inject")]
        if let Some(faults) = &faults {
            for group in &mut group_list {
                for (i, lane) in group.lanes.iter_mut().enumerate() {
                    if let Some(at) = faults.lane_panic_at(group.kind.label(), i) {
                        lane.set_panic_at(at);
                    }
                }
            }
        }
        let groups: Vec<Mutex<Option<TraceGroup>>> = group_list
            .into_iter()
            .map(|g| Mutex::new(Some(g)))
            .collect();
        // One claimer per group at most; leftover workers become each
        // claimer's budget for sharding its group's lanes.
        let claimers = workers.min(groups.len()).max(1);
        let lane_budget = (workers / claimers).max(1);
        let next = AtomicUsize::new(0);
        let stats = Mutex::new(EngineStats::default());
        let lane_failures: Mutex<Vec<LaneFailure>> = Mutex::new(Vec::new());
        let scope_result = crossbeam::scope(|scope| {
            for _ in 0..claimers {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    let Some(slot) = groups.get(i) else { break };
                    // Invariant: `next` hands out each index once, so no
                    // two claimers ever see the same slot.
                    #[allow(clippy::expect_used)]
                    let group = lock_ignore_poison(slot)
                        .take()
                        .expect("each group is claimed exactly once");
                    let key = format!("{}-{}", group.kind.label(), group.params.fingerprint());
                    // Cooperative shutdown: a cancelled sweep stops
                    // *between* groups — never mid-replay — so everything
                    // already produced stays complete and flushable.
                    if cancel.as_ref().is_some_and(|probe| probe()) {
                        let err = EngineError::Sweep(SweepError::Group {
                            group: key,
                            cause: FailureCause::Cancelled,
                        });
                        for handle in group.failure_handles() {
                            handle(&err);
                        }
                        lock_ignore_poison(&stats).report.record_failure(err);
                        continue;
                    }
                    // The collector lives *outside* the replay's
                    // catch_unwind so a panicking group leaves its
                    // partial timings readable.
                    let collector = GroupCollector::new(collect, group.lanes.len());
                    let cache_mark = collector.mark();
                    let load = match cache.try_load_bytes_or_simulate(group.kind, &group.params) {
                        Ok(load) => load,
                        Err(error) => {
                            let cache_ns = elapsed_ns(cache_mark);
                            let err = EngineError::Cache {
                                group: key.clone(),
                                error,
                            };
                            for handle in group.failure_handles() {
                                handle(&err);
                            }
                            let mut s = lock_ignore_poison(&stats);
                            s.report.record_failure(err);
                            if collect {
                                s.telemetry.record_cache(false, false);
                                s.telemetry
                                    .record_group(key, collector.into_group(cache_ns, 0, true));
                            }
                            continue;
                        }
                    };
                    let cache_ns = elapsed_ns(cache_mark);
                    #[allow(unused_mut)]
                    let mut bytes = load.bytes;
                    #[cfg(feature = "fault-inject")]
                    if let Some(faults) = &faults {
                        if let Some(offset) = faults.replay_truncation(group.kind.label()) {
                            bytes = bytes.slice(..offset.min(bytes.len()));
                        }
                    }
                    // Harvest the failure hooks *before* the replay can
                    // consume the group by panicking.
                    let handles = group.failure_handles();
                    let ctx = ReplayCtx {
                        group: &key,
                        failures: &lane_failures,
                        collector: &collector,
                    };
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        replay_group(group, &bytes, &load.index, lane_budget, &ctx)
                    }));
                    let mut s = lock_ignore_poison(&stats);
                    let repaired = load.quarantined.is_some();
                    if collect {
                        s.telemetry.record_cache(load.hit, repaired);
                    }
                    if let Some(path) = load.quarantined {
                        s.report.record_quarantine(path);
                    }
                    // A corrupt entry's index sidecar is quarantined
                    // alongside it; both evidence paths go in the report.
                    if let Some(path) = load.quarantined_index {
                        s.report.record_quarantine(path);
                    }
                    // A quarantine repair re-simulated the trace: that is
                    // a second production of it, and the stat says so.
                    *s.replays.entry(key.clone()).or_insert(0) += if repaired { 2 } else { 1 };
                    let cause = match outcome {
                        Ok(Ok((intervals, shards))) => {
                            s.intervals += intervals as u64;
                            s.sharded_groups += u64::from(shards >= 2);
                            if collect {
                                s.telemetry.record_group(
                                    key,
                                    collector.into_group(cache_ns, shards as u64, false),
                                );
                            }
                            continue;
                        }
                        Ok(Err(cause)) => cause,
                        Err(payload) => FailureCause::Panic(panic_message(payload.as_ref())),
                    };
                    if collect {
                        s.telemetry
                            .record_group(key.clone(), collector.into_group(cache_ns, 0, true));
                    }
                    let err = EngineError::Sweep(SweepError::Group { group: key, cause });
                    for handle in &handles {
                        handle(&err);
                    }
                    s.report.record_failure(err);
                });
            }
        });
        if let Err(payload) = scope_result {
            // Only reachable through an engine bug in the claimer loop
            // itself; every lane/sink/replay panic is caught above.
            resume_unwind(payload);
        }
        let mut stats = stats
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let failures = lane_failures
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for failure in failures {
            stats
                .report
                .record_failure(EngineError::Sweep(SweepError::Lane(failure)));
        }
        stats.report.finalize();
        if collect {
            stats.telemetry.finalize(elapsed_ns(run_start));
        }
        stats
    }
}

/// Shared context for one group's replay: the group key, the sweep-wide
/// collector that lane failures are reported into, and the group's
/// telemetry collector.
struct ReplayCtx<'a> {
    group: &'a str,
    failures: &'a Mutex<Vec<LaneFailure>>,
    collector: &'a GroupCollector,
}

impl ReplayCtx<'_> {
    /// Buries a lane that panicked: resolves its cells to
    /// [`SweepError::Lane`] and records the failure. The sweep-wide lock
    /// is only ever taken here — the happy path never touches it.
    fn fail_lane(&self, lane: ClassifierLane, payload: &(dyn std::any::Any + Send)) {
        let failure = LaneFailure {
            group: self.group.to_owned(),
            lane: lane.label(),
            cause: FailureCause::Panic(panic_message(payload)),
        };
        lane.fail(&EngineError::Sweep(SweepError::Lane(failure.clone())));
        lock_ignore_poison(self.failures).push(failure);
    }
}

/// A classifier lane paired with the index of the shared extractor
/// (keyed by distinct extractor shape) it reads snapshots from, plus
/// its pre-sized telemetry slot — bumped inline at each boundary,
/// flushed into the group collector once when the lane retires.
struct KeyedLane {
    acc: usize,
    lane: ClassifierLane,
    slot: LaneSlot,
}

impl KeyedLane {
    /// Retires the lane into the group collector: flushes its telemetry
    /// slot and returns the lane for finalization or burial.
    fn retire(self, collector: &GroupCollector) -> ClassifierLane {
        collector.flush_lane(self.lane.label(), self.lane.extractor_label(), self.slot);
        self.lane
    }
}

/// Groups a trace group's classifier lanes by extractor shape — the
/// `(kind, dims)` pair: returns one extractor per distinct shape plus
/// each lane tagged with its extractor's index. Lanes that differ only
/// in classification parameters (thresholds, table size, bit selection)
/// share one per-branch extraction pass.
fn keyed_lanes(lanes: Vec<ClassifierLane>) -> (Vec<AnyExtractor>, Vec<KeyedLane>) {
    let mut shapes: Vec<(ExtractorKind, usize)> = Vec::new();
    let keyed = lanes
        .into_iter()
        .map(|lane| {
            let shape = lane.extractor_shape();
            let idx = shapes.iter().position(|&s| s == shape).unwrap_or_else(|| {
                shapes.push(shape);
                shapes.len() - 1
            });
            KeyedLane {
                acc: idx,
                lane,
                slot: LaneSlot::default(),
            }
        })
        .collect();
    (
        shapes
            .into_iter()
            .map(|(kind, dims)| kind.build(dims))
            .collect(),
        keyed,
    )
}

/// Runs one interval boundary over `lanes` with per-lane panic isolation:
/// a panicking lane is removed and buried, the survivors continue. Lanes
/// only *read* the shared extractors, so a mid-boundary panic cannot
/// corrupt any state a sibling observes — survivors stay bit-identical
/// to a fault-free run.
/// `start` is the boundary's telemetry mark; timestamps chain through the
/// loop (each lane's end mark is the next lane's start) so timing N lanes
/// costs N clock reads, not 2N. Returns the last mark taken, which the
/// caller can reuse as the next window's start.
fn end_interval_isolated(
    lanes: &mut Vec<KeyedLane>,
    accs: &[AnyExtractor],
    summary: &IntervalSummary,
    ctx: &ReplayCtx<'_>,
    start: Option<Instant>,
) -> Option<Instant> {
    let mut prev = start;
    let mut i = 0;
    while i < lanes.len() {
        let keyed = &mut lanes[i];
        let acc = &accs[keyed.acc];
        let lane = &mut keyed.lane;
        match catch_unwind(AssertUnwindSafe(|| lane.end_interval_shared(acc, summary))) {
            Ok(()) => {
                let end = ctx.collector.mark();
                keyed.slot.add(span_ns(prev, end));
                prev = end;
                i += 1;
            }
            Err(payload) => {
                // Cold path: re-mark so the buried lane's cost is not
                // billed to its successor.
                prev = ctx.collector.mark();
                let lane = lanes.swap_remove(i).retire(ctx.collector);
                ctx.fail_lane(lane, payload.as_ref());
            }
        }
    }
    prev
}

/// The inline shared-accumulation front-end: one extractor per distinct
/// shape, every lane classified on the replay thread at each boundary.
///
/// `window` is the telemetry mark of the previous boundary's end (or the
/// replay's start): the span up to the next boundary is the fused
/// decode + accumulate stage.
struct SharedFrontEnd<'a> {
    accs: Vec<AnyExtractor>,
    lanes: Vec<KeyedLane>,
    ctx: &'a ReplayCtx<'a>,
    window: Option<Instant>,
}

impl IntervalSink for SharedFrontEnd<'_> {
    fn observe(&mut self, ev: &BranchEvent) {
        for acc in &mut self.accs {
            acc.observe(*ev);
        }
    }

    fn end_interval(&mut self, summary: &IntervalSummary) {
        let boundary = self.ctx.collector.mark();
        self.ctx.collector.close_window(self.window, boundary);
        let end = end_interval_isolated(&mut self.lanes, &self.accs, summary, self.ctx, boundary);
        for acc in &mut self.accs {
            acc.reset();
        }
        // The last lane's end mark doubles as the next window's start;
        // the extractor reset is billed to decode + accumulate.
        self.window = end;
    }
}

/// One interval's finished extraction state, broadcast to shard
/// threads. `Arc`'d so a snapshot is cloned once per interval, not once
/// per shard.
struct Snapshot {
    accs: Vec<AnyExtractor>,
    summary: IntervalSummary,
}

/// The sharded front-end: accumulates inline, and at each boundary sends
/// the snapshot to every shard's bounded channel instead of classifying.
/// The send loop is timed separately — time spent blocked on a full
/// bounded channel is shard backpressure, not decode work.
struct BroadcastFrontEnd<'a> {
    accs: Vec<AnyExtractor>,
    senders: Vec<crossbeam::channel::Sender<Arc<Snapshot>>>,
    collector: &'a GroupCollector,
    window: Option<Instant>,
}

impl IntervalSink for BroadcastFrontEnd<'_> {
    fn observe(&mut self, ev: &BranchEvent) {
        for acc in &mut self.accs {
            acc.observe(*ev);
        }
    }

    fn end_interval(&mut self, summary: &IntervalSummary) {
        let boundary = self.collector.mark();
        self.collector.close_window(self.window, boundary);
        let snap = Arc::new(Snapshot {
            accs: self.accs.clone(),
            summary: *summary,
        });
        let wait = self.collector.mark();
        for tx in &self.senders {
            if tx.send(Arc::clone(&snap)).is_err() {
                // A shard thread died mid-replay (only possible through
                // an engine bug — lane panics are caught in the shard
                // loop). Panic here so the group-level catch_unwind
                // turns it into a group failure instead of a hang.
                panic!("lane shard channel closed mid-replay");
            }
        }
        let sent = self.collector.mark();
        self.collector.add_shard_wait(span_ns(wait, sent));
        for acc in &mut self.accs {
            acc.reset();
        }
        // Reuse the post-send mark as the next window's start.
        self.window = sent;
    }
}

/// One group's interval source: the plain streaming decoder for full
/// plans — the exact pre-plan path, so full replays stay bit-identical by
/// construction — or a seek-driven [`PlannedReplay`] for sampled plans.
/// Either way the lanes downstream see one gap-free interval stream.
enum GroupReplay<'a> {
    Full(StreamingDecoder<'a>),
    Planned(PlannedReplay<'a>),
}

impl GroupReplay<'_> {
    /// The decode error that ended the stream early, if any.
    fn error(&self) -> Option<CodecError> {
        match self {
            Self::Full(d) => d.error(),
            Self::Planned(p) => p.error(),
        }
    }
}

impl IntervalSource for GroupReplay<'_> {
    fn next_interval(&mut self, on_event: &mut dyn FnMut(BranchEvent)) -> Option<IntervalSummary> {
        match self {
            Self::Full(d) => d.next_interval(on_event),
            Self::Planned(p) => p.next_interval(on_event),
        }
    }
}

/// Splits `lanes` into `shards` contiguous chunks of near-equal size.
fn split_lanes(mut lanes: Vec<KeyedLane>, shards: usize) -> Vec<Vec<KeyedLane>> {
    let mut out = Vec::with_capacity(shards);
    let total = lanes.len();
    for s in 0..shards {
        // Distribute the remainder over the leading shards.
        let take = total / shards + usize::from(s < total % shards);
        let rest = lanes.split_off(take);
        out.push(lanes);
        lanes = rest;
    }
    out
}

/// Streams the encoded trace `bytes` once through every lane of `group`,
/// then finalizes the lanes. Returns the interval count and the number
/// of shard threads the group's classifier lanes were split across (`0`
/// when they ran inline), or the [`FailureCause`] that stopped the
/// stream. Runs under the caller's `catch_unwind`; panics escaping this
/// function become group failures.
fn replay_group(
    mut group: TraceGroup,
    bytes: &[u8],
    index: &TraceIndex,
    lane_budget: usize,
    ctx: &ReplayCtx<'_>,
) -> Result<(usize, usize), FailureCause> {
    // The cache validated the buffer, so streaming "cannot" fail — but a
    // validator/decoder disagreement should cost one group, not the run.
    let decoder = match StreamingDecoder::new(bytes) {
        Ok(decoder) => decoder,
        Err(e) => return Err(FailureCause::Decode(e)),
    };
    let mut replay = if group.plan.is_full() {
        GroupReplay::Full(decoder)
    } else {
        // A sampled plan seeks across its gaps via the cache's validated
        // index. Construction re-checks plan/index/payload agreement, so
        // a plan built for a different trace fails the group here,
        // loudly, instead of silently decoding the wrong intervals.
        match PlannedReplay::new(decoder, index, &group.plan) {
            Ok(planned) => {
                ctx.collector.set_skip(planned.skip_stats());
                GroupReplay::Planned(planned)
            }
            Err(e) => return Err(FailureCause::Plan(e)),
        }
    };
    let (accs, keyed) = keyed_lanes(std::mem::take(&mut group.lanes));
    let shards = lane_budget.min(keyed.len() / MIN_LANES_PER_SHARD);
    let sharded = shards >= 2;

    let intervals = if sharded {
        let shard_lanes = split_lanes(keyed, shards);
        let abort = AtomicBool::new(false);
        let scope_result = crossbeam::scope(|scope| {
            let mut front = BroadcastFrontEnd {
                accs,
                senders: Vec::with_capacity(shards),
                collector: ctx.collector,
                window: ctx.collector.mark(),
            };
            for mut lanes in shard_lanes {
                let (tx, rx) = crossbeam::channel::bounded::<Arc<Snapshot>>(SNAPSHOT_CHANNEL_DEPTH);
                front.senders.push(tx);
                let abort = &abort;
                scope.spawn(move |_| {
                    while let Ok(snap) = rx.recv() {
                        let start = ctx.collector.mark();
                        end_interval_isolated(&mut lanes, &snap.accs, &snap.summary, ctx, start);
                    }
                    // Channel closed: the replay is over; finalize here so
                    // probe reductions also run off the replay thread. On
                    // a mid-stream decode error the lanes hold partial
                    // state — leave their cells for the group failure, but
                    // still flush the classify time they banked.
                    if abort.load(Ordering::SeqCst) {
                        for keyed in lanes {
                            keyed.retire(ctx.collector);
                        }
                    } else {
                        let mark = ctx.collector.mark();
                        for keyed in lanes {
                            keyed.retire(ctx.collector).finish();
                        }
                        ctx.collector.add_finish(elapsed_ns(mark));
                    }
                });
            }
            let mut sinks: Vec<&mut dyn IntervalSink> = Vec::with_capacity(1 + group.raw.len());
            sinks.push(&mut front);
            for raw in &mut group.raw {
                sinks.push(raw.as_mut() as &mut dyn IntervalSink);
            }
            let intervals = drive(&mut replay, &mut sinks);
            if replay.error().is_some() {
                // Must be set before the channels close below, so shard
                // threads observe it when their `recv` loop ends.
                abort.store(true, Ordering::SeqCst);
            }
            drop(sinks);
            drop(front); // closes every shard channel; the scope joins
            intervals
        });
        match scope_result {
            Ok(intervals) => intervals,
            // A shard thread panicked outside the per-lane isolation
            // (probe-reduction bug); escalate to the group-level catch.
            Err(payload) => resume_unwind(payload),
        }
    } else {
        let mut front = SharedFrontEnd {
            accs,
            lanes: keyed,
            ctx,
            window: ctx.collector.mark(),
        };
        let mut sinks: Vec<&mut dyn IntervalSink> = Vec::with_capacity(1 + group.raw.len());
        sinks.push(&mut front);
        for raw in &mut group.raw {
            sinks.push(raw.as_mut() as &mut dyn IntervalSink);
        }
        let intervals = drive(&mut replay, &mut sinks);
        drop(sinks);
        if replay.error().is_none() {
            let mark = ctx.collector.mark();
            for keyed in front.lanes {
                keyed.retire(ctx.collector).finish();
            }
            ctx.collector.add_finish(elapsed_ns(mark));
        } else {
            // Decode failed mid-stream: the lanes' cells go to the group
            // failure, but their partial classify timings are kept.
            for keyed in front.lanes {
                keyed.retire(ctx.collector);
            }
        }
        intervals
    };

    if let Some(e) = replay.error() {
        return Err(FailureCause::Decode(e));
    }
    let mark = ctx.collector.mark();
    for raw in group.raw {
        raw.finish();
    }
    ctx.collector.add_finish(elapsed_ns(mark));
    Ok((intervals, if sharded { shards } else { 0 }))
}
