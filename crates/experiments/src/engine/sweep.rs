//! The sweep driver: replays each registered trace exactly once, with a
//! two-level division of work.
//!
//! **Level 1 — groups.** [`Engine::run`] claims trace groups off a shared
//! queue with a pool of crossbeam scoped worker threads. Each claimer
//! loads its group's *encoded* trace bytes from the [`TraceCache`] and
//! streams them with one [`drive`] pass over a [`StreamingDecoder`] — the
//! trace is never materialized, so a worker's memory footprint is the
//! encoded buffer plus the lanes' own state regardless of trace length.
//!
//! **Level 2 — lanes.** Inside a group, classifier lanes do not each
//! re-run the per-branch accumulator work. A shared front-end keeps one
//! [`AccumulatorTable`] per *distinct accumulator count* among the
//! group's lanes and hands every lane the finished counter snapshot at
//! each interval boundary ([`ClassifierLane::end_interval_shared`]),
//! turning O(lanes × events) hashing into O(distinct_counts × events +
//! lanes × intervals). When the pool has spare workers beyond the group
//! count, wide groups additionally shard their lanes across those
//! workers: the replaying thread broadcasts an [`Arc`]'d per-interval
//! snapshot over bounded channels and each shard thread classifies its
//! own lanes. Raw (unclassified) sinks always stay inline with the
//! replay.
//!
//! Output is deterministic under any scheduling: every lane lives on
//! exactly one thread, snapshots arrive in interval order through its
//! channel, and each [`Pending`](crate::engine::Pending) handle has
//! exactly one writer. The `max_replays_per_trace <= 1` invariant is
//! untouched — sharding divides consumers of one replay, never adds a
//! replay.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use tpcp_core::AccumulatorTable;
use tpcp_trace::{drive, BranchEvent, IntervalSink, IntervalSummary, StreamingDecoder};

use crate::engine::sink::ClassifierLane;
use crate::engine::{Engine, TraceGroup};
use crate::suite::TraceCache;

/// A group only shards when each shard thread gets at least this many
/// lanes; below that the per-interval snapshot clone + channel hop costs
/// more than the classification it offloads.
const MIN_LANES_PER_SHARD: usize = 4;

/// In-flight snapshots per shard channel. Bounded so a slow shard applies
/// backpressure to the replay instead of queueing unbounded accumulator
/// clones.
const SNAPSHOT_CHANNEL_DEPTH: usize = 2;

/// What the sweep did: per-trace replay counts and interval totals.
///
/// The headline invariant — the reason the engine exists — is
/// [`max_replays_per_trace`](EngineStats::max_replays_per_trace)` <= 1`:
/// no matter how many figures and configurations were registered, no
/// trace is decoded or replayed twice.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    replays: BTreeMap<String, u64>,
    intervals: u64,
    sharded_groups: u64,
}

impl EngineStats {
    /// Number of distinct `(benchmark, params)` traces replayed.
    pub fn traces_replayed(&self) -> usize {
        self.replays.len()
    }

    /// The largest number of times any single trace was replayed
    /// (`1` for any engine run with registrations, `0` for an empty one).
    pub fn max_replays_per_trace(&self) -> u64 {
        self.replays.values().copied().max().unwrap_or(0)
    }

    /// Total intervals fanned out across all traces.
    pub fn total_intervals(&self) -> u64 {
        self.intervals
    }

    /// Number of groups whose classifier lanes were sharded across
    /// multiple worker threads (0 when the pool had no spare workers or
    /// no group was wide enough).
    pub fn lane_sharded_groups(&self) -> u64 {
        self.sharded_groups
    }

    /// Per-trace replay counts, keyed by `<benchmark>-<fingerprint>`.
    pub fn replay_counts(&self) -> &BTreeMap<String, u64> {
        &self.replays
    }
}

/// Resolves the worker-thread count: an explicit [`Engine::with_workers`]
/// override wins, then a positive `TPCP_WORKERS` environment variable,
/// then one worker per available core. Overrides pin the pool size
/// exactly (no clamping to the group count) so perf runs are reproducible
/// and `workers = 1` really is single-threaded classification.
fn resolve_workers(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Some(n) = std::env::var("TPCP_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl Engine {
    /// Sweeps every registered trace once, filling all
    /// [`Pending`](crate::engine::Pending) handles.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (a classifier or probe bug).
    pub fn run(self, cache: &TraceCache) -> EngineStats {
        let workers = resolve_workers(self.workers);
        let groups: Vec<Mutex<Option<TraceGroup>>> = self
            .into_groups()
            .into_iter()
            .map(|g| Mutex::new(Some(g)))
            .collect();
        // One claimer per group at most; leftover workers become each
        // claimer's budget for sharding its group's lanes.
        let claimers = workers.min(groups.len()).max(1);
        let lane_budget = (workers / claimers).max(1);
        let next = AtomicUsize::new(0);
        let stats = Mutex::new(EngineStats::default());
        crossbeam::scope(|scope| {
            for _ in 0..claimers {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    let Some(slot) = groups.get(i) else { break };
                    let group = slot
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .take()
                        .expect("each group is claimed exactly once");
                    let key = format!("{}-{}", group.kind.label(), group.params.fingerprint());
                    let bytes = cache.load_bytes_or_simulate(group.kind, &group.params);
                    let (intervals, sharded) = replay_group(group, &bytes, lane_budget);
                    let mut s = stats
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    *s.replays.entry(key).or_insert(0) += 1;
                    s.intervals += intervals as u64;
                    s.sharded_groups += u64::from(sharded);
                });
            }
        })
        .expect("sweep workers do not panic");
        stats
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A classifier lane paired with the index of the shared accumulator
/// (keyed by distinct accumulator count) it reads snapshots from.
type KeyedLane = (usize, ClassifierLane);

/// Groups a trace group's classifier lanes by accumulator count: returns
/// one accumulator per distinct count plus each lane tagged with its
/// accumulator's index.
fn keyed_lanes(lanes: Vec<ClassifierLane>) -> (Vec<AccumulatorTable>, Vec<KeyedLane>) {
    let mut counts: Vec<usize> = Vec::new();
    let keyed = lanes
        .into_iter()
        .map(|lane| {
            let n = lane.accumulator_count();
            let idx = counts.iter().position(|&c| c == n).unwrap_or_else(|| {
                counts.push(n);
                counts.len() - 1
            });
            (idx, lane)
        })
        .collect();
    (
        counts.into_iter().map(AccumulatorTable::new).collect(),
        keyed,
    )
}

/// The inline shared-accumulation front-end: one accumulator per distinct
/// count, every lane classified on the replay thread at each boundary.
struct SharedFrontEnd {
    accs: Vec<AccumulatorTable>,
    lanes: Vec<KeyedLane>,
}

impl IntervalSink for SharedFrontEnd {
    fn observe(&mut self, ev: &BranchEvent) {
        for acc in &mut self.accs {
            acc.observe(*ev);
        }
    }

    fn end_interval(&mut self, summary: &IntervalSummary) {
        for (ai, lane) in &mut self.lanes {
            lane.end_interval_shared(&self.accs[*ai], summary);
        }
        for acc in &mut self.accs {
            acc.reset();
        }
    }
}

/// One interval's finished accumulation state, broadcast to shard
/// threads. `Arc`'d so a snapshot is cloned once per interval, not once
/// per shard.
struct Snapshot {
    accs: Vec<AccumulatorTable>,
    summary: IntervalSummary,
}

/// The sharded front-end: accumulates inline, and at each boundary sends
/// the snapshot to every shard's bounded channel instead of classifying.
struct BroadcastFrontEnd {
    accs: Vec<AccumulatorTable>,
    senders: Vec<crossbeam::channel::Sender<Arc<Snapshot>>>,
}

impl IntervalSink for BroadcastFrontEnd {
    fn observe(&mut self, ev: &BranchEvent) {
        for acc in &mut self.accs {
            acc.observe(*ev);
        }
    }

    fn end_interval(&mut self, summary: &IntervalSummary) {
        let snap = Arc::new(Snapshot {
            accs: self.accs.clone(),
            summary: *summary,
        });
        for tx in &self.senders {
            tx.send(Arc::clone(&snap))
                .expect("shard threads outlive the replay");
        }
        for acc in &mut self.accs {
            acc.reset();
        }
    }
}

/// Splits `lanes` into `shards` contiguous chunks of near-equal size.
fn split_lanes(mut lanes: Vec<KeyedLane>, shards: usize) -> Vec<Vec<KeyedLane>> {
    let mut out = Vec::with_capacity(shards);
    let total = lanes.len();
    for s in 0..shards {
        // Distribute the remainder over the leading shards.
        let take = total / shards + usize::from(s < total % shards);
        let rest = lanes.split_off(take);
        out.push(lanes);
        lanes = rest;
    }
    out
}

/// Streams the encoded trace `bytes` once through every lane of `group`,
/// then finalizes the lanes. Returns the interval count and whether the
/// group's classifier lanes were sharded across threads.
fn replay_group(mut group: TraceGroup, bytes: &[u8], lane_budget: usize) -> (usize, bool) {
    // The cache validated the buffer (and freshly encoded buffers are
    // well-formed by construction), so streaming cannot fail mid-replay.
    let mut replay = StreamingDecoder::new(bytes).expect("cache returned a validated trace buffer");
    let (accs, keyed) = keyed_lanes(std::mem::take(&mut group.lanes));
    let shards = lane_budget.min(keyed.len() / MIN_LANES_PER_SHARD);
    let sharded = shards >= 2;

    let intervals = if sharded {
        let shard_lanes = split_lanes(keyed, shards);
        crossbeam::scope(|scope| {
            let mut front = BroadcastFrontEnd {
                accs,
                senders: Vec::with_capacity(shards),
            };
            for mut lanes in shard_lanes {
                let (tx, rx) = crossbeam::channel::bounded::<Arc<Snapshot>>(SNAPSHOT_CHANNEL_DEPTH);
                front.senders.push(tx);
                scope.spawn(move |_| {
                    while let Ok(snap) = rx.recv() {
                        for (ai, lane) in &mut lanes {
                            lane.end_interval_shared(&snap.accs[*ai], &snap.summary);
                        }
                    }
                    // Channel closed: the replay is over; finalize here so
                    // probe reductions also run off the replay thread.
                    for (_, lane) in lanes {
                        lane.finish();
                    }
                });
            }
            let mut sinks: Vec<&mut dyn IntervalSink> = Vec::with_capacity(1 + group.raw.len());
            sinks.push(&mut front);
            for raw in &mut group.raw {
                sinks.push(raw.as_mut() as &mut dyn IntervalSink);
            }
            let intervals = drive(&mut replay, &mut sinks);
            drop(sinks);
            drop(front); // closes every shard channel; the scope joins
            intervals
        })
        .expect("lane shard threads do not panic")
    } else {
        let mut front = SharedFrontEnd { accs, lanes: keyed };
        let mut sinks: Vec<&mut dyn IntervalSink> = Vec::with_capacity(1 + group.raw.len());
        sinks.push(&mut front);
        for raw in &mut group.raw {
            sinks.push(raw.as_mut() as &mut dyn IntervalSink);
        }
        let intervals = drive(&mut replay, &mut sinks);
        drop(sinks);
        for (_, lane) in front.lanes {
            lane.finish();
        }
        intervals
    };

    assert!(
        replay.error().is_none(),
        "validated trace buffer failed to stream: {:?}",
        replay.error()
    );
    for raw in group.raw {
        raw.finish();
    }
    (intervals, sharded)
}
