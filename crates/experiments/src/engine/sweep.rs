//! The sweep driver: replays each registered trace exactly once, with a
//! two-level division of work.
//!
//! **Level 1 — groups.** [`Engine::run`] claims trace groups off a shared
//! queue with a pool of crossbeam scoped worker threads. Each claimer
//! loads its group's *encoded* trace bytes from the [`TraceCache`] and
//! streams them with one [`drive`] pass over a [`StreamingDecoder`] — the
//! trace is never materialized, so a worker's memory footprint is the
//! encoded buffer plus the lanes' own state regardless of trace length.
//!
//! **Level 2 — lanes.** Inside a group, classifier lanes do not each
//! re-run the per-branch accumulator work. A shared front-end keeps one
//! [`AccumulatorTable`] per *distinct accumulator count* among the
//! group's lanes and hands every lane the finished counter snapshot at
//! each interval boundary ([`ClassifierLane::end_interval_shared`]),
//! turning O(lanes × events) hashing into O(distinct_counts × events +
//! lanes × intervals). When the pool has spare workers beyond the group
//! count, wide groups additionally shard their lanes across those
//! workers: the replaying thread broadcasts an [`Arc`]'d per-interval
//! snapshot over bounded channels and each shard thread classifies its
//! own lanes. Raw (unclassified) sinks always stay inline with the
//! replay.
//!
//! Output is deterministic under any scheduling: every lane lives on
//! exactly one thread, snapshots arrive in interval order through its
//! channel, and each [`Pending`](crate::engine::Pending) handle has
//! exactly one writer. The `max_replays_per_trace <= 1` invariant is
//! untouched — sharding divides consumers of one replay, never adds a
//! replay.
//!
//! **Fault isolation.** A failure degrades the smallest unit that
//! contains it and never escapes the sweep (see DESIGN.md "Failure
//! model"). Each classifier lane's interval boundary runs under
//! `catch_unwind`: a panicking lane is dropped from its group, its
//! [`Pending`] cells resolve to [`SweepError::Lane`], and the sibling
//! lanes — which only ever *read* the shared accumulator — continue
//! bit-identically. Each group's replay runs under a second
//! `catch_unwind`: a raw-sink panic, probe-reduction panic, or
//! mid-stream decode error fails the whole group ([`SweepError::Group`])
//! but leaves every other group untouched. Cache entries found corrupt
//! are quarantined and re-simulated by the cache itself
//! ([`TraceCache::try_load_bytes_or_simulate`]); a cache error after the
//! bounded retry fails only that group. All failures are collected into
//! the [`FailureReport`] carried by [`EngineStats`].
//!
//! [`Pending`]: crate::engine::Pending

use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use tpcp_core::AccumulatorTable;
use tpcp_trace::{drive, BranchEvent, IntervalSink, IntervalSummary, StreamingDecoder};

use crate::engine::error::{
    lock_ignore_poison, panic_message, EngineError, FailureCause, FailureReport, LaneFailure,
    SweepError,
};
use crate::engine::sink::ClassifierLane;
use crate::engine::{Engine, TraceGroup};
use crate::suite::TraceCache;

/// A group only shards when each shard thread gets at least this many
/// lanes; below that the per-interval snapshot clone + channel hop costs
/// more than the classification it offloads.
const MIN_LANES_PER_SHARD: usize = 4;

/// In-flight snapshots per shard channel. Bounded so a slow shard applies
/// backpressure to the replay instead of queueing unbounded accumulator
/// clones.
const SNAPSHOT_CHANNEL_DEPTH: usize = 2;

/// What the sweep did: per-trace replay counts, interval totals, and the
/// [`FailureReport`] of everything that went wrong (or was repaired).
///
/// The headline invariant — the reason the engine exists — is
/// [`max_replays_per_trace`](EngineStats::max_replays_per_trace)` <= 1`:
/// no matter how many figures and configurations were registered, no
/// trace is decoded or replayed twice.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    replays: BTreeMap<String, u64>,
    intervals: u64,
    sharded_groups: u64,
    report: FailureReport,
}

impl EngineStats {
    /// Number of distinct `(benchmark, params)` traces replayed.
    pub fn traces_replayed(&self) -> usize {
        self.replays.len()
    }

    /// The largest number of times any single trace was replayed
    /// (`1` for any engine run with registrations, `0` for an empty one).
    pub fn max_replays_per_trace(&self) -> u64 {
        self.replays.values().copied().max().unwrap_or(0)
    }

    /// Total intervals fanned out across all traces.
    pub fn total_intervals(&self) -> u64 {
        self.intervals
    }

    /// Number of groups whose classifier lanes were sharded across
    /// multiple worker threads (0 when the pool had no spare workers or
    /// no group was wide enough).
    pub fn lane_sharded_groups(&self) -> u64 {
        self.sharded_groups
    }

    /// Per-trace replay counts, keyed by `<benchmark>-<fingerprint>`.
    pub fn replay_counts(&self) -> &BTreeMap<String, u64> {
        &self.replays
    }

    /// Everything that failed (or was quarantined and repaired) during
    /// the sweep. Empty on a healthy run.
    pub fn failure_report(&self) -> &FailureReport {
        &self.report
    }
}

/// Resolves the worker-thread count: an explicit [`Engine::with_workers`]
/// override wins, then a positive `TPCP_WORKERS` environment variable,
/// then one worker per available core. Overrides pin the pool size
/// exactly (no clamping to the group count) so perf runs are reproducible
/// and `workers = 1` really is single-threaded classification.
fn resolve_workers(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Some(n) = std::env::var("TPCP_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl Engine {
    /// Sweeps every registered trace once, filling or failing all
    /// [`Pending`](crate::engine::Pending) handles.
    ///
    /// The sweep is fault-isolated: a panicking lane, a panicking sink,
    /// a mid-stream decode error, or an unrepairable cache entry fails
    /// only the handles that depended on it — every other lane and group
    /// completes normally, and the damage is itemized in
    /// [`EngineStats::failure_report`].
    ///
    /// # Panics
    ///
    /// Panics only on an internal engine bug (a panic escaping the
    /// worker loop outside the isolated replay), never on lane, sink, or
    /// trace failures.
    pub fn run(self, cache: &TraceCache) -> EngineStats {
        let workers = resolve_workers(self.workers);
        #[cfg(feature = "fault-inject")]
        let faults = self.faults.clone();
        #[allow(unused_mut)]
        let mut group_list = self.into_groups();
        #[cfg(feature = "fault-inject")]
        if let Some(faults) = &faults {
            for group in &mut group_list {
                for (i, lane) in group.lanes.iter_mut().enumerate() {
                    if let Some(at) = faults.lane_panic_at(group.kind.label(), i) {
                        lane.set_panic_at(at);
                    }
                }
            }
        }
        let groups: Vec<Mutex<Option<TraceGroup>>> = group_list
            .into_iter()
            .map(|g| Mutex::new(Some(g)))
            .collect();
        // One claimer per group at most; leftover workers become each
        // claimer's budget for sharding its group's lanes.
        let claimers = workers.min(groups.len()).max(1);
        let lane_budget = (workers / claimers).max(1);
        let next = AtomicUsize::new(0);
        let stats = Mutex::new(EngineStats::default());
        let lane_failures: Mutex<Vec<LaneFailure>> = Mutex::new(Vec::new());
        let scope_result = crossbeam::scope(|scope| {
            for _ in 0..claimers {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    let Some(slot) = groups.get(i) else { break };
                    // Invariant: `next` hands out each index once, so no
                    // two claimers ever see the same slot.
                    #[allow(clippy::expect_used)]
                    let group = lock_ignore_poison(slot)
                        .take()
                        .expect("each group is claimed exactly once");
                    let key = format!("{}-{}", group.kind.label(), group.params.fingerprint());
                    let load = match cache.try_load_bytes_or_simulate(group.kind, &group.params) {
                        Ok(load) => load,
                        Err(error) => {
                            let err = EngineError::Cache { group: key, error };
                            for handle in group.failure_handles() {
                                handle(&err);
                            }
                            lock_ignore_poison(&stats).report.record_failure(err);
                            continue;
                        }
                    };
                    #[allow(unused_mut)]
                    let mut bytes = load.bytes;
                    #[cfg(feature = "fault-inject")]
                    if let Some(faults) = &faults {
                        if let Some(offset) = faults.replay_truncation(group.kind.label()) {
                            bytes = bytes.slice(..offset.min(bytes.len()));
                        }
                    }
                    // Harvest the failure hooks *before* the replay can
                    // consume the group by panicking.
                    let handles = group.failure_handles();
                    let ctx = ReplayCtx {
                        group: &key,
                        failures: &lane_failures,
                    };
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        replay_group(group, &bytes, lane_budget, &ctx)
                    }));
                    let mut s = lock_ignore_poison(&stats);
                    if let Some(path) = load.quarantined {
                        s.report.record_quarantine(path);
                    }
                    *s.replays.entry(key.clone()).or_insert(0) += 1;
                    let cause = match outcome {
                        Ok(Ok((intervals, sharded))) => {
                            s.intervals += intervals as u64;
                            s.sharded_groups += u64::from(sharded);
                            continue;
                        }
                        Ok(Err(cause)) => cause,
                        Err(payload) => FailureCause::Panic(panic_message(payload.as_ref())),
                    };
                    let err = EngineError::Sweep(SweepError::Group { group: key, cause });
                    for handle in &handles {
                        handle(&err);
                    }
                    s.report.record_failure(err);
                });
            }
        });
        if let Err(payload) = scope_result {
            // Only reachable through an engine bug in the claimer loop
            // itself; every lane/sink/replay panic is caught above.
            resume_unwind(payload);
        }
        let mut stats = stats
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let failures = lane_failures
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for failure in failures {
            stats
                .report
                .record_failure(EngineError::Sweep(SweepError::Lane(failure)));
        }
        stats.report.finalize();
        stats
    }
}

/// Shared context for one group's replay: the group key plus the
/// sweep-wide collector that lane failures are reported into.
struct ReplayCtx<'a> {
    group: &'a str,
    failures: &'a Mutex<Vec<LaneFailure>>,
}

impl ReplayCtx<'_> {
    /// Buries a lane that panicked: resolves its cells to
    /// [`SweepError::Lane`] and records the failure. The sweep-wide lock
    /// is only ever taken here — the happy path never touches it.
    fn fail_lane(&self, lane: ClassifierLane, payload: &(dyn std::any::Any + Send)) {
        let failure = LaneFailure {
            group: self.group.to_owned(),
            lane: lane.label(),
            cause: FailureCause::Panic(panic_message(payload)),
        };
        lane.fail(&EngineError::Sweep(SweepError::Lane(failure.clone())));
        lock_ignore_poison(self.failures).push(failure);
    }
}

/// A classifier lane paired with the index of the shared accumulator
/// (keyed by distinct accumulator count) it reads snapshots from.
type KeyedLane = (usize, ClassifierLane);

/// Groups a trace group's classifier lanes by accumulator count: returns
/// one accumulator per distinct count plus each lane tagged with its
/// accumulator's index.
fn keyed_lanes(lanes: Vec<ClassifierLane>) -> (Vec<AccumulatorTable>, Vec<KeyedLane>) {
    let mut counts: Vec<usize> = Vec::new();
    let keyed = lanes
        .into_iter()
        .map(|lane| {
            let n = lane.accumulator_count();
            let idx = counts.iter().position(|&c| c == n).unwrap_or_else(|| {
                counts.push(n);
                counts.len() - 1
            });
            (idx, lane)
        })
        .collect();
    (
        counts.into_iter().map(AccumulatorTable::new).collect(),
        keyed,
    )
}

/// Runs one interval boundary over `lanes` with per-lane panic isolation:
/// a panicking lane is removed and buried, the survivors continue. Lanes
/// only *read* the shared accumulators, so a mid-boundary panic cannot
/// corrupt any state a sibling observes — survivors stay bit-identical
/// to a fault-free run.
fn end_interval_isolated(
    lanes: &mut Vec<KeyedLane>,
    accs: &[AccumulatorTable],
    summary: &IntervalSummary,
    ctx: &ReplayCtx<'_>,
) {
    let mut i = 0;
    while i < lanes.len() {
        let (ai, lane) = &mut lanes[i];
        let acc = &accs[*ai];
        match catch_unwind(AssertUnwindSafe(|| lane.end_interval_shared(acc, summary))) {
            Ok(()) => i += 1,
            Err(payload) => {
                let (_, lane) = lanes.swap_remove(i);
                ctx.fail_lane(lane, payload.as_ref());
            }
        }
    }
}

/// The inline shared-accumulation front-end: one accumulator per distinct
/// count, every lane classified on the replay thread at each boundary.
struct SharedFrontEnd<'a> {
    accs: Vec<AccumulatorTable>,
    lanes: Vec<KeyedLane>,
    ctx: &'a ReplayCtx<'a>,
}

impl IntervalSink for SharedFrontEnd<'_> {
    fn observe(&mut self, ev: &BranchEvent) {
        for acc in &mut self.accs {
            acc.observe(*ev);
        }
    }

    fn end_interval(&mut self, summary: &IntervalSummary) {
        end_interval_isolated(&mut self.lanes, &self.accs, summary, self.ctx);
        for acc in &mut self.accs {
            acc.reset();
        }
    }
}

/// One interval's finished accumulation state, broadcast to shard
/// threads. `Arc`'d so a snapshot is cloned once per interval, not once
/// per shard.
struct Snapshot {
    accs: Vec<AccumulatorTable>,
    summary: IntervalSummary,
}

/// The sharded front-end: accumulates inline, and at each boundary sends
/// the snapshot to every shard's bounded channel instead of classifying.
struct BroadcastFrontEnd {
    accs: Vec<AccumulatorTable>,
    senders: Vec<crossbeam::channel::Sender<Arc<Snapshot>>>,
}

impl IntervalSink for BroadcastFrontEnd {
    fn observe(&mut self, ev: &BranchEvent) {
        for acc in &mut self.accs {
            acc.observe(*ev);
        }
    }

    fn end_interval(&mut self, summary: &IntervalSummary) {
        let snap = Arc::new(Snapshot {
            accs: self.accs.clone(),
            summary: *summary,
        });
        for tx in &self.senders {
            if tx.send(Arc::clone(&snap)).is_err() {
                // A shard thread died mid-replay (only possible through
                // an engine bug — lane panics are caught in the shard
                // loop). Panic here so the group-level catch_unwind
                // turns it into a group failure instead of a hang.
                panic!("lane shard channel closed mid-replay");
            }
        }
        for acc in &mut self.accs {
            acc.reset();
        }
    }
}

/// Splits `lanes` into `shards` contiguous chunks of near-equal size.
fn split_lanes(mut lanes: Vec<KeyedLane>, shards: usize) -> Vec<Vec<KeyedLane>> {
    let mut out = Vec::with_capacity(shards);
    let total = lanes.len();
    for s in 0..shards {
        // Distribute the remainder over the leading shards.
        let take = total / shards + usize::from(s < total % shards);
        let rest = lanes.split_off(take);
        out.push(lanes);
        lanes = rest;
    }
    out
}

/// Streams the encoded trace `bytes` once through every lane of `group`,
/// then finalizes the lanes. Returns the interval count and whether the
/// group's classifier lanes were sharded across threads, or the
/// [`FailureCause`] that stopped the stream. Runs under the caller's
/// `catch_unwind`; panics escaping this function become group failures.
fn replay_group(
    mut group: TraceGroup,
    bytes: &[u8],
    lane_budget: usize,
    ctx: &ReplayCtx<'_>,
) -> Result<(usize, bool), FailureCause> {
    // The cache validated the buffer, so streaming "cannot" fail — but a
    // validator/decoder disagreement should cost one group, not the run.
    let mut replay = match StreamingDecoder::new(bytes) {
        Ok(replay) => replay,
        Err(e) => return Err(FailureCause::Decode(e)),
    };
    let (accs, keyed) = keyed_lanes(std::mem::take(&mut group.lanes));
    let shards = lane_budget.min(keyed.len() / MIN_LANES_PER_SHARD);
    let sharded = shards >= 2;

    let intervals = if sharded {
        let shard_lanes = split_lanes(keyed, shards);
        let abort = AtomicBool::new(false);
        let scope_result = crossbeam::scope(|scope| {
            let mut front = BroadcastFrontEnd {
                accs,
                senders: Vec::with_capacity(shards),
            };
            for mut lanes in shard_lanes {
                let (tx, rx) = crossbeam::channel::bounded::<Arc<Snapshot>>(SNAPSHOT_CHANNEL_DEPTH);
                front.senders.push(tx);
                let abort = &abort;
                scope.spawn(move |_| {
                    while let Ok(snap) = rx.recv() {
                        end_interval_isolated(&mut lanes, &snap.accs, &snap.summary, ctx);
                    }
                    // Channel closed: the replay is over; finalize here so
                    // probe reductions also run off the replay thread. On
                    // a mid-stream decode error the lanes hold partial
                    // state — leave their cells for the group failure.
                    if !abort.load(Ordering::SeqCst) {
                        for (_, lane) in lanes {
                            lane.finish();
                        }
                    }
                });
            }
            let mut sinks: Vec<&mut dyn IntervalSink> = Vec::with_capacity(1 + group.raw.len());
            sinks.push(&mut front);
            for raw in &mut group.raw {
                sinks.push(raw.as_mut() as &mut dyn IntervalSink);
            }
            let intervals = drive(&mut replay, &mut sinks);
            if replay.error().is_some() {
                // Must be set before the channels close below, so shard
                // threads observe it when their `recv` loop ends.
                abort.store(true, Ordering::SeqCst);
            }
            drop(sinks);
            drop(front); // closes every shard channel; the scope joins
            intervals
        });
        match scope_result {
            Ok(intervals) => intervals,
            // A shard thread panicked outside the per-lane isolation
            // (probe-reduction bug); escalate to the group-level catch.
            Err(payload) => resume_unwind(payload),
        }
    } else {
        let mut front = SharedFrontEnd {
            accs,
            lanes: keyed,
            ctx,
        };
        let mut sinks: Vec<&mut dyn IntervalSink> = Vec::with_capacity(1 + group.raw.len());
        sinks.push(&mut front);
        for raw in &mut group.raw {
            sinks.push(raw.as_mut() as &mut dyn IntervalSink);
        }
        let intervals = drive(&mut replay, &mut sinks);
        drop(sinks);
        if replay.error().is_none() {
            for (_, lane) in front.lanes {
                lane.finish();
            }
        }
        intervals
    };

    if let Some(e) = replay.error() {
        return Err(FailureCause::Decode(e));
    }
    for raw in group.raw {
        raw.finish();
    }
    Ok((intervals, sharded))
}
