//! Lane and sink implementations the sweep fans intervals into.
//!
//! Two layers consume a trace's interval stream:
//!
//! - **Raw lanes** implement [`IntervalSink`] directly and see the
//!   unclassified event stream ([`BbvSink`], arbitrary user sinks).
//! - **Classifier lanes** wrap one [`PhaseClassifier`] configuration and
//!   forward each classified interval to attached
//!   [`PhaseObserver`](tpcp_core::PhaseObserver) probes — predictors,
//!   accumulators — so any number of measurements share one
//!   classification pass.

use tpcp_core::{
    AnyExtractor, ClassifierConfig, ExtractorKind, PhaseClassifier, PhaseId, PhaseObserver,
};
use tpcp_metrics::{CovAccumulator, RunAccumulator};
use tpcp_trace::{BbvBuilder, BbvTrace, BranchEvent, IntervalSink, IntervalSummary};

use crate::classify::ClassifiedRun;
use crate::engine::error::{EngineError, FailureHandle};
use crate::engine::Pending;

/// A type-erased consumer of one lane's classified interval stream.
pub(crate) trait PhaseSink: Send {
    /// Sees each interval's phase ID and summary, in execution order.
    fn observe_phase(&mut self, id: PhaseId, summary: &IntervalSummary);
    /// Called once after the trace ends, with the lane's final run.
    fn finish(self: Box<Self>, run: &ClassifiedRun);
    /// A hook that fails the sink's result cell if it is still unset.
    fn failure_handle(&self) -> FailureHandle;
}

/// A typed [`PhaseObserver`] plus a reduction that fills a [`Pending`]
/// cell once the lane finishes. Keeping the observer type un-erased until
/// `finish` means reductions read concrete predictor state without
/// downcasts.
pub(crate) struct Probe<T, R, F> {
    observer: T,
    reduce: F,
    cell: Pending<R>,
}

impl<T, R, F> Probe<T, R, F> {
    pub(crate) fn new(observer: T, reduce: F, cell: Pending<R>) -> Self {
        Self {
            observer,
            reduce,
            cell,
        }
    }
}

impl<T, R, F> PhaseSink for Probe<T, R, F>
where
    T: PhaseObserver + Send + 'static,
    R: Send + 'static,
    F: FnOnce(T, &ClassifiedRun) -> R + Send + 'static,
{
    fn observe_phase(&mut self, id: PhaseId, summary: &IntervalSummary) {
        self.observer.observe_phase(id, summary);
    }

    fn finish(self: Box<Self>, run: &ClassifiedRun) {
        let this = *self;
        this.cell.set((this.reduce)(this.observer, run));
    }

    fn failure_handle(&self) -> FailureHandle {
        self.cell.failure_handle()
    }
}

/// One classifier configuration's lane: classifies the interval stream,
/// accumulates the standard [`ClassifiedRun`] measurements, and fans each
/// classified interval to the attached probes.
pub(crate) struct ClassifierLane {
    config: ClassifierConfig,
    classifier: PhaseClassifier,
    ids: Vec<PhaseId>,
    cpis: Vec<f64>,
    cov: CovAccumulator,
    runs: RunAccumulator,
    sinks: Vec<Box<dyn PhaseSink>>,
    cells: Vec<Pending<ClassifiedRun>>,
    /// Fault injection: panic when `ids.len()` reaches this interval.
    #[cfg(feature = "fault-inject")]
    panic_at: Option<u64>,
}

impl ClassifierLane {
    pub(crate) fn new(config: ClassifierConfig) -> Self {
        Self {
            config,
            classifier: PhaseClassifier::new(config),
            ids: Vec::new(),
            cpis: Vec::new(),
            cov: CovAccumulator::new(),
            runs: RunAccumulator::new(),
            sinks: Vec::new(),
            cells: Vec::new(),
            #[cfg(feature = "fault-inject")]
            panic_at: None,
        }
    }

    pub(crate) fn config(&self) -> ClassifierConfig {
        self.config
    }

    /// A human-readable label for failure reports: the lane *is* its
    /// classifier configuration.
    pub(crate) fn label(&self) -> String {
        format!("{:?}", self.config)
    }

    /// Arms an injected panic at the given 0-based interval.
    #[cfg(feature = "fault-inject")]
    pub(crate) fn set_panic_at(&mut self, interval: u64) {
        self.panic_at = Some(interval);
    }

    /// Requests a copy of the lane's final [`ClassifiedRun`].
    pub(crate) fn request_run(&mut self) -> Pending<ClassifiedRun> {
        let cell = Pending::new();
        self.cells.push(cell.clone());
        cell
    }

    pub(crate) fn attach(&mut self, sink: Box<dyn PhaseSink>) {
        self.sinks.push(sink);
    }

    /// The lane's extractor shape — the key the sweep groups lanes by
    /// when sharing accumulation front-ends. Two lanes share a front-end
    /// exactly when they agree on both the feature back-end and the
    /// signature dimensionality.
    pub(crate) fn extractor_shape(&self) -> (ExtractorKind, usize) {
        (self.config.extractor, self.config.accumulators)
    }

    /// The lane's feature back-end label, for telemetry exports.
    pub(crate) fn extractor_label(&self) -> &'static str {
        self.config.extractor.label()
    }

    /// Interval boundary on the shared-accumulation path: classifies the
    /// group's finished extractor snapshot instead of a lane-owned one.
    pub(crate) fn end_interval_shared(
        &mut self,
        features: &AnyExtractor,
        summary: &IntervalSummary,
    ) {
        #[cfg(feature = "fault-inject")]
        if self.panic_at == Some(self.ids.len() as u64) {
            panic!("fault-inject: lane panic at interval {}", self.ids.len());
        }
        let cpi = summary.cpi();
        let id = self.classifier.end_interval_from(features, cpi);
        self.record(id, cpi, summary);
    }

    /// Classified-interval bookkeeping shared by the owned-accumulator and
    /// shared-accumulator paths.
    fn record(&mut self, id: PhaseId, cpi: f64, summary: &IntervalSummary) {
        self.ids.push(id);
        self.cpis.push(cpi);
        self.cov.observe(id, cpi);
        self.runs.observe(id);
        for sink in &mut self.sinks {
            sink.observe_phase(id, summary);
        }
    }

    /// Appends failure hooks for every cell this lane (and its attached
    /// probes) would fill.
    pub(crate) fn collect_failure_handles(&self, out: &mut Vec<FailureHandle>) {
        for cell in &self.cells {
            out.push(cell.failure_handle());
        }
        for sink in &self.sinks {
            out.push(sink.failure_handle());
        }
    }

    /// Resolves every still-unset cell the lane would have filled to
    /// `err` — called when the lane dies mid-sweep while its siblings
    /// carry on.
    pub(crate) fn fail(self, err: &EngineError) {
        for cell in &self.cells {
            cell.fail_if_unset(err);
        }
        for sink in &self.sinks {
            sink.failure_handle()(err);
        }
    }

    /// Finalizes the lane: builds the [`ClassifiedRun`], runs every
    /// probe's reduction against it, and fills all requested run cells.
    pub(crate) fn finish(self) {
        let run = ClassifiedRun {
            ids: self.ids,
            cpis: self.cpis,
            phases_created: self.classifier.phases_created(),
            transition_fraction: self.classifier.transition_fraction(),
            cov: self.cov.finish(),
            runs: self.runs.finish(),
        };
        for sink in self.sinks {
            sink.finish(&run);
        }
        for cell in self.cells {
            cell.set(run.clone());
        }
    }
}

impl IntervalSink for ClassifierLane {
    fn observe(&mut self, ev: &BranchEvent) {
        self.classifier.observe(*ev);
    }

    fn end_interval(&mut self, summary: &IntervalSummary) {
        let cpi = summary.cpi();
        let id = self.classifier.end_interval(cpi);
        self.record(id, cpi, summary);
    }
}

/// A raw lane: an [`IntervalSink`] that can be finalized after the sweep.
pub(crate) trait ErasedLane: IntervalSink + Send {
    fn finish(self: Box<Self>);
    /// A hook that fails the lane's result cell if it is still unset.
    fn failure_handle(&self) -> FailureHandle;
}

/// A typed raw sink plus the reduction that fills its [`Pending`] cell.
pub(crate) struct RawProbe<S, R, F> {
    sink: S,
    reduce: F,
    cell: Pending<R>,
}

impl<S, R, F> RawProbe<S, R, F> {
    pub(crate) fn new(sink: S, reduce: F, cell: Pending<R>) -> Self {
        Self { sink, reduce, cell }
    }
}

impl<S: IntervalSink, R, F> IntervalSink for RawProbe<S, R, F> {
    fn observe(&mut self, ev: &BranchEvent) {
        self.sink.observe(ev);
    }

    fn end_interval(&mut self, summary: &IntervalSummary) {
        self.sink.end_interval(summary);
    }
}

impl<S, R, F> ErasedLane for RawProbe<S, R, F>
where
    S: IntervalSink + Send + 'static,
    R: Send + 'static,
    F: FnOnce(S) -> R + Send + 'static,
{
    fn finish(self: Box<Self>) {
        let this = *self;
        this.cell.set((this.reduce)(this.sink));
    }

    fn failure_handle(&self) -> FailureHandle {
        self.cell.failure_handle()
    }
}

/// An [`IntervalSink`] that collects per-interval basic block vectors —
/// the offline (SimPoint-style) classification input — during the same
/// replay every other lane rides.
#[derive(Debug, Clone, Default)]
pub struct BbvSink {
    builder: BbvBuilder,
    trace: BbvTrace,
}

impl BbvSink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected BBV trace.
    pub fn into_trace(self) -> BbvTrace {
        self.trace
    }
}

impl IntervalSink for BbvSink {
    fn observe(&mut self, ev: &BranchEvent) {
        self.builder.observe(*ev);
    }

    fn end_interval(&mut self, summary: &IntervalSummary) {
        self.trace.vectors.push(self.builder.finish());
        self.trace.summaries.push(*summary);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcp_trace::{drive, IntervalSource, PhaseSpec, SyntheticTrace};

    #[test]
    fn bbv_sink_matches_collect() {
        let trace = SyntheticTrace::new(5_000)
            .phase(PhaseSpec::uniform(0x1000, 4, 1.0))
            .schedule(&[(0, 10)])
            .generate();
        let direct = BbvTrace::collect(trace.replay());

        let mut sink = BbvSink::new();
        let mut replay = trace.replay();
        let mut sinks: Vec<&mut dyn IntervalSink> = vec![&mut sink];
        drive(&mut replay, &mut sinks);
        let via_sink = sink.into_trace();

        assert_eq!(direct.vectors, via_sink.vectors);
        assert_eq!(direct.summaries, via_sink.summaries);
    }

    #[test]
    fn classifier_lane_matches_run_classifier() {
        let trace = SyntheticTrace::new(5_000)
            .phase(PhaseSpec::uniform(0x1000, 4, 1.0))
            .phase(PhaseSpec::uniform(0x9000, 4, 3.0))
            .schedule(&[(0, 15), (1, 15)])
            .generate();
        let config = ClassifierConfig::hpca2005();
        let reference = crate::classify::run_classifier(&trace, config);

        let mut lane = ClassifierLane::new(config);
        let cell = lane.request_run();
        let mut replay = trace.replay();
        let mut sinks: Vec<&mut dyn IntervalSink> = vec![&mut lane];
        drive(&mut replay, &mut sinks);
        lane.finish();

        assert_eq!(cell.take(), reference);
    }

    #[test]
    fn interval_source_and_lane_agree_on_interval_count() {
        let trace = SyntheticTrace::new(5_000)
            .phase(PhaseSpec::uniform(0x1000, 4, 1.0))
            .schedule(&[(0, 8)])
            .generate();
        let n = trace.replay().drain_summaries().len();
        let mut sink = BbvSink::new();
        let mut replay = trace.replay();
        let mut sinks: Vec<&mut dyn IntervalSink> = vec![&mut sink];
        let driven = drive(&mut replay, &mut sinks);
        assert_eq!(driven, n);
    }
}
