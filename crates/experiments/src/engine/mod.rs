//! The experiment engine: a single-replay, multi-sink sweep driver.
//!
//! Every figure in this crate used to own a replay loop: load a trace,
//! walk its intervals, feed a classifier, feed the classifier's phase IDs
//! into whatever accumulator or predictor the figure measures. Running
//! several figures meant decoding and replaying the same traces once per
//! figure per configuration.
//!
//! The engine inverts that. Experiments *register* interest up front —
//! "classify benchmark X under config C", "attach this predictor to that
//! classification", "collect BBVs for X" — and receive [`Pending`]
//! handles. [`Engine::run`] then replays each distinct `(benchmark,
//! params)` trace **exactly once**, fanning every interval out to all
//! registered lanes, and fills the handles. The sweep is two-level:
//! benchmarks are swept concurrently with crossbeam scoped threads, a
//! group's classifier lanes share one accumulation pass per distinct
//! accumulator count, and wide groups shard their lanes across spare
//! workers (see DESIGN.md). Results are deterministic because
//! each handle is written by exactly one lane regardless of thread
//! scheduling. Worker count is an [`Engine::with_workers`] knob,
//! overridable via the `TPCP_WORKERS` environment variable.
//!
//! ```no_run
//! use tpcp_core::ClassifierConfig;
//! use tpcp_experiments::{Engine, SuiteParams, TraceCache};
//! use tpcp_workloads::BenchmarkKind;
//!
//! let mut engine = Engine::new(SuiteParams::default());
//! let run = engine.classified(BenchmarkKind::Mcf, ClassifierConfig::hpca2005());
//! let stats = engine.run(&TraceCache::default_location());
//! assert_eq!(stats.max_replays_per_trace(), 1);
//! println!("mcf CoV = {}", run.take().cov.weighted_cov());
//! ```

// The engine is the part of the codebase that must degrade, not die:
// every panic escape hatch in this module tree is either proven
// unreachable (and allow-listed with its invariant) or routed through
// the structured failure path.
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod error;
mod sink;
mod sweep;
mod telemetry;

use std::sync::{Arc, Mutex};

use tpcp_core::{ClassifierConfig, PhaseObserver};
use tpcp_trace::{BbvTrace, IntervalSink, ReplayPlan};
use tpcp_workloads::BenchmarkKind;

use crate::classify::ClassifiedRun;
use crate::report::Table;
use crate::suite::SuiteParams;

use error::{lock_ignore_poison, FailureHandle};
use sink::{ClassifierLane, ErasedLane, Probe, RawProbe};

pub use error::{EngineError, FailureCause, FailureReport, LaneFailure, SweepError};
pub use sink::BbvSink;
pub use sweep::EngineStats;
pub use telemetry::{CacheCounters, GroupTelemetry, LaneTelemetry, StageNanos, TelemetrySnapshot};

/// A figure's deferred output: registration happens before the sweep,
/// table construction after it.
pub type PendingTables = Box<dyn FnOnce() -> Vec<Table>>;

/// A handle to a result the engine has not produced yet.
///
/// Returned by every [`Engine`] registration method; read it with
/// [`Pending::take`] (or the fallible [`Pending::try_take`]) after
/// [`Engine::run`] completes. If the lane or group backing the handle
/// failed, the handle resolves to an [`EngineError`] instead of a value.
#[derive(Debug)]
pub struct Pending<T>(Arc<Mutex<Option<Result<T, EngineError>>>>);

impl<T> Clone for Pending<T> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<T> Pending<T> {
    fn new() -> Self {
        Self(Arc::new(Mutex::new(None)))
    }

    pub(crate) fn set(&self, value: T) {
        *lock_ignore_poison(&self.0) = Some(Ok(value));
    }

    /// Resolves the cell to `err` — but only if its lane never filled it.
    /// A lane that finished before its group failed keeps its value.
    pub(crate) fn fail_if_unset(&self, err: &EngineError) {
        let mut slot = lock_ignore_poison(&self.0);
        if slot.is_none() {
            *slot = Some(Err(err.clone()));
        }
    }

    /// Takes the produced value.
    ///
    /// # Panics
    ///
    /// Panics if the engine has not run yet, if the value was already
    /// taken, or if the backing lane failed (use
    /// [`try_take`](Self::try_take) to handle failures gracefully).
    pub fn take(&self) -> T {
        match self.try_take() {
            Ok(value) => value,
            Err(e) => panic!("engine lane failed: {e}"),
        }
    }

    /// Takes the produced value, or the [`EngineError`] that kept the
    /// backing lane from producing one.
    ///
    /// # Panics
    ///
    /// Panics if the engine has not run yet or the value was already
    /// taken — those are caller sequencing bugs, not lane failures.
    pub fn try_take(&self) -> Result<T, EngineError> {
        // Invariant, not a runtime failure: `Engine::run` fills or fails
        // every registered cell exactly once before returning.
        #[allow(clippy::expect_used)]
        lock_ignore_poison(&self.0)
            .take()
            .expect("Pending::take before Engine::run (or taken twice)")
    }

    /// A type-erased hook that fails this cell if it is still unset —
    /// collected before a group's replay is moved into `catch_unwind`.
    pub(crate) fn failure_handle(&self) -> FailureHandle
    where
        T: Send + 'static,
    {
        let cell = self.clone();
        Box::new(move |err| cell.fail_if_unset(err))
    }
}

/// One trace's worth of registered work: every lane that wants the
/// `(benchmark, params)` interval stream.
pub(crate) struct TraceGroup {
    pub(crate) kind: BenchmarkKind,
    pub(crate) params: SuiteParams,
    pub(crate) lanes: Vec<ClassifierLane>,
    pub(crate) raw: Vec<Box<dyn ErasedLane>>,
    /// Which intervals of the trace the group's single replay decodes.
    /// Defaults to [`ReplayPlan::full`]; a sampled plan routes the group
    /// through the seek-driven [`PlannedReplay`](tpcp_trace::PlannedReplay).
    pub(crate) plan: ReplayPlan,
}

impl TraceGroup {
    /// Failure hooks for every cell registered anywhere in the group —
    /// harvested before the group is consumed by a replay that may panic.
    pub(crate) fn failure_handles(&self) -> Vec<FailureHandle> {
        let mut handles = Vec::new();
        for lane in &self.lanes {
            lane.collect_failure_handles(&mut handles);
        }
        for raw in &self.raw {
            handles.push(raw.failure_handle());
        }
        handles
    }
}

/// Collects registered experiment lanes, then sweeps every needed trace
/// once (see the [module docs](self)).
pub struct Engine {
    params: SuiteParams,
    groups: Vec<TraceGroup>,
    workers: Option<usize>,
    pub(crate) telemetry: bool,
    pub(crate) cancel: Option<Arc<dyn Fn() -> bool + Send + Sync>>,
    #[cfg(feature = "fault-inject")]
    faults: Option<Arc<crate::fault::FaultInjector>>,
}

impl Engine {
    /// Creates an empty engine whose registrations default to `params`.
    pub fn new(params: SuiteParams) -> Self {
        Self {
            params,
            groups: Vec::new(),
            workers: None,
            telemetry: true,
            cancel: None,
            #[cfg(feature = "fault-inject")]
            faults: None,
        }
    }

    /// Enables or disables telemetry collection (on by default). Engine
    /// results are bit-identical either way — collection never feeds back
    /// into classification — so disabling it only zeroes the clock reads
    /// and leaves [`EngineStats::telemetry`] empty.
    pub fn with_telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Attaches a fault injector: the sweep consults it for lane panics
    /// and replay-byte truncations (chaos tests only).
    #[cfg(feature = "fault-inject")]
    pub fn with_faults(mut self, faults: Arc<crate::fault::FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Registers a cooperative cancellation probe: the sweep polls it
    /// once per claimed group, *before* loading or replaying anything.
    /// When it returns `true`, every not-yet-started group is failed with
    /// [`FailureCause::Cancelled`] instead of being replayed — groups
    /// already mid-replay finish normally, so an interrupted run still
    /// flushes complete results for everything it got through. Binaries
    /// wire this to [`crate::shutdown::requested`] so SIGINT/SIGTERM
    /// produce a partial report instead of a dead process.
    pub fn with_cancel<F>(mut self, probe: F) -> Self
    where
        F: Fn() -> bool + Send + Sync + 'static,
    {
        self.cancel = Some(Arc::new(probe));
        self
    }

    /// Pins the sweep's worker-thread count to exactly `n` (clamped to at
    /// least 1), overriding both the `TPCP_WORKERS` environment variable
    /// and the default of one worker per available core. Use `1` for
    /// single-threaded debugging and a fixed value for reproducible perf
    /// runs.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = Some(n.max(1));
        self
    }

    /// The default suite parameters registrations run under.
    pub fn params(&self) -> &SuiteParams {
        &self.params
    }

    fn group_mut(&mut self, kind: BenchmarkKind, params: SuiteParams) -> &mut TraceGroup {
        let idx = self
            .groups
            .iter()
            .position(|g| g.kind == kind && g.params == params);
        let idx = idx.unwrap_or_else(|| {
            self.groups.push(TraceGroup {
                kind,
                params,
                lanes: Vec::new(),
                raw: Vec::new(),
                plan: ReplayPlan::full(),
            });
            self.groups.len() - 1
        });
        &mut self.groups[idx]
    }

    fn lane_mut(
        &mut self,
        kind: BenchmarkKind,
        params: SuiteParams,
        config: ClassifierConfig,
    ) -> &mut ClassifierLane {
        let group = self.group_mut(kind, params);
        let idx = group.lanes.iter().position(|l| l.config() == config);
        let idx = idx.unwrap_or_else(|| {
            group.lanes.push(ClassifierLane::new(config));
            group.lanes.len() - 1
        });
        &mut group.lanes[idx]
    }

    /// Restricts the replay of `kind`'s trace (at the engine's default
    /// parameters) to `plan`: only the planned intervals are decoded and
    /// fanned out, and every lane registered on the group — classifier or
    /// raw — sees the same gap-free sampled stream. The default is a full
    /// replay; setting a plan affects *all* registrations sharing the
    /// `(kind, params)` group, because the group shares one replay.
    ///
    /// A fully-covering plan ([`ReplayPlan::full`]) keeps the group on
    /// the plain streaming path and is bit-identical to not calling this
    /// at all. A plan that references intervals past the end of the trace
    /// fails the group loudly ([`FailureCause::Plan`]).
    pub fn with_plan(&mut self, kind: BenchmarkKind, plan: ReplayPlan) {
        let params = self.params;
        self.with_plan_at(kind, params, plan);
    }

    /// Like [`Engine::with_plan`], but at explicit suite parameters.
    pub fn with_plan_at(&mut self, kind: BenchmarkKind, params: SuiteParams, plan: ReplayPlan) {
        self.group_mut(kind, params).plan = plan;
    }

    /// Registers a classification of `kind` under `config` (at the
    /// engine's default parameters). Repeat registrations of the same
    /// `(kind, config)` share one classifier lane.
    pub fn classified(
        &mut self,
        kind: BenchmarkKind,
        config: ClassifierConfig,
    ) -> Pending<ClassifiedRun> {
        let params = self.params;
        self.classified_at(kind, params, config)
    }

    /// Like [`Engine::classified`], but at explicit suite parameters —
    /// used by sweeps that vary the trace itself (e.g. interval size).
    pub fn classified_at(
        &mut self,
        kind: BenchmarkKind,
        params: SuiteParams,
        config: ClassifierConfig,
    ) -> Pending<ClassifiedRun> {
        self.lane_mut(kind, params, config).request_run()
    }

    /// Attaches `observer` to the `(kind, config)` classifier lane: it
    /// sees every classified interval, and after the sweep `reduce` turns
    /// it (plus the lane's [`ClassifiedRun`]) into the handle's value.
    pub fn probe<T, R, F>(
        &mut self,
        kind: BenchmarkKind,
        config: ClassifierConfig,
        observer: T,
        reduce: F,
    ) -> Pending<R>
    where
        T: PhaseObserver + Send + 'static,
        R: Send + 'static,
        F: FnOnce(T, &ClassifiedRun) -> R + Send + 'static,
    {
        let params = self.params;
        let cell = Pending::new();
        self.lane_mut(kind, params, config)
            .attach(Box::new(Probe::new(observer, reduce, cell.clone())));
        cell
    }

    /// Registers a raw (unclassified) interval sink on `kind`'s trace;
    /// after the sweep `reduce` turns the sink into the handle's value.
    /// `reduce` runs on the sweep worker, so expensive post-processing
    /// here stays parallel across benchmarks.
    pub fn interval_sink<S, R, F>(&mut self, kind: BenchmarkKind, sink: S, reduce: F) -> Pending<R>
    where
        S: IntervalSink + Send + 'static,
        R: Send + 'static,
        F: FnOnce(S) -> R + Send + 'static,
    {
        let params = self.params;
        let cell = Pending::new();
        self.group_mut(kind, params)
            .raw
            .push(Box::new(RawProbe::new(sink, reduce, cell.clone())));
        cell
    }

    /// Registers basic-block-vector collection for `kind` — the offline
    /// (SimPoint) input format — riding the same single replay.
    pub fn bbvs(&mut self, kind: BenchmarkKind) -> Pending<BbvTrace> {
        self.interval_sink(kind, BbvSink::new(), BbvSink::into_trace)
    }

    pub(crate) fn into_groups(self) -> Vec<TraceGroup> {
        self.groups
    }
}
