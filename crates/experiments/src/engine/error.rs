//! Structured failure types for the fault-isolated sweep.
//!
//! A sweep used to have exactly two outcomes: every lane succeeds, or the
//! whole process aborts on the first panic. This module is the third
//! outcome: a failed lane or group resolves its [`Pending`] handles to a
//! typed [`EngineError`], the sweep keeps going, and
//! [`EngineStats`](crate::EngineStats) carries a [`FailureReport`]
//! describing exactly what went wrong — so a 100-lane ablation run loses
//! one lane to a buggy probe, not the night's batch.
//!
//! [`Pending`]: crate::engine::Pending

use std::fmt;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use tpcp_trace::{CodecError, IndexError};

use crate::suite::CacheError;

/// Why a lane or group failed during the sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureCause {
    /// A lane, sink, or probe reduction panicked; the payload message is
    /// captured (the panic never crosses a thread boundary un-caught).
    Panic(String),
    /// The trace stream failed to decode mid-replay. Unreachable from
    /// cache-validated buffers; kept as a handled error rather than an
    /// assert so a validator/decoder disagreement degrades one group.
    Decode(CodecError),
    /// The group's [`ReplayPlan`](tpcp_trace::ReplayPlan) could not be
    /// applied to its trace — the plan references intervals past the end
    /// of the trace, or the interval index disagrees with the payload.
    /// A plan built for a different trace fails the group loudly instead
    /// of silently truncating.
    Plan(IndexError),
    /// The group was claimed after a cooperative shutdown request (see
    /// [`Engine::with_cancel`](crate::Engine::with_cancel)): its replay
    /// never started, and its handles resolve to this instead of hanging
    /// a partial result off an interrupted run.
    Cancelled,
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Panic(msg) => write!(f, "panic: {msg}"),
            Self::Decode(e) => write!(f, "trace decode failed mid-replay: {e}"),
            Self::Plan(e) => write!(f, "replay plan rejected: {e}"),
            Self::Cancelled => write!(f, "cancelled before replay (shutdown requested)"),
        }
    }
}

/// One classifier lane failed; its sibling lanes (and the replay) carried
/// on untouched.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneFailure {
    /// The trace group key, `<benchmark>-<fingerprint>`.
    pub group: String,
    /// A human-readable lane label (the classifier configuration).
    pub lane: String,
    /// What killed the lane.
    pub cause: FailureCause,
}

impl fmt::Display for LaneFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} lane {}: {}", self.group, self.lane, self.cause)
    }
}

/// A failure inside the replay sweep itself.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// A single classifier lane died; the rest of its group survived.
    Lane(LaneFailure),
    /// A whole trace group failed — its replay loop, a raw sink, or a
    /// finalization panicked, or the stream broke mid-decode. Every
    /// still-unfilled handle registered on the group resolves to this.
    Group {
        /// The trace group key, `<benchmark>-<fingerprint>`.
        group: String,
        /// What killed the group.
        cause: FailureCause,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lane(lane) => lane.fmt(f),
            Self::Group { group, cause } => write!(f, "{group}: {cause}"),
        }
    }
}

/// The top of the engine's error hierarchy: everything a [`Pending`]
/// handle can resolve to instead of a value.
///
/// [`Pending`]: crate::engine::Pending
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The trace cache could not produce a valid buffer for a group even
    /// after quarantining the entry and re-simulating once.
    Cache {
        /// The trace group key, `<benchmark>-<fingerprint>`.
        group: String,
        /// The cache-level failure.
        error: CacheError,
    },
    /// The group's bytes loaded fine but the sweep failed.
    Sweep(SweepError),
}

/// `Display` is a single line (trace name, lane, cause) by construction —
/// binaries print it verbatim as their exit message.
impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Cache { group, error } => write!(f, "{group}: {error}"),
            Self::Sweep(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for EngineError {}
impl std::error::Error for SweepError {}
impl std::error::Error for FailureCause {}

/// Everything that went wrong (or was repaired) during one sweep,
/// attached to [`EngineStats`](crate::EngineStats).
///
/// Failures and quarantines are sorted before the report is returned, so
/// the report is deterministic regardless of worker scheduling.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailureReport {
    failures: Vec<EngineError>,
    quarantined: Vec<PathBuf>,
}

impl FailureReport {
    /// `true` when nothing failed. Quarantined-and-repaired entries do
    /// not count as failures — the sweep recovered from those.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }

    /// Every lane/group/cache failure, sorted by display string.
    pub fn failures(&self) -> &[EngineError] {
        &self.failures
    }

    /// Cache entries found corrupt, renamed `*.corrupt`, and successfully
    /// re-simulated during this sweep.
    pub fn quarantined(&self) -> &[PathBuf] {
        &self.quarantined
    }

    pub(crate) fn record_failure(&mut self, err: EngineError) {
        self.failures.push(err);
    }

    pub(crate) fn record_quarantine(&mut self, path: PathBuf) {
        self.quarantined.push(path);
    }

    pub(crate) fn finalize(&mut self) {
        self.failures.sort_by_key(ToString::to_string);
        self.quarantined.sort();
    }
}

/// A type-erased hook that resolves one still-unfilled [`Pending`] cell
/// to an error. Collected from a group *before* its replay is moved into
/// `catch_unwind`, so the cells stay reachable after a panic consumes the
/// group.
///
/// [`Pending`]: crate::engine::Pending
pub(crate) type FailureHandle = Box<dyn Fn(&EngineError) + Send>;

/// Locks a mutex, ignoring poisoning: every engine lock guards data whose
/// writers are panic-isolated (a poisoned lock means a lane died after a
/// complete write, never mid-write of engine state), so the value is
/// still consistent.
pub(crate) fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Extracts the human-readable message from a `catch_unwind` payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}
