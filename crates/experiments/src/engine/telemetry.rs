//! Sweep telemetry: per-stage timers, cache and shard counters, and
//! per-lane throughput, collected without touching the hot path's
//! allocation or result behaviour.
//!
//! **What is measured.** The sweep's wall-clock decomposes into five
//! stages, timed at interval boundaries (never per event):
//!
//! - **cache load** — [`TraceCache::try_load_bytes_or_simulate`], per
//!   group, including any quarantine-and-re-simulate repair;
//! - **decode + accumulate** — the streaming window between interval
//!   boundaries, where the [`StreamingDecoder`] and the shared
//!   [`AccumulatorTable`]s (plus any raw sinks) consume events. Decode
//!   and accumulation are deliberately *fused*: separating them would
//!   need a timer per event, which costs more than the work it measures;
//! - **classify** — each lane's `end_interval_shared` call, timed per
//!   lane into a pre-sized slot carried by the lane itself;
//! - **finish** — lane finalization, probe reductions, and raw-sink
//!   reductions after the stream ends;
//! - **shard send wait** — on sharded groups, building the per-interval
//!   snapshot and pushing it into the bounded channels (so backpressure
//!   from a slow shard is visible as wait time).
//!
//! **Zero overhead on the result path.** Timers read a monotonic clock
//! ([`Instant`]) only at interval boundaries and only when collection is
//! enabled; counters are plain `u64` adds into pre-sized per-lane slots,
//! merged into the shared [`GroupCollector`] once per lane at finish (or
//! failure) time. Nothing telemetry does feeds back into classification,
//! so engine results are bit-identical with collection on or off — a
//! regression test asserts this.
//!
//! **Fault tolerance.** A failed group keeps the timings it accumulated
//! before dying: its [`GroupTelemetry`] is recorded with
//! [`partial`](GroupTelemetry::partial) set, alongside the
//! [`FailureReport`](crate::FailureReport) entry.
//!
//! [`TraceCache::try_load_bytes_or_simulate`]: crate::TraceCache::try_load_bytes_or_simulate
//! [`StreamingDecoder`]: tpcp_trace::StreamingDecoder
//! [`AccumulatorTable`]: tpcp_core::AccumulatorTable

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::Serialize;
use tpcp_trace::SkipStats;

use crate::engine::error::lock_ignore_poison;

/// Nanoseconds elapsed since a (possibly disabled) mark.
#[inline]
pub(crate) fn elapsed_ns(mark: Option<Instant>) -> u64 {
    mark.map_or(0, |t| {
        u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
    })
}

/// Nanoseconds between two (possibly disabled) marks. Lets hot loops
/// chain timestamps — one lane's end mark is the next lane's start — so
/// timing N lanes costs N + 1 clock reads instead of 2N.
#[inline]
pub(crate) fn span_ns(start: Option<Instant>, end: Option<Instant>) -> u64 {
    match (start, end) {
        (Some(s), Some(e)) => u64::try_from(e.duration_since(s).as_nanos()).unwrap_or(u64::MAX),
        _ => 0,
    }
}

/// Per-stage wall-clock totals, in nanoseconds. Stage totals sum time
/// across worker threads, so on a multi-worker sweep they can exceed the
/// run's wall clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StageNanos {
    /// Cache load (including quarantine repair and re-simulation).
    pub cache_load_ns: u64,
    /// Streaming decode plus shared accumulation (fused; see module docs).
    pub decode_accumulate_ns: u64,
    /// Per-lane classification at interval boundaries.
    pub classify_ns: u64,
    /// Lane finalization, probe reductions, and raw-sink reductions.
    pub finish_ns: u64,
    /// Snapshot broadcast plus bounded-channel send wait on sharded groups.
    pub shard_send_wait_ns: u64,
}

impl StageNanos {
    fn merge(&mut self, other: &StageNanos) {
        self.cache_load_ns += other.cache_load_ns;
        self.decode_accumulate_ns += other.decode_accumulate_ns;
        self.classify_ns += other.classify_ns;
        self.finish_ns += other.finish_ns;
        self.shard_send_wait_ns += other.shard_send_wait_ns;
    }
}

/// How the trace cache behaved over one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CacheCounters {
    /// Loads served from a valid on-disk entry.
    pub hits: u64,
    /// Loads that fell through to simulation (no entry, or unreadable).
    pub misses: u64,
    /// Corrupt entries renamed `*.corrupt` and re-simulated.
    pub quarantines: u64,
}

/// One classifier lane's share of a group's work.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LaneTelemetry {
    /// The lane label (its classifier configuration).
    pub label: String,
    /// The lane's feature back-end
    /// ([`ExtractorKind::label`](tpcp_core::ExtractorKind::label)).
    pub extractor: String,
    /// Intervals this lane classified.
    pub intervals: u64,
    /// Wall-clock spent in this lane's `end_interval_shared`, ns.
    pub classify_ns: u64,
    /// Intervals the group's replay plan skipped past this lane (0 on a
    /// full replay). Plan-wide totals stamped onto every lane of the
    /// group, since all lanes share the one planned replay.
    pub intervals_skipped: u64,
    /// Encoded payload bytes the plan never decoded (0 on a full replay).
    pub bytes_skipped: u64,
    /// Seeks the planned replay performed to cross plan gaps (0 on a
    /// full replay).
    pub seek_count: u64,
}

impl LaneTelemetry {
    /// The lane's classification throughput, intervals per second
    /// (0.0 when no classify time was recorded).
    pub fn intervals_per_sec(&self) -> f64 {
        if self.classify_ns == 0 {
            0.0
        } else {
            self.intervals as f64 / (self.classify_ns as f64 / 1e9)
        }
    }
}

/// One trace group's telemetry: stage timings, interval count, shard
/// fan-out, and per-lane slots.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct GroupTelemetry {
    /// Per-stage timings for this group.
    pub stages: StageNanos,
    /// Interval boundaries the group's replay delivered.
    pub intervals: u64,
    /// Shard threads the group's lanes were split across (0 = inline).
    pub shards: u64,
    /// Per-lane classify timings, sorted by label. Lanes abandoned by a
    /// mid-replay group failure may be missing.
    pub lanes: Vec<LaneTelemetry>,
    /// The group failed (or its cache load failed) partway; timings cover
    /// only the completed prefix.
    pub partial: bool,
}

/// Everything the sweep observed about itself: per-group stage timings
/// rolled up into sweep-wide totals, cache behaviour, and shard stats.
/// Returned inside [`EngineStats`](crate::EngineStats); field order in
/// [`to_json`](Self::to_json) is fixed, and groups/lanes are sorted, so
/// two snapshots of identical runs differ only in measured durations.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct TelemetrySnapshot {
    enabled: bool,
    wall_ns: u64,
    cache: CacheCounters,
    stages: StageNanos,
    groups: BTreeMap<String, GroupTelemetry>,
}

impl TelemetrySnapshot {
    /// Whether collection was enabled for the run that produced this
    /// snapshot. A disabled snapshot is empty.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Wall-clock of the whole [`Engine::run`](crate::Engine::run), ns.
    pub fn wall_ns(&self) -> u64 {
        self.wall_ns
    }

    /// Cache hit/miss/quarantine counts for the sweep.
    pub fn cache(&self) -> CacheCounters {
        self.cache
    }

    /// Sweep-wide stage totals (sum over groups, hence over workers).
    pub fn stages(&self) -> StageNanos {
        self.stages
    }

    /// Per-group telemetry, keyed by `<benchmark>-<fingerprint>`.
    pub fn groups(&self) -> &BTreeMap<String, GroupTelemetry> {
        &self.groups
    }

    /// Total intervals over all groups.
    pub fn total_intervals(&self) -> u64 {
        self.groups.values().map(|g| g.intervals).sum()
    }

    /// Number of groups whose lanes were sharded across threads.
    pub fn sharded_groups(&self) -> u64 {
        self.groups.values().filter(|g| g.shards >= 2).count() as u64
    }

    pub(crate) fn record_cache(&mut self, hit: bool, quarantined: bool) {
        if hit {
            self.cache.hits += 1;
        } else {
            self.cache.misses += 1;
        }
        if quarantined {
            self.cache.quarantines += 1;
        }
    }

    pub(crate) fn record_group(&mut self, key: String, group: GroupTelemetry) {
        self.groups.insert(key, group);
    }

    /// Seals the snapshot: stamps the run wall-clock and rolls the
    /// per-group stage timings up into the sweep-wide totals.
    pub(crate) fn finalize(&mut self, wall_ns: u64) {
        self.enabled = true;
        self.wall_ns = wall_ns;
        self.stages = StageNanos::default();
        for group in self.groups.values() {
            self.stages.merge(&group.stages);
        }
    }

    /// Serializes the snapshot as pretty-printed JSON with a fixed field
    /// order (schema `tpcp-telemetry-v1`). Like the bench report, the
    /// JSON is hand-rolled: the workspace has no JSON dependency. Lane
    /// objects use `"label"` keys (never `"name"`) so embedding a
    /// snapshot inside a `BENCH_*.json` cannot confuse that report's
    /// lane-rate scanner.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        self.write_json(&mut out, 0);
        out.push('\n');
        out
    }

    /// Writes the snapshot as a JSON object at the given indent depth
    /// (no leading indent before the opening brace and no trailing
    /// newline), for embedding after a key in an enclosing document.
    pub fn write_json(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let _ = writeln!(out, "{{\n{pad}  \"schema\": \"tpcp-telemetry-v1\",");
        let _ = writeln!(out, "{pad}  \"enabled\": {},", self.enabled);
        let _ = writeln!(out, "{pad}  \"wall_ns\": {},", self.wall_ns);
        let _ = writeln!(
            out,
            "{pad}  \"cache\": {{ \"hits\": {}, \"misses\": {}, \"quarantines\": {} }},",
            self.cache.hits, self.cache.misses, self.cache.quarantines
        );
        let _ = write!(out, "{pad}  \"stages\": ");
        write_stages(out, &self.stages);
        let _ = writeln!(
            out,
            ",\n{pad}  \"total_intervals\": {},",
            self.total_intervals()
        );
        let _ = writeln!(out, "{pad}  \"sharded_groups\": {},", self.sharded_groups());
        let _ = write!(out, "{pad}  \"groups\": {{");
        for (i, (key, group)) in self.groups.iter().enumerate() {
            let _ = writeln!(
                out,
                "{}\n{pad}    {}: {{",
                if i > 0 { "," } else { "" },
                json_string(key)
            );
            let _ = writeln!(out, "{pad}      \"intervals\": {},", group.intervals);
            let _ = writeln!(out, "{pad}      \"shards\": {},", group.shards);
            let _ = writeln!(out, "{pad}      \"partial\": {},", group.partial);
            let _ = write!(out, "{pad}      \"stages\": ");
            write_stages(out, &group.stages);
            let _ = write!(out, ",\n{pad}      \"lanes\": [");
            for (j, lane) in group.lanes.iter().enumerate() {
                // New keys append after the originals — `tpcp-telemetry-v1`
                // consumers index by key, never by position.
                let _ = write!(
                    out,
                    "{}\n{pad}        {{ \"label\": {}, \"extractor\": {}, \"intervals\": {}, \
                     \"classify_ns\": {}, \"intervals_per_sec\": {:.3}, \
                     \"intervals_skipped\": {}, \"bytes_skipped\": {}, \"seek_count\": {} }}",
                    if j > 0 { "," } else { "" },
                    json_string(&lane.label),
                    json_string(&lane.extractor),
                    lane.intervals,
                    lane.classify_ns,
                    lane.intervals_per_sec(),
                    lane.intervals_skipped,
                    lane.bytes_skipped,
                    lane.seek_count
                );
            }
            if !group.lanes.is_empty() {
                let _ = write!(out, "\n{pad}      ");
            }
            let _ = write!(out, "]\n{pad}    }}");
        }
        if !self.groups.is_empty() {
            let _ = write!(out, "\n{pad}  ");
        }
        let _ = write!(out, "}}\n{pad}}}");
    }

    /// Renders the human one-page summary appended to
    /// `results/full_report.txt` by `repro`.
    pub fn summary(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("== engine telemetry ==\n");
        if !self.enabled {
            s.push_str("collection disabled for this run\n");
            return s;
        }
        let ms = |ns: u64| ns as f64 / 1e6;
        let _ = writeln!(s, "wall clock            {:>12.1} ms", ms(self.wall_ns));
        let _ = writeln!(
            s,
            "trace cache           {} hits / {} misses / {} quarantined",
            self.cache.hits, self.cache.misses, self.cache.quarantines
        );
        let _ = writeln!(
            s,
            "groups                {} total, {} sharded, {} partial, {} intervals",
            self.groups.len(),
            self.sharded_groups(),
            self.groups.values().filter(|g| g.partial).count(),
            self.total_intervals()
        );
        s.push_str("stage totals (summed across workers):\n");
        let st = &self.stages;
        for (label, ns) in [
            ("cache load", st.cache_load_ns),
            ("decode+accumulate", st.decode_accumulate_ns),
            ("classify", st.classify_ns),
            ("finish/reduce", st.finish_ns),
            ("shard send wait", st.shard_send_wait_ns),
        ] {
            let _ = writeln!(s, "  {label:<19} {:>12.1} ms", ms(ns));
        }
        // The three heaviest groups by replay time, to show where a
        // sweep's wall-clock goes without printing all of them.
        let mut by_cost: Vec<(&String, &GroupTelemetry)> = self.groups.iter().collect();
        by_cost.sort_by_key(|(key, g)| {
            (
                std::cmp::Reverse(
                    g.stages.decode_accumulate_ns + g.stages.classify_ns + g.stages.finish_ns,
                ),
                *key,
            )
        });
        s.push_str("heaviest groups (decode+classify+finish):\n");
        for (key, g) in by_cost.into_iter().take(3) {
            let _ = writeln!(
                s,
                "  {key:<38} {:>10.1} ms  {:>8} intervals  {} lanes{}{}",
                ms(g.stages.decode_accumulate_ns + g.stages.classify_ns + g.stages.finish_ns),
                g.intervals,
                g.lanes.len(),
                if g.shards >= 2 {
                    format!("  [{} shards]", g.shards)
                } else {
                    String::new()
                },
                if g.partial { "  [partial]" } else { "" }
            );
        }
        s
    }
}

fn write_stages(out: &mut String, st: &StageNanos) {
    let _ = write!(
        out,
        "{{ \"cache_load_ns\": {}, \"decode_accumulate_ns\": {}, \"classify_ns\": {}, \
         \"finish_ns\": {}, \"shard_send_wait_ns\": {} }}",
        st.cache_load_ns,
        st.decode_accumulate_ns,
        st.classify_ns,
        st.finish_ns,
        st.shard_send_wait_ns
    );
}

/// JSON-escapes and quotes a string (mirrors the bench report's escaper).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A per-lane telemetry slot: two plain counters bumped on the lane's
/// owning thread at each boundary, flushed into the [`GroupCollector`]
/// once when the lane finishes or dies. Pre-sized (it travels inside the
/// lane's `KeyedLane`), so the hot path never allocates for telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LaneSlot {
    pub(crate) classify_ns: u64,
    pub(crate) intervals: u64,
}

impl LaneSlot {
    #[inline]
    pub(crate) fn add(&mut self, ns: u64) {
        self.classify_ns += ns;
        self.intervals += 1;
    }
}

/// The shared per-group collector: atomic stage counters the replay
/// thread and shard threads add into at interval boundaries. Lives
/// outside the group's `catch_unwind`, so a panicking replay leaves its
/// partial timings readable.
pub(crate) struct GroupCollector {
    enabled: bool,
    decode_accumulate_ns: AtomicU64,
    classify_ns: AtomicU64,
    finish_ns: AtomicU64,
    shard_send_wait_ns: AtomicU64,
    intervals: AtomicU64,
    intervals_skipped: AtomicU64,
    bytes_skipped: AtomicU64,
    seek_count: AtomicU64,
    lanes: Mutex<Vec<LaneTelemetry>>,
}

impl GroupCollector {
    pub(crate) fn new(enabled: bool, lane_count: usize) -> Self {
        Self {
            enabled,
            decode_accumulate_ns: AtomicU64::new(0),
            classify_ns: AtomicU64::new(0),
            finish_ns: AtomicU64::new(0),
            shard_send_wait_ns: AtomicU64::new(0),
            intervals: AtomicU64::new(0),
            intervals_skipped: AtomicU64::new(0),
            bytes_skipped: AtomicU64::new(0),
            seek_count: AtomicU64::new(0),
            lanes: Mutex::new(Vec::with_capacity(if enabled { lane_count } else { 0 })),
        }
    }

    /// Records the group's replay-plan skip totals, stamped onto every
    /// lane flushed afterwards. Called once per group, before the replay
    /// starts driving lanes; a full replay never calls it (zeros stand).
    pub(crate) fn set_skip(&self, stats: SkipStats) {
        if !self.enabled {
            return;
        }
        self.intervals_skipped
            .store(stats.intervals_skipped, Ordering::Relaxed);
        self.bytes_skipped
            .store(stats.bytes_skipped, Ordering::Relaxed);
        self.seek_count.store(stats.seeks, Ordering::Relaxed);
    }

    /// A monotonic mark, or `None` when collection is disabled (every
    /// downstream `elapsed_ns` then records 0 without reading the clock).
    #[inline]
    pub(crate) fn mark(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Closes one streaming window: the time from the previous boundary
    /// (or replay start) to `boundary` is decode + accumulation.
    #[inline]
    pub(crate) fn close_window(&self, window_start: Option<Instant>, boundary: Option<Instant>) {
        if window_start.is_some() && boundary.is_some() {
            self.decode_accumulate_ns
                .fetch_add(span_ns(window_start, boundary), Ordering::Relaxed);
            self.intervals.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    pub(crate) fn add_shard_wait(&self, ns: u64) {
        self.shard_send_wait_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub(crate) fn add_finish(&self, ns: u64) {
        self.finish_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Merges a lane's slot into the group (once, when the lane finishes
    /// or is buried after a panic).
    pub(crate) fn flush_lane(&self, label: String, extractor: &str, slot: LaneSlot) {
        if !self.enabled {
            return;
        }
        self.classify_ns
            .fetch_add(slot.classify_ns, Ordering::Relaxed);
        lock_ignore_poison(&self.lanes).push(LaneTelemetry {
            label,
            extractor: extractor.to_owned(),
            intervals: slot.intervals,
            classify_ns: slot.classify_ns,
            intervals_skipped: self.intervals_skipped.load(Ordering::Relaxed),
            bytes_skipped: self.bytes_skipped.load(Ordering::Relaxed),
            seek_count: self.seek_count.load(Ordering::Relaxed),
        });
    }

    /// Seals the collector into the group's telemetry record.
    pub(crate) fn into_group(
        self,
        cache_load_ns: u64,
        shards: u64,
        partial: bool,
    ) -> GroupTelemetry {
        let mut lanes = self
            .lanes
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        lanes.sort_by(|a, b| a.label.cmp(&b.label));
        GroupTelemetry {
            stages: StageNanos {
                cache_load_ns,
                decode_accumulate_ns: self.decode_accumulate_ns.into_inner(),
                classify_ns: self.classify_ns.into_inner(),
                finish_ns: self.finish_ns.into_inner(),
                shard_send_wait_ns: self.shard_send_wait_ns.into_inner(),
            },
            intervals: self.intervals.into_inner(),
            shards,
            lanes,
            partial,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::default();
        snap.record_cache(true, false);
        snap.record_cache(false, true);
        let collector = GroupCollector::new(true, 2);
        collector.close_window(collector.mark(), collector.mark());
        collector.close_window(collector.mark(), collector.mark());
        let mut slot = LaneSlot::default();
        slot.add(1_000);
        slot.add(2_000);
        collector.flush_lane("b-lane".into(), "bbv", slot);
        collector.flush_lane("a-lane".into(), "working-set", LaneSlot::default());
        collector.add_finish(500);
        snap.record_group("mcf-v1".into(), collector.into_group(10_000, 0, false));
        snap.finalize(1_000_000);
        snap
    }

    #[test]
    fn snapshot_rolls_up_group_stages() {
        let snap = sample();
        assert!(snap.enabled());
        assert_eq!(snap.wall_ns(), 1_000_000);
        assert_eq!(snap.stages().cache_load_ns, 10_000);
        assert_eq!(snap.stages().classify_ns, 3_000);
        assert_eq!(snap.stages().finish_ns, 500);
        assert_eq!(snap.cache().hits, 1);
        assert_eq!(snap.cache().misses, 1);
        assert_eq!(snap.cache().quarantines, 1);
        assert_eq!(snap.total_intervals(), 2);
        assert_eq!(snap.sharded_groups(), 0);
    }

    #[test]
    fn lanes_are_sorted_for_determinism() {
        let snap = sample();
        let group = &snap.groups()["mcf-v1"];
        let labels: Vec<_> = group.lanes.iter().map(|l| l.label.as_str()).collect();
        assert_eq!(labels, ["a-lane", "b-lane"]);
    }

    #[test]
    fn json_has_fixed_field_order_and_no_name_keys() {
        let snap = sample();
        let json = snap.to_json();
        let schema = json.find("\"schema\"").unwrap();
        let cache = json.find("\"cache\"").unwrap();
        let stages = json.find("\"stages\"").unwrap();
        let groups = json.find("\"groups\"").unwrap();
        assert!(schema < cache && cache < stages && stages < groups);
        // `"name"` keys are reserved for the bench report's lane scanner.
        assert!(!json.contains("\"name\""), "{json}");
        assert!(json.contains("\"extractor\": \"bbv\""), "{json}");
        assert!(json.contains("\"extractor\": \"working-set\""), "{json}");
        assert_eq!(json, snap.to_json(), "serialization is deterministic");
    }

    #[test]
    fn disabled_snapshot_is_empty_and_says_so() {
        let snap = TelemetrySnapshot::default();
        assert!(!snap.enabled());
        assert_eq!(snap.total_intervals(), 0);
        assert!(snap.summary().contains("disabled"));
        assert!(snap.to_json().contains("\"enabled\": false"));
    }

    #[test]
    fn summary_is_one_page() {
        let snap = sample();
        let summary = snap.summary();
        assert!(summary.lines().count() < 30, "{summary}");
        assert!(summary.contains("1 hits / 1 misses / 1 quarantined"));
    }

    #[test]
    fn lane_throughput_handles_zero_time() {
        let lane = LaneTelemetry {
            label: "x".into(),
            extractor: "bbv".into(),
            intervals: 10,
            classify_ns: 0,
            intervals_skipped: 0,
            bytes_skipped: 0,
            seek_count: 0,
        };
        assert_eq!(lane.intervals_per_sec(), 0.0);
        let lane = LaneTelemetry {
            label: "x".into(),
            extractor: "bbv".into(),
            intervals: 10,
            classify_ns: 1_000_000_000,
            intervals_skipped: 0,
            bytes_skipped: 0,
            seek_count: 0,
        };
        assert!((lane.intervals_per_sec() - 10.0).abs() < 1e-9);
    }

    /// The sampled-replay keys ride in every lane object, appended after
    /// the original `tpcp-telemetry-v1` keys, and a full replay (no
    /// `set_skip` call) reports them as zeros.
    #[test]
    fn lane_json_carries_skip_keys_append_only() {
        let mut snap = TelemetrySnapshot::default();
        let collector = GroupCollector::new(true, 1);
        collector.set_skip(SkipStats {
            intervals_skipped: 7,
            bytes_skipped: 1234,
            seeks: 3,
        });
        let mut slot = LaneSlot::default();
        slot.add(1_000);
        collector.flush_lane("sampled-lane".into(), "bbv", slot);
        snap.record_group("mcf-v1".into(), collector.into_group(0, 0, false));
        snap.finalize(1);

        let lane = &snap.groups()["mcf-v1"].lanes[0];
        assert_eq!(lane.intervals_skipped, 7);
        assert_eq!(lane.bytes_skipped, 1234);
        assert_eq!(lane.seek_count, 3);

        let json = snap.to_json();
        assert!(
            json.contains("\"intervals_skipped\": 7, \"bytes_skipped\": 1234, \"seek_count\": 3"),
            "{json}"
        );
        // Append-only: the original keys still precede the new ones
        // inside the lane object, and `"label"`/`"name"` safety holds.
        let lane_obj = json.find("\"label\"").unwrap();
        let per_sec = json.find("\"intervals_per_sec\"").unwrap();
        let skipped = json.find("\"intervals_skipped\"").unwrap();
        assert!(lane_obj < per_sec && per_sec < skipped);
        assert!(!json.contains("\"name\""), "{json}");

        // Full replay: zeros, but the keys are always present.
        let full = sample().to_json();
        assert!(
            full.contains("\"intervals_skipped\": 0, \"bytes_skipped\": 0, \"seek_count\": 0"),
            "{full}"
        );
    }
}
