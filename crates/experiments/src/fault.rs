//! Deterministic fault injection for chaos-testing the sweep engine.
//!
//! Only compiled under the `fault-inject` cargo feature. A [`FaultPlan`]
//! describes faults declaratively — truncate a benchmark's cached bytes
//! at a byte offset, fail a cache read, panic a classifier lane at an
//! interval — and builds into a shared [`FaultInjector`] that
//! [`TraceCache::with_faults`](crate::TraceCache::with_faults) and
//! [`Engine::with_faults`](crate::Engine::with_faults) consult at their
//! hook points. Every fault is keyed by benchmark label and carries a
//! bounded trigger count, so a plan injects *exactly* the faults it
//! names, deterministically, regardless of worker scheduling.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Truncate a benchmark's cache bytes to `offset` bytes when loaded.
#[derive(Debug, Clone)]
struct TruncateLoad {
    group: String,
    offset: usize,
    times: u32,
}

/// Make a benchmark's cache-file read fail (treated as a cache miss).
#[derive(Debug, Clone)]
struct FailRead {
    group: String,
    times: u32,
}

/// Panic one classifier lane of a benchmark's group at interval `interval`.
#[derive(Debug, Clone)]
struct PanicLane {
    group: String,
    lane: usize,
    interval: u64,
}

/// Truncate the *validated* bytes handed to a group's replay — the only
/// way to reach the engine's mid-stream decode-error path, which is
/// unreachable through the cache (it validates before returning).
#[derive(Debug, Clone)]
struct TruncateReplay {
    group: String,
    offset: usize,
    times: u32,
}

/// A transport-level fault the chaos client injects into one session's
/// connection to `tpcp-serve`, keyed by the frame number at which it
/// fires. Unlike the sweep faults, these are consulted (not consumed) —
/// the (session, frame) key already makes each deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFault {
    /// Send only the first `keep` bytes of the frame, then close.
    TruncateFrame {
        /// Bytes of the frame (prefix + payload) actually sent.
        keep: usize,
    },
    /// Send a garbage length prefix (declaring an absurd frame size).
    GarbagePrefix,
    /// Send part of the frame, then stop feeding bytes while holding the
    /// connection open (exercises the server's read deadline).
    StalledRead,
    /// Close the connection abruptly instead of sending the frame.
    Disconnect,
}

#[derive(Debug, Clone)]
struct TransportSpec {
    session: String,
    frame: u64,
    fault: TransportFault,
}

/// A declarative, seedable set of faults to inject into one sweep.
///
/// Build with the chained constructors, then [`FaultPlan::build`] into an
/// injector shared between the cache and the engine:
///
/// ```no_run
/// use tpcp_experiments::fault::FaultPlan;
/// use tpcp_experiments::{Engine, SuiteParams, TraceCache};
///
/// let faults = FaultPlan::new()
///     .truncate_load("mcf", 64, 1) // one corrupt read, then healed
///     .panic_lane("gzip/g", 0, 5)
///     .build();
/// let cache = TraceCache::default_location().with_faults(faults.clone());
/// let engine = Engine::new(SuiteParams::quick()).with_faults(faults);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    truncate_load: Vec<TruncateLoad>,
    fail_read: Vec<FailRead>,
    panic_lane: Vec<PanicLane>,
    truncate_replay: Vec<TruncateReplay>,
    transport: Vec<TransportSpec>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Truncates `group`'s cache bytes to `offset` bytes on the next
    /// `times` loads (cached reads *and* freshly encoded buffers, so
    /// `times >= 2` also corrupts the post-quarantine retry).
    pub fn truncate_load(mut self, group: &str, offset: usize, times: u32) -> Self {
        self.truncate_load.push(TruncateLoad {
            group: group.to_owned(),
            offset,
            times,
        });
        self
    }

    /// Fails `group`'s next `times` cache-file reads; the cache treats a
    /// failed read as a miss and re-simulates.
    pub fn fail_read(mut self, group: &str, times: u32) -> Self {
        self.fail_read.push(FailRead {
            group: group.to_owned(),
            times,
        });
        self
    }

    /// Panics `group`'s classifier lane number `lane` (registration
    /// order) when it reaches interval `interval` (0-based).
    pub fn panic_lane(mut self, group: &str, lane: usize, interval: u64) -> Self {
        self.panic_lane.push(PanicLane {
            group: group.to_owned(),
            lane,
            interval,
        });
        self
    }

    /// Truncates the validated bytes handed to `group`'s replay to
    /// `offset` bytes on the next `times` replays, forcing a mid-stream
    /// decode error past the cache's validation.
    pub fn truncate_replay(mut self, group: &str, offset: usize, times: u32) -> Self {
        self.truncate_replay.push(TruncateReplay {
            group: group.to_owned(),
            offset,
            times,
        });
        self
    }

    /// Injects a transport fault into `session`'s connection when the
    /// chaos client is about to send frame number `frame` (0-based).
    pub fn transport(mut self, session: &str, frame: u64, fault: TransportFault) -> Self {
        self.transport.push(TransportSpec {
            session: session.to_owned(),
            frame,
            fault,
        });
        self
    }

    /// A seed-derived plan of transport faults: one pseudo-random fault
    /// per listed session, fired somewhere in that session's first
    /// `frames` frames. Identical seeds yield identical plans.
    pub fn randomized_transport(seed: u64, sessions: &[&str], frames: u64) -> Self {
        let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut plan = Self::new();
        for &session in sessions {
            let frame = next() % frames.max(1);
            let fault = match next() % 4 {
                0 => TransportFault::TruncateFrame {
                    keep: 1 + (next() % 6) as usize,
                },
                1 => TransportFault::GarbagePrefix,
                2 => TransportFault::StalledRead,
                _ => TransportFault::Disconnect,
            };
            plan = plan.transport(session, frame, fault);
        }
        plan
    }

    /// A seed-derived plan: one pseudo-random fault (truncation, failed
    /// read, or lane panic) per listed group. Identical seeds yield
    /// identical plans — randomized chaos runs stay reproducible.
    pub fn randomized(seed: u64, groups: &[&str], lanes_per_group: usize) -> Self {
        let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = move || {
            // splitmix64: full-period, seedable, no external dependency.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut plan = Self::new();
        for &group in groups {
            plan = match next() % 3 {
                0 => plan.truncate_load(group, 8 + (next() % 256) as usize, 1),
                1 => plan.fail_read(group, 1),
                _ => plan.panic_lane(
                    group,
                    (next() as usize) % lanes_per_group.max(1),
                    next() % 32,
                ),
            };
        }
        plan
    }

    /// Freezes the plan into a shareable injector with per-fault
    /// remaining-trigger counters.
    pub fn build(self) -> Arc<FaultInjector> {
        Arc::new(FaultInjector {
            truncate_load: self
                .truncate_load
                .into_iter()
                .map(|f| (f.clone(), AtomicU32::new(f.times)))
                .collect(),
            fail_read: self
                .fail_read
                .into_iter()
                .map(|f| (f.clone(), AtomicU32::new(f.times)))
                .collect(),
            panic_lane: self.panic_lane,
            truncate_replay: self
                .truncate_replay
                .into_iter()
                .map(|f| (f.clone(), AtomicU32::new(f.times)))
                .collect(),
            transport: self.transport,
        })
    }
}

/// A built [`FaultPlan`]: consulted by the cache and engine hook points,
/// decrementing each fault's bounded trigger count atomically.
#[derive(Debug)]
pub struct FaultInjector {
    truncate_load: Vec<(TruncateLoad, AtomicU32)>,
    fail_read: Vec<(FailRead, AtomicU32)>,
    panic_lane: Vec<PanicLane>,
    truncate_replay: Vec<(TruncateReplay, AtomicU32)>,
    transport: Vec<TransportSpec>,
}

/// Atomically consumes one trigger if any remain.
fn consume(remaining: &AtomicU32) -> bool {
    remaining
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
}

impl FaultInjector {
    /// The truncation length to apply to `group`'s loaded cache bytes,
    /// if a truncate-load fault has triggers left. Consumes one trigger.
    pub(crate) fn load_truncation(&self, group: &str) -> Option<usize> {
        self.truncate_load
            .iter()
            .find(|(f, remaining)| f.group == group && consume(remaining))
            .map(|(f, _)| f.offset)
    }

    /// Whether `group`'s next cache-file read should fail. Consumes one
    /// trigger.
    pub(crate) fn read_should_fail(&self, group: &str) -> bool {
        self.fail_read
            .iter()
            .any(|(f, remaining)| f.group == group && consume(remaining))
    }

    /// The interval at which `group`'s lane number `lane` should panic.
    pub(crate) fn lane_panic_at(&self, group: &str, lane: usize) -> Option<u64> {
        self.panic_lane
            .iter()
            .find(|f| f.group == group && f.lane == lane)
            .map(|f| f.interval)
    }

    /// The truncation length to apply to `group`'s replay bytes, if a
    /// truncate-replay fault has triggers left. Consumes one trigger.
    pub(crate) fn replay_truncation(&self, group: &str) -> Option<usize> {
        self.truncate_replay
            .iter()
            .find(|(f, remaining)| f.group == group && consume(remaining))
            .map(|(f, _)| f.offset)
    }

    /// The transport fault (if any) the chaos client should inject when
    /// sending `session`'s frame number `frame`. Deterministic — keyed
    /// lookups, nothing consumed.
    pub fn transport_fault(&self, session: &str, frame: u64) -> Option<TransportFault> {
        self.transport
            .iter()
            .find(|f| f.session == session && f.frame == frame)
            .map(|f| f.fault)
    }

    /// Whether any transport fault targets `session`.
    pub fn targets_session(&self, session: &str) -> bool {
        self.transport.iter().any(|f| f.session == session)
    }
}
