//! Shared classification driver: replay a trace through a classifier.

use tpcp_core::{ClassifierConfig, PhaseClassifier, PhaseId};
use tpcp_metrics::{CovAccumulator, CovSummary, RunAccumulator, RunLengthStats};
use tpcp_trace::{IntervalSource, RecordedTrace};

/// The result of classifying one benchmark trace under one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifiedRun {
    /// Phase ID per interval, in execution order.
    pub ids: Vec<PhaseId>,
    /// CPI per interval (parallel to `ids`).
    pub cpis: Vec<f64>,
    /// Number of real (stable) phase IDs the classifier created.
    pub phases_created: u64,
    /// Fraction of intervals classified into the transition phase.
    pub transition_fraction: f64,
    /// CoV summary of the classification.
    pub cov: CovSummary,
    /// Run-length statistics of the phase ID stream.
    pub runs: RunLengthStats,
}

/// Replays `trace` through a fresh classifier with `config`.
///
/// # Example
///
/// ```
/// use tpcp_core::ClassifierConfig;
/// use tpcp_experiments::run_classifier;
/// use tpcp_trace::{PhaseSpec, RecordedTrace, SyntheticTrace};
///
/// let trace = SyntheticTrace::new(10_000)
///     .phase(PhaseSpec::uniform(0x1000, 4, 1.0))
///     .schedule(&[(0, 20)])
///     .generate();
/// let run = run_classifier(&trace, ClassifierConfig::hpca2005());
/// assert_eq!(run.ids.len(), 20);
/// ```
pub fn run_classifier(trace: &RecordedTrace, config: ClassifierConfig) -> ClassifiedRun {
    let mut classifier = PhaseClassifier::new(config);
    let mut replay = trace.replay();
    let mut ids = Vec::with_capacity(trace.len());
    let mut cpis = Vec::with_capacity(trace.len());
    let mut cov = CovAccumulator::new();
    let mut runs = RunAccumulator::new();
    while let Some(summary) = replay.next_interval(&mut |ev| classifier.observe(ev)) {
        let cpi = summary.cpi();
        let id = classifier.end_interval(cpi);
        ids.push(id);
        cpis.push(cpi);
        cov.observe(id, cpi);
        runs.observe(id);
    }
    ClassifiedRun {
        ids,
        cpis,
        phases_created: classifier.phases_created(),
        transition_fraction: classifier.transition_fraction(),
        cov: cov.finish(),
        runs: runs.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcp_trace::{PhaseSpec, SyntheticTrace};

    fn two_phase_trace() -> RecordedTrace {
        SyntheticTrace::new(10_000)
            .phase(PhaseSpec::uniform(0x1000, 4, 1.0))
            .phase(PhaseSpec::uniform(0x9000, 4, 3.0))
            .schedule(&[(0, 30), (1, 30), (0, 30)])
            .generate()
    }

    #[test]
    fn classification_covers_every_interval() {
        let run = run_classifier(&two_phase_trace(), ClassifierConfig::hpca2005());
        assert_eq!(run.ids.len(), 90);
        assert_eq!(run.cpis.len(), 90);
    }

    #[test]
    fn scripted_phases_are_separated() {
        let run = run_classifier(&two_phase_trace(), ClassifierConfig::hpca2005());
        assert_eq!(run.phases_created, 2);
        // Reappearing phase 0 keeps its ID.
        assert_eq!(run.ids[25], run.ids[85]);
        assert_ne!(run.ids[25], run.ids[45]);
    }

    #[test]
    fn cov_is_low_for_clean_phases() {
        let run = run_classifier(&two_phase_trace(), ClassifierConfig::hpca2005());
        assert!(run.cov.weighted_cov() < 0.05, "{}", run.cov.weighted_cov());
        assert!(run.cov.whole_program_cov() > 0.3);
    }

    #[test]
    fn deterministic_across_calls() {
        let trace = two_phase_trace();
        let a = run_classifier(&trace, ClassifierConfig::hpca2005());
        let b = run_classifier(&trace, ClassifierConfig::hpca2005());
        assert_eq!(a.ids, b.ids);
    }
}
