//! Suite simulation and on-disk trace caching.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use tpcp_trace::{
    decode_trace, encode_trace_with_index, validate_trace, CodecError, RecordedTrace, TraceIndex,
};
use tpcp_workloads::{BenchmarkKind, WorkloadParams};

/// A cache failure the bounded retry could not repair.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheError {
    /// The cached entry was corrupt, was quarantined (renamed
    /// `*.corrupt`), and the freshly re-simulated replacement *still*
    /// failed validation — the one-retry bound is exhausted. Outside
    /// fault injection this means the encoder itself is broken.
    CorruptAfterRetry {
        /// The benchmark label whose trace could not be produced.
        trace: String,
        /// The validation error on the retried buffer.
        error: CodecError,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::CorruptAfterRetry { trace, error } => write!(
                f,
                "trace {trace} still corrupt after quarantine and one re-simulation: {error}"
            ),
        }
    }
}

impl std::error::Error for CacheError {}

/// A successful cache load: the validated encoded buffer and its interval
/// index, plus how the cache produced them — a straight hit, or a
/// (possibly quarantining) miss.
#[derive(Debug, Clone)]
pub struct CacheLoad {
    /// The validated `TPCPTRC2` trace buffer.
    pub bytes: Bytes,
    /// The interval index for `bytes` — loaded from the `.tpcpidx`
    /// sidecar when one validates against the payload, rebuilt (and
    /// re-persisted) otherwise. Always consistent with `bytes`.
    pub index: TraceIndex,
    /// `true` when the buffer came straight from a valid on-disk entry;
    /// `false` when the cache had to simulate (fresh miss or repair).
    pub hit: bool,
    /// `Some(path)` when a corrupt cache entry was renamed `*.corrupt`
    /// and the buffer came from a re-simulation instead.
    pub quarantined: Option<PathBuf>,
    /// `Some(path)` when a corrupt or mismatched index sidecar was
    /// quarantined alongside the payload (`<entry>.tpcpidx.corrupt`).
    pub quarantined_index: Option<PathBuf>,
}

/// Parameters of one suite simulation (everything that affects the traces).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SuiteParams {
    /// The workload parameters shared by all benchmarks.
    pub workload: WorkloadParams,
}

impl SuiteParams {
    /// A reduced-scale suite for tests and quick iterations.
    pub fn quick() -> Self {
        Self {
            workload: WorkloadParams {
                length_scale: 0.05,
                ..Default::default()
            },
        }
    }

    /// A stable fingerprint of the parameters (and the workload model
    /// version), used in cache file names.
    pub fn fingerprint(&self) -> String {
        let w = &self.workload;
        format!(
            "v{}-i{}-s{}-seed{:x}",
            tpcp_workloads::MODEL_VERSION,
            w.interval_size,
            (w.length_scale * 10_000.0).round() as u64,
            w.seed
        )
    }
}

/// An on-disk cache of simulated benchmark traces.
///
/// Simulating the full suite takes minutes; every figure replays the same
/// traces. The cache stores each benchmark's [`RecordedTrace`] in the
/// compact `tpcp-trace` codec under
/// `<dir>/<benchmark>-<fingerprint>.tpcptrc`.
///
/// # Example
///
/// ```no_run
/// use tpcp_experiments::{SuiteParams, TraceCache};
/// use tpcp_workloads::BenchmarkKind;
///
/// let cache = TraceCache::new("target/tpcp-traces");
/// let trace = cache.load_or_simulate(BenchmarkKind::Mcf, &SuiteParams::default());
/// assert!(!trace.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct TraceCache {
    dir: PathBuf,
    #[cfg(feature = "fault-inject")]
    faults: Option<std::sync::Arc<crate::fault::FaultInjector>>,
}

impl TraceCache {
    /// Creates a cache rooted at `dir` (created on first write).
    pub fn new<P: AsRef<Path>>(dir: P) -> Self {
        Self {
            dir: dir.as_ref().to_owned(),
            #[cfg(feature = "fault-inject")]
            faults: None,
        }
    }

    /// The default cache location inside the workspace target directory.
    pub fn default_location() -> Self {
        Self::new("target/tpcp-traces")
    }

    /// Attaches a fault injector: subsequent loads consult it for read
    /// failures and byte truncations (chaos tests only).
    #[cfg(feature = "fault-inject")]
    pub fn with_faults(mut self, faults: std::sync::Arc<crate::fault::FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    fn path_for(&self, kind: BenchmarkKind, params: &SuiteParams) -> PathBuf {
        let safe_name = kind.label().replace('/', "_");
        self.dir
            .join(format!("{safe_name}-{}.tpcptrc", params.fingerprint()))
    }

    /// The interval-index sidecar path next to a benchmark's payload
    /// entry (`<entry>.tpcpidx` instead of `<entry>.tpcptrc`).
    fn index_path_for(&self, kind: BenchmarkKind, params: &SuiteParams) -> PathBuf {
        let safe_name = kind.label().replace('/', "_");
        self.dir
            .join(format!("{safe_name}-{}.tpcpidx", params.fingerprint()))
    }

    /// Loads the benchmark's trace from the cache, simulating and storing
    /// it on a miss.
    ///
    /// Materializes the full [`RecordedTrace`]; replay-only consumers
    /// (the experiment engine) should prefer
    /// [`try_load_bytes_or_simulate`](Self::try_load_bytes_or_simulate)
    /// and stream the encoded buffer instead.
    ///
    /// # Panics
    ///
    /// Panics on [`CacheError`] — unreachable without fault injection
    /// (see [`try_load_bytes_or_simulate`](Self::try_load_bytes_or_simulate)).
    pub fn load_or_simulate(&self, kind: BenchmarkKind, params: &SuiteParams) -> RecordedTrace {
        let bytes = self.load_bytes_or_simulate(kind, params);
        match decode_trace(bytes) {
            Ok(trace) => trace,
            // The buffer passed `validate_trace` moments ago, so a decode
            // failure here means the validator and decoder disagree.
            Err(e) => panic!("validated trace buffer failed to decode: {e}"),
        }
    }

    /// Infallible wrapper around
    /// [`try_load_bytes_or_simulate`](Self::try_load_bytes_or_simulate)
    /// for callers without an error channel.
    ///
    /// # Panics
    ///
    /// Panics on [`CacheError`]: the entry was corrupt *and* the
    /// quarantine-plus-one-retry repair failed, which cannot happen
    /// outside fault injection unless the encoder itself is broken.
    pub fn load_bytes_or_simulate(&self, kind: BenchmarkKind, params: &SuiteParams) -> Bytes {
        match self.try_load_bytes_or_simulate(kind, params) {
            Ok(load) => load.bytes,
            Err(e) => panic!("{e}"),
        }
    }

    /// Loads the benchmark's *encoded* trace buffer from the cache,
    /// simulating, encoding, and storing it on a miss. The returned
    /// buffer is always a valid `TPCPTRC2` trace — cached bytes are
    /// checked with [`validate_trace`] before being returned — so callers
    /// can stream it straight into live consumers with
    /// [`tpcp_trace::StreamingDecoder`] without materializing a
    /// [`RecordedTrace`].
    ///
    /// A corrupt entry (whether the header or a byte mid-stream) is
    /// **quarantined** — renamed `<entry>.corrupt`, preserving the
    /// evidence — and repaired with a bounded retry: one re-simulation.
    /// If the retried buffer still fails validation the error is
    /// returned, never looped on.
    ///
    /// The `.tpcpidx` sidecar travels with the payload at every step:
    ///
    /// - a hit whose sidecar decodes and validates against the payload
    ///   skips the full varint re-walk (the sidecar's checksum ties it to
    ///   exactly these bytes, and it was built by a complete, validating
    ///   decode pass);
    /// - a hit *without* a sidecar rebuilds the index from the payload
    ///   (which doubles as full validation) and re-persists it;
    /// - a corrupt or mismatched sidecar quarantines **index and payload
    ///   together** — a sidecar that lies about its payload makes the
    ///   pair's provenance suspect — and re-simulates once.
    pub fn try_load_bytes_or_simulate(
        &self,
        kind: BenchmarkKind,
        params: &SuiteParams,
    ) -> Result<CacheLoad, CacheError> {
        let path = self.path_for(kind, params);
        let index_path = self.index_path_for(kind, params);
        let mut quarantined = None;
        let mut quarantined_index = None;
        if let Some(bytes) = self.read_entry(kind, &path) {
            let bytes = self.inject_truncation(kind, bytes.into());
            match fs::read(&index_path).ok() {
                Some(sidecar) => {
                    match TraceIndex::decode(&sidecar)
                        .and_then(|ix| ix.validate(&bytes).map(|()| ix))
                    {
                        Ok(index) => {
                            return Ok(CacheLoad {
                                bytes,
                                index,
                                hit: true,
                                quarantined: None,
                                quarantined_index: None,
                            });
                        }
                        Err(_) => {
                            // Corrupt/mismatched sidecar: quarantine the
                            // pair and re-simulate once.
                            quarantined = quarantine(&path);
                            quarantined_index = quarantine(&index_path);
                        }
                    }
                }
                None => {
                    // Cache hit without a sidecar (pre-index entry, or a
                    // lost write): rebuild the index — a full validating
                    // walk — and persist it for the next reader.
                    if let Ok(index) = TraceIndex::build(&bytes) {
                        self.write_atomic(&index_path, &index.encode());
                        return Ok(CacheLoad {
                            bytes,
                            index,
                            hit: true,
                            quarantined: None,
                            quarantined_index: None,
                        });
                    }
                    // Corrupt payload: quarantine it and re-simulate once.
                    quarantined = quarantine(&path);
                }
            }
        }
        let trace = simulate_one(kind, params);
        let (encoded, index) = encode_trace_with_index(&trace);
        if fs::create_dir_all(&self.dir).is_ok() {
            self.write_atomic(&path, &encoded);
            self.write_atomic(&index_path, &index.encode());
        }
        let encoded = self.inject_truncation(kind, encoded);
        // Freshly encoded buffers are well-formed by construction; this
        // pass (negligible next to the simulation that produced them) is
        // the retry bound — if it fails, we report instead of looping.
        match validate_trace(&encoded) {
            Ok(_) => Ok(CacheLoad {
                bytes: encoded,
                index,
                hit: false,
                quarantined,
                quarantined_index,
            }),
            Err(error) => Err(CacheError::CorruptAfterRetry {
                trace: kind.label().to_owned(),
                error,
            }),
        }
    }

    /// Best-effort atomic write: write-to-temp + rename keeps the final
    /// path atomic, so a concurrent reader never observes a half-written
    /// entry and concurrent writers (which produce identical bytes —
    /// simulation is deterministic) race benignly. A read-only target dir
    /// only costs re-simulation next time.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) {
        let tmp = self.dir.join(format!(
            ".{}.{}.{}.tmp",
            path.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
            std::process::id(),
            next_temp_id(),
        ));
        if fs::write(&tmp, bytes).is_ok() && fs::rename(&tmp, path).is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Reads a cache entry, honoring injected read failures (a failed
    /// read is a miss — the caller falls through to re-simulation).
    #[allow(unused_variables)]
    fn read_entry(&self, kind: BenchmarkKind, path: &Path) -> Option<Vec<u8>> {
        #[cfg(feature = "fault-inject")]
        if let Some(faults) = &self.faults {
            if faults.read_should_fail(kind.label()) {
                return None;
            }
        }
        fs::read(path).ok()
    }

    /// Applies an injected byte truncation to a loaded buffer (identity
    /// without the `fault-inject` feature or an attached injector).
    #[allow(unused_variables, unused_mut, clippy::let_and_return)]
    fn inject_truncation(&self, kind: BenchmarkKind, mut bytes: Bytes) -> Bytes {
        #[cfg(feature = "fault-inject")]
        if let Some(faults) = &self.faults {
            if let Some(offset) = faults.load_truncation(kind.label()) {
                bytes = bytes.slice(..offset.min(bytes.len()));
            }
        }
        bytes
    }

    /// Loads or simulates all eleven benchmarks, in parallel (one thread
    /// per benchmark).
    pub fn load_suite(&self, params: &SuiteParams) -> Vec<(BenchmarkKind, RecordedTrace)> {
        let kinds = BenchmarkKind::ALL;
        let mut results: Vec<Option<(BenchmarkKind, RecordedTrace)>> =
            (0..kinds.len()).map(|_| None).collect();
        crossbeam::scope(|scope| {
            for (slot, &kind) in results.iter_mut().zip(kinds.iter()) {
                scope.spawn(move |_| {
                    *slot = Some((kind, self.load_or_simulate(kind, params)));
                });
            }
        })
        .expect("suite simulation threads do not panic");
        results
            .into_iter()
            .map(|r| r.expect("every slot was filled"))
            .collect()
    }
}

/// Quarantines a corrupt cache entry: renames it to `<entry>.corrupt` so
/// the bad bytes stay inspectable and the path is free for the repaired
/// entry. A second corruption of the same entry must not overwrite the
/// first post-mortem (`fs::rename` clobbers on Linux), so when
/// `<entry>.corrupt` already exists the rename targets the first free
/// numbered suffix — `<entry>.corrupt.1`, `.corrupt.2`, … — and gives up
/// past a bounded probe rather than destroy prior evidence. Best-effort —
/// a concurrent quarantine of the same entry (or a read-only directory)
/// loses the rename race benignly.
fn quarantine(path: &Path) -> Option<PathBuf> {
    let mut base = path.as_os_str().to_owned();
    base.push(".corrupt");
    let base = PathBuf::from(base);
    let mut target = base.clone();
    let mut suffix = 0u32;
    while target.exists() {
        suffix += 1;
        if suffix > 999 {
            // Something is churning out corrupt entries faster than anyone
            // can inspect them; refuse to pick suffix 1000 (and beyond)
            // rather than scan the namespace forever.
            return None;
        }
        target = PathBuf::from({
            let mut numbered = base.as_os_str().to_owned();
            numbered.push(format!(".{suffix}"));
            numbered
        });
    }
    fs::rename(path, &target).ok().map(|()| target)
}

/// A process-unique suffix for cache temp files so concurrent misses in
/// the same process never share a temp path.
fn next_temp_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Simulates one benchmark to completion.
pub fn simulate_one(kind: BenchmarkKind, params: &SuiteParams) -> RecordedTrace {
    let benchmark = kind.build(&params.workload);
    RecordedTrace::record(benchmark.simulate(&params.workload))
}

/// A process-shared cache location for tests: all figure tests reuse the
/// same quick-suite traces instead of re-simulating per test. Safe because
/// cache file names embed the full parameter fingerprint and simulation is
/// deterministic (concurrent writers produce identical bytes).
pub fn test_cache() -> TraceCache {
    TraceCache::new(std::env::temp_dir().join("tpcp-shared-test-cache"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> SuiteParams {
        SuiteParams {
            workload: WorkloadParams {
                length_scale: 0.01,
                ..Default::default()
            },
        }
    }

    #[test]
    fn fingerprint_distinguishes_params() {
        let a = SuiteParams::default();
        let b = SuiteParams::quick();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn cache_round_trips() {
        let dir = std::env::temp_dir().join(format!("tpcp-cache-test-{}", std::process::id()));
        let cache = TraceCache::new(&dir);
        let params = tiny_params();
        let first = cache.load_or_simulate(BenchmarkKind::GzipGraphic, &params);
        let second = cache.load_or_simulate(BenchmarkKind::GzipGraphic, &params);
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_misses_agree_and_leave_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("tpcp-cache-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = TraceCache::new(&dir);
        let params = tiny_params();
        let mut traces: Vec<Option<RecordedTrace>> = (0..4).map(|_| None).collect();
        crossbeam::scope(|scope| {
            for slot in traces.iter_mut() {
                let cache = &cache;
                let params = &params;
                scope.spawn(move |_| {
                    *slot = Some(cache.load_or_simulate(BenchmarkKind::Mcf, params));
                });
            }
        })
        .expect("cache race threads do not panic");
        let first = traces[0].as_ref().unwrap();
        assert!(traces.iter().all(|t| t.as_ref().unwrap() == first));
        // Every temp file was either renamed into place or cleaned up.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "leftover temp files: {leftovers:?}");
        // The cached entry decodes cleanly after the race.
        assert_eq!(&cache.load_or_simulate(BenchmarkKind::Mcf, &params), first);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entry_is_resimulated() {
        let dir = std::env::temp_dir().join(format!("tpcp-cache-corrupt-{}", std::process::id()));
        let cache = TraceCache::new(&dir);
        let params = tiny_params();
        let good = cache.load_or_simulate(BenchmarkKind::PerlDiffmail, &params);
        // Corrupt the file.
        let path = cache.path_for(BenchmarkKind::PerlDiffmail, &params);
        std::fs::write(&path, b"garbage").unwrap();
        let again = cache.load_or_simulate(BenchmarkKind::PerlDiffmail, &params);
        assert_eq!(good, again);
        // The corrupt bytes were quarantined for post-mortem, not destroyed.
        let evidence = PathBuf::from(format!("{}.corrupt", path.display()));
        assert_eq!(std::fs::read(&evidence).unwrap(), b"garbage");
        // The repaired entry is valid: a third load hits the cache cleanly.
        assert_eq!(
            cache.load_or_simulate(BenchmarkKind::PerlDiffmail, &params),
            good
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeated_quarantine_preserves_every_post_mortem() {
        let dir = std::env::temp_dir().join(format!("tpcp-cache-requar-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = TraceCache::new(&dir);
        let params = tiny_params();
        let kind = BenchmarkKind::PerlDiffmail;
        let good = cache.load_or_simulate(kind, &params);
        let path = cache.path_for(kind, &params);

        // First corruption: quarantined under the plain `.corrupt` name.
        std::fs::write(&path, b"first corruption").unwrap();
        assert_eq!(cache.load_or_simulate(kind, &params), good);
        let first = PathBuf::from(format!("{}.corrupt", path.display()));
        assert_eq!(std::fs::read(&first).unwrap(), b"first corruption");

        // Second and third corruptions: the plain name is taken, so the
        // rename picks the first free numbered suffix — never clobbering
        // earlier evidence.
        std::fs::write(&path, b"second corruption").unwrap();
        assert_eq!(cache.load_or_simulate(kind, &params), good);
        std::fs::write(&path, b"third corruption").unwrap();
        assert_eq!(cache.load_or_simulate(kind, &params), good);

        assert_eq!(std::fs::read(&first).unwrap(), b"first corruption");
        let second = PathBuf::from(format!("{}.corrupt.1", path.display()));
        assert_eq!(std::fs::read(&second).unwrap(), b"second corruption");
        let third = PathBuf::from(format!("{}.corrupt.2", path.display()));
        assert_eq!(std::fs::read(&third).unwrap(), b"third corruption");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sidecar_written_on_miss_and_trusted_on_hit() {
        let dir = std::env::temp_dir().join(format!("tpcp-cache-idx-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = TraceCache::new(&dir);
        let params = tiny_params();
        let kind = BenchmarkKind::Gcc166;

        let miss = cache.try_load_bytes_or_simulate(kind, &params).unwrap();
        assert!(!miss.hit);
        let index_path = cache.index_path_for(kind, &params);
        assert!(index_path.exists(), "miss persists the sidecar");

        let hit = cache.try_load_bytes_or_simulate(kind, &params).unwrap();
        assert!(hit.hit);
        assert_eq!(hit.index, miss.index, "sidecar round-trips the index");
        assert_eq!(hit.bytes, miss.bytes);
        hit.index.validate(&hit.bytes).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_sidecar_is_rebuilt_on_hit() {
        let dir = std::env::temp_dir().join(format!("tpcp-cache-reidx-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = TraceCache::new(&dir);
        let params = tiny_params();
        let kind = BenchmarkKind::Ammp;

        let miss = cache.try_load_bytes_or_simulate(kind, &params).unwrap();
        let index_path = cache.index_path_for(kind, &params);
        std::fs::remove_file(&index_path).unwrap();

        // A pre-index cache entry still hits; the index is rebuilt from
        // the payload and re-persisted.
        let hit = cache.try_load_bytes_or_simulate(kind, &params).unwrap();
        assert!(hit.hit);
        assert!(hit.quarantined.is_none() && hit.quarantined_index.is_none());
        assert_eq!(hit.index, miss.index);
        assert!(index_path.exists(), "rebuilt sidecar was re-persisted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_sidecar_quarantines_pair_and_converges() {
        let dir = std::env::temp_dir().join(format!("tpcp-cache-idxq-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = TraceCache::new(&dir);
        let params = tiny_params();
        let kind = BenchmarkKind::GccScilab;

        let fresh = cache.try_load_bytes_or_simulate(kind, &params).unwrap();
        let payload_path = cache.path_for(kind, &params);
        let index_path = cache.index_path_for(kind, &params);

        // Flip one byte in the middle of the sidecar: decode must fail
        // its self-checksum, and the load must quarantine BOTH files and
        // converge after the single re-simulation.
        let mut sidecar = std::fs::read(&index_path).unwrap();
        let mid = sidecar.len() / 2;
        sidecar[mid] ^= 0x40;
        std::fs::write(&index_path, &sidecar).unwrap();

        let repaired = cache
            .try_load_bytes_or_simulate(kind, &params)
            .expect("quarantine + one re-simulation converges");
        assert!(!repaired.hit);
        let q_payload = repaired.quarantined.expect("payload quarantined");
        let q_index = repaired.quarantined_index.expect("sidecar quarantined");
        assert!(q_payload.to_string_lossy().ends_with(".tpcptrc.corrupt"));
        assert!(q_index.to_string_lossy().ends_with(".tpcpidx.corrupt"));
        assert_eq!(
            std::fs::read(&q_index).unwrap(),
            sidecar,
            "corrupt sidecar bytes preserved as evidence"
        );
        assert_eq!(repaired.bytes, fresh.bytes, "repair is bit-identical");
        assert_eq!(repaired.index, fresh.index);

        // Converged: the rewritten pair loads cleanly.
        let healed = cache.try_load_bytes_or_simulate(kind, &params).unwrap();
        assert!(healed.hit);
        assert!(healed.quarantined.is_none() && healed.quarantined_index.is_none());
        assert!(payload_path.exists() && index_path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sidecar_from_wrong_payload_is_rejected() {
        let dir = std::env::temp_dir().join(format!("tpcp-cache-xidx-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = TraceCache::new(&dir);
        let params = tiny_params();

        let a = cache
            .try_load_bytes_or_simulate(BenchmarkKind::Mcf, &params)
            .unwrap();
        cache
            .try_load_bytes_or_simulate(BenchmarkKind::Galgel, &params)
            .unwrap();

        // Transplant Galgel's (structurally valid) sidecar onto Mcf: the
        // payload tie must reject it and the pair must re-simulate.
        std::fs::copy(
            cache.index_path_for(BenchmarkKind::Galgel, &params),
            cache.index_path_for(BenchmarkKind::Mcf, &params),
        )
        .unwrap();
        let repaired = cache
            .try_load_bytes_or_simulate(BenchmarkKind::Mcf, &params)
            .unwrap();
        assert!(repaired.quarantined.is_some() && repaired.quarantined_index.is_some());
        assert_eq!(repaired.index, a.index);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn try_load_reports_the_quarantined_path() {
        let dir = std::env::temp_dir().join(format!("tpcp-cache-qrtn-{}", std::process::id()));
        let cache = TraceCache::new(&dir);
        let params = tiny_params();
        let kind = BenchmarkKind::Galgel;

        // A miss simulates; no quarantine involved.
        let fresh = cache
            .try_load_bytes_or_simulate(kind, &params)
            .expect("miss simulates");
        assert!(fresh.quarantined.is_none());

        std::fs::write(cache.path_for(kind, &params), b"not a trace").unwrap();
        let repaired = cache
            .try_load_bytes_or_simulate(kind, &params)
            .expect("quarantine + one re-simulation converges");
        let evidence = repaired.quarantined.expect("corrupt entry was quarantined");
        assert!(
            evidence.to_string_lossy().ends_with(".corrupt"),
            "{evidence:?}"
        );
        assert!(evidence.exists());
        assert_eq!(repaired.bytes, fresh.bytes, "repair is bit-identical");

        // The repaired entry loads cleanly afterwards.
        let healed = cache.try_load_bytes_or_simulate(kind, &params).unwrap();
        assert!(healed.quarantined.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
