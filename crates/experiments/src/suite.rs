//! Suite simulation and on-disk trace caching.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use tpcp_trace::{decode_trace, encode_trace, validate_trace, RecordedTrace};
use tpcp_workloads::{BenchmarkKind, WorkloadParams};

/// Parameters of one suite simulation (everything that affects the traces).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SuiteParams {
    /// The workload parameters shared by all benchmarks.
    pub workload: WorkloadParams,
}

impl SuiteParams {
    /// A reduced-scale suite for tests and quick iterations.
    pub fn quick() -> Self {
        Self {
            workload: WorkloadParams {
                length_scale: 0.05,
                ..Default::default()
            },
        }
    }

    /// A stable fingerprint of the parameters (and the workload model
    /// version), used in cache file names.
    pub fn fingerprint(&self) -> String {
        let w = &self.workload;
        format!(
            "v{}-i{}-s{}-seed{:x}",
            tpcp_workloads::MODEL_VERSION,
            w.interval_size,
            (w.length_scale * 10_000.0).round() as u64,
            w.seed
        )
    }
}

/// An on-disk cache of simulated benchmark traces.
///
/// Simulating the full suite takes minutes; every figure replays the same
/// traces. The cache stores each benchmark's [`RecordedTrace`] in the
/// compact `tpcp-trace` codec under
/// `<dir>/<benchmark>-<fingerprint>.tpcptrc`.
///
/// # Example
///
/// ```no_run
/// use tpcp_experiments::{SuiteParams, TraceCache};
/// use tpcp_workloads::BenchmarkKind;
///
/// let cache = TraceCache::new("target/tpcp-traces");
/// let trace = cache.load_or_simulate(BenchmarkKind::Mcf, &SuiteParams::default());
/// assert!(!trace.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct TraceCache {
    dir: PathBuf,
}

impl TraceCache {
    /// Creates a cache rooted at `dir` (created on first write).
    pub fn new<P: AsRef<Path>>(dir: P) -> Self {
        Self {
            dir: dir.as_ref().to_owned(),
        }
    }

    /// The default cache location inside the workspace target directory.
    pub fn default_location() -> Self {
        Self::new("target/tpcp-traces")
    }

    fn path_for(&self, kind: BenchmarkKind, params: &SuiteParams) -> PathBuf {
        let safe_name = kind.label().replace('/', "_");
        self.dir
            .join(format!("{safe_name}-{}.tpcptrc", params.fingerprint()))
    }

    /// Loads the benchmark's trace from the cache, simulating and storing
    /// it on a miss.
    ///
    /// Materializes the full [`RecordedTrace`]; replay-only consumers
    /// (the experiment engine) should prefer
    /// [`load_bytes_or_simulate`](Self::load_bytes_or_simulate) and stream
    /// the encoded buffer instead.
    pub fn load_or_simulate(&self, kind: BenchmarkKind, params: &SuiteParams) -> RecordedTrace {
        let bytes = self.load_bytes_or_simulate(kind, params);
        decode_trace(bytes).expect("cache buffer was validated or freshly encoded")
    }

    /// Loads the benchmark's *encoded* trace buffer from the cache,
    /// simulating, encoding, and storing it on a miss (or on a corrupt
    /// entry). The returned buffer is always a valid `TPCPTRC2` trace —
    /// cached bytes are checked with [`validate_trace`] before being
    /// returned — so callers can stream it straight into live consumers
    /// with [`tpcp_trace::StreamingDecoder`] without materializing a
    /// [`RecordedTrace`].
    pub fn load_bytes_or_simulate(&self, kind: BenchmarkKind, params: &SuiteParams) -> Bytes {
        let path = self.path_for(kind, params);
        if let Ok(bytes) = fs::read(&path) {
            if validate_trace(&bytes).is_ok() {
                return bytes.into();
            }
            // Corrupt cache entry: fall through and re-simulate.
        }
        let trace = simulate_one(kind, params);
        let encoded = encode_trace(&trace);
        if fs::create_dir_all(&self.dir).is_ok() {
            // Cache writes are best-effort; a read-only target dir only
            // costs re-simulation. Write-to-temp + rename keeps the final
            // path atomic, so a concurrent reader never observes a
            // half-written entry and concurrent writers (which produce
            // identical bytes — simulation is deterministic) race benignly.
            let tmp = self.dir.join(format!(
                ".{}.{}.{}.tmp",
                path.file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default(),
                std::process::id(),
                next_temp_id(),
            ));
            if fs::write(&tmp, &encoded).is_ok() && fs::rename(&tmp, &path).is_err() {
                let _ = fs::remove_file(&tmp);
            }
        }
        encoded
    }

    /// Loads or simulates all eleven benchmarks, in parallel (one thread
    /// per benchmark).
    pub fn load_suite(&self, params: &SuiteParams) -> Vec<(BenchmarkKind, RecordedTrace)> {
        let kinds = BenchmarkKind::ALL;
        let mut results: Vec<Option<(BenchmarkKind, RecordedTrace)>> =
            (0..kinds.len()).map(|_| None).collect();
        crossbeam::scope(|scope| {
            for (slot, &kind) in results.iter_mut().zip(kinds.iter()) {
                scope.spawn(move |_| {
                    *slot = Some((kind, self.load_or_simulate(kind, params)));
                });
            }
        })
        .expect("suite simulation threads do not panic");
        results
            .into_iter()
            .map(|r| r.expect("every slot was filled"))
            .collect()
    }
}

/// A process-unique suffix for cache temp files so concurrent misses in
/// the same process never share a temp path.
fn next_temp_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Simulates one benchmark to completion.
pub fn simulate_one(kind: BenchmarkKind, params: &SuiteParams) -> RecordedTrace {
    let benchmark = kind.build(&params.workload);
    RecordedTrace::record(benchmark.simulate(&params.workload))
}

/// A process-shared cache location for tests: all figure tests reuse the
/// same quick-suite traces instead of re-simulating per test. Safe because
/// cache file names embed the full parameter fingerprint and simulation is
/// deterministic (concurrent writers produce identical bytes).
pub fn test_cache() -> TraceCache {
    TraceCache::new(std::env::temp_dir().join("tpcp-shared-test-cache"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> SuiteParams {
        SuiteParams {
            workload: WorkloadParams {
                length_scale: 0.01,
                ..Default::default()
            },
        }
    }

    #[test]
    fn fingerprint_distinguishes_params() {
        let a = SuiteParams::default();
        let b = SuiteParams::quick();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn cache_round_trips() {
        let dir = std::env::temp_dir().join(format!("tpcp-cache-test-{}", std::process::id()));
        let cache = TraceCache::new(&dir);
        let params = tiny_params();
        let first = cache.load_or_simulate(BenchmarkKind::GzipGraphic, &params);
        let second = cache.load_or_simulate(BenchmarkKind::GzipGraphic, &params);
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_misses_agree_and_leave_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("tpcp-cache-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = TraceCache::new(&dir);
        let params = tiny_params();
        let mut traces: Vec<Option<RecordedTrace>> = (0..4).map(|_| None).collect();
        crossbeam::scope(|scope| {
            for slot in traces.iter_mut() {
                let cache = &cache;
                let params = &params;
                scope.spawn(move |_| {
                    *slot = Some(cache.load_or_simulate(BenchmarkKind::Mcf, params));
                });
            }
        })
        .expect("cache race threads do not panic");
        let first = traces[0].as_ref().unwrap();
        assert!(traces.iter().all(|t| t.as_ref().unwrap() == first));
        // Every temp file was either renamed into place or cleaned up.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "leftover temp files: {leftovers:?}");
        // The cached entry decodes cleanly after the race.
        assert_eq!(&cache.load_or_simulate(BenchmarkKind::Mcf, &params), first);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entry_is_resimulated() {
        let dir = std::env::temp_dir().join(format!("tpcp-cache-corrupt-{}", std::process::id()));
        let cache = TraceCache::new(&dir);
        let params = tiny_params();
        let good = cache.load_or_simulate(BenchmarkKind::PerlDiffmail, &params);
        // Corrupt the file.
        let path = cache.path_for(BenchmarkKind::PerlDiffmail, &params);
        std::fs::write(&path, b"garbage").unwrap();
        let again = cache.load_or_simulate(BenchmarkKind::PerlDiffmail, &params);
        assert_eq!(good, again);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
