//! Reproduction harness for the paper's evaluation (Figures 2–9).
//!
//! Each `figN` module reproduces one figure: it runs the figure's
//! classifier/predictor configurations over the eleven benchmark models,
//! collects the same metrics the paper plots, and renders a table with the
//! same rows and series. `cargo run --release -p tpcp-experiments --bin
//! repro -- all` regenerates everything; EXPERIMENTS.md records
//! paper-vs-measured values.
//!
//! Benchmark traces are simulated once per [`SuiteParams`] and cached on
//! disk (see [`TraceCache`]), mirroring the paper's methodology of
//! profiling with SimpleScalar once and sweeping architectures offline.

// `deny` (not `forbid`) so the one signal-handler FFI site in `shutdown`
// can carry a scoped allow; everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod engine;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod figures;
pub mod report;
pub mod shutdown;
pub mod suite;

pub use classify::{run_classifier, ClassifiedRun};
pub use engine::{
    BbvSink, CacheCounters, Engine, EngineError, EngineStats, FailureCause, FailureReport,
    GroupTelemetry, LaneFailure, LaneTelemetry, Pending, PendingTables, StageNanos, SweepError,
    TelemetrySnapshot,
};
pub use report::Table;
pub use suite::{CacheError, CacheLoad, SuiteParams, TraceCache};
