//! Figure 3: CPI CoV and number of phases vs. accumulator count
//! (signature dimensionality), plus the Whole Program CoV baseline.
//!
//! Paper setup: 32-entry table, 12.5% similarity, no transition phase,
//! dimensionalities 8 / 16 / 32 / 64. Expected shape: 8 dimensions is
//! clearly insufficient (high CoV); 16+ is fine; the whole-program CoV
//! dwarfs every per-phase CoV.

use tpcp_core::ClassifierConfig;

use crate::engine::{Engine, PendingTables};
use crate::figures::{avg, benchmarks};
use crate::report::{pct, Table};
use crate::suite::{SuiteParams, TraceCache};

/// Dimensionalities evaluated by the figure.
pub const DIMS: [usize; 4] = [8, 16, 32, 64];

fn config_for(dims: usize) -> ClassifierConfig {
    ClassifierConfig::builder()
        .accumulators(dims)
        .table_entries(Some(32))
        .similarity_threshold(0.125)
        .min_count(0)
        .adaptive(None)
        .build()
}

/// Registers the figure's classifications on `engine`; the returned
/// closure renders the two panels once the engine has run.
pub fn register(engine: &mut Engine) -> PendingTables {
    let cells: Vec<Vec<_>> = benchmarks()
        .iter()
        .map(|&kind| {
            DIMS.iter()
                .map(|&dims| engine.classified(kind, config_for(dims)))
                .collect()
        })
        .collect();

    Box::new(move || {
        let mut header = vec!["bench".to_owned()];
        header.extend(DIMS.iter().map(|d| format!("{d} dim")));
        header.push("whole program".to_owned());
        let mut cov_table = Table::new(
            "Figure 3 (left): CPI CoV (%) vs number of signature counters",
            header,
        );
        let mut header2 = vec!["bench".to_owned()];
        header2.extend(DIMS.iter().map(|d| format!("{d} dim")));
        let mut phases_table = Table::new(
            "Figure 3 (right): number of phases vs signature counters",
            header2,
        );

        let mut cov_cols: Vec<Vec<f64>> = vec![Vec::new(); DIMS.len() + 1];
        let mut phase_cols: Vec<Vec<f64>> = vec![Vec::new(); DIMS.len()];

        for (kind, row_cells) in benchmarks().iter().zip(&cells) {
            let mut cov_row = vec![kind.label().to_owned()];
            let mut phase_row = vec![kind.label().to_owned()];
            let mut whole = 0.0;
            for (i, cell) in row_cells.iter().enumerate() {
                let run = cell.take();
                cov_cols[i].push(run.cov.weighted_cov());
                phase_cols[i].push(run.phases_created as f64);
                cov_row.push(pct(run.cov.weighted_cov()));
                phase_row.push(run.phases_created.to_string());
                whole = run.cov.whole_program_cov();
            }
            cov_cols[DIMS.len()].push(whole);
            cov_row.push(pct(whole));
            cov_table.row(cov_row);
            phases_table.row(phase_row);
        }

        let mut cov_avg = vec!["avg".to_owned()];
        for col in &cov_cols {
            cov_avg.push(pct(avg(col)));
        }
        cov_table.row(cov_avg);
        let mut phase_avg = vec!["avg".to_owned()];
        for col in &phase_cols {
            phase_avg.push(format!("{:.0}", avg(col)));
        }
        phases_table.row(phase_avg);

        vec![cov_table, phases_table]
    })
}

/// Runs the experiment and renders the figure's two panels.
pub fn run(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    let mut engine = Engine::new(*params);
    let pending = register(&mut engine);
    engine.run(cache);
    pending()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_whole_program_column() {
        let cache = crate::suite::test_cache();
        let tables = run(&cache, &SuiteParams::quick());
        assert_eq!(tables.len(), 2);
        assert!(tables[0].render().contains("whole program"));
    }
}
