//! One module per reproduced figure. Each exposes
//! `run(&TraceCache, &SuiteParams) -> Vec<Table>`; the `repro` binary
//! dispatches on figure name and prints/saves the tables.

pub mod ablations;
pub mod extractor_cmp;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod metric_pred;
pub mod multi_metric;
pub mod simpoint_cmp;

use tpcp_workloads::BenchmarkKind;

/// Average of a per-benchmark metric column.
pub(crate) fn avg(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// The benchmark list shared by every figure.
pub(crate) fn benchmarks() -> [BenchmarkKind; 11] {
    BenchmarkKind::ALL
}
