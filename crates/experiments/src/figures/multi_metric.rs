//! Multi-metric homogeneity: the claim behind code-signature phase
//! classification (Section 2: intervals in the same phase "had similar
//! behavior across all architectural metrics examined") checked on our
//! substrate — per-phase CoV vs whole-program CoV for CPI and five
//! microarchitectural event rates.

use tpcp_core::{PhaseClassifier, PhaseId};
use tpcp_metrics::VectorCovAccumulator;
use tpcp_trace::{IntervalSource, MetricCounts};

use crate::figures::benchmarks;
use crate::figures::fig7::section5_classifier;
use crate::report::{pct, Table};
use crate::suite::{SuiteParams, TraceCache};

/// Runs the experiment: one table of weighted per-phase CoV per metric and
/// one of whole-program CoV per metric.
pub fn run(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    let mut labels = vec!["cpi".to_owned()];
    labels.extend(MetricCounts::LABELS.iter().map(|l| format!("{l} mpki")));

    let mut header = vec!["bench".to_owned()];
    header.extend(labels.iter().cloned());
    let mut phase_table = Table::new(
        "Multi-metric: per-phase weighted CoV (%) under the hpca2005 classifier",
        header.clone(),
    );
    let mut whole_table = Table::new("Multi-metric: whole-program CoV (%)", header);

    for kind in benchmarks() {
        let trace = cache.load_or_simulate(kind, params);
        let mut classifier = PhaseClassifier::new(section5_classifier());
        let mut acc = VectorCovAccumulator::new(labels.clone());
        let mut replay = trace.replay();
        while let Some(summary) = replay.next_interval(&mut |ev| classifier.observe(ev)) {
            let phase: PhaseId = classifier.end_interval(summary.cpi());
            let mut values = vec![summary.cpi()];
            values.extend(summary.mpki());
            acc.observe(phase, &values);
        }
        let s = acc.finish();
        let mut phase_row = vec![kind.label().to_owned()];
        let mut whole_row = vec![kind.label().to_owned()];
        for m in 0..labels.len() {
            // CoV of a low rate is counting noise (a handful of stray
            // misses yields hundreds of percent); mask metrics this
            // benchmark exercises below ~2 events per kilo-instruction.
            if m > 0 && s.whole_program_mean(m) < 2.0 {
                phase_row.push("-".to_owned());
                whole_row.push("-".to_owned());
            } else {
                phase_row.push(pct(s.weighted_cov(m)));
                whole_row.push(pct(s.whole_program_cov(m)));
            }
        }
        phase_table.row(phase_row);
        whole_table.row(whole_row);
    }
    vec![phase_table, whole_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_six_metrics() {
        let cache = crate::suite::test_cache();
        let tables = run(&cache, &SuiteParams::quick());
        assert_eq!(tables.len(), 2);
        assert!(tables[0].render().contains("dl1 miss mpki"));
        assert_eq!(tables[0].len(), 11);
    }
}
