//! Multi-metric homogeneity: the claim behind code-signature phase
//! classification (Section 2: intervals in the same phase "had similar
//! behavior across all architectural metrics examined") checked on our
//! substrate — per-phase CoV vs whole-program CoV for CPI and five
//! microarchitectural event rates.

use tpcp_metrics::VectorCovAccumulator;
use tpcp_trace::MetricCounts;

use crate::engine::{Engine, PendingTables};
use crate::figures::benchmarks;
use crate::figures::fig7::section5_classifier;
use crate::report::{pct, Table};
use crate::suite::{SuiteParams, TraceCache};

/// Registers one metric-vector accumulator probe per benchmark on the
/// shared Section 5 classification; the returned closure renders the two
/// tables once the engine has run.
pub fn register(engine: &mut Engine) -> PendingTables {
    let cells: Vec<_> = benchmarks()
        .iter()
        .map(|&kind| {
            engine.probe(
                kind,
                section5_classifier(),
                VectorCovAccumulator::cpi_mpki(),
                |acc, _| acc.finish(),
            )
        })
        .collect();

    Box::new(move || {
        let mut labels = vec!["cpi".to_owned()];
        labels.extend(MetricCounts::LABELS.iter().map(|l| format!("{l} mpki")));

        let mut header = vec!["bench".to_owned()];
        header.extend(labels.iter().cloned());
        let mut phase_table = Table::new(
            "Multi-metric: per-phase weighted CoV (%) under the hpca2005 classifier",
            header.clone(),
        );
        let mut whole_table = Table::new("Multi-metric: whole-program CoV (%)", header);

        for (kind, cell) in benchmarks().iter().zip(&cells) {
            let s = cell.take();
            let mut phase_row = vec![kind.label().to_owned()];
            let mut whole_row = vec![kind.label().to_owned()];
            for m in 0..labels.len() {
                // CoV of a low rate is counting noise (a handful of stray
                // misses yields hundreds of percent); mask metrics this
                // benchmark exercises below ~2 events per kilo-instruction.
                if m > 0 && s.whole_program_mean(m) < 2.0 {
                    phase_row.push("-".to_owned());
                    whole_row.push("-".to_owned());
                } else {
                    phase_row.push(pct(s.weighted_cov(m)));
                    whole_row.push(pct(s.whole_program_cov(m)));
                }
            }
            phase_table.row(phase_row);
            whole_table.row(whole_row);
        }
        vec![phase_table, whole_table]
    })
}

/// Runs the experiment: one table of weighted per-phase CoV per metric and
/// one of whole-program CoV per metric.
pub fn run(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    let mut engine = Engine::new(*params);
    let pending = register(&mut engine);
    engine.run(cache);
    pending()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_six_metrics() {
        let cache = crate::suite::test_cache();
        let tables = run(&cache, &SuiteParams::quick());
        assert_eq!(tables.len(), 2);
        assert!(tables[0].render().contains("dl1 miss mpki"));
        assert_eq!(tables[0].len(), 11);
    }
}
