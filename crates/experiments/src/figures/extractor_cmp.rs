//! Cross-technique comparison: the same classification machinery driven
//! by each feature back-end ([`ExtractorKind::ALL`]) over every workload
//! model, in one replay pass.
//!
//! Three panels per the transition-phase evaluation's axes: number of
//! phases created, fraction of execution classified into the transition
//! phase, and CPI homogeneity (weighted CoV) of the resulting phases.
//! The BBV column is the paper's architecture; working-set and
//! branch-mix columns show how much of the phase structure survives when
//! the signature captures *which* code ran or *how its branches went*
//! instead of how much of each code region executed.
//!
//! Expected shape: BBV gives the tightest CPI homogeneity; the
//! working-set bitmap finds similar phase boundaries with coarser CPI
//! spread (it cannot separate phases that touch the same code at
//! different intensities); branch-mix sits between, separating
//! data-dependent behaviour changes BBV merges.

use tpcp_core::{ClassifierConfig, ExtractorKind};

use crate::engine::{Engine, PendingTables};
use crate::figures::{avg, benchmarks};
use crate::report::{pct, Table};
use crate::suite::{SuiteParams, TraceCache};

/// The compared back-ends, in [`ExtractorKind::ALL`] order.
pub const EXTRACTORS: [ExtractorKind; 3] = ExtractorKind::ALL;

/// The paper's configuration with only the feature back-end swapped, so
/// column differences are attributable to the extractor alone.
fn config_for(kind: ExtractorKind) -> ClassifierConfig {
    ClassifierConfig::builder()
        .accumulators(16)
        .table_entries(Some(32))
        .extractor(kind)
        .build()
}

/// Registers the comparison's classifications on `engine`; the returned
/// closure renders the three panels once the engine has run. All three
/// lanes of a benchmark join one trace group, so the engine replays each
/// trace once and shares nothing *across* extractors — each `(kind,
/// dims)` shape gets its own front-end.
pub fn register(engine: &mut Engine) -> PendingTables {
    let cells: Vec<Vec<_>> = benchmarks()
        .iter()
        .map(|&kind| {
            EXTRACTORS
                .iter()
                .map(|&extractor| engine.classified(kind, config_for(extractor)))
                .collect()
        })
        .collect();

    Box::new(move || {
        let mut header = vec!["bench".to_owned()];
        header.extend(EXTRACTORS.iter().map(|e| e.label().to_owned()));

        let mut phases_table = Table::new(
            "Extractor comparison (left): number of phases",
            header.clone(),
        );
        let mut trans_table = Table::new(
            "Extractor comparison (middle): transition time (%)",
            header.clone(),
        );
        let mut cov_table = Table::new("Extractor comparison (right): CPI CoV (%)", header);

        let n = EXTRACTORS.len();
        let mut phase_cols = vec![Vec::new(); n];
        let mut trans_cols = vec![Vec::new(); n];
        let mut cov_cols = vec![Vec::new(); n];

        for (kind, row_cells) in benchmarks().iter().zip(&cells) {
            let mut rows: [Vec<String>; 3] = [
                vec![kind.label().to_owned()],
                vec![kind.label().to_owned()],
                vec![kind.label().to_owned()],
            ];
            for (i, cell) in row_cells.iter().enumerate() {
                let run = cell.take();
                let cov = run.cov.weighted_cov();
                phase_cols[i].push(run.phases_created as f64);
                trans_cols[i].push(run.transition_fraction);
                cov_cols[i].push(cov);
                rows[0].push(run.phases_created.to_string());
                rows[1].push(pct(run.transition_fraction));
                rows[2].push(pct(cov));
            }
            let [r0, r1, r2] = rows;
            phases_table.row(r0);
            trans_table.row(r1);
            cov_table.row(r2);
        }

        let avg_row = |cols: &[Vec<f64>], as_pct: bool| {
            let mut row = vec!["avg".to_owned()];
            for col in cols {
                row.push(if as_pct {
                    pct(avg(col))
                } else {
                    format!("{:.0}", avg(col))
                });
            }
            row
        };
        phases_table.row(avg_row(&phase_cols, false));
        trans_table.row(avg_row(&trans_cols, true));
        cov_table.row(avg_row(&cov_cols, true));

        vec![phases_table, trans_table, cov_table]
    })
}

/// Runs the comparison and renders its three panels.
pub fn run(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    let mut engine = Engine::new(*params);
    let pending = register(&mut engine);
    engine.run(cache);
    pending()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_three_panels_in_one_replay() {
        let cache = crate::suite::test_cache();
        let mut engine = Engine::new(SuiteParams::quick());
        let pending = register(&mut engine);
        let stats = engine.run(&cache);
        let tables = pending();
        assert_eq!(tables.len(), 3);
        assert!(
            stats.max_replays_per_trace() <= 1,
            "three extractors must share one replay pass"
        );
        assert!(stats.failure_report().is_empty());
        // Every lane's back-end is visible in the telemetry.
        let labels: std::collections::BTreeSet<&str> = stats
            .telemetry()
            .groups()
            .values()
            .flat_map(|g| g.lanes.iter().map(|l| l.extractor.as_str()))
            .collect();
        for kind in EXTRACTORS {
            assert!(
                labels.contains(kind.label()),
                "missing {kind} in {labels:?}"
            );
        }
    }
}
