//! Ablation experiments for the design choices DESIGN.md calls out. These
//! go beyond the paper's figures: each isolates one mechanism the paper
//! introduces (or inherits) and quantifies its effect on classification
//! quality with everything else held at the paper's configuration.

use tpcp_core::{BitSelectionMode, ClassifierConfig};
use tpcp_predict::{NextPhaseBreakdown, NextPhasePredictor, PredictorKind};
use tpcp_workloads::WorkloadParams;

use crate::classify::ClassifiedRun;
use crate::engine::{Engine, Pending, PendingTables};
use crate::figures::{avg, benchmarks};
use crate::report::{pct, Table};
use crate::suite::{SuiteParams, TraceCache};

fn run_registered(
    cache: &TraceCache,
    params: &SuiteParams,
    register: impl FnOnce(&mut Engine) -> PendingTables,
) -> Vec<Table> {
    let mut engine = Engine::new(*params);
    let pending = register(&mut engine);
    engine.run(cache);
    pending()
}

/// Registers the interval-size sweep; the returned closure renders its
/// panels once the engine has run.
pub fn register_interval_sweep(engine: &mut Engine) -> PendingTables {
    let params = *engine.params();
    let sizes = [
        params.workload.interval_size / 4,
        params.workload.interval_size,
        params.workload.interval_size * 4,
    ];
    let cells: Vec<Vec<Pending<ClassifiedRun>>> = benchmarks()
        .iter()
        .map(|&kind| {
            sizes
                .iter()
                .map(|&size| {
                    let swept = SuiteParams {
                        workload: WorkloadParams {
                            interval_size: size,
                            ..params.workload
                        },
                    };
                    engine.classified_at(kind, swept, ClassifierConfig::hpca2005())
                })
                .collect()
        })
        .collect();

    Box::new(move || {
        let mut header = vec!["bench".to_owned()];
        header.extend(sizes.iter().map(|s| format!("{}k", s / 1000)));
        let mut cov_table = Table::new("Ablation: CPI CoV (%) vs interval size", header.clone());
        let mut trans_table = Table::new("Ablation: transition time (%) vs interval size", header);

        let mut cov_cols = vec![Vec::new(); sizes.len()];
        let mut trans_cols = vec![Vec::new(); sizes.len()];
        for (kind, row_cells) in benchmarks().iter().zip(&cells) {
            let mut cov_row = vec![kind.label().to_owned()];
            let mut trans_row = vec![kind.label().to_owned()];
            for (i, cell) in row_cells.iter().enumerate() {
                let run = cell.take();
                cov_cols[i].push(run.cov.weighted_cov());
                trans_cols[i].push(run.transition_fraction);
                cov_row.push(pct(run.cov.weighted_cov()));
                trans_row.push(pct(run.transition_fraction));
            }
            cov_table.row(cov_row);
            trans_table.row(trans_row);
        }
        let mut cov_avg = vec!["avg".to_owned()];
        let mut trans_avg = vec!["avg".to_owned()];
        for i in 0..sizes.len() {
            cov_avg.push(pct(avg(&cov_cols[i])));
            trans_avg.push(pct(avg(&trans_cols[i])));
        }
        cov_table.row(cov_avg);
        trans_table.row(trans_avg);
        vec![cov_table, trans_table]
    })
}

/// Interval-size sweep: the paper fixes 10M instructions but notes the
/// technique works from 1M to 100M. We sweep around our calibrated 1M.
pub fn interval_sweep(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    run_registered(cache, params, register_interval_sweep)
}

/// Registers the signature-resolution sweep; the returned closure renders
/// its panels once the engine has run.
pub fn register_bits_sweep(engine: &mut Engine) -> PendingTables {
    let bits = [2u32, 4, 6, 8, 10];
    let cells: Vec<Vec<Pending<ClassifiedRun>>> = benchmarks()
        .iter()
        .map(|&kind| {
            bits.iter()
                .map(|&b| {
                    let cfg = ClassifierConfig::builder().bits_per_dim(b).build();
                    engine.classified(kind, cfg)
                })
                .collect()
        })
        .collect();

    Box::new(move || {
        let mut header = vec!["bench".to_owned()];
        header.extend(bits.iter().map(|b| format!("{b} bits")));
        let mut cov_table = Table::new(
            "Ablation: CPI CoV (%) vs bits per dimension",
            header.clone(),
        );
        let mut ph_table = Table::new(
            "Ablation: number of phases vs bits per dimension",
            header.clone(),
        );
        let mut trans_table = Table::new(
            "Ablation: transition time (%) vs bits per dimension",
            header,
        );
        let mut cov_cols = vec![Vec::new(); bits.len()];
        let mut ph_cols = vec![Vec::new(); bits.len()];
        let mut trans_cols = vec![Vec::new(); bits.len()];
        for (kind, row_cells) in benchmarks().iter().zip(&cells) {
            let mut cov_row = vec![kind.label().to_owned()];
            let mut ph_row = vec![kind.label().to_owned()];
            let mut trans_row = vec![kind.label().to_owned()];
            for (i, cell) in row_cells.iter().enumerate() {
                let run = cell.take();
                cov_cols[i].push(run.cov.weighted_cov());
                ph_cols[i].push(run.phases_created as f64);
                trans_cols[i].push(run.transition_fraction);
                cov_row.push(pct(run.cov.weighted_cov()));
                ph_row.push(run.phases_created.to_string());
                trans_row.push(pct(run.transition_fraction));
            }
            cov_table.row(cov_row);
            ph_table.row(ph_row);
            trans_table.row(trans_row);
        }
        let mut cov_avg = vec!["avg".to_owned()];
        let mut ph_avg = vec!["avg".to_owned()];
        let mut trans_avg = vec!["avg".to_owned()];
        for i in 0..bits.len() {
            cov_avg.push(pct(avg(&cov_cols[i])));
            ph_avg.push(format!("{:.0}", avg(&ph_cols[i])));
            trans_avg.push(pct(avg(&trans_cols[i])));
        }
        cov_table.row(cov_avg);
        ph_table.row(ph_avg);
        trans_table.row(trans_avg);
        vec![cov_table, ph_table, trans_table]
    })
}

/// Signature resolution sweep: the paper found fewer than 6 bits per
/// counter classifies poorly and more than 8 adds nothing (Section 4.2).
pub fn bits_sweep(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    run_registered(cache, params, register_bits_sweep)
}

/// Registers the match-policy comparison; the returned closure renders
/// its table once the engine has run.
pub fn register_match_policy(engine: &mut Engine) -> PendingTables {
    let cells: Vec<_> = benchmarks()
        .iter()
        .map(|&kind| {
            let best =
                engine.classified(kind, ClassifierConfig::builder().best_match(true).build());
            let first =
                engine.classified(kind, ClassifierConfig::builder().best_match(false).build());
            (best, first)
        })
        .collect();

    Box::new(move || {
        let mut table = Table::new(
            "Ablation: best-match vs first-match (CPI CoV % / #phases)",
            vec![
                "bench".to_owned(),
                "best CoV".to_owned(),
                "first CoV".to_owned(),
                "best #ph".to_owned(),
                "first #ph".to_owned(),
            ],
        );
        let mut best_covs = Vec::new();
        let mut first_covs = Vec::new();
        for (kind, (best_cell, first_cell)) in benchmarks().iter().zip(&cells) {
            let best = best_cell.take();
            let first = first_cell.take();
            best_covs.push(best.cov.weighted_cov());
            first_covs.push(first.cov.weighted_cov());
            table.row(vec![
                kind.label().to_owned(),
                pct(best.cov.weighted_cov()),
                pct(first.cov.weighted_cov()),
                best.phases_created.to_string(),
                first.phases_created.to_string(),
            ]);
        }
        table.row(vec![
            "avg".to_owned(),
            pct(avg(&best_covs)),
            pct(avg(&first_covs)),
            String::new(),
            String::new(),
        ]);
        vec![table]
    })
}

/// Best-match vs first-match table search (Section 4.1, step 3: "choosing
/// the phase with the most similar signature improves the homogeneity").
pub fn match_policy(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    run_registered(cache, params, register_match_policy)
}

/// Registers the bit-selection-mode comparison; the returned closure
/// renders its table once the engine has run.
pub fn register_selection_mode(engine: &mut Engine) -> PendingTables {
    let modes = [
        ("dynamic", BitSelectionMode::Dynamic),
        // Roughly right for 1M-instruction intervals with 16 counters.
        ("static@12", BitSelectionMode::Static { low_bit: 12 }),
        // The prior work's bits 14–21 were tuned for 10M intervals with 32
        // counters; at our scale they sit too high.
        ("static@14", BitSelectionMode::Static { low_bit: 14 }),
        // Far too low: counters saturate the selected bits.
        ("static@2", BitSelectionMode::Static { low_bit: 2 }),
    ];
    let cells: Vec<Vec<Pending<ClassifiedRun>>> = benchmarks()
        .iter()
        .map(|&kind| {
            modes
                .iter()
                .map(|&(_, mode)| {
                    let cfg = ClassifierConfig::builder().bit_selection(mode).build();
                    engine.classified(kind, cfg)
                })
                .collect()
        })
        .collect();

    Box::new(move || {
        let mut header = vec!["bench".to_owned()];
        header.extend(modes.iter().map(|(n, _)| (*n).to_owned()));
        let mut table = Table::new("Ablation: CPI CoV (%) vs bit-selection mode", header);
        let mut cols = vec![Vec::new(); modes.len()];
        for (kind, row_cells) in benchmarks().iter().zip(&cells) {
            let mut row = vec![kind.label().to_owned()];
            for (i, cell) in row_cells.iter().enumerate() {
                let run = cell.take();
                cols[i].push(run.cov.weighted_cov());
                row.push(pct(run.cov.weighted_cov()));
            }
            table.row(row);
        }
        let mut avg_row = vec!["avg".to_owned()];
        for col in &cols {
            avg_row.push(pct(avg(col)));
        }
        table.row(avg_row);
        vec![table]
    })
}

/// Dynamic vs static bit selection (Section 4.2): a static selection tuned
/// for one interval length degrades when the scale changes; the dynamic
/// selection adapts.
pub fn selection_mode(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    run_registered(cache, params, register_selection_mode)
}

/// Registers the last-value confidence sweep; the returned closure renders
/// its table once the engine has run.
pub fn register_confidence_sweep(engine: &mut Engine) -> PendingTables {
    let shapes: [(u32, u8); 6] = [(1, 1), (2, 2), (2, 3), (3, 4), (3, 6), (3, 7)];
    let cells: Vec<Vec<Pending<NextPhaseBreakdown>>> = benchmarks()
        .iter()
        .map(|&kind| {
            shapes
                .iter()
                .map(|&(bits, threshold)| {
                    let p = NextPhasePredictor::new(
                        PredictorKind::last_value().with_lv_counter(bits, threshold),
                    );
                    engine.probe(kind, ClassifierConfig::hpca2005(), p, |p, _| p.breakdown())
                })
                .collect()
        })
        .collect();

    Box::new(move || {
        let mut table = Table::new(
            "Ablation: last-value confidence sweep (accuracy on covered vs coverage)",
            vec![
                "counter".to_owned(),
                "coverage %".to_owned(),
                "acc on covered %".to_owned(),
                "overall acc %".to_owned(),
            ],
        );
        let mut totals: Vec<NextPhaseBreakdown> = vec![NextPhaseBreakdown::default(); shapes.len()];
        for row_cells in &cells {
            for (slot, cell) in totals.iter_mut().zip(row_cells) {
                let b = cell.take();
                slot.correct_lv_conf += b.correct_lv_conf;
                slot.correct_lv_unconf += b.correct_lv_unconf;
                slot.incorrect_lv_unconf += b.incorrect_lv_unconf;
                slot.incorrect_lv_conf += b.incorrect_lv_conf;
            }
        }
        for (&(bits, threshold), b) in shapes.iter().zip(&totals) {
            let covered = b.correct_lv_conf + b.incorrect_lv_conf;
            let total = b.total().max(1);
            let coverage = covered as f64 / total as f64;
            let acc_covered = if covered == 0 {
                0.0
            } else {
                b.correct_lv_conf as f64 / covered as f64
            };
            table.row(vec![
                format!("{bits}-bit/thr{threshold}"),
                pct(coverage),
                pct(acc_covered),
                pct(b.accuracy()),
            ]);
        }
        vec![table]
    })
}

/// Confidence counter sweep for last-value prediction: accuracy on covered
/// (confident) predictions vs coverage, across counter shapes. The paper
/// reports "80% accuracy with 70% coverage" for its 3-bit/threshold-6
/// configuration.
pub fn confidence_sweep(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    run_registered(cache, params, register_confidence_sweep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cache(_tag: &str) -> (TraceCache, SuiteParams) {
        (crate::suite::test_cache(), SuiteParams::quick())
    }

    #[test]
    fn bits_sweep_runs() {
        let (cache, params) = quick_cache("bits");
        let tables = bits_sweep(&cache, &params);
        assert_eq!(tables.len(), 3, "CoV + #phases + transition panels");
        assert!(tables.iter().all(|t| t.len() == 12));
    }

    #[test]
    fn match_policy_runs() {
        let (cache, params) = quick_cache("match");
        assert_eq!(match_policy(&cache, &params).len(), 1);
    }

    #[test]
    fn confidence_sweep_has_monotone_coverage() {
        let (cache, params) = quick_cache("conf");
        let csv = confidence_sweep(&cache, &params)[0].to_csv();
        // Higher thresholds => lower (or equal) coverage, reading rows in
        // increasing-threshold order within the 3-bit family.
        let rows: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert_eq!(rows.len(), 6);
        assert!(rows[4] >= rows[5], "thr6 coverage >= thr7: {rows:?}");
    }
}
