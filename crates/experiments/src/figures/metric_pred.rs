//! Phase-ID-based vs direct metric prediction — the related-work
//! comparison of Section 2 (Duesterwald et al., PACT'03).
//!
//! Duesterwald et al. predict the next value of a hardware metric
//! directly; this paper predicts a phase ID from which any per-phase
//! metric can be looked up. This experiment predicts next-interval CPI
//! three ways — last value, EWMA, and phase-indexed (per-phase running
//! mean selected by the predicted phase) — and reports the relative mean
//! absolute error of each.

use tpcp_predict::{EvaluatedMetric, EwmaMetric, LastValueMetric, PhaseIndexedMetric};

use crate::engine::{Engine, PendingTables};
use crate::figures::benchmarks;
use crate::figures::fig7::section5_classifier;
use crate::report::{pct, Table};
use crate::suite::{SuiteParams, TraceCache};

/// Registers the three metric-predictor probes per benchmark on the shared
/// Section 5 classification; the returned closure renders the error table
/// once the engine has run.
pub fn register(engine: &mut Engine) -> PendingTables {
    let cells: Vec<_> = benchmarks()
        .iter()
        .map(|&kind| {
            let config = section5_classifier();
            let lv = engine.probe(
                kind,
                config,
                EvaluatedMetric::new(LastValueMetric::new()),
                |m, _| m.error().relative_error(),
            );
            let ewma = engine.probe(
                kind,
                config,
                EvaluatedMetric::new(EwmaMetric::new(0.5)),
                |m, _| m.error().relative_error(),
            );
            let pi = engine.probe(
                kind,
                config,
                EvaluatedMetric::new(PhaseIndexedMetric::new()),
                |m, _| m.error().relative_error(),
            );
            [lv, ewma, pi]
        })
        .collect();

    Box::new(move || {
        let mut table = Table::new(
            "Related work: next-interval CPI prediction, relative MAE (%)",
            vec![
                "bench".to_owned(),
                "last value".to_owned(),
                "ewma(0.5)".to_owned(),
                "phase-indexed".to_owned(),
            ],
        );
        let mut sums = [0.0f64; 3];
        for (kind, row_cells) in benchmarks().iter().zip(&cells) {
            let rel: Vec<f64> = row_cells.iter().map(|c| c.take()).collect();
            for (s, r) in sums.iter_mut().zip(&rel) {
                *s += r;
            }
            table.row(vec![
                kind.label().to_owned(),
                pct(rel[0]),
                pct(rel[1]),
                pct(rel[2]),
            ]);
        }
        table.row(vec![
            "avg".to_owned(),
            pct(sums[0] / 11.0),
            pct(sums[1] / 11.0),
            pct(sums[2] / 11.0),
        ]);
        vec![table]
    })
}

/// Runs the comparison and renders the error table.
pub fn run(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    let mut engine = Engine::new(*params);
    let pending = register(&mut engine);
    engine.run(cache);
    pending()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_three_predictors() {
        let cache = crate::suite::test_cache();
        let tables = run(&cache, &SuiteParams::quick());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 12);
        assert!(tables[0].render().contains("phase-indexed"));
    }
}
