//! Phase-ID-based vs direct metric prediction — the related-work
//! comparison of Section 2 (Duesterwald et al., PACT'03).
//!
//! Duesterwald et al. predict the next value of a hardware metric
//! directly; this paper predicts a phase ID from which any per-phase
//! metric can be looked up. This experiment predicts next-interval CPI
//! three ways — last value, EWMA, and phase-indexed (per-phase running
//! mean selected by the predicted phase) — and reports the relative mean
//! absolute error of each.

use tpcp_predict::{
    EwmaMetric, LastValueMetric, MetricError, MetricPredictor, PhaseIndexedMetric,
};

use crate::classify::run_classifier;
use crate::figures::benchmarks;
use crate::figures::fig7::section5_classifier;
use crate::report::{pct, Table};
use crate::suite::{SuiteParams, TraceCache};

/// Runs the comparison and renders the error table.
pub fn run(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    let mut table = Table::new(
        "Related work: next-interval CPI prediction, relative MAE (%)",
        vec![
            "bench".to_owned(),
            "last value".to_owned(),
            "ewma(0.5)".to_owned(),
            "phase-indexed".to_owned(),
        ],
    );
    let mut sums = [0.0f64; 3];
    for kind in benchmarks() {
        let trace = cache.load_or_simulate(kind, params);
        let run = run_classifier(&trace, section5_classifier());

        let mut lv = LastValueMetric::new();
        let mut ewma = EwmaMetric::new(0.5);
        let mut pi = PhaseIndexedMetric::new();
        let mut errs = [MetricError::new(), MetricError::new(), MetricError::new()];
        for (&phase, &cpi) in run.ids.iter().zip(&run.cpis) {
            let preds = [lv.predict(), ewma.predict(), pi.predict()];
            for (err, pred) in errs.iter_mut().zip(preds) {
                if let Some(p) = pred {
                    err.record(p, cpi);
                }
            }
            lv.observe(phase, cpi);
            ewma.observe(phase, cpi);
            pi.observe(phase, cpi);
        }
        let rel: Vec<f64> = errs.iter().map(MetricError::relative_error).collect();
        for (s, r) in sums.iter_mut().zip(&rel) {
            *s += r;
        }
        table.row(vec![
            kind.label().to_owned(),
            pct(rel[0]),
            pct(rel[1]),
            pct(rel[2]),
        ]);
    }
    table.row(vec![
        "avg".to_owned(),
        pct(sums[0] / 11.0),
        pct(sums[1] / 11.0),
        pct(sums[2] / 11.0),
    ]);
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_three_predictors() {
        let cache = crate::suite::test_cache();
        let tables = run(&cache, &SuiteParams::quick());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 12);
        assert!(tables[0].render().contains("phase-indexed"));
    }
}
