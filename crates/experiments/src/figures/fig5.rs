//! Figure 5: average stable and transition phase lengths (in intervals),
//! with standard deviations.
//!
//! Paper setup: 16 accumulators, 32-entry table, 25% similarity, min-count
//! 8. Expected shape: stable runs are much longer than transition runs and
//! have far larger variability; gcc is the exception with short stable
//! runs; perl/diffmail and gzip/graphic have exceptionally long stable
//! phases.

use tpcp_core::ClassifierConfig;

use crate::engine::{Engine, PendingTables};
use crate::figures::{avg, benchmarks};
use crate::report::{f2, Table};
use crate::suite::{SuiteParams, TraceCache};

fn config() -> ClassifierConfig {
    ClassifierConfig::builder()
        .accumulators(16)
        .table_entries(Some(32))
        .similarity_threshold(0.25)
        .min_count(8)
        .adaptive(None)
        .build()
}

/// Registers the figure's classifications on `engine`; the returned
/// closure renders the phase length table once the engine has run.
pub fn register(engine: &mut Engine) -> PendingTables {
    let cells: Vec<_> = benchmarks()
        .iter()
        .map(|&kind| engine.classified(kind, config()))
        .collect();

    Box::new(move || {
        let mut table = Table::new(
            "Figure 5: average phase lengths in intervals (std dev)",
            vec![
                "bench".to_owned(),
                "stable len".to_owned(),
                "stable dev".to_owned(),
                "trans len".to_owned(),
                "trans dev".to_owned(),
            ],
        );
        let mut stable_means = Vec::new();
        let mut trans_means = Vec::new();
        for (kind, cell) in benchmarks().iter().zip(&cells) {
            let run = cell.take();
            stable_means.push(run.runs.stable_mean());
            trans_means.push(run.runs.transition_mean());
            table.row(vec![
                kind.label().to_owned(),
                f2(run.runs.stable_mean()),
                f2(run.runs.stable_std_dev()),
                f2(run.runs.transition_mean()),
                f2(run.runs.transition_std_dev()),
            ]);
        }
        table.row(vec![
            "average".to_owned(),
            f2(avg(&stable_means)),
            String::new(),
            f2(avg(&trans_means)),
            String::new(),
        ]);
        vec![table]
    })
}

/// Runs the experiment and renders the phase length table.
pub fn run(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    let mut engine = Engine::new(*params);
    let pending = register(&mut engine);
    engine.run(cache);
    pending()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_length_table() {
        let cache = crate::suite::test_cache();
        let tables = run(&cache, &SuiteParams::quick());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 12);
    }
}
