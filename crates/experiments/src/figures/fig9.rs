//! Figure 9: run-length class distribution and length-class prediction.
//!
//! Left panel: for each benchmark, the fraction of phase runs falling into
//! each length class (1–15 / 16–127 / 128–1023 / ≥1024 intervals),
//! transition phase included. Right panel: the misprediction rate of the
//! RLE-2 length-class predictor with hysteresis.
//!
//! Expected shape: most programs have ≥90% of their runs in the two
//! smallest classes; gzip and perl transition into long phases much more
//! often; overall misprediction rates are low (single digits).

use tpcp_predict::{LengthClassPredictor, RunLengthClass};

use crate::classify::run_classifier;
use crate::figures::benchmarks;
use crate::figures::fig7::section5_classifier;
use crate::report::{pct, Table};
use crate::suite::{SuiteParams, TraceCache};

/// Runs the experiment and renders the figure's two panels.
pub fn run(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    let mut dist_header = vec!["bench".to_owned()];
    dist_header.extend(RunLengthClass::ALL.iter().map(|c| c.label().to_owned()));
    let mut dist_table = Table::new(
        "Figure 9 (left): percentage of run lengths per class",
        dist_header,
    );
    let mut misp_table = Table::new(
        "Figure 9 (right): length-class misprediction rate (%)",
        vec!["bench".to_owned(), "misprediction".to_owned()],
    );

    let mut misp_sum = 0.0;
    for kind in benchmarks() {
        let trace = cache.load_or_simulate(kind, params);
        let run = run_classifier(&trace, section5_classifier());

        // Left panel: class histogram over all runs.
        let hist = run
            .runs
            .class_histogram(&RunLengthClass::ALL, RunLengthClass::from_length);
        let total: u64 = hist.iter().sum();
        let mut row = vec![kind.label().to_owned()];
        for &count in &hist {
            row.push(pct(count as f64 / total.max(1) as f64));
        }
        dist_table.row(row);

        // Right panel: the RLE-2 length-class predictor.
        let mut predictor = LengthClassPredictor::new(32, 4);
        for &id in &run.ids {
            predictor.observe(id);
        }
        let rate = predictor.misprediction_rate();
        misp_sum += rate;
        misp_table.row(vec![kind.label().to_owned(), pct(rate)]);
    }
    misp_table.row(vec!["avg".to_owned(), pct(misp_sum / 11.0)]);

    vec![dist_table, misp_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_both_panels() {
        let cache = crate::suite::test_cache();
        let tables = run(&cache, &SuiteParams::quick());
        assert_eq!(tables.len(), 2);
        // Distribution rows sum to ~100%.
        let csv = tables[0].to_csv();
        let line = csv.lines().nth(1).unwrap();
        let sum: f64 = line
            .split(',')
            .skip(1)
            .map(|v| v.parse::<f64>().unwrap())
            .sum();
        assert!((sum - 100.0).abs() < 0.5, "row sums to {sum}");
    }
}
