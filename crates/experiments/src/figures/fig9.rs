//! Figure 9: run-length class distribution and length-class prediction.
//!
//! Left panel: for each benchmark, the fraction of phase runs falling into
//! each length class (1–15 / 16–127 / 128–1023 / ≥1024 intervals),
//! transition phase included. Right panel: the misprediction rate of the
//! RLE-2 length-class predictor with hysteresis.
//!
//! Expected shape: most programs have ≥90% of their runs in the two
//! smallest classes; gzip and perl transition into long phases much more
//! often; overall misprediction rates are low (single digits).

use tpcp_predict::{LengthClassPredictor, RunLengthClass};

use crate::engine::{Engine, PendingTables};
use crate::figures::benchmarks;
use crate::figures::fig7::section5_classifier;
use crate::report::{pct, Table};
use crate::suite::{SuiteParams, TraceCache};

/// Registers the figure's classifications and length-class probes on
/// `engine`; the returned closure renders the two panels once the engine
/// has run.
pub fn register(engine: &mut Engine) -> PendingTables {
    let cells: Vec<_> = benchmarks()
        .iter()
        .map(|&kind| {
            let run = engine.classified(kind, section5_classifier());
            let misp = engine.probe(
                kind,
                section5_classifier(),
                LengthClassPredictor::new(32, 4),
                |p, _| p.misprediction_rate(),
            );
            (run, misp)
        })
        .collect();

    Box::new(move || {
        let mut dist_header = vec!["bench".to_owned()];
        dist_header.extend(RunLengthClass::ALL.iter().map(|c| c.label().to_owned()));
        let mut dist_table = Table::new(
            "Figure 9 (left): percentage of run lengths per class",
            dist_header,
        );
        let mut misp_table = Table::new(
            "Figure 9 (right): length-class misprediction rate (%)",
            vec!["bench".to_owned(), "misprediction".to_owned()],
        );

        let mut misp_sum = 0.0;
        for (kind, (run_cell, misp_cell)) in benchmarks().iter().zip(&cells) {
            let run = run_cell.take();

            // Left panel: class histogram over all runs.
            let hist = run
                .runs
                .class_histogram(&RunLengthClass::ALL, RunLengthClass::from_length);
            let total: u64 = hist.iter().sum();
            let mut row = vec![kind.label().to_owned()];
            for &count in &hist {
                row.push(pct(count as f64 / total.max(1) as f64));
            }
            dist_table.row(row);

            // Right panel: the RLE-2 length-class predictor.
            let rate = misp_cell.take();
            misp_sum += rate;
            misp_table.row(vec![kind.label().to_owned(), pct(rate)]);
        }
        misp_table.row(vec!["avg".to_owned(), pct(misp_sum / 11.0)]);

        vec![dist_table, misp_table]
    })
}

/// Runs the experiment and renders the figure's two panels.
pub fn run(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    let mut engine = Engine::new(*params);
    let pending = register(&mut engine);
    engine.run(cache);
    pending()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_both_panels() {
        let cache = crate::suite::test_cache();
        let tables = run(&cache, &SuiteParams::quick());
        assert_eq!(tables.len(), 2);
        // Distribution rows sum to ~100%.
        let csv = tables[0].to_csv();
        let line = csv.lines().nth(1).unwrap();
        let sum: f64 = line
            .split(',')
            .skip(1)
            .map(|v| v.parse::<f64>().unwrap())
            .sum();
        assert!((sum - 100.0).abs() < 0.5, "row sums to {sum}");
    }
}
