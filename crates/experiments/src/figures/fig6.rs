//! Figure 6: static vs. dynamic (adaptive) similarity thresholds — CPI
//! CoV, number of phases, and transition time for static 25% / 12.5%
//! thresholds and dynamic 25% thresholds with 50% / 25% / 12.5%
//! performance deviation thresholds.
//!
//! Expected shape: dynamic thresholds lower the CoV for benchmarks whose
//! phases hide heterogeneous behaviour behind similar signatures (mcf,
//! perl/splitmail) at a modest cost in extra phases and transition time,
//! while leaving already-homogeneous benchmarks (gzip/graphic, galgel)
//! essentially unchanged.

use tpcp_core::{AdaptiveConfig, ClassifierConfig};

use crate::engine::{Engine, PendingTables};
use crate::figures::{avg, benchmarks};
use crate::report::{pct, Table};
use crate::suite::{SuiteParams, TraceCache};

/// The figure's configurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Config {
    /// Display label.
    pub label: &'static str,
    /// Base similarity threshold.
    pub similarity: f64,
    /// Deviation threshold for dynamic configs; `None` = static.
    pub deviation: Option<f64>,
}

/// The five configurations the figure compares.
pub const CONFIGS: [Fig6Config; 5] = [
    Fig6Config {
        label: "25% static",
        similarity: 0.25,
        deviation: None,
    },
    Fig6Config {
        label: "12.5% static",
        similarity: 0.125,
        deviation: None,
    },
    Fig6Config {
        label: "25% dyn+50% dev",
        similarity: 0.25,
        deviation: Some(0.50),
    },
    Fig6Config {
        label: "25% dyn+25% dev",
        similarity: 0.25,
        deviation: Some(0.25),
    },
    Fig6Config {
        label: "25% dyn+12.5% dev",
        similarity: 0.25,
        deviation: Some(0.125),
    },
];

fn config_for(c: &Fig6Config) -> ClassifierConfig {
    ClassifierConfig::builder()
        .accumulators(16)
        .table_entries(Some(32))
        .similarity_threshold(c.similarity)
        .min_count(8)
        .adaptive(c.deviation.map(|deviation_threshold| AdaptiveConfig {
            deviation_threshold,
        }))
        .build()
}

/// Registers the figure's classifications on `engine`; the returned
/// closure renders the three panels once the engine has run.
pub fn register(engine: &mut Engine) -> PendingTables {
    let cells: Vec<Vec<_>> = benchmarks()
        .iter()
        .map(|&kind| {
            CONFIGS
                .iter()
                .map(|c| engine.classified(kind, config_for(c)))
                .collect()
        })
        .collect();

    Box::new(move || {
        let mut header = vec!["bench".to_owned()];
        header.extend(CONFIGS.iter().map(|c| c.label.to_owned()));
        let mut cov_table = Table::new("Figure 6 (top): CPI CoV (%)", header.clone());
        let mut phases_table = Table::new("Figure 6 (middle): number of phases", header.clone());
        let mut trans_table = Table::new("Figure 6 (bottom): transition time (%)", header);

        let n = CONFIGS.len();
        let mut cov_cols = vec![Vec::new(); n];
        let mut phase_cols = vec![Vec::new(); n];
        let mut trans_cols = vec![Vec::new(); n];

        for (kind, row_cells) in benchmarks().iter().zip(&cells) {
            let mut cov_row = vec![kind.label().to_owned()];
            let mut phase_row = vec![kind.label().to_owned()];
            let mut trans_row = vec![kind.label().to_owned()];
            for (i, cell) in row_cells.iter().enumerate() {
                let run = cell.take();
                cov_cols[i].push(run.cov.weighted_cov());
                phase_cols[i].push(run.phases_created as f64);
                trans_cols[i].push(run.transition_fraction);
                cov_row.push(pct(run.cov.weighted_cov()));
                phase_row.push(run.phases_created.to_string());
                trans_row.push(pct(run.transition_fraction));
            }
            cov_table.row(cov_row);
            phases_table.row(phase_row);
            trans_table.row(trans_row);
        }

        let mut cov_avg = vec!["avg".to_owned()];
        let mut phase_avg = vec!["avg".to_owned()];
        let mut trans_avg = vec!["avg".to_owned()];
        for i in 0..n {
            cov_avg.push(pct(avg(&cov_cols[i])));
            phase_avg.push(format!("{:.0}", avg(&phase_cols[i])));
            trans_avg.push(pct(avg(&trans_cols[i])));
        }
        cov_table.row(cov_avg);
        phases_table.row(phase_avg);
        trans_table.row(trans_avg);

        vec![cov_table, phases_table, trans_table]
    })
}

/// Runs the experiment and renders the figure's three panels.
pub fn run(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    let mut engine = Engine::new(*params);
    let pending = register(&mut engine);
    engine.run(cache);
    pending()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_three_panels() {
        let cache = crate::suite::test_cache();
        let tables = run(&cache, &SuiteParams::quick());
        assert_eq!(tables.len(), 3);
    }
}
