//! Figure 8: phase change prediction — the five-way breakdown (confident
//! correct / unconfident correct / tag miss / unconfident incorrect /
//! confident incorrect) for Markov, RLE, Last-4, Top-N, and perfect
//! predictors, evaluated only at phase changes.
//!
//! Expected shape: plain Markov/RLE predicts only ~20% of changes;
//! Last-4/Top-4 variants reach 40–60%; confidence slashes confident
//! mispredictions at a steep coverage cost; perfect Markov caps out around
//! 80% due to cold-start (first-sight) changes.

use tpcp_predict::{
    ChangeBreakdown, ChangeEvaluator, ChangePolicy, HistoryKind, PerfectMarkov,
    PhaseChangePredictor,
};

use crate::engine::{Engine, PendingTables};
use crate::figures::benchmarks;
use crate::figures::fig7::section5_classifier;
use crate::report::{pct, Table};
use crate::suite::{SuiteParams, TraceCache};

/// One evaluated predictor variant.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Variant {
    /// Display label.
    pub label: &'static str,
    /// History indexing.
    pub kind: HistoryKind,
    /// Prediction policy.
    pub policy: ChangePolicy,
    /// Table entries (always 4-way).
    pub entries: usize,
    /// Whether the 1-bit entry confidence gates predictions.
    pub confidence: bool,
}

/// The table-based predictor lineup (perfect predictors are separate).
pub fn variant_lineup() -> Vec<Fig8Variant> {
    use ChangePolicy::{LastK, MostRecent, TopK};
    use HistoryKind::{Markov, Rle};
    vec![
        Fig8Variant {
            label: "Markov-2",
            kind: Markov(2),
            policy: MostRecent,
            entries: 32,
            confidence: true,
        },
        Fig8Variant {
            label: "Markov-2 NoConf",
            kind: Markov(2),
            policy: MostRecent,
            entries: 32,
            confidence: false,
        },
        Fig8Variant {
            label: "128 Entry Markov-2",
            kind: Markov(2),
            policy: MostRecent,
            entries: 128,
            confidence: true,
        },
        Fig8Variant {
            label: "Last4 Markov-2",
            kind: Markov(2),
            policy: LastK(4),
            entries: 32,
            confidence: true,
        },
        Fig8Variant {
            label: "Last4 Markov-1",
            kind: Markov(1),
            policy: LastK(4),
            entries: 32,
            confidence: true,
        },
        Fig8Variant {
            label: "Top1 Markov-2",
            kind: Markov(2),
            policy: TopK(1),
            entries: 32,
            confidence: true,
        },
        Fig8Variant {
            label: "Top4 Markov-1",
            kind: Markov(1),
            policy: TopK(4),
            entries: 32,
            confidence: true,
        },
        Fig8Variant {
            label: "Top4 Markov-2",
            kind: Markov(2),
            policy: TopK(4),
            entries: 32,
            confidence: true,
        },
        Fig8Variant {
            label: "RLE-2",
            kind: Rle(2),
            policy: MostRecent,
            entries: 32,
            confidence: true,
        },
        Fig8Variant {
            label: "128 Entry RLE-2",
            kind: Rle(2),
            policy: MostRecent,
            entries: 128,
            confidence: true,
        },
        Fig8Variant {
            label: "Last4 RLE-2",
            kind: Rle(2),
            policy: LastK(4),
            entries: 32,
            confidence: true,
        },
        Fig8Variant {
            label: "Last4 RLE-1",
            kind: Rle(1),
            policy: LastK(4),
            entries: 32,
            confidence: true,
        },
        Fig8Variant {
            label: "Top1 RLE-2",
            kind: Rle(2),
            policy: TopK(1),
            entries: 32,
            confidence: true,
        },
        Fig8Variant {
            label: "Top4 RLE-2",
            kind: Rle(2),
            policy: TopK(4),
            entries: 32,
            confidence: true,
        },
    ]
}

/// Registers one change-evaluator probe per (benchmark, variant) plus the
/// perfect-Markov probes, all on the shared Section 5 classification; the
/// returned closure sums the breakdowns and renders the table once the
/// engine has run.
pub fn register(engine: &mut Engine) -> PendingTables {
    let lineup = variant_lineup();
    let variant_cells: Vec<Vec<_>> = benchmarks()
        .iter()
        .map(|&kind| {
            lineup
                .iter()
                .map(|v| {
                    let e = ChangeEvaluator::new(PhaseChangePredictor::new(
                        v.kind,
                        v.policy,
                        v.confidence,
                        v.entries,
                        4,
                    ));
                    engine.probe(kind, section5_classifier(), e, |e, _| e.breakdown())
                })
                .collect()
        })
        .collect();
    let perfect_cells: Vec<Vec<_>> = benchmarks()
        .iter()
        .map(|&kind| {
            [1usize, 2]
                .iter()
                .map(|&order| {
                    let p = PerfectMarkov::new(HistoryKind::Markov(order));
                    engine.probe(kind, section5_classifier(), p, |p, _| p.counts())
                })
                .collect()
        })
        .collect();

    Box::new(move || {
        let mut totals: Vec<ChangeBreakdown> = vec![ChangeBreakdown::default(); lineup.len()];
        let mut perfect1 = (0u64, 0u64);
        let mut perfect2 = (0u64, 0u64);
        for (row_cells, perfect_row) in variant_cells.iter().zip(&perfect_cells) {
            for (slot, cell) in totals.iter_mut().zip(row_cells) {
                let b = cell.take();
                slot.conf_correct += b.conf_correct;
                slot.unconf_correct += b.unconf_correct;
                slot.tag_misses += b.tag_misses;
                slot.unconf_incorrect += b.unconf_incorrect;
                slot.conf_incorrect += b.conf_incorrect;
            }
            for (acc, cell) in [&mut perfect1, &mut perfect2].into_iter().zip(perfect_row) {
                let (c, t) = cell.take();
                acc.0 += c;
                acc.1 += t;
            }
        }

        let mut table = Table::new(
            "Figure 8: phase change prediction (% of phase changes, all benchmarks)",
            vec![
                "predictor".to_owned(),
                "conf correct".to_owned(),
                "unconf correct".to_owned(),
                "tag miss".to_owned(),
                "unconf incorrect".to_owned(),
                "conf incorrect".to_owned(),
                "correct total".to_owned(),
            ],
        );
        for (v, b) in lineup.iter().zip(&totals) {
            let t = b.total().max(1) as f64;
            table.row(vec![
                v.label.to_owned(),
                pct(b.conf_correct as f64 / t),
                pct(b.unconf_correct as f64 / t),
                pct(b.tag_misses as f64 / t),
                pct(b.unconf_incorrect as f64 / t),
                pct(b.conf_incorrect as f64 / t),
                pct(b.correct_fraction()),
            ]);
        }
        for (label, (c, t)) in [
            ("Perfect Markov-1", perfect1),
            ("Perfect Markov-2", perfect2),
        ] {
            let frac = if t == 0 { 0.0 } else { c as f64 / t as f64 };
            table.row(vec![
                label.to_owned(),
                pct(frac),
                "0.0".to_owned(),
                "0.0".to_owned(),
                "0.0".to_owned(),
                pct(1.0 - frac),
                pct(frac),
            ]);
        }
        vec![table]
    })
}

/// Runs every variant over every benchmark's phase-change stream.
pub fn run(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    let mut engine = Engine::new(*params);
    let pending = register(&mut engine);
    engine.run(cache);
    pending()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_covers_paper_variants() {
        let labels: Vec<_> = variant_lineup().iter().map(|v| v.label).collect();
        assert!(labels.contains(&"128 Entry Markov-2"));
        assert!(labels.contains(&"Top4 Markov-1"));
        assert!(labels.contains(&"Last4 RLE-2"));
        assert!(labels.contains(&"Top1 RLE-2"));
    }

    #[test]
    fn quick_run_includes_perfect_rows() {
        let cache = crate::suite::test_cache();
        let tables = run(&cache, &SuiteParams::quick());
        let rendered = tables[0].render();
        assert!(rendered.contains("Perfect Markov-1"));
        assert!(rendered.contains("Perfect Markov-2"));
    }
}
