//! Figure 4: the transition phase evaluation — CPI CoV, number of phases,
//! transition time, and last-value misprediction rate across similarity
//! thresholds {12.5%, 25%} and min-count thresholds {0, 4, 8}.
//!
//! Expected shape: the transition phase reduces the number of phase IDs
//! from hundreds to tens; min-count 8 at 25% similarity puts ~6% of
//! execution (avg) in the transition phase (much more for gcc/scilab);
//! last-value mispredictions drop versus the min-count-0 baseline; the
//! 25% + min-8 configuration is the best balance.

use tpcp_core::{ClassifierConfig, PhaseId};

use crate::engine::{Engine, PendingTables};
use crate::figures::{avg, benchmarks};
use crate::report::{pct, Table};
use crate::suite::{SuiteParams, TraceCache};

/// The figure's configurations: `(similarity, min count)`.
pub const CONFIGS: [(f64, u8); 5] = [(0.125, 0), (0.125, 4), (0.125, 8), (0.25, 4), (0.25, 8)];

fn config_for(similarity: f64, min_count: u8) -> ClassifierConfig {
    ClassifierConfig::builder()
        .accumulators(16)
        .table_entries(Some(32))
        .similarity_threshold(similarity)
        .min_count(min_count)
        .adaptive(None)
        .build()
}

fn config_label(similarity: f64, min_count: u8) -> String {
    format!("{}%+{}min", similarity * 100.0, min_count)
}

/// Last-value misprediction rate over a phase ID stream: the fraction of
/// interval transitions whose next phase differs from the current one.
pub fn last_value_misprediction_rate(ids: &[PhaseId]) -> f64 {
    if ids.len() < 2 {
        return 0.0;
    }
    let misses = ids.windows(2).filter(|w| w[0] != w[1]).count();
    misses as f64 / (ids.len() - 1) as f64
}

/// Registers the figure's classifications on `engine`; the returned
/// closure renders the four panels once the engine has run.
pub fn register(engine: &mut Engine) -> PendingTables {
    let cells: Vec<Vec<_>> = benchmarks()
        .iter()
        .map(|&kind| {
            CONFIGS
                .iter()
                .map(|&(similarity, min_count)| {
                    engine.classified(kind, config_for(similarity, min_count))
                })
                .collect()
        })
        .collect();

    Box::new(move || {
        let mut header = vec!["bench".to_owned()];
        header.extend(CONFIGS.iter().map(|&(s, m)| config_label(s, m)));

        let mut cov_table = Table::new("Figure 4 (top left): CPI CoV (%)", header.clone());
        let mut phases_table = Table::new("Figure 4 (top right): number of phases", header.clone());
        let mut trans_table = Table::new(
            "Figure 4 (bottom left): transition time (%)",
            header.clone(),
        );
        let mut misp_table = Table::new(
            "Figure 4 (bottom right): last-value misprediction rate (%)",
            header,
        );

        let n = CONFIGS.len();
        let mut cov_cols = vec![Vec::new(); n];
        let mut phase_cols = vec![Vec::new(); n];
        let mut trans_cols = vec![Vec::new(); n];
        let mut misp_cols = vec![Vec::new(); n];

        for (kind, row_cells) in benchmarks().iter().zip(&cells) {
            let mut rows: [Vec<String>; 4] = [
                vec![kind.label().to_owned()],
                vec![kind.label().to_owned()],
                vec![kind.label().to_owned()],
                vec![kind.label().to_owned()],
            ];
            for (i, cell) in row_cells.iter().enumerate() {
                let run = cell.take();
                let cov = run.cov.weighted_cov();
                let misp = last_value_misprediction_rate(&run.ids);
                cov_cols[i].push(cov);
                phase_cols[i].push(run.phases_created as f64);
                trans_cols[i].push(run.transition_fraction);
                misp_cols[i].push(misp);
                rows[0].push(pct(cov));
                rows[1].push(run.phases_created.to_string());
                rows[2].push(pct(run.transition_fraction));
                rows[3].push(pct(misp));
            }
            let [r0, r1, r2, r3] = rows;
            cov_table.row(r0);
            phases_table.row(r1);
            trans_table.row(r2);
            misp_table.row(r3);
        }

        let avg_row = |cols: &[Vec<f64>], as_pct: bool| {
            let mut row = vec!["avg".to_owned()];
            for col in cols {
                row.push(if as_pct {
                    pct(avg(col))
                } else {
                    format!("{:.0}", avg(col))
                });
            }
            row
        };
        cov_table.row(avg_row(&cov_cols, true));
        phases_table.row(avg_row(&phase_cols, false));
        trans_table.row(avg_row(&trans_cols, true));
        misp_table.row(avg_row(&misp_cols, true));

        vec![cov_table, phases_table, trans_table, misp_table]
    })
}

/// Runs the experiment and renders the figure's four panels.
pub fn run(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    let mut engine = Engine::new(*params);
    let pending = register(&mut engine);
    engine.run(cache);
    pending()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misprediction_rate_counts_changes() {
        let ids: Vec<PhaseId> = [1u32, 1, 2, 2, 3]
            .iter()
            .map(|&v| PhaseId::new(v))
            .collect();
        assert!((last_value_misprediction_rate(&ids) - 0.5).abs() < 1e-12);
        assert_eq!(last_value_misprediction_rate(&ids[..1]), 0.0);
        assert_eq!(last_value_misprediction_rate(&[]), 0.0);
    }

    #[test]
    fn quick_run_produces_four_panels() {
        let cache = crate::suite::test_cache();
        let tables = run(&cache, &SuiteParams::quick());
        assert_eq!(tables.len(), 4);
    }
}
