//! The Section 4.4 / Section 7 comparison: online classification quality
//! vs. the offline SimPoint baseline.
//!
//! The paper claims the online classifier's CPI CoV and phase counts are
//! "comparable to the results of the offline phase classification
//! algorithm used in SimPoint". This experiment classifies each benchmark
//! both ways and tabulates CoV and phase counts side by side.

use tpcp_core::PhaseId;
use tpcp_metrics::CovAccumulator;
use tpcp_simpoint::{SimPointClassifier, SimPointConfig};
use tpcp_trace::BbvTrace;

use crate::classify::run_classifier;
use crate::figures::benchmarks;
use crate::figures::fig7::section5_classifier;
use crate::report::{pct, Table};
use crate::suite::{SuiteParams, TraceCache};

/// The SimPoint use case end-to-end: pick weighted simulation points per
/// benchmark and compare the CPI estimated from the points alone against
/// the true whole-program CPI.
pub fn estimate(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    use tpcp_simpoint::{RandomProjection, SimPointConfig, SimPoints};
    let mut table = Table::new(
        "SimPoint estimation: whole-program CPI from weighted points",
        vec![
            "bench".to_owned(),
            "points".to_owned(),
            "true CPI".to_owned(),
            "estimated".to_owned(),
            "error %".to_owned(),
        ],
    );
    for kind in benchmarks() {
        let trace = cache.load_or_simulate(kind, params);
        let bbvs = BbvTrace::collect(trace.replay());
        let cfg = SimPointConfig::default();
        let result = tpcp_simpoint::SimPointClassifier::new(cfg).classify(&bbvs);
        let projection = RandomProjection::new(cfg.projected_dims, cfg.seed);
        let points = SimPoints::select(&bbvs, &result, &projection);
        let truth = SimPoints::true_cpi(&bbvs);
        let estimated = points.estimate_cpi(&bbvs);
        let error = if truth == 0.0 {
            0.0
        } else {
            (estimated - truth).abs() / truth
        };
        table.row(vec![
            kind.label().to_owned(),
            points.points.len().to_string(),
            format!("{truth:.3}"),
            format!("{estimated:.3}"),
            pct(error),
        ]);
    }
    vec![table]
}

/// Runs both classifiers over every benchmark and renders the comparison.
pub fn run(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    let mut table = Table::new(
        "Section 4.4: online classifier vs offline SimPoint",
        vec![
            "bench".to_owned(),
            "online CoV%".to_owned(),
            "online #ph".to_owned(),
            "simpoint CoV%".to_owned(),
            "simpoint k".to_owned(),
        ],
    );
    for kind in benchmarks() {
        let trace = cache.load_or_simulate(kind, params);

        let online = run_classifier(&trace, section5_classifier());

        let bbvs = BbvTrace::collect(trace.replay());
        let offline = SimPointClassifier::new(SimPointConfig::default()).classify(&bbvs);
        let mut cov = CovAccumulator::new();
        for (cluster, summary) in offline.assignments.iter().zip(&bbvs.summaries) {
            // Offline clusters have no transition phase; use IDs >= 1 so
            // none is excluded from the weighted CoV.
            cov.observe(PhaseId::new(*cluster as u32 + 1), summary.cpi());
        }
        let offline_cov = cov.finish();

        table.row(vec![
            kind.label().to_owned(),
            pct(online.cov.weighted_cov()),
            online.phases_created.to_string(),
            pct(offline_cov.weighted_cov()),
            offline.k.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_compares_all_benchmarks() {
        let cache = crate::suite::test_cache();
        let tables = run(&cache, &SuiteParams::quick());
        assert_eq!(tables[0].len(), 11);
    }
}
