//! The Section 4.4 / Section 7 comparison: online classification quality
//! vs. the offline SimPoint baseline.
//!
//! The paper claims the online classifier's CPI CoV and phase counts are
//! "comparable to the results of the offline phase classification
//! algorithm used in SimPoint". This experiment classifies each benchmark
//! both ways and tabulates CoV and phase counts side by side. Both
//! classifications ride the same single replay: the online classifier as
//! an engine lane, the BBV collection (SimPoint's input) as a raw sink,
//! with the offline clustering running in the sink's reduction so it stays
//! parallel across benchmarks.

use tpcp_core::PhaseId;
use tpcp_metrics::CovAccumulator;
use tpcp_simpoint::{SimPointClassifier, SimPointConfig};

use crate::engine::{BbvSink, Engine, PendingTables};
use crate::figures::benchmarks;
use crate::figures::fig7::section5_classifier;
use crate::report::{pct, Table};
use crate::suite::{SuiteParams, TraceCache};

/// Registers the SimPoint estimation experiment (see [`estimate`]); the
/// returned closure renders its table once the engine has run.
pub fn register_estimate(engine: &mut Engine) -> PendingTables {
    use tpcp_simpoint::{RandomProjection, SimPoints};
    let cells: Vec<_> = benchmarks()
        .iter()
        .map(|&kind| {
            engine.interval_sink(kind, BbvSink::new(), |sink| {
                let bbvs = sink.into_trace();
                let cfg = SimPointConfig::default();
                let result = SimPointClassifier::new(cfg).classify(&bbvs);
                let projection = RandomProjection::new(cfg.projected_dims, cfg.seed);
                let points = SimPoints::select(&bbvs, &result, &projection);
                let truth = SimPoints::true_cpi(&bbvs);
                let estimated = points.estimate_cpi(&bbvs);
                (points.points.len(), truth, estimated)
            })
        })
        .collect();

    Box::new(move || {
        let mut table = Table::new(
            "SimPoint estimation: whole-program CPI from weighted points",
            vec![
                "bench".to_owned(),
                "points".to_owned(),
                "true CPI".to_owned(),
                "estimated".to_owned(),
                "error %".to_owned(),
            ],
        );
        for (kind, cell) in benchmarks().iter().zip(&cells) {
            let (points, truth, estimated) = cell.take();
            let error = if truth == 0.0 {
                0.0
            } else {
                (estimated - truth).abs() / truth
            };
            table.row(vec![
                kind.label().to_owned(),
                points.to_string(),
                format!("{truth:.3}"),
                format!("{estimated:.3}"),
                pct(error),
            ]);
        }
        vec![table]
    })
}

/// The SimPoint use case end-to-end: pick weighted simulation points per
/// benchmark and compare the CPI estimated from the points alone against
/// the true whole-program CPI.
pub fn estimate(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    let mut engine = Engine::new(*params);
    let pending = register_estimate(&mut engine);
    engine.run(cache);
    pending()
}

/// Registers the online-vs-offline comparison; the returned closure
/// renders its table once the engine has run.
pub fn register(engine: &mut Engine) -> PendingTables {
    let cells: Vec<_> = benchmarks()
        .iter()
        .map(|&kind| {
            let online = engine.classified(kind, section5_classifier());
            let offline = engine.interval_sink(kind, BbvSink::new(), |sink| {
                let bbvs = sink.into_trace();
                let offline = SimPointClassifier::new(SimPointConfig::default()).classify(&bbvs);
                let mut cov = CovAccumulator::new();
                for (cluster, summary) in offline.assignments.iter().zip(&bbvs.summaries) {
                    // Offline clusters have no transition phase; use IDs >= 1 so
                    // none is excluded from the weighted CoV.
                    cov.observe(PhaseId::new(*cluster as u32 + 1), summary.cpi());
                }
                (cov.finish(), offline.k)
            });
            (online, offline)
        })
        .collect();

    Box::new(move || {
        let mut table = Table::new(
            "Section 4.4: online classifier vs offline SimPoint",
            vec![
                "bench".to_owned(),
                "online CoV%".to_owned(),
                "online #ph".to_owned(),
                "simpoint CoV%".to_owned(),
                "simpoint k".to_owned(),
            ],
        );
        for (kind, (online_cell, offline_cell)) in benchmarks().iter().zip(&cells) {
            let online = online_cell.take();
            let (offline_cov, k) = offline_cell.take();
            table.row(vec![
                kind.label().to_owned(),
                pct(online.cov.weighted_cov()),
                online.phases_created.to_string(),
                pct(offline_cov.weighted_cov()),
                k.to_string(),
            ]);
        }
        vec![table]
    })
}

/// Runs both classifiers over every benchmark and renders the comparison.
pub fn run(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    let mut engine = Engine::new(*params);
    let pending = register(&mut engine);
    engine.run(cache);
    pending()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_compares_all_benchmarks() {
        let cache = crate::suite::test_cache();
        let tables = run(&cache, &SuiteParams::quick());
        assert_eq!(tables[0].len(), 11);
    }
}
