//! The Section 4.4 / Section 7 comparison: online classification quality
//! vs. the offline SimPoint baseline.
//!
//! The paper claims the online classifier's CPI CoV and phase counts are
//! "comparable to the results of the offline phase classification
//! algorithm used in SimPoint". This experiment classifies each benchmark
//! both ways and tabulates CoV and phase counts side by side. Both
//! classifications ride the same single replay: the online classifier as
//! an engine lane, the BBV collection (SimPoint's input) as a raw sink,
//! with the offline clustering running in the sink's reduction so it stays
//! parallel across benchmarks.

use tpcp_core::PhaseId;
use tpcp_metrics::CovAccumulator;
use tpcp_simpoint::{SimPointClassifier, SimPointConfig};

use crate::engine::{BbvSink, Engine, PendingTables};
use crate::figures::benchmarks;
use crate::figures::fig7::section5_classifier;
use crate::report::{pct, Table};
use crate::suite::{SuiteParams, TraceCache};

/// Registers the SimPoint estimation experiment (see [`estimate`]); the
/// returned closure renders its table once the engine has run.
pub fn register_estimate(engine: &mut Engine) -> PendingTables {
    use tpcp_simpoint::{RandomProjection, SimPoints};
    let cells: Vec<_> = benchmarks()
        .iter()
        .map(|&kind| {
            engine.interval_sink(kind, BbvSink::new(), |sink| {
                let bbvs = sink.into_trace();
                let cfg = SimPointConfig::default();
                let result = SimPointClassifier::new(cfg).classify(&bbvs);
                let projection = RandomProjection::new(cfg.projected_dims, cfg.seed);
                let points = SimPoints::select(&bbvs, &result, &projection);
                let truth = SimPoints::true_cpi(&bbvs);
                let estimated = points.estimate_cpi(&bbvs);
                (points.points.len(), truth, estimated)
            })
        })
        .collect();

    Box::new(move || {
        let mut table = Table::new(
            "SimPoint estimation: whole-program CPI from weighted points",
            vec![
                "bench".to_owned(),
                "points".to_owned(),
                "true CPI".to_owned(),
                "estimated".to_owned(),
                "error %".to_owned(),
            ],
        );
        for (kind, cell) in benchmarks().iter().zip(&cells) {
            let (points, truth, estimated) = cell.take();
            let error = if truth == 0.0 {
                0.0
            } else {
                (estimated - truth).abs() / truth
            };
            table.row(vec![
                kind.label().to_owned(),
                points.to_string(),
                format!("{truth:.3}"),
                format!("{estimated:.3}"),
                pct(error),
            ]);
        }
        vec![table]
    })
}

/// The SimPoint use case end-to-end: pick weighted simulation points per
/// benchmark and compare the CPI estimated from the points alone against
/// the true whole-program CPI.
pub fn estimate(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    let mut engine = Engine::new(*params);
    let pending = register_estimate(&mut engine);
    engine.run(cache);
    pending()
}

/// The sampling-estimator experiment: full replay vs. classic SimPoint
/// vs. two-phase stratified sampled replay, on every benchmark.
///
/// Pass 1 replays every trace once (the cheap pass): an online
/// classifier lane yields per-interval phase ids and CPIs, and a BBV
/// sink feeds the classic SimPoint baseline. Phases become sampling
/// strata; a [`StratifiedPlan`](tpcp_simpoint::StratifiedPlan) (Neyman
/// allocation, deterministic
/// systematic selection) picks ~1/8 of the intervals. Pass 2 replays
/// *only those intervals* through the engine's seek-driven
/// [`ReplayPlan`](tpcp_trace::ReplayPlan) path and re-measures their
/// CPIs; the stratified estimator combines them into a whole-program CPI
/// with a standard error.
///
/// The table reports, per benchmark: the decode-work speedup of the
/// sampled pass over a full replay, the true CPI, and each estimator's
/// CPI and error — plus a final `mean` row with the mean absolute error
/// and mean speedup, the headline numbers for the sampled-replay claim.
///
/// Also returns the sampled pass's [`TelemetrySnapshot`](crate::TelemetrySnapshot) — the one whose
/// per-lane `intervals_skipped`/`bytes_skipped`/`seek_count` counters
/// show the plan at work.
pub fn run_sampling(
    cache: &TraceCache,
    params: &SuiteParams,
) -> (Vec<Table>, crate::TelemetrySnapshot) {
    use tpcp_simpoint::{RandomProjection, SimPoints, StratifiedConfig, StratifiedPlan};

    // Pass 1 (cheap): one full replay per benchmark — phase ids + CPIs
    // from the classifier lane, the SimPoint baseline from the BBV sink.
    let mut pass1 = Engine::new(*params);
    let cells: Vec<_> = benchmarks()
        .iter()
        .map(|&kind| {
            let run = pass1.classified(kind, section5_classifier());
            let baseline = pass1.interval_sink(kind, BbvSink::new(), |sink| {
                let bbvs = sink.into_trace();
                let cfg = SimPointConfig::default();
                let result = SimPointClassifier::new(cfg).classify(&bbvs);
                let projection = RandomProjection::new(cfg.projected_dims, cfg.seed);
                let points = SimPoints::select(&bbvs, &result, &projection);
                (
                    SimPoints::true_cpi(&bbvs),
                    points.estimate_cpi(&bbvs),
                    points.points.len(),
                )
            });
            (kind, run, baseline)
        })
        .collect();
    pass1.run(cache);

    // Design one plan per benchmark from the cheap pass: (phase, CPI
    // band) cells are the strata, the cheap CPIs drive the Neyman
    // allocation, and the budget targets an 8x decode reduction. The
    // absolute floor of 8 samples only binds on very short traces,
    // where a deep cut is all noise and no win.
    let designs: Vec<_> = cells
        .into_iter()
        .map(|(kind, run, baseline)| {
            let run = run.take();
            let ids: Vec<u64> = run.ids.iter().map(|id| u64::from(id.value())).collect();
            let config = StratifiedConfig {
                budget: (ids.len() / 8).max(8),
                min_per_stratum: 1,
                ..StratifiedConfig::default()
            };
            let plan = StratifiedPlan::design(&ids, &run.cpis, &config);
            (kind, plan, baseline.take())
        })
        .collect();

    // Pass 2 (sampled): replay only the planned intervals, re-measuring
    // their CPIs off the seek-driven stream.
    let mut pass2 = Engine::new(*params);
    let measured: Vec<_> = designs
        .iter()
        .map(|(kind, plan, _)| {
            pass2.with_plan(*kind, plan.replay_plan());
            // A classifier lane rides the sampled stream too: it keeps
            // the pass honest (lanes see a gap-free view) and stamps the
            // skip counters into the pass's per-lane telemetry.
            let _ = pass2.classified(*kind, section5_classifier());
            pass2.interval_sink(*kind, CpiTape::default(), |tape| tape.cpis)
        })
        .collect();
    let stats = pass2.run(cache);

    let mut table = Table::new(
        "Sampled replay: stratified estimator vs full replay and SimPoint",
        vec![
            "bench".to_owned(),
            "intervals".to_owned(),
            "sampled".to_owned(),
            "speedup".to_owned(),
            "true CPI".to_owned(),
            "simpoint".to_owned(),
            "sp err %".to_owned(),
            "stratified".to_owned(),
            "strat err %".to_owned(),
            "strat SE".to_owned(),
        ],
    );
    let err_of = |est: f64, truth: f64| {
        if truth == 0.0 {
            0.0
        } else {
            (est - truth).abs() / truth
        }
    };
    let (mut sp_err_sum, mut strat_err_sum, mut speedup_sum) = (0.0, 0.0, 0.0);
    for ((kind, plan, (truth, sp_est, _)), cell) in designs.iter().zip(measured) {
        let cpis = cell.take();
        let est = plan.estimate(&cpis);
        let sp_err = err_of(*sp_est, *truth);
        let strat_err = err_of(est.cpi, *truth);
        sp_err_sum += sp_err;
        strat_err_sum += strat_err;
        speedup_sum += plan.speedup();
        table.row(vec![
            kind.label().to_owned(),
            plan.n_intervals.to_string(),
            plan.sampled_intervals().to_string(),
            format!("{:.1}x", plan.speedup()),
            format!("{truth:.3}"),
            format!("{sp_est:.3}"),
            pct(sp_err),
            format!("{:.3}", est.cpi),
            pct(strat_err),
            format!("{:.4}", est.std_error),
        ]);
    }
    let n = benchmarks().len() as f64;
    table.row(vec![
        "mean".to_owned(),
        String::new(),
        String::new(),
        format!("{:.1}x", speedup_sum / n),
        String::new(),
        String::new(),
        pct(sp_err_sum / n),
        String::new(),
        pct(strat_err_sum / n),
        String::new(),
    ]);
    (vec![table], stats.telemetry().clone())
}

/// A raw sink that tapes each interval's CPI in stream order — ascending
/// interval order, so under a sampled plan the tape is parallel to the
/// plan's selected-interval list.
#[derive(Default)]
struct CpiTape {
    cpis: Vec<f64>,
}

impl tpcp_trace::IntervalSink for CpiTape {
    fn observe(&mut self, _ev: &tpcp_trace::BranchEvent) {}
    fn end_interval(&mut self, summary: &tpcp_trace::IntervalSummary) {
        self.cpis.push(summary.cpi());
    }
}

/// Registers the online-vs-offline comparison; the returned closure
/// renders its table once the engine has run.
pub fn register(engine: &mut Engine) -> PendingTables {
    let cells: Vec<_> = benchmarks()
        .iter()
        .map(|&kind| {
            let online = engine.classified(kind, section5_classifier());
            let offline = engine.interval_sink(kind, BbvSink::new(), |sink| {
                let bbvs = sink.into_trace();
                let offline = SimPointClassifier::new(SimPointConfig::default()).classify(&bbvs);
                let mut cov = CovAccumulator::new();
                for (cluster, summary) in offline.assignments.iter().zip(&bbvs.summaries) {
                    // Offline clusters have no transition phase; use IDs >= 1 so
                    // none is excluded from the weighted CoV.
                    cov.observe(PhaseId::new(*cluster as u32 + 1), summary.cpi());
                }
                (cov.finish(), offline.k)
            });
            (online, offline)
        })
        .collect();

    Box::new(move || {
        let mut table = Table::new(
            "Section 4.4: online classifier vs offline SimPoint",
            vec![
                "bench".to_owned(),
                "online CoV%".to_owned(),
                "online #ph".to_owned(),
                "simpoint CoV%".to_owned(),
                "simpoint k".to_owned(),
            ],
        );
        for (kind, (online_cell, offline_cell)) in benchmarks().iter().zip(&cells) {
            let online = online_cell.take();
            let (offline_cov, k) = offline_cell.take();
            table.row(vec![
                kind.label().to_owned(),
                pct(online.cov.weighted_cov()),
                online.phases_created.to_string(),
                pct(offline_cov.weighted_cov()),
                k.to_string(),
            ]);
        }
        vec![table]
    })
}

/// Runs both classifiers over every benchmark and renders the comparison.
pub fn run(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    let mut engine = Engine::new(*params);
    let pending = register(&mut engine);
    engine.run(cache);
    pending()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_compares_all_benchmarks() {
        let cache = crate::suite::test_cache();
        let tables = run(&cache, &SuiteParams::quick());
        assert_eq!(tables[0].len(), 11);
    }

    /// The sampled-replay acceptance numbers on the quick suite: at least
    /// 5x mean decode speedup at no more than 2% mean absolute CPI error
    /// across all 11 models.
    #[test]
    fn sampling_estimator_meets_speedup_and_error_targets() {
        let cache = crate::suite::test_cache();
        let (tables, telemetry) = run_sampling(&cache, &SuiteParams::quick());
        assert_eq!(tables.len(), 1);
        // The sampled pass's telemetry shows the plans at work.
        assert!(telemetry
            .groups()
            .values()
            .all(|g| g.lanes.iter().all(|l| l.intervals_skipped > 0)));
        let table = &tables[0];
        assert_eq!(table.len(), 12, "11 benchmarks + mean row");
        let csv = table.to_csv();
        let mean = csv
            .lines()
            .last()
            .expect("mean row present")
            .split(',')
            .map(str::to_owned)
            .collect::<Vec<_>>();
        assert_eq!(mean[0], "mean");
        let speedup: f64 = mean[3].trim_end_matches('x').parse().expect("mean speedup");
        let strat_err: f64 = mean[8].parse().expect("mean stratified error");
        assert!(speedup >= 5.0, "mean speedup {speedup}x < 5x");
        assert!(strat_err <= 2.0, "mean stratified error {strat_err}% > 2%");
    }
}
