//! Figure 7: next-phase prediction accuracy, stacked by prediction source
//! and confidence.
//!
//! The classifier is the paper's final configuration (16 accumulators,
//! 32 entries, 25% similarity, min-count 8, 25% deviation threshold); the
//! phase ID stream it produces is fed to each predictor. Expected shape:
//! last value is ~75% accurate (≈25% of interval transitions change
//! phase); confidence trades coverage for accuracy; Markov/RLE variants
//! add only a few percent.

use tpcp_core::ClassifierConfig;
use tpcp_predict::{NextPhaseBreakdown, NextPhasePredictor, PredictorKind};

use crate::engine::{Engine, PendingTables};
use crate::figures::benchmarks;
use crate::report::{pct, Table};
use crate::suite::{SuiteParams, TraceCache};

/// The classifier configuration used for all of Section 5 (and Figures
/// 7–9).
pub fn section5_classifier() -> ClassifierConfig {
    ClassifierConfig::hpca2005()
}

/// The predictors the figure compares, in plotting order.
pub fn predictor_lineup() -> Vec<(&'static str, PredictorKind)> {
    vec![
        ("Last Value", PredictorKind::last_value()),
        ("Markov-1", PredictorKind::markov(1)),
        ("Markov-2", PredictorKind::markov(2)),
        ("Last4 Markov-1", PredictorKind::markov(1).with_last4()),
        ("Last4 Markov-2", PredictorKind::markov(2).with_last4()),
        (
            "Markov-2 NoTableConf",
            PredictorKind::markov(2).without_table_confidence(),
        ),
        ("RLE-1", PredictorKind::rle(1)),
        ("RLE-2", PredictorKind::rle(2)),
        ("Last4 RLE-1", PredictorKind::rle(1).with_last4()),
        ("Last4 RLE-2", PredictorKind::rle(2).with_last4()),
        (
            "RLE-2 NoConf",
            PredictorKind::rle(2).without_table_confidence(),
        ),
    ]
}

/// Registers one predictor probe per (benchmark, lineup entry) on the
/// shared Section 5 classification; the returned closure sums the
/// breakdowns and renders the stacked table once the engine has run.
pub fn register(engine: &mut Engine) -> PendingTables {
    let lineup = predictor_lineup();
    // One probe per (benchmark, predictor); all ride the same per-benchmark
    // classifier lane, so each trace is classified once.
    let cells: Vec<Vec<_>> = benchmarks()
        .iter()
        .map(|&kind| {
            lineup
                .iter()
                .map(|&(_, pk)| {
                    engine.probe(
                        kind,
                        section5_classifier(),
                        NextPhasePredictor::new(pk),
                        |p, _| p.breakdown(),
                    )
                })
                .collect()
        })
        .collect();

    Box::new(move || {
        let mut totals: Vec<NextPhaseBreakdown> = vec![NextPhaseBreakdown::default(); lineup.len()];
        for row_cells in &cells {
            for (slot, cell) in totals.iter_mut().zip(row_cells) {
                let b = cell.take();
                slot.correct_table += b.correct_table;
                slot.correct_lv_conf += b.correct_lv_conf;
                slot.correct_lv_unconf += b.correct_lv_unconf;
                slot.incorrect_lv_unconf += b.incorrect_lv_unconf;
                slot.incorrect_lv_conf += b.incorrect_lv_conf;
                slot.incorrect_table += b.incorrect_table;
            }
        }

        let mut table = Table::new(
            "Figure 7: next phase prediction (% of predictions, all benchmarks)",
            vec![
                "predictor".to_owned(),
                "corr table".to_owned(),
                "corr lv conf".to_owned(),
                "corr lv unconf".to_owned(),
                "incorr lv unconf".to_owned(),
                "incorr lv conf".to_owned(),
                "incorr table".to_owned(),
                "accuracy".to_owned(),
            ],
        );
        for ((name, _), b) in lineup.iter().zip(&totals) {
            let t = b.total().max(1) as f64;
            table.row(vec![
                (*name).to_owned(),
                pct(b.correct_table as f64 / t),
                pct(b.correct_lv_conf as f64 / t),
                pct(b.correct_lv_unconf as f64 / t),
                pct(b.incorrect_lv_unconf as f64 / t),
                pct(b.incorrect_lv_conf as f64 / t),
                pct(b.incorrect_table as f64 / t),
                pct(b.accuracy()),
            ]);
        }
        vec![table]
    })
}

/// Runs every predictor over every benchmark's phase stream and averages
/// the six stacked categories.
pub fn run(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    let mut engine = Engine::new(*params);
    let pending = register(&mut engine);
    engine.run(cache);
    pending()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_matches_paper_series() {
        let names: Vec<_> = predictor_lineup().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 11);
        assert!(names.contains(&"Last Value"));
        assert!(names.contains(&"Markov-2 NoTableConf"));
        assert!(names.contains(&"Last4 RLE-2"));
    }

    #[test]
    fn quick_run_produces_table() {
        let cache = crate::suite::test_cache();
        let tables = run(&cache, &SuiteParams::quick());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 11);
    }
}
