//! Figure 2: CPI CoV and number of phases vs. signature table size.
//!
//! Paper setup: 32 accumulators, 12.5% similarity threshold, no transition
//! phase, table sizes 16 / 32 / 64 / unbounded with LRU replacement.
//! Expected shape: the number of phases detected decreases dramatically
//! with more table entries (evictions lose signatures, and re-discovery
//! allocates fresh phase IDs); CPI CoV increases slightly with more
//! entries because fewer, larger phases are less specialized.

use tpcp_core::ClassifierConfig;

use crate::classify::run_classifier;
use crate::figures::{avg, benchmarks};
use crate::report::{pct, Table};
use crate::suite::{SuiteParams, TraceCache};

/// Table sizes evaluated by the figure (`None` = unbounded).
pub const TABLE_SIZES: [Option<usize>; 4] = [Some(16), Some(32), Some(64), None];

fn config_for(entries: Option<usize>) -> ClassifierConfig {
    ClassifierConfig::builder()
        .accumulators(32)
        .table_entries(entries)
        .similarity_threshold(0.125)
        .min_count(0)
        .adaptive(None)
        .build()
}

fn size_label(entries: Option<usize>) -> String {
    match entries {
        Some(n) => format!("{n} entry"),
        None => "inf entry".to_owned(),
    }
}

/// Runs the experiment and renders the figure's two panels as tables.
pub fn run(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    let mut header = vec!["bench".to_owned()];
    header.extend(TABLE_SIZES.iter().map(|&s| size_label(s)));
    let mut cov_table = Table::new("Figure 2 (left): CPI CoV (%) vs signature table entries", header.clone());
    let mut phases_table = Table::new("Figure 2 (right): number of phases vs table entries", header);

    let mut cov_cols: Vec<Vec<f64>> = vec![Vec::new(); TABLE_SIZES.len()];
    let mut phase_cols: Vec<Vec<f64>> = vec![Vec::new(); TABLE_SIZES.len()];

    for kind in benchmarks() {
        let trace = cache.load_or_simulate(kind, params);
        let mut cov_row = vec![kind.label().to_owned()];
        let mut phase_row = vec![kind.label().to_owned()];
        for (i, &entries) in TABLE_SIZES.iter().enumerate() {
            let run = run_classifier(&trace, config_for(entries));
            let cov = run.cov.weighted_cov();
            cov_cols[i].push(cov);
            phase_cols[i].push(run.phases_created as f64);
            cov_row.push(pct(cov));
            phase_row.push(run.phases_created.to_string());
        }
        cov_table.row(cov_row);
        phases_table.row(phase_row);
    }

    let mut cov_avg = vec!["avg".to_owned()];
    let mut phase_avg = vec!["avg".to_owned()];
    for i in 0..TABLE_SIZES.len() {
        cov_avg.push(pct(avg(&cov_cols[i])));
        phase_avg.push(format!("{:.0}", avg(&phase_cols[i])));
    }
    cov_table.row(cov_avg);
    phases_table.row(phase_avg);

    vec![cov_table, phases_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_both_panels() {
        let cache = crate::suite::test_cache();
        let params = SuiteParams::quick();
        let tables = run(&cache, &params);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 12, "11 benchmarks + avg");
    }
}
