//! Figure 2: CPI CoV and number of phases vs. signature table size.
//!
//! Paper setup: 32 accumulators, 12.5% similarity threshold, no transition
//! phase, table sizes 16 / 32 / 64 / unbounded with LRU replacement.
//! Expected shape: the number of phases detected decreases dramatically
//! with more table entries (evictions lose signatures, and re-discovery
//! allocates fresh phase IDs); CPI CoV increases slightly with more
//! entries because fewer, larger phases are less specialized.

use tpcp_core::ClassifierConfig;

use crate::engine::{Engine, PendingTables};
use crate::figures::{avg, benchmarks};
use crate::report::{pct, Table};
use crate::suite::{SuiteParams, TraceCache};

/// Table sizes evaluated by the figure (`None` = unbounded).
pub const TABLE_SIZES: [Option<usize>; 4] = [Some(16), Some(32), Some(64), None];

fn config_for(entries: Option<usize>) -> ClassifierConfig {
    ClassifierConfig::builder()
        .accumulators(32)
        .table_entries(entries)
        .similarity_threshold(0.125)
        .min_count(0)
        .adaptive(None)
        .build()
}

fn size_label(entries: Option<usize>) -> String {
    match entries {
        Some(n) => format!("{n} entry"),
        None => "inf entry".to_owned(),
    }
}

/// Registers the figure's classifications on `engine`; the returned
/// closure renders the two panels once the engine has run.
pub fn register(engine: &mut Engine) -> PendingTables {
    let cells: Vec<Vec<_>> = benchmarks()
        .iter()
        .map(|&kind| {
            TABLE_SIZES
                .iter()
                .map(|&entries| engine.classified(kind, config_for(entries)))
                .collect()
        })
        .collect();

    Box::new(move || {
        let mut header = vec!["bench".to_owned()];
        header.extend(TABLE_SIZES.iter().map(|&s| size_label(s)));
        let mut cov_table = Table::new(
            "Figure 2 (left): CPI CoV (%) vs signature table entries",
            header.clone(),
        );
        let mut phases_table = Table::new(
            "Figure 2 (right): number of phases vs table entries",
            header,
        );

        let mut cov_cols: Vec<Vec<f64>> = vec![Vec::new(); TABLE_SIZES.len()];
        let mut phase_cols: Vec<Vec<f64>> = vec![Vec::new(); TABLE_SIZES.len()];

        for (kind, row_cells) in benchmarks().iter().zip(&cells) {
            let mut cov_row = vec![kind.label().to_owned()];
            let mut phase_row = vec![kind.label().to_owned()];
            for (i, cell) in row_cells.iter().enumerate() {
                let run = cell.take();
                let cov = run.cov.weighted_cov();
                cov_cols[i].push(cov);
                phase_cols[i].push(run.phases_created as f64);
                cov_row.push(pct(cov));
                phase_row.push(run.phases_created.to_string());
            }
            cov_table.row(cov_row);
            phases_table.row(phase_row);
        }

        let mut cov_avg = vec!["avg".to_owned()];
        let mut phase_avg = vec!["avg".to_owned()];
        for i in 0..TABLE_SIZES.len() {
            cov_avg.push(pct(avg(&cov_cols[i])));
            phase_avg.push(format!("{:.0}", avg(&phase_cols[i])));
        }
        cov_table.row(cov_avg);
        phases_table.row(phase_avg);

        vec![cov_table, phases_table]
    })
}

/// Runs the experiment and renders the figure's two panels as tables.
pub fn run(cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    let mut engine = Engine::new(*params);
    let pending = register(&mut engine);
    engine.run(cache);
    pending()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_both_panels() {
        let cache = crate::suite::test_cache();
        let params = SuiteParams::quick();
        let tables = run(&cache, &params);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 12, "11 benchmarks + avg");
    }
}
