//! Cooperative shutdown on SIGINT/SIGTERM.
//!
//! Long-running binaries (`repro`, `tpcp-perf`, `tpcp-serve`) install the
//! handler once at startup; the signal only sets a flag, and every loop
//! that wants to be interruptible polls [`requested`] at its natural
//! checkpoints (between sweep groups, between perf lane families, each
//! accept-loop tick). That keeps the interrupted path identical to the
//! normal path — partial reports and telemetry flush through the same
//! code that flushes them on success, instead of dying mid-write.
//!
//! The handler is a single store to a static atomic — the only thing
//! that is async-signal-safe to do — registered through the raw `signal`
//! libc symbol, since this workspace vendors no libc crate. This is the
//! one `unsafe` block in the crate (the crate is `deny(unsafe_code)`
//! with a scoped allow here); nothing else links against it, and the
//! miri suite does not compile this crate.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

/// POSIX SIGINT (Ctrl-C).
pub const SIGINT: i32 = 2;

/// POSIX SIGTERM (the orchestrator's polite kill).
pub const SIGTERM: i32 = 15;

/// The platform signal-handler shape. Keeping the extern declaration in
/// terms of this type (instead of casting function pointers to integers)
/// lets the compiler check the handler's ABI.
type SigHandler = extern "C" fn(i32);

extern "C" {
    fn signal(signum: i32, handler: SigHandler) -> usize;
}

extern "C" fn mark_requested(_signum: i32) {
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT and SIGTERM handlers. Idempotent; call once at
/// the top of `main`.
pub fn install() {
    #[allow(unsafe_code)]
    // SAFETY: `signal` is only asked to register `mark_requested`, whose
    // body is a single atomic store — async-signal-safe by construction.
    unsafe {
        signal(SIGINT, mark_requested);
        signal(SIGTERM, mark_requested);
    }
}

/// Whether a shutdown signal has arrived (or [`trigger`] was called).
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Requests shutdown programmatically — what tests and in-process drain
/// drills use instead of delivering a real signal.
pub fn trigger() {
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Clears the flag (tests only; a real process shuts down instead).
pub fn reset() {
    REQUESTED.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_and_reset_round_trip() {
        reset();
        assert!(!requested());
        trigger();
        assert!(requested());
        reset();
        assert!(!requested());
    }
}
