//! Trace interchange tool.
//!
//! The paper's methodology generates basic-block profiles externally (with
//! SimpleScalar) and analyzes them offline. This tool provides the same
//! boundary for this workspace: traces can be exported to files, inspected,
//! converted to SimPoint's classic text BBV format (`T:pc:count` per
//! interval), and arbitrary `.tpcptrc` files — including ones produced by
//! external tracers — can be classified.
//!
//! ```text
//! trace-tool export <benchmark> <path> [--quick]   # simulate -> .tpcptrc
//! trace-tool info <path>                           # summary statistics
//! trace-tool bbv <path>                            # SimPoint text BBVs on stdout
//! trace-tool classify <path>                       # phase timeline CSV on stdout
//! ```

use std::fs;
use std::process::exit;

use tpcp_core::{ClassifierConfig, PhaseClassifier};
use tpcp_trace::{decode_trace, encode_trace, IntervalSource, RecordedTrace, TraceStats};
use tpcp_workloads::{BenchmarkKind, WorkloadParams};

fn usage() -> ! {
    eprintln!(
        "usage: trace-tool export <benchmark> <path> [--quick]\n       \
         trace-tool info <path>\n       \
         trace-tool bbv <path>\n       \
         trace-tool classify <path>"
    );
    exit(2);
}

fn load(path: &str) -> RecordedTrace {
    let bytes = fs::read(path).unwrap_or_else(|e| {
        eprintln!("cannot read '{path}': {e}");
        exit(1);
    });
    decode_trace(bytes.into()).unwrap_or_else(|e| {
        eprintln!("cannot decode '{path}': {e}");
        exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("export") => {
            let (Some(label), Some(path)) = (args.get(1), args.get(2)) else {
                usage();
            };
            let kind: BenchmarkKind = label.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                exit(2);
            });
            let params = WorkloadParams {
                length_scale: if args.iter().any(|a| a == "--quick") {
                    0.05
                } else {
                    1.0
                },
                ..Default::default()
            };
            eprintln!("simulating {} ...", kind.label());
            let trace = RecordedTrace::record(kind.build(&params).simulate(&params));
            fs::write(path, encode_trace(&trace)).unwrap_or_else(|e| {
                eprintln!("cannot write '{path}': {e}");
                exit(1);
            });
            eprintln!("wrote {path}: {}", TraceStats::of(&trace));
        }
        Some("info") => {
            let Some(path) = args.get(1) else { usage() };
            println!("{}", TraceStats::of(&load(path)));
        }
        Some("bbv") => {
            // SimPoint's classic text format: one line per interval,
            // "T" followed by ":pc:count" pairs (instruction counts
            // attributed to the block ending at pc).
            let Some(path) = args.get(1) else { usage() };
            let trace = load(path);
            for interval in &trace.intervals {
                let mut counts = std::collections::BTreeMap::new();
                for ev in &interval.events {
                    *counts.entry(ev.pc).or_insert(0u64) += u64::from(ev.insns);
                }
                let mut line = String::from("T");
                for (pc, count) in counts {
                    line.push_str(&format!(":{pc}:{count}"));
                }
                println!("{line}");
            }
        }
        Some("classify") => {
            let Some(path) = args.get(1) else { usage() };
            let trace = load(path);
            let mut classifier = PhaseClassifier::new(ClassifierConfig::hpca2005());
            let mut replay = trace.replay();
            println!("interval,phase,cpi");
            let mut i = 0usize;
            while let Some(s) = replay.next_interval(&mut |ev| classifier.observe(ev)) {
                let id = classifier.end_interval(s.cpi());
                println!("{i},{},{:.4}", id.value(), s.cpi());
                i += 1;
            }
            eprintln!(
                "{} intervals, {} stable phases, {:.1}% transition",
                classifier.intervals_seen(),
                classifier.phases_created(),
                classifier.transition_fraction() * 100.0
            );
        }
        _ => usage(),
    }
}
