//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--csv-dir DIR] [--telemetry PATH] [--figure NAME]... [fig2|...|all]...
//! repro --list                         # print known figure names
//! repro timeline <benchmark-label>     # per-interval phase/CPI dump
//! ```
//!
//! All requested figures are registered on a single [`Engine`], so each
//! benchmark trace is decoded and replayed exactly once no matter how many
//! figures (or configurations per figure) consume it. Benchmarks run
//! concurrently; output order is fixed by registration order.
//!
//! Run with `--release`; the full-scale suite simulates ~13 billion
//! instructions' worth of interval structure. Traces are cached under
//! `target/tpcp-traces` after the first run.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use tpcp_experiments::figures;
use tpcp_experiments::{Engine, PendingTables, SuiteParams, TraceCache};

/// Figures that orchestrate their own engine passes instead of riding
/// the shared single-replay engine. `sampling-estimator` needs two
/// sequential sweeps (a cheap full pass to design the plan, then a
/// sampled pass that decodes only the planned intervals), so it cannot
/// register on the shared engine.
const STANDALONE_FIGURES: [&str; 1] = ["sampling-estimator"];

const FIGURES: [&str; 19] = [
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "simpoint",
    "extractors",
    "metric-pred",
    "multi-metric",
    "simpoint-estimate",
    "ablation-bits",
    "ablation-match",
    "ablation-selection",
    "ablation-confidence",
    "ablation-interval",
    "sampling-estimator",
];

fn register_figure(name: &str, engine: &mut Engine) -> PendingTables {
    match name {
        "fig2" => figures::fig2::register(engine),
        "fig3" => figures::fig3::register(engine),
        "fig4" => figures::fig4::register(engine),
        "fig5" => figures::fig5::register(engine),
        "fig6" => figures::fig6::register(engine),
        "fig7" => figures::fig7::register(engine),
        "fig8" => figures::fig8::register(engine),
        "fig9" => figures::fig9::register(engine),
        "simpoint" => figures::simpoint_cmp::register(engine),
        "extractors" => figures::extractor_cmp::register(engine),
        "metric-pred" => figures::metric_pred::register(engine),
        "multi-metric" => figures::multi_metric::register(engine),
        "simpoint-estimate" => figures::simpoint_cmp::register_estimate(engine),
        "ablation-bits" => figures::ablations::register_bits_sweep(engine),
        "ablation-match" => figures::ablations::register_match_policy(engine),
        "ablation-selection" => figures::ablations::register_selection_mode(engine),
        "ablation-confidence" => figures::ablations::register_confidence_sweep(engine),
        "ablation-interval" => figures::ablations::register_interval_sweep(engine),
        other => {
            eprintln!("unknown figure '{other}'; known: {FIGURES:?} or 'all' (see --list)");
            std::process::exit(2);
        }
    }
}

fn main() {
    // SIGINT/SIGTERM set a flag; the engine stops claiming new groups and
    // the normal post-run path below still flushes telemetry and the
    // failure report — an interrupted night run leaves evidence, not a
    // truncated file.
    tpcp_experiments::shutdown::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut bars = false;
    let mut csv_dir: Option<PathBuf> = None;
    let mut telemetry_out: Option<PathBuf> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--bars" => bars = true,
            "--telemetry" => {
                let path = iter.next().unwrap_or_else(|| {
                    eprintln!("--telemetry requires an output path");
                    std::process::exit(2);
                });
                telemetry_out = Some(PathBuf::from(path));
            }
            "--list" => {
                for name in FIGURES {
                    println!("{name}");
                }
                return;
            }
            "--figure" => {
                let name = iter.next().unwrap_or_else(|| {
                    eprintln!("--figure requires a figure name (see --list)");
                    std::process::exit(2);
                });
                targets.push(name);
            }
            "--csv-dir" => {
                let dir = iter.next().unwrap_or_else(|| {
                    eprintln!("--csv-dir requires a directory argument");
                    std::process::exit(2);
                });
                csv_dir = Some(PathBuf::from(dir));
            }
            "all" => targets.extend(FIGURES.iter().map(|s| s.to_string())),
            other => targets.push(other.to_owned()),
        }
    }
    if targets.is_empty() {
        eprintln!(
            "usage: repro [--quick] [--csv-dir DIR] [--telemetry PATH] [--figure NAME]... <fig2..fig9|simpoint|all>..."
        );
        eprintln!("       repro --list");
        eprintln!("       repro timeline <benchmark-label>");
        std::process::exit(2);
    }

    let params = if quick {
        SuiteParams::quick()
    } else {
        SuiteParams::default()
    };
    let cache = TraceCache::default_location();
    eprintln!(
        "# suite: {} (interval = {} instructions, scale = {})",
        params.fingerprint(),
        params.workload.interval_size,
        params.workload.length_scale
    );

    // `timeline <bench>` consumes the next target as its argument.
    if targets.first().map(String::as_str) == Some("timeline") {
        let label = targets.get(1).cloned().unwrap_or_else(|| {
            eprintln!("usage: repro timeline <benchmark-label>");
            std::process::exit(2);
        });
        print_timeline(&label, &cache, &params);
        return;
    }

    // Figures that orchestrate their own engine passes run after (and
    // independently of) the shared single-replay engine.
    let (standalone, shared): (Vec<String>, Vec<String>) = targets
        .into_iter()
        .partition(|t| STANDALONE_FIGURES.contains(&t.as_str()));

    // Register every requested shared figure on one engine, replay once,
    // then render in registration order.
    if !shared.is_empty() {
        let mut engine = Engine::new(params).with_cancel(tpcp_experiments::shutdown::requested);
        let pending: Vec<(String, PendingTables)> = shared
            .iter()
            .map(|name| {
                let tables = register_figure(name, &mut engine);
                (name.clone(), tables)
            })
            .collect();

        let start = Instant::now();
        let stats = engine.run(&cache);
        eprintln!(
            "# replayed {} traces in {:.1}s (max replays per trace = {}, {} intervals)",
            stats.traces_replayed(),
            start.elapsed().as_secs_f64(),
            stats.max_replays_per_trace(),
            stats.total_intervals()
        );
        let telemetry = stats.telemetry();
        eprintln!(
            "# cache: {} hits, {} misses, {} quarantined; {} sharded groups",
            telemetry.cache().hits,
            telemetry.cache().misses,
            telemetry.cache().quarantines,
            telemetry.sharded_groups()
        );
        // Export before the failure bail: a damaged sweep's partial stage
        // timings are exactly what a post-mortem wants. When both shared
        // and standalone figures run, the shared snapshot wins the
        // `--telemetry` slot.
        if let Some(path) = &telemetry_out {
            match fs::write(path, telemetry.to_json()) {
                Ok(()) => eprintln!("# telemetry written to {}", path.display()),
                Err(e) => {
                    eprintln!(
                        "error: failed to write telemetry to {}: {e}",
                        path.display()
                    );
                    std::process::exit(1);
                }
            }
        }
        let report = stats.failure_report();
        for path in report.quarantined() {
            eprintln!(
                "# quarantined corrupt cache entry {} (re-simulated)",
                path.display()
            );
        }
        if !report.is_empty() {
            // Bail before rendering: a failed lane's Pending cells hold
            // errors, so the table closures below would panic on take().
            for err in report.failures() {
                eprintln!("error: {err}");
            }
            if tpcp_experiments::shutdown::requested() {
                eprintln!(
                    "# interrupted: partial telemetry flushed above; unclaimed groups cancelled"
                );
                std::process::exit(130);
            }
            std::process::exit(1);
        }

        for (name, pending_tables) in pending {
            let tables = pending_tables();
            render_tables(&name, &tables, bars, csv_dir.as_deref());
        }

        append_telemetry_summary(telemetry);
    }

    for name in &standalone {
        let start = Instant::now();
        let (tables, telemetry) = match name.as_str() {
            "sampling-estimator" => figures::simpoint_cmp::run_sampling(&cache, &params),
            other => unreachable!("'{other}' is not a standalone figure"),
        };
        eprintln!(
            "# {name}: two-pass sampled sweep finished in {:.1}s",
            start.elapsed().as_secs_f64()
        );
        render_tables(name, &tables, bars, csv_dir.as_deref());
        if shared.is_empty() {
            if let Some(path) = &telemetry_out {
                match fs::write(path, telemetry.to_json()) {
                    Ok(()) => eprintln!("# telemetry written to {}", path.display()),
                    Err(e) => {
                        eprintln!(
                            "error: failed to write telemetry to {}: {e}",
                            path.display()
                        );
                        std::process::exit(1);
                    }
                }
            }
            append_telemetry_summary(&telemetry);
        }
    }
}

/// Prints each table (optionally with bar charts) and, when a CSV
/// directory was requested, writes `{name}-{i}.csv` alongside.
fn render_tables(
    name: &str,
    tables: &[tpcp_experiments::Table],
    bars: bool,
    csv_dir: Option<&std::path::Path>,
) {
    for table in tables {
        println!("{}", table.render());
        if bars {
            println!("{}", table.render_bars());
        }
    }
    if let Some(dir) = csv_dir {
        fs::create_dir_all(dir).expect("create csv dir");
        for (i, table) in tables.iter().enumerate() {
            let path = dir.join(format!("{name}-{i}.csv"));
            fs::write(&path, table.to_csv()).expect("write csv");
        }
    }
}

/// Appends the one-page telemetry summary to `results/full_report.txt`
/// (the locally generated, untracked report file). Best-effort: a
/// read-only tree only costs the appended page, never the run.
fn append_telemetry_summary(telemetry: &tpcp_experiments::TelemetrySnapshot) {
    let dir = PathBuf::from("results");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join("full_report.txt");
    let page = format!("\n{}", telemetry.summary());
    let appended = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, page.as_bytes()));
    if appended.is_ok() {
        eprintln!("# telemetry summary appended to {}", path.display());
    }
}

/// Dumps `interval,phase,cpi` CSV for one benchmark under the paper's
/// classifier configuration.
fn print_timeline(label: &str, cache: &TraceCache, params: &SuiteParams) {
    let kind: tpcp_workloads::BenchmarkKind = label.parse().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let trace = cache.load_or_simulate(kind, params);
    let run = tpcp_experiments::run_classifier(&trace, tpcp_core::ClassifierConfig::hpca2005());
    println!("interval,phase,cpi");
    for (i, (id, cpi)) in run.ids.iter().zip(&run.cpis).enumerate() {
        println!("{i},{},{cpi:.4}", id.value());
    }
}
