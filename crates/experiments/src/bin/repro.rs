//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--csv-dir DIR] [fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|simpoint|all]...
//! repro timeline <benchmark-label>     # per-interval phase/CPI dump
//! ```
//!
//! Run with `--release`; the full-scale suite simulates ~13 billion
//! instructions' worth of interval structure. Traces are cached under
//! `target/tpcp-traces` after the first run.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use tpcp_experiments::figures;
use tpcp_experiments::{SuiteParams, Table, TraceCache};

const FIGURES: [&str; 17] = [
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "simpoint",
    "metric-pred",
    "multi-metric",
    "simpoint-estimate",
    "ablation-bits",
    "ablation-match",
    "ablation-selection",
    "ablation-confidence",
    "ablation-interval",
];

fn run_figure(name: &str, cache: &TraceCache, params: &SuiteParams) -> Vec<Table> {
    match name {
        "fig2" => figures::fig2::run(cache, params),
        "fig3" => figures::fig3::run(cache, params),
        "fig4" => figures::fig4::run(cache, params),
        "fig5" => figures::fig5::run(cache, params),
        "fig6" => figures::fig6::run(cache, params),
        "fig7" => figures::fig7::run(cache, params),
        "fig8" => figures::fig8::run(cache, params),
        "fig9" => figures::fig9::run(cache, params),
        "simpoint" => figures::simpoint_cmp::run(cache, params),
        "metric-pred" => figures::metric_pred::run(cache, params),
        "multi-metric" => figures::multi_metric::run(cache, params),
        "simpoint-estimate" => figures::simpoint_cmp::estimate(cache, params),
        "ablation-bits" => figures::ablations::bits_sweep(cache, params),
        "ablation-match" => figures::ablations::match_policy(cache, params),
        "ablation-selection" => figures::ablations::selection_mode(cache, params),
        "ablation-confidence" => figures::ablations::confidence_sweep(cache, params),
        "ablation-interval" => figures::ablations::interval_sweep(cache, params),
        other => {
            eprintln!("unknown figure '{other}'; known: {FIGURES:?} or 'all'");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut bars = false;
    let mut csv_dir: Option<PathBuf> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--bars" => bars = true,
            "--csv-dir" => {
                let dir = iter.next().unwrap_or_else(|| {
                    eprintln!("--csv-dir requires a directory argument");
                    std::process::exit(2);
                });
                csv_dir = Some(PathBuf::from(dir));
            }
            "all" => targets.extend(FIGURES.iter().map(|s| s.to_string())),
            other => targets.push(other.to_owned()),
        }
    }
    if targets.is_empty() {
        eprintln!("usage: repro [--quick] [--csv-dir DIR] <fig2..fig9|simpoint|all>...");
        std::process::exit(2);
    }

    let params = if quick {
        SuiteParams::quick()
    } else {
        SuiteParams::default()
    };
    let cache = TraceCache::default_location();
    eprintln!(
        "# suite: {} (interval = {} instructions, scale = {})",
        params.fingerprint(),
        params.workload.interval_size,
        params.workload.length_scale
    );

    // `timeline <bench>` consumes the next target as its argument.
    if targets.first().map(String::as_str) == Some("timeline") {
        let label = targets.get(1).cloned().unwrap_or_else(|| {
            eprintln!("usage: repro timeline <benchmark-label>");
            std::process::exit(2);
        });
        print_timeline(&label, &cache, &params);
        return;
    }

    for name in targets {
        let start = Instant::now();
        let tables = run_figure(&name, &cache, &params);
        for table in &tables {
            println!("{}", table.render());
            if bars {
                println!("{}", table.render_bars());
            }
        }
        if let Some(dir) = &csv_dir {
            fs::create_dir_all(dir).expect("create csv dir");
            for (i, table) in tables.iter().enumerate() {
                let path = dir.join(format!("{name}-{i}.csv"));
                fs::write(&path, table.to_csv()).expect("write csv");
            }
        }
        eprintln!("# {name} took {:.1}s", start.elapsed().as_secs_f64());
    }
}

/// Dumps `interval,phase,cpi` CSV for one benchmark under the paper's
/// classifier configuration.
fn print_timeline(label: &str, cache: &TraceCache, params: &SuiteParams) {
    let kind: tpcp_workloads::BenchmarkKind = label.parse().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let trace = cache.load_or_simulate(kind, params);
    let run = tpcp_experiments::run_classifier(&trace, tpcp_core::ClassifierConfig::hpca2005());
    println!("interval,phase,cpi");
    for (i, (id, cpi)) in run.ids.iter().zip(&run.cpis).enumerate() {
        println!("{i},{},{cpi:.4}", id.value());
    }
}
