//! Plain-text and CSV table rendering for experiment results.

/// A simple column-aligned table with a title, header, and rows.
///
/// # Example
///
/// ```
/// use tpcp_experiments::Table;
///
/// let mut t = Table::new("Demo", vec!["bench".into(), "value".into()]);
/// t.row(vec!["mcf".into(), "3.14".into()]);
/// let text = t.render();
/// assert!(text.contains("mcf"));
/// let csv = t.to_csv();
/// assert!(csv.starts_with("bench,value"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: Vec<String>) -> Self {
        Self {
            title: title.to_owned(),
            header,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders a column-aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table's numeric columns as horizontal bar charts — a
    /// terminal rendition of the paper's bar figures. Non-numeric cells
    /// (and the label column) are skipped.
    pub fn render_bars(&self) -> String {
        const WIDTH: f64 = 40.0;
        let mut out = String::new();
        out.push_str(&format!("== {} (bars) ==\n", self.title));
        let label_width = self
            .rows
            .iter()
            .map(|r| r[0].len())
            .chain(std::iter::once(5))
            .max()
            .unwrap_or(5);
        for (col, name) in self.header.iter().enumerate().skip(1) {
            let values: Vec<Option<f64>> = self
                .rows
                .iter()
                .map(|r| r[col].parse::<f64>().ok())
                .collect();
            let max = values.iter().flatten().fold(0.0f64, |a, &b| a.max(b.abs()));
            if max <= 0.0 {
                continue;
            }
            out.push_str(&format!("-- {name} --\n"));
            for (row, value) in self.rows.iter().zip(&values) {
                match value {
                    Some(v) => {
                        let n = ((v.abs() / max) * WIDTH).round() as usize;
                        out.push_str(&format!("{:>label_width$} {} {v}\n", row[0], "#".repeat(n)));
                    }
                    None => out.push_str(&format!("{:>label_width$} -\n", row[0])),
                }
            }
        }
        out
    }

    /// Renders RFC-4180-ish CSV (fields containing commas are quoted).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T", vec!["a".into(), "bbbb".into()]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let text = t.render();
        assert!(text.contains("xxxxx"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut t = Table::new("T", vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("T", vec!["name".into(), "v".into()]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn bars_scale_to_the_column_max() {
        let mut t = Table::new("B", vec!["bench".into(), "v".into()]);
        t.row(vec!["a".into(), "10".into()]);
        t.row(vec!["b".into(), "5".into()]);
        t.row(vec!["c".into(), "-".into()]);
        let bars = t.render_bars();
        assert!(bars.contains(&"#".repeat(40)), "max value gets full width");
        assert!(
            bars.contains(&format!("{} 5", "#".repeat(20))),
            "half scale"
        );
        assert!(bars.contains("c -"), "non-numeric cells are dashes");
    }

    #[test]
    fn bars_skip_all_zero_columns() {
        let mut t = Table::new("Z", vec!["bench".into(), "zero".into()]);
        t.row(vec!["a".into(), "0".into()]);
        let bars = t.render_bars();
        assert!(!bars.contains("-- zero --"));
    }

    #[test]
    fn helpers_format() {
        assert_eq!(pct(0.1234), "12.3");
        assert_eq!(f2(4.56789), "4.57");
    }
}
