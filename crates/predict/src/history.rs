//! Phase ID history tracking for Markov and RLE predictor indexing.

use serde::{Deserialize, Serialize};

use tpcp_core::PhaseId;

/// How a predictor indexes its table from the phase ID stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HistoryKind {
    /// Hash of the last `N` *unique* phase IDs (runs collapsed) — the
    /// paper's Markov-N predictors.
    Markov(usize),
    /// Hash of the last `N` (phase ID, run length) pairs from the
    /// run-length-encoded history — the paper's RLE-N predictors. The
    /// current, still-growing run participates with its length so far.
    Rle(usize),
}

impl HistoryKind {
    /// The history order `N`.
    pub fn order(self) -> usize {
        match self {
            HistoryKind::Markov(n) | HistoryKind::Rle(n) => n,
        }
    }
}

/// Tracks the run-length-encoded phase ID history of the classified stream.
///
/// # Example
///
/// ```
/// use tpcp_core::PhaseId;
/// use tpcp_predict::PhaseHistory;
///
/// let mut h = PhaseHistory::new(4);
/// for id in [1u32, 1, 1, 2, 2] {
///     h.push(PhaseId::new(id));
/// }
/// assert_eq!(h.current_phase(), Some(PhaseId::new(2)));
/// assert_eq!(h.current_run(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseHistory {
    /// Completed runs, most recent last: (phase, length).
    completed: Vec<(PhaseId, u64)>,
    /// Maximum completed runs retained (≥ any predictor order in use).
    depth: usize,
    current: Option<(PhaseId, u64)>,
}

impl PhaseHistory {
    /// Creates a history retaining `depth` completed runs.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "history depth must be positive");
        Self {
            completed: Vec::with_capacity(depth + 1),
            depth,
            current: None,
        }
    }

    /// The phase of the current (still growing) run.
    pub fn current_phase(&self) -> Option<PhaseId> {
        self.current.map(|(p, _)| p)
    }

    /// Length of the current run in intervals (0 before any input).
    pub fn current_run(&self) -> u64 {
        self.current.map_or(0, |(_, n)| n)
    }

    /// Observes the next interval's phase. Returns `true` if this started a
    /// new run (a phase change).
    pub fn push(&mut self, phase: PhaseId) -> bool {
        match self.current {
            Some((p, ref mut n)) if p == phase => {
                *n += 1;
                false
            }
            Some(prev) => {
                self.completed.push(prev);
                if self.completed.len() > self.depth {
                    self.completed.remove(0);
                }
                self.current = Some((phase, 1));
                true
            }
            None => {
                self.current = Some((phase, 1));
                true
            }
        }
    }

    /// The last `n` unique phase IDs including the current run's phase,
    /// oldest first. Shorter than `n` early in the stream.
    pub fn last_unique(&self, n: usize) -> Vec<PhaseId> {
        let mut out: Vec<PhaseId> = Vec::with_capacity(n);
        if let Some((p, _)) = self.current {
            out.push(p);
        }
        for &(p, _) in self.completed.iter().rev() {
            if out.len() >= n {
                break;
            }
            out.push(p);
        }
        out.reverse();
        out
    }

    /// The last `n` RLE pairs including the current (phase, run-so-far),
    /// oldest first.
    pub fn last_rle(&self, n: usize) -> Vec<(PhaseId, u64)> {
        let mut out: Vec<(PhaseId, u64)> = Vec::with_capacity(n);
        if let Some(cur) = self.current {
            out.push(cur);
        }
        for &pair in self.completed.iter().rev() {
            if out.len() >= n {
                break;
            }
            out.push(pair);
        }
        out.reverse();
        out
    }

    /// The table index key for a predictor of the given kind, built from
    /// the current history state.
    pub fn key(&self, kind: HistoryKind) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut absorb = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(FNV_PRIME);
        };
        match kind {
            HistoryKind::Markov(n) => {
                for p in self.last_unique(n) {
                    absorb(u64::from(p.value()) + 1);
                }
            }
            HistoryKind::Rle(n) => {
                for (p, run) in self.last_rle(n) {
                    absorb(u64::from(p.value()) + 1);
                    absorb(run);
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u32) -> PhaseId {
        PhaseId::new(v)
    }

    #[test]
    fn push_reports_changes() {
        let mut h = PhaseHistory::new(4);
        assert!(h.push(id(1)), "first interval starts a run");
        assert!(!h.push(id(1)));
        assert!(h.push(id(2)));
        assert!(!h.push(id(2)));
    }

    #[test]
    fn run_lengths_tracked() {
        let mut h = PhaseHistory::new(4);
        for p in [1, 1, 1, 2, 2, 3] {
            h.push(id(p));
        }
        assert_eq!(h.current_phase(), Some(id(3)));
        assert_eq!(h.current_run(), 1);
        assert_eq!(h.last_rle(3), vec![(id(1), 3), (id(2), 2), (id(3), 1)]);
    }

    #[test]
    fn last_unique_collapses_runs() {
        let mut h = PhaseHistory::new(4);
        for p in [1, 1, 2, 2, 2, 1, 3, 3] {
            h.push(id(p));
        }
        assert_eq!(h.last_unique(4), vec![id(1), id(2), id(1), id(3)]);
        assert_eq!(h.last_unique(2), vec![id(1), id(3)]);
    }

    #[test]
    fn short_history_is_shorter() {
        let mut h = PhaseHistory::new(4);
        h.push(id(5));
        assert_eq!(h.last_unique(4), vec![id(5)]);
        assert_eq!(h.last_rle(2), vec![(id(5), 1)]);
    }

    #[test]
    fn depth_bounds_completed_runs() {
        let mut h = PhaseHistory::new(2);
        for p in 1..10u32 {
            h.push(id(p));
        }
        // Only 2 completed runs retained + the current one.
        assert_eq!(h.last_unique(10).len(), 3);
    }

    #[test]
    fn markov_key_ignores_run_lengths() {
        let mut a = PhaseHistory::new(4);
        let mut b = PhaseHistory::new(4);
        for p in [1, 1, 1, 2] {
            a.push(id(p));
        }
        for p in [1, 2] {
            b.push(id(p));
        }
        assert_eq!(a.key(HistoryKind::Markov(2)), b.key(HistoryKind::Markov(2)));
        assert_ne!(a.key(HistoryKind::Rle(2)), b.key(HistoryKind::Rle(2)));
    }

    #[test]
    fn rle_key_depends_on_current_run_length() {
        let mut h = PhaseHistory::new(4);
        h.push(id(1));
        let k1 = h.key(HistoryKind::Rle(1));
        h.push(id(1));
        let k2 = h.key(HistoryKind::Rle(1));
        assert_ne!(k1, k2, "run growth changes the RLE key");
    }

    #[test]
    fn key_is_order_sensitive() {
        let mut a = PhaseHistory::new(4);
        let mut b = PhaseHistory::new(4);
        for p in [1, 2, 3] {
            a.push(id(p));
        }
        for p in [3, 2, 1] {
            b.push(id(p));
        }
        assert_ne!(a.key(HistoryKind::Markov(3)), b.key(HistoryKind::Markov(3)));
    }
}
