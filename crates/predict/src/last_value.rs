//! Last-value phase prediction with per-phase confidence (Sections 5.1,
//! 5.2.1).

use std::collections::HashMap;

use tpcp_core::PhaseId;

use crate::confidence::ConfidenceCounter;

/// Predicts that the next interval's phase equals the current one.
///
/// One confidence counter is kept per phase ID (3-bit, threshold 6 by
/// default): stable phases quickly earn confident status, rapidly changing
/// ones stay unconfident — exactly the property the paper exploits to trade
/// a little coverage for a much lower misprediction rate.
///
/// # Example
///
/// ```
/// use tpcp_core::PhaseId;
/// use tpcp_predict::LastValuePredictor;
///
/// let mut lv = LastValuePredictor::new();
/// let a = PhaseId::new(1);
/// for _ in 0..8 { lv.observe(a); }
/// let (pred, confident) = lv.prediction().unwrap();
/// assert_eq!(pred, a);
/// assert!(confident, "a long run builds confidence");
/// ```
#[derive(Debug, Clone, Default)]
pub struct LastValuePredictor {
    current: Option<PhaseId>,
    confidence: HashMap<PhaseId, ConfidenceCounter>,
    template: Option<ConfidenceCounter>,
}

impl LastValuePredictor {
    /// Creates a predictor with the paper's 3-bit/threshold-6 confidence.
    pub fn new() -> Self {
        Self {
            current: None,
            confidence: HashMap::new(),
            template: Some(ConfidenceCounter::last_value_default()),
        }
    }

    /// Creates a predictor without confidence counters (always confident).
    pub fn without_confidence() -> Self {
        Self {
            current: None,
            confidence: HashMap::new(),
            template: None,
        }
    }

    /// Creates a predictor whose per-phase counters are clones of
    /// `template` — used to sweep counter width and threshold (the paper's
    /// "we experimented with a variety of confidence counter
    /// configurations").
    pub fn with_confidence(template: ConfidenceCounter) -> Self {
        Self {
            current: None,
            confidence: HashMap::new(),
            template: Some(template),
        }
    }

    /// The current prediction for the next interval: `(phase, confident)`.
    /// `None` before the first observation.
    pub fn prediction(&self) -> Option<(PhaseId, bool)> {
        let phase = self.current?;
        let confident = match self.template {
            None => true,
            Some(_) => self
                .confidence
                .get(&phase)
                .is_some_and(ConfidenceCounter::is_confident),
        };
        Some((phase, confident))
    }

    /// Observes the next interval's actual phase: trains the previous
    /// phase's confidence counter and advances the last value. Returns the
    /// resolved prediction `(predicted, confident, correct)` if one existed.
    pub fn observe(&mut self, actual: PhaseId) -> Option<(PhaseId, bool, bool)> {
        let resolved = self.prediction().map(|(pred, conf)| {
            let correct = pred == actual;
            if let Some(template) = self.template {
                let counter = self.confidence.entry(pred).or_insert(template);
                if correct {
                    counter.correct();
                } else {
                    counter.incorrect();
                }
            }
            (pred, conf, correct)
        });
        // A brand-new phase starts with a reset confidence counter, as when
        // a new signature-table entry is allocated.
        if let Some(template) = self.template {
            self.confidence.entry(actual).or_insert(template);
        }
        self.current = Some(actual);
        resolved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u32) -> PhaseId {
        PhaseId::new(v)
    }

    #[test]
    fn no_prediction_before_first_observation() {
        let lv = LastValuePredictor::new();
        assert!(lv.prediction().is_none());
    }

    #[test]
    fn predicts_last_seen_phase() {
        let mut lv = LastValuePredictor::new();
        lv.observe(id(3));
        assert_eq!(lv.prediction().unwrap().0, id(3));
        lv.observe(id(4));
        assert_eq!(lv.prediction().unwrap().0, id(4));
    }

    #[test]
    fn confidence_builds_over_stable_run() {
        let mut lv = LastValuePredictor::new();
        lv.observe(id(1));
        assert!(!lv.prediction().unwrap().1, "fresh phase is unconfident");
        for _ in 0..6 {
            lv.observe(id(1));
        }
        assert!(lv.prediction().unwrap().1);
    }

    #[test]
    fn mispredictions_drain_confidence() {
        let mut lv = LastValuePredictor::new();
        for _ in 0..10 {
            lv.observe(id(1));
        }
        assert!(lv.prediction().unwrap().1);
        // Alternate away and back twice: each wrong last-value prediction
        // decrements phase 1's counter.
        lv.observe(id(2));
        lv.observe(id(1));
        lv.observe(id(2));
        lv.observe(id(1));
        // Counter dropped from 7: 7-1(wrong as 1→2)+1(correct? no: 2→1 trains
        // phase2) ... after two wrong predictions from phase 1 it is 5 < 6.
        assert!(!lv.prediction().unwrap().1);
    }

    #[test]
    fn without_confidence_is_always_confident() {
        let mut lv = LastValuePredictor::without_confidence();
        lv.observe(id(9));
        assert_eq!(lv.prediction(), Some((id(9), true)));
    }

    #[test]
    fn observe_resolves_previous_prediction() {
        let mut lv = LastValuePredictor::new();
        assert!(lv.observe(id(1)).is_none(), "nothing to resolve yet");
        let (pred, _, correct) = lv.observe(id(1)).unwrap();
        assert_eq!(pred, id(1));
        assert!(correct);
        let (pred, _, correct) = lv.observe(id(2)).unwrap();
        assert_eq!(pred, id(1));
        assert!(!correct);
    }

    #[test]
    fn alternating_stream_is_never_confident() {
        let mut lv = LastValuePredictor::new();
        for i in 0..50 {
            lv.observe(id(i % 2));
        }
        assert!(!lv.prediction().unwrap().1);
    }
}
