//! Next-interval phase prediction (Section 5.2, Figure 7).

use serde::{Deserialize, Serialize};

use tpcp_core::PhaseId;

use crate::change::{ChangePolicy, ChangePrediction, PhaseChangePredictor};
use crate::history::HistoryKind;
use crate::last_value::LastValuePredictor;

/// Which component produced a next-phase prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictionSource {
    /// The phase-change table (a confident Markov/RLE hit).
    ChangeTable,
    /// The last-value predictor (default / fallback).
    LastValue,
}

/// The resolved prediction for one interval transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedPrediction {
    /// The single-valued predicted phase.
    pub predicted: PhaseId,
    /// All phases the policy accepted (equals `[predicted]` for
    /// single-valued policies).
    pub candidates: Vec<PhaseId>,
    /// The actual phase of the interval.
    pub actual: PhaseId,
    /// Which component supplied the prediction.
    pub source: PredictionSource,
    /// Whether that component was confident.
    pub confident: bool,
}

impl ResolvedPrediction {
    /// Whether the prediction was correct (actual in the candidate set).
    pub fn correct(&self) -> bool {
        self.candidates.contains(&self.actual)
    }
}

/// Figure 7's stacked accuracy breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NextPhaseBreakdown {
    /// Correct predictions from the change table.
    pub correct_table: u64,
    /// Correct, confident last-value predictions.
    pub correct_lv_conf: u64,
    /// Correct, unconfident last-value predictions.
    pub correct_lv_unconf: u64,
    /// Incorrect, unconfident last-value predictions.
    pub incorrect_lv_unconf: u64,
    /// Incorrect, confident last-value predictions.
    pub incorrect_lv_conf: u64,
    /// Incorrect predictions from the change table.
    pub incorrect_table: u64,
}

impl NextPhaseBreakdown {
    /// Total resolved predictions.
    pub fn total(&self) -> u64 {
        self.correct_table
            + self.correct_lv_conf
            + self.correct_lv_unconf
            + self.incorrect_lv_unconf
            + self.incorrect_lv_conf
            + self.incorrect_table
    }

    /// Records one resolution.
    pub fn record(&mut self, r: &ResolvedPrediction) {
        match (r.source, r.correct(), r.confident) {
            (PredictionSource::ChangeTable, true, _) => self.correct_table += 1,
            (PredictionSource::ChangeTable, false, _) => self.incorrect_table += 1,
            (PredictionSource::LastValue, true, true) => self.correct_lv_conf += 1,
            (PredictionSource::LastValue, true, false) => self.correct_lv_unconf += 1,
            (PredictionSource::LastValue, false, false) => self.incorrect_lv_unconf += 1,
            (PredictionSource::LastValue, false, true) => self.incorrect_lv_conf += 1,
        }
    }

    /// Overall accuracy (all sources).
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.correct_table + self.correct_lv_conf + self.correct_lv_unconf) as f64
                / self.total() as f64
        }
    }

    /// Accuracy counting only *confident* predictions as claims: fraction
    /// of all predictions that were confident and correct.
    pub fn confident_correct_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.correct_table + self.correct_lv_conf) as f64 / self.total() as f64
        }
    }

    /// Fraction of predictions that were confident and incorrect.
    pub fn confident_incorrect_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.incorrect_table + self.incorrect_lv_conf) as f64 / self.total() as f64
        }
    }
}

/// Configuration of a [`NextPhasePredictor`] — which change predictor (if
/// any) backs up the last-value predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PredictorKind {
    history: Option<HistoryKind>,
    policy: ChangePolicy,
    table_confidence: bool,
    lv_confidence: bool,
    /// Overrides the default 3-bit/threshold-6 last-value counters.
    lv_counter: Option<(u32, u8)>,
    entries: usize,
    ways: usize,
}

impl PredictorKind {
    /// Pure last-value prediction (with confidence counters).
    pub fn last_value() -> Self {
        Self {
            history: None,
            policy: ChangePolicy::MostRecent,
            table_confidence: false,
            lv_confidence: true,
            lv_counter: None,
            entries: 32,
            ways: 4,
        }
    }

    /// Markov-N change table over the last N unique phase IDs.
    pub fn markov(order: usize) -> Self {
        Self {
            history: Some(HistoryKind::Markov(order)),
            policy: ChangePolicy::MostRecent,
            table_confidence: true,
            lv_confidence: true,
            lv_counter: None,
            entries: 32,
            ways: 4,
        }
    }

    /// RLE-N change table over run-length-encoded history.
    pub fn rle(order: usize) -> Self {
        Self {
            history: Some(HistoryKind::Rle(order)),
            policy: ChangePolicy::MostRecent,
            table_confidence: true,
            lv_confidence: true,
            lv_counter: None,
            entries: 32,
            ways: 4,
        }
    }

    /// Uses the Last-4 acceptance policy ("Last 4 Markov/RLE" predictors).
    pub fn with_last4(mut self) -> Self {
        self.policy = ChangePolicy::LastK(4);
        self
    }

    /// Enables table confidence (on by default for markov/rle).
    pub fn with_confidence(mut self) -> Self {
        self.table_confidence = true;
        self
    }

    /// Disables the change table's confidence counters ("No Table Conf").
    pub fn without_table_confidence(mut self) -> Self {
        self.table_confidence = false;
        self
    }

    /// Disables last-value confidence counters.
    pub fn without_lv_confidence(mut self) -> Self {
        self.lv_confidence = false;
        self
    }

    /// Overrides the change-table geometry (default 32-entry, 4-way).
    pub fn with_table_geometry(mut self, entries: usize, ways: usize) -> Self {
        self.entries = entries;
        self.ways = ways;
        self
    }

    /// Overrides the last-value confidence counter shape (default 3-bit,
    /// threshold 6) — used to sweep the accuracy/coverage trade-off.
    pub fn with_lv_counter(mut self, bits: u32, threshold: u8) -> Self {
        self.lv_confidence = true;
        self.lv_counter = Some((bits, threshold));
        self
    }
}

/// The composed next-phase predictor of Section 5.
///
/// A confident phase-change-table hit predicts the table's outcome for the
/// next interval; otherwise the last-value prediction is used. ("Since
/// incorrectly predicting a phase change is generally worse than failing to
/// detect one, we only use confident phase change table results.")
///
/// # Example
///
/// ```
/// use tpcp_core::PhaseId;
/// use tpcp_predict::{NextPhasePredictor, PredictorKind};
///
/// let mut p = NextPhasePredictor::new(PredictorKind::last_value());
/// p.observe(PhaseId::new(1));
/// let r = p.observe(PhaseId::new(1)).unwrap();
/// assert!(r.correct());
/// ```
#[derive(Debug, Clone)]
pub struct NextPhasePredictor {
    change: Option<PhaseChangePredictor>,
    table_confidence: bool,
    last_value: LastValuePredictor,
    pending: Option<PendingPrediction>,
    breakdown: NextPhaseBreakdown,
}

#[derive(Debug, Clone)]
struct PendingPrediction {
    predicted: PhaseId,
    candidates: Vec<PhaseId>,
    source: PredictionSource,
    confident: bool,
}

impl NextPhasePredictor {
    /// Builds a predictor of the given kind.
    pub fn new(kind: PredictorKind) -> Self {
        Self {
            change: kind.history.map(|h| {
                PhaseChangePredictor::new(
                    h,
                    kind.policy,
                    kind.table_confidence,
                    kind.entries,
                    kind.ways,
                )
            }),
            table_confidence: kind.table_confidence,
            last_value: match (kind.lv_confidence, kind.lv_counter) {
                (false, _) => LastValuePredictor::without_confidence(),
                (true, None) => LastValuePredictor::new(),
                (true, Some((bits, threshold))) => LastValuePredictor::with_confidence(
                    crate::confidence::ConfidenceCounter::new(bits, threshold),
                ),
            },
            pending: None,
            breakdown: NextPhaseBreakdown::default(),
        }
    }

    /// Observes the next interval's actual phase. Resolves and returns the
    /// previous prediction (if any), trains all components, and forms the
    /// prediction for the following interval.
    pub fn observe(&mut self, actual: PhaseId) -> Option<ResolvedPrediction> {
        let resolved = self.pending.take().map(|p| ResolvedPrediction {
            predicted: p.predicted,
            candidates: p.candidates,
            actual,
            source: p.source,
            confident: p.confident,
        });
        if let Some(r) = &resolved {
            self.breakdown.record(r);
        }

        // Train components.
        self.last_value.observe(actual);
        if let Some(change) = &mut self.change {
            change.observe(actual);
        }

        // Form the next prediction.
        let lv = self
            .last_value
            .prediction()
            .expect("observe() was just called");
        let table_pred: Option<ChangePrediction> =
            self.change.as_ref().and_then(PhaseChangePredictor::predict);
        self.pending = Some(match table_pred {
            // Use the table only when it is a hit AND (confidence disabled
            // or the entry is confident) AND it actually predicts a change
            // (a table entry predicting "stay" adds nothing over last
            // value).
            Some(tp) if tp.confident && tp.primary != actual => PendingPrediction {
                predicted: tp.primary,
                candidates: tp.candidates,
                source: PredictionSource::ChangeTable,
                confident: tp.confident,
            },
            _ => PendingPrediction {
                predicted: lv.0,
                candidates: vec![lv.0],
                source: PredictionSource::LastValue,
                confident: lv.1,
            },
        });
        resolved
    }

    /// The outstanding prediction for the *next* interval's phase, with
    /// its confidence — `None` until the first observation. This is what
    /// an online query answers between interval boundaries.
    pub fn current_prediction(&self) -> Option<(PhaseId, bool)> {
        self.pending.as_ref().map(|p| (p.predicted, p.confident))
    }

    /// The accumulated Figure 7 breakdown.
    pub fn breakdown(&self) -> NextPhaseBreakdown {
        self.breakdown
    }

    /// Whether this predictor has a change table attached.
    pub fn has_change_table(&self) -> bool {
        self.change.is_some()
    }

    /// Whether the change table consults confidence counters.
    pub fn uses_table_confidence(&self) -> bool {
        self.table_confidence
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u32) -> PhaseId {
        PhaseId::new(v)
    }

    #[test]
    fn stable_stream_is_perfectly_predicted() {
        let mut p = NextPhasePredictor::new(PredictorKind::last_value());
        let mut correct = 0;
        for _ in 0..100 {
            if let Some(r) = p.observe(id(1)) {
                if r.correct() {
                    correct += 1;
                }
            }
        }
        assert_eq!(correct, 99);
    }

    #[test]
    fn last_value_misses_every_change() {
        let mut p = NextPhasePredictor::new(PredictorKind::last_value());
        for i in 0..20u32 {
            p.observe(id(i)); // every interval is a new phase
        }
        let b = p.breakdown();
        assert_eq!(b.total(), 19);
        assert_eq!(b.accuracy(), 0.0);
    }

    #[test]
    fn rle_predicts_periodic_changes() {
        // 3-periodic pattern 1,1,2 repeated: last value gets 2/3, RLE-2
        // should approach 100% once trained and confident.
        let mut lv = NextPhasePredictor::new(PredictorKind::last_value());
        let mut rle = NextPhasePredictor::new(PredictorKind::rle(2));
        let mut lv_correct = 0u32;
        let mut rle_correct = 0u32;
        let mut total = 0u32;
        for rep in 0..200 {
            for v in [1u32, 1, 2] {
                let a = lv.observe(id(v));
                let b = rle.observe(id(v));
                if rep >= 50 {
                    if let (Some(a), Some(b)) = (a, b) {
                        total += 1;
                        lv_correct += u32::from(a.correct());
                        rle_correct += u32::from(b.correct());
                    }
                }
            }
        }
        let lv_acc = f64::from(lv_correct) / f64::from(total);
        let rle_acc = f64::from(rle_correct) / f64::from(total);
        assert!(lv_acc < 0.70, "last value caps at 2/3: {lv_acc}");
        assert!(rle_acc > 0.95, "RLE learns the period: {rle_acc}");
    }

    #[test]
    fn breakdown_categories_are_exclusive() {
        let mut p = NextPhasePredictor::new(PredictorKind::rle(2));
        for i in 0..300u32 {
            p.observe(id(i % 3));
        }
        let b = p.breakdown();
        assert_eq!(b.total(), 299);
        assert_eq!(
            b.total(),
            b.correct_table
                + b.correct_lv_conf
                + b.correct_lv_unconf
                + b.incorrect_lv_unconf
                + b.incorrect_lv_conf
                + b.incorrect_table
        );
    }

    #[test]
    fn confident_fraction_bounded_by_accuracy() {
        let mut p = NextPhasePredictor::new(PredictorKind::markov(2));
        let mut x = 5u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            p.observe(id((x >> 61) as u32));
        }
        let b = p.breakdown();
        assert!(b.confident_correct_fraction() <= b.accuracy() + 1e-12);
    }

    #[test]
    fn markov_without_table_conf_uses_table_more() {
        let kind = PredictorKind::markov(2).without_table_confidence();
        let mut p = NextPhasePredictor::new(kind);
        assert!(!p.uses_table_confidence());
        for i in 0..100u32 {
            p.observe(id(i % 2));
        }
        let b = p.breakdown();
        assert!(
            b.correct_table + b.incorrect_table > 0,
            "table should be consulted without confidence gating: {b:?}"
        );
    }
}
