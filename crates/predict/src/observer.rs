//! [`PhaseObserver`] implementations for the predictor stacks.
//!
//! These adapters let every predictor ride a classified-interval stream
//! produced once by an experiment engine, instead of each experiment
//! replaying the phase-ID sequence into each predictor by hand. Each impl
//! forwards to the predictor's `observe` and discards the per-interval
//! resolution — the accumulated breakdowns/judgments carried by the
//! predictors themselves are what the experiments read out at the end.

use tpcp_core::{IntervalSummary, PhaseId, PhaseObserver};

use crate::change::{ChangeEvaluator, PerfectMarkov};
use crate::length::LengthClassPredictor;
use crate::metric::{MetricError, MetricPredictor};
use crate::next_phase::NextPhasePredictor;
use crate::outlook::OutlookPredictor;

impl PhaseObserver for NextPhasePredictor {
    fn observe_phase(&mut self, id: PhaseId, _summary: &IntervalSummary) {
        self.observe(id);
    }
}

impl PhaseObserver for ChangeEvaluator {
    fn observe_phase(&mut self, id: PhaseId, _summary: &IntervalSummary) {
        self.observe(id);
    }
}

impl PhaseObserver for PerfectMarkov {
    fn observe_phase(&mut self, id: PhaseId, _summary: &IntervalSummary) {
        self.observe(id);
    }
}

impl PhaseObserver for LengthClassPredictor {
    fn observe_phase(&mut self, id: PhaseId, _summary: &IntervalSummary) {
        self.observe(id);
    }
}

impl PhaseObserver for OutlookPredictor {
    fn observe_phase(&mut self, id: PhaseId, _summary: &IntervalSummary) {
        self.observe(id);
    }
}

/// Scores a [`MetricPredictor`] over a classified stream: each interval,
/// the pending prediction (if warmed up) is resolved against the interval's
/// CPI before the predictor observes it.
#[derive(Debug, Clone, Default)]
pub struct EvaluatedMetric<P> {
    predictor: P,
    error: MetricError,
}

impl<P: MetricPredictor> EvaluatedMetric<P> {
    /// Wraps a metric predictor with an error tracker.
    pub fn new(predictor: P) -> Self {
        Self {
            predictor,
            error: MetricError::new(),
        }
    }

    /// The error accumulated so far.
    pub fn error(&self) -> &MetricError {
        &self.error
    }

    /// The wrapped predictor.
    pub fn predictor(&self) -> &P {
        &self.predictor
    }
}

impl<P: MetricPredictor> PhaseObserver for EvaluatedMetric<P> {
    fn observe_phase(&mut self, id: PhaseId, summary: &IntervalSummary) {
        let cpi = summary.cpi();
        if let Some(predicted) = self.predictor.predict() {
            self.error.record(predicted, cpi);
        }
        self.predictor.observe(id, cpi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::LastValueMetric;
    use crate::next_phase::PredictorKind;

    fn summary(cycles: u64) -> IntervalSummary {
        IntervalSummary::new(0, 100, cycles)
    }

    #[test]
    fn observer_matches_direct_observe() {
        let stream: Vec<u32> = vec![1, 1, 2, 2, 2, 1, 1, 3, 3, 1];
        let mut direct = NextPhasePredictor::new(PredictorKind::markov(2));
        let mut driven = NextPhasePredictor::new(PredictorKind::markov(2));
        for &p in &stream {
            direct.observe(PhaseId::new(p));
            driven.observe_phase(PhaseId::new(p), &summary(150));
        }
        assert_eq!(direct.breakdown(), driven.breakdown());
    }

    #[test]
    fn evaluated_metric_scores_predictions() {
        let mut m = EvaluatedMetric::new(LastValueMetric::new());
        // CPI 1.5 then 2.5: one resolved prediction, absolute error 1.0.
        m.observe_phase(PhaseId::new(1), &summary(150));
        m.observe_phase(PhaseId::new(1), &summary(250));
        assert_eq!(m.error().count(), 1);
        assert!((m.error().mae() - 1.0).abs() < 1e-12);
    }
}
