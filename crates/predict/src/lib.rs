//! Phase prediction architectures (the paper's Sections 5 and 6).
//!
//! Three prediction problems are covered, matching the paper's evaluation:
//!
//! 1. **Next phase prediction** (Figure 7): predict the [`PhaseId`] of the
//!    next interval, for every interval. [`NextPhasePredictor`] composes a
//!    [`LastValuePredictor`] (with per-phase confidence counters) and an
//!    optional phase-change table ([`PhaseChangePredictor`]) whose
//!    confident predictions override last-value.
//! 2. **Phase change prediction** (Figure 8): predict the *outcome* of the
//!    next phase change, evaluated only at change points.
//!    [`ChangeEvaluator`] classifies each change as confident/unconfident ×
//!    correct/incorrect or a tag miss; [`PerfectMarkov`] gives the
//!    cold-start upper bound.
//! 3. **Phase length prediction** (Figure 9): predict which
//!    [`RunLengthClass`] the next phase's run length will fall into, with a
//!    two-in-a-row hysteresis update ([`LengthClassPredictor`]).
//!
//! All table-based predictors use the paper's 32-entry 4-way set
//! associative organization by default ([`AssocTable`]).
//!
//! # Example
//!
//! ```
//! use tpcp_core::PhaseId;
//! use tpcp_predict::{NextPhasePredictor, PredictorKind};
//!
//! let mut p = NextPhasePredictor::new(PredictorKind::rle(2).with_confidence());
//! // A stable run of phase 1: after warm-up, predictions are correct.
//! let one = PhaseId::new(1);
//! let mut correct = 0;
//! for i in 0..100 {
//!     if let Some(res) = p.observe(one) {
//!         if res.correct() && i > 1 { correct += 1; }
//!     }
//! }
//! assert!(correct >= 97);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assoc;
mod change;
mod confidence;
mod history;
mod last_value;
mod length;
mod metric;
mod next_phase;
mod observer;
mod outcome_set;
mod outlook;

pub use assoc::AssocTable;
pub use change::{
    ChangeBreakdown, ChangeEvaluator, ChangeJudgment, ChangePolicy, PerfectMarkov,
    PhaseChangePredictor,
};
pub use confidence::ConfidenceCounter;
pub use history::{HistoryKind, PhaseHistory};
pub use last_value::LastValuePredictor;
pub use length::{LengthClassPredictor, LengthJudgment, RunLengthClass};
pub use metric::{EwmaMetric, LastValueMetric, MetricError, MetricPredictor, PhaseIndexedMetric};
pub use next_phase::{
    NextPhaseBreakdown, NextPhasePredictor, PredictionSource, PredictorKind, ResolvedPrediction,
};
pub use observer::EvaluatedMetric;
pub use outlook::{Outlook, OutlookPredictor};

pub use tpcp_core::PhaseId;
