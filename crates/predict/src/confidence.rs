//! Saturating confidence counters (Section 5.1).

use serde::{Deserialize, Serialize};

/// An N-bit saturating confidence counter.
///
/// Incremented on correct predictions, decremented on incorrect ones; a
/// prediction is trusted only while the counter is at or above its
/// threshold. The paper uses a 3-bit counter with threshold 6 for
/// last-value prediction and a 1-bit counter (threshold 1) for phase-change
/// table entries, incrementing and decrementing by 1 in both cases.
///
/// # Example
///
/// ```
/// use tpcp_predict::ConfidenceCounter;
///
/// let mut c = ConfidenceCounter::last_value_default(); // 3-bit, threshold 6
/// assert!(!c.is_confident());
/// for _ in 0..6 { c.correct(); }
/// assert!(c.is_confident());
/// c.incorrect();
/// assert!(!c.is_confident()); // 6 - 1 = 5 < 6
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConfidenceCounter {
    value: u8,
    max: u8,
    threshold: u8,
}

impl ConfidenceCounter {
    /// Creates a counter with `bits` bits and the given confidence
    /// threshold, starting at zero.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 7, or if the threshold exceeds
    /// the counter's maximum value.
    pub fn new(bits: u32, threshold: u8) -> Self {
        assert!((1..=7).contains(&bits), "bits must be in 1..=7");
        let max = ((1u16 << bits) - 1) as u8;
        assert!(threshold <= max, "threshold {threshold} exceeds max {max}");
        Self {
            value: 0,
            max,
            threshold,
        }
    }

    /// The paper's last-value configuration: 3 bits, threshold 6
    /// ("1 less than fully saturated").
    pub fn last_value_default() -> Self {
        Self::new(3, 6)
    }

    /// The paper's phase-change-table configuration: a 1-bit counter.
    pub fn change_table_default() -> Self {
        Self::new(1, 1)
    }

    /// Whether predictions should currently be trusted.
    #[inline]
    pub fn is_confident(&self) -> bool {
        self.value >= self.threshold
    }

    /// Records a correct prediction (increment by 1, saturating).
    #[inline]
    pub fn correct(&mut self) {
        self.value = (self.value + 1).min(self.max);
    }

    /// Records an incorrect prediction (decrement by 1, saturating).
    #[inline]
    pub fn incorrect(&mut self) {
        self.value = self.value.saturating_sub(1);
    }

    /// Resets to zero (used when the associated entry is replaced).
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Current raw value (for tests and introspection).
    pub fn value(&self) -> u8 {
        self.value
    }

    /// The saturation ceiling, `2^bits - 1`.
    pub fn max(&self) -> u8 {
        self.max
    }

    /// The confidence threshold the counter must reach to be trusted.
    pub fn threshold(&self) -> u8 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_at_max() {
        let mut c = ConfidenceCounter::new(2, 2);
        for _ in 0..10 {
            c.correct();
        }
        assert_eq!(c.value(), 3);
        for _ in 0..10 {
            c.incorrect();
        }
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn one_bit_counter_flips_immediately() {
        let mut c = ConfidenceCounter::change_table_default();
        assert!(!c.is_confident());
        c.correct();
        assert!(c.is_confident());
        c.incorrect();
        assert!(!c.is_confident());
    }

    #[test]
    fn three_bit_needs_six_corrects() {
        let mut c = ConfidenceCounter::last_value_default();
        for i in 0..6 {
            assert!(!c.is_confident(), "not confident after {i}");
            c.correct();
        }
        assert!(c.is_confident());
    }

    #[test]
    fn reset_clears_state() {
        let mut c = ConfidenceCounter::last_value_default();
        for _ in 0..7 {
            c.correct();
        }
        c.reset();
        assert!(!c.is_confident());
        assert_eq!(c.value(), 0);
    }

    /// Boundary behaviour at the floor (0) and ceiling (2^n - 1) for every
    /// legal width: an incorrect at 0 stays at 0, a correct at max stays at
    /// max, and one step off either rail lands exactly one away.
    #[test]
    fn floor_and_ceiling_are_sticky_for_every_width() {
        for bits in 1..=7u32 {
            let max = (1u16 << bits) as u8 - 1;
            let mut c = ConfidenceCounter::new(bits, max);
            assert_eq!(c.max(), max, "{bits}-bit ceiling");
            assert_eq!(c.value(), 0, "{bits}-bit counters start at the floor");
            c.incorrect();
            assert_eq!(c.value(), 0, "{bits}-bit floor must not underflow");
            for _ in 0..=u16::from(max) {
                c.correct();
            }
            assert_eq!(c.value(), max, "{bits}-bit ceiling must not overflow");
            c.incorrect();
            assert_eq!(c.value(), max - 1, "one incorrect steps off the rail");
            c.correct();
            assert_eq!(c.value(), max, "one correct re-saturates");
        }
    }

    /// Pins the paper's Section 5.1 configuration: last-value prediction
    /// uses a 3-bit counter (max 7) with threshold 6, "1 less than fully
    /// saturated".
    #[test]
    fn paper_last_value_config_is_three_bit_threshold_six() {
        let c = ConfidenceCounter::last_value_default();
        assert_eq!(c.max(), 7);
        assert_eq!(c.threshold(), 6);
        assert_eq!(c.max() - c.threshold(), 1, "1 less than fully saturated");
        let change = ConfidenceCounter::change_table_default();
        assert_eq!((change.max(), change.threshold()), (1, 1));
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn zero_bits_rejected() {
        ConfidenceCounter::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn overlarge_threshold_rejected() {
        ConfidenceCounter::new(2, 4);
    }
}
