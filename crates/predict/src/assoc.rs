//! A small set-associative table with per-set LRU — the storage organization
//! shared by the Markov, RLE, and length predictors (32-entry, 4-way in the
//! paper).

/// A set-associative table mapping `u64` keys to values.
///
/// Keys are hashed to a set; the full key is stored as the tag. Within a
/// set, replacement is LRU. This mirrors a hardware prediction table: small,
/// fixed-capacity, and lossy.
///
/// # Example
///
/// ```
/// use tpcp_predict::AssocTable;
///
/// let mut t: AssocTable<&str> = AssocTable::new(32, 4);
/// t.insert(7, "seven");
/// assert_eq!(t.get(7), Some(&"seven"));
/// assert_eq!(t.get(8), None);
/// ```
#[derive(Debug, Clone)]
pub struct AssocTable<V> {
    sets: Vec<Vec<Slot<V>>>,
    ways: usize,
    set_mask: u64,
    clock: u64,
    evictions: u64,
}

#[derive(Debug, Clone)]
struct Slot<V> {
    key: u64,
    value: V,
    stamp: u64,
}

fn mix(key: u64) -> u64 {
    // SplitMix64 finalizer: decorrelates structured keys before set
    // selection.
    let mut z = key;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<V> AssocTable<V> {
    /// Creates a table with `entries` total slots organized as
    /// `entries / ways` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero, `entries` is not a multiple of `ways`, or
    /// the resulting set count is not a power of two.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(ways > 0, "ways must be positive");
        assert!(
            entries.is_multiple_of(ways) && entries > 0,
            "entries must be a positive multiple of ways"
        );
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            set_mask: sets as u64 - 1,
            clock: 0,
            evictions: 0,
        }
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn set_of(&self, key: u64) -> usize {
        (mix(key) & self.set_mask) as usize
    }

    /// Looks up `key` without updating recency.
    pub fn get(&self, key: u64) -> Option<&V> {
        let set = &self.sets[self.set_of(key)];
        set.iter().find(|s| s.key == key).map(|s| &s.value)
    }

    /// Looks up `key`, marking the entry most-recently-used on hit.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.clock += 1;
        let clock = self.clock;
        let set_idx = self.set_of(key);
        let set = &mut self.sets[set_idx];
        set.iter_mut().find(|s| s.key == key).map(|s| {
            s.stamp = clock;
            &mut s.value
        })
    }

    /// Inserts or replaces the value for `key`, evicting the set's LRU
    /// entry if the set is full. Returns the evicted `(key, value)` if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        self.clock += 1;
        let clock = self.clock;
        let set_idx = self.set_of(key);
        let ways = self.ways;
        let set = &mut self.sets[set_idx];
        if let Some(slot) = set.iter_mut().find(|s| s.key == key) {
            slot.value = value;
            slot.stamp = clock;
            return None;
        }
        let evicted = if set.len() >= ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.stamp)
                .map(|(i, _)| i)
                .expect("set is full, hence non-empty");
            self.evictions += 1;
            let old = set.swap_remove(lru);
            Some((old.key, old.value))
        } else {
            None
        };
        set.push(Slot {
            key,
            value,
            stamp: clock,
        });
        evicted
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let set_idx = self.set_of(key);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|s| s.key == key)?;
        Some(set.swap_remove(pos).value)
    }

    /// Iterates over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.sets.iter().flatten().map(|s| (s.key, &s.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut t: AssocTable<u32> = AssocTable::new(8, 2);
        assert!(t.insert(1, 10).is_none());
        assert_eq!(t.get(1), Some(&10));
        assert_eq!(t.remove(1), Some(10));
        assert_eq!(t.get(1), None);
        assert_eq!(t.remove(1), None);
    }

    #[test]
    fn insert_same_key_replaces() {
        let mut t: AssocTable<u32> = AssocTable::new(8, 2);
        t.insert(1, 10);
        t.insert(1, 20);
        assert_eq!(t.get(1), Some(&20));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn set_lru_eviction() {
        let mut t: AssocTable<u64> = AssocTable::new(4, 4); // one set
        for k in 0..4u64 {
            t.insert(k, k);
        }
        t.get_mut(0); // 0 becomes MRU; 1 is LRU
        let evicted = t.insert(99, 99).expect("full set must evict");
        assert_eq!(evicted.0, 1);
        assert_eq!(t.len(), 4);
        assert_eq!(t.evictions(), 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut t: AssocTable<u64> = AssocTable::new(32, 4);
        for k in 0..1000u64 {
            t.insert(k, k);
        }
        assert!(t.len() <= 32);
    }

    #[test]
    fn get_does_not_touch_lru() {
        let mut t: AssocTable<u64> = AssocTable::new(2, 2); // one set of 2
        t.insert(1, 1);
        t.insert(2, 2);
        // Plain get of 1 must NOT protect it from eviction.
        let _ = t.get(1);
        let evicted = t.insert(3, 3).unwrap();
        assert_eq!(evicted.0, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _: AssocTable<u8> = AssocTable::new(24, 4); // 6 sets
    }

    #[test]
    fn iter_sees_all_entries() {
        let mut t: AssocTable<u64> = AssocTable::new(16, 4);
        for k in 0..10u64 {
            t.insert(k, k * 2);
        }
        // Some sets may overflow (keys hash unevenly), but every surviving
        // entry is intact and accounting balances.
        let pairs: Vec<_> = t.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(pairs.len(), t.len());
        assert_eq!(t.len() as u64 + t.evictions(), 10);
        assert!(pairs.iter().all(|&(k, v)| v == k * 2));
    }
}
