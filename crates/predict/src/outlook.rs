//! Composite phase outlook: next phase *and* its expected duration.
//!
//! The paper's motivating consumers (Section 1: DVS task scheduling,
//! SMT co-scheduling, reconfiguration) need both halves of Section 6 at
//! once: at each phase change, *which* behaviour comes next and *how long*
//! it will last, so an optimization's cost can be amortized against the
//! predicted benefit window. [`OutlookPredictor`] composes a
//! [`PhaseChangePredictor`] with a [`LengthClassPredictor`] behind one
//! `observe` call.

use tpcp_core::PhaseId;

use crate::change::{ChangePolicy, PhaseChangePredictor};
use crate::history::HistoryKind;
use crate::length::{LengthClassPredictor, RunLengthClass};

/// A joint prediction issued when a phase change completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outlook {
    /// The phase just entered.
    pub entered: PhaseId,
    /// Predicted run-length class for the phase just entered.
    pub expected_length: RunLengthClass,
    /// Predicted outcome of the *next* change (where execution goes after
    /// the entered phase), if the change table has a confident entry.
    pub next_phase: Option<PhaseId>,
}

impl Outlook {
    /// Whether an optimization with break-even length `needed` is worth
    /// applying for the entered phase.
    pub fn amortizes(&self, needed: RunLengthClass) -> bool {
        self.expected_length >= needed
    }
}

/// Composes phase-change and length-class prediction; see the module docs.
///
/// # Example
///
/// ```
/// use tpcp_core::PhaseId;
/// use tpcp_predict::{OutlookPredictor, RunLengthClass};
///
/// let mut p = OutlookPredictor::hpca2005();
/// // Pattern: phase 1 for 20 intervals, phase 2 for 2, repeated.
/// let mut last = None;
/// for _ in 0..15 {
///     for _ in 0..20 { if let Some(o) = p.observe(PhaseId::new(1)) { last = Some(o); } }
///     for _ in 0..2  { p.observe(PhaseId::new(2)); }
/// }
/// let outlook = last.expect("changes occurred");
/// assert_eq!(outlook.entered, PhaseId::new(1));
/// assert_eq!(outlook.expected_length, RunLengthClass::Medium);
/// assert!(outlook.amortizes(RunLengthClass::Medium));
/// ```
#[derive(Debug, Clone)]
pub struct OutlookPredictor {
    change: PhaseChangePredictor,
    length: LengthClassPredictor,
}

impl OutlookPredictor {
    /// Builds an outlook predictor from its two components.
    pub fn new(change: PhaseChangePredictor, length: LengthClassPredictor) -> Self {
        Self { change, length }
    }

    /// The paper-derived configuration: Markov-2 change prediction with
    /// 1-bit confidence (Markov keys are stable for the whole run, so a
    /// next-phase prediction is available immediately at phase entry —
    /// RLE keys only fire once the run reaches its recorded length) and
    /// the RLE-2 length-class predictor, both 32-entry 4-way.
    pub fn hpca2005() -> Self {
        Self::new(
            PhaseChangePredictor::new(
                HistoryKind::Markov(2),
                ChangePolicy::MostRecent,
                true,
                32,
                4,
            ),
            LengthClassPredictor::new(32, 4),
        )
    }

    /// Observes the next interval's phase; at a phase change, returns the
    /// joint outlook for the phase just entered.
    pub fn observe(&mut self, phase: PhaseId) -> Option<Outlook> {
        let was = self.change.current_phase();
        self.length.observe(phase);
        let changed = self.change.observe(phase);
        if !changed || was.is_none() {
            return None;
        }
        let expected_length = self
            .length
            .current_prediction()
            .unwrap_or(RunLengthClass::Short);
        // After observing the change, the change table's prediction is for
        // the *next* change (away from `phase`).
        let next_phase = self
            .change
            .predict()
            .filter(|p| p.confident)
            .map(|p| p.primary);
        Some(Outlook {
            entered: phase,
            expected_length,
            next_phase,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u32) -> PhaseId {
        PhaseId::new(v)
    }

    #[test]
    fn no_outlook_without_change() {
        let mut p = OutlookPredictor::hpca2005();
        p.observe(id(1));
        assert!(p.observe(id(1)).is_none(), "stable interval issues nothing");
    }

    #[test]
    fn first_interval_issues_nothing() {
        let mut p = OutlookPredictor::hpca2005();
        assert!(p.observe(id(1)).is_none());
    }

    #[test]
    fn outlook_learns_periodic_lengths() {
        let mut p = OutlookPredictor::hpca2005();
        let mut outlooks = Vec::new();
        for _ in 0..12 {
            for _ in 0..30 {
                if let Some(o) = p.observe(id(1)) {
                    outlooks.push(o);
                }
            }
            for _ in 0..3 {
                if let Some(o) = p.observe(id(2)) {
                    outlooks.push(o);
                }
            }
        }
        let late: Vec<_> = outlooks.iter().rev().take(4).collect();
        for o in &late {
            match o.entered.value() {
                1 => assert_eq!(o.expected_length, RunLengthClass::Medium),
                2 => assert_eq!(o.expected_length, RunLengthClass::Short),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn next_phase_prediction_appears_with_confidence() {
        let mut p = OutlookPredictor::hpca2005();
        let mut saw_next = false;
        for _ in 0..20 {
            for _ in 0..5 {
                p.observe(id(1));
            }
            if let Some(o) = p.observe(id(2)) {
                if o.next_phase == Some(id(1)) {
                    saw_next = true;
                }
            }
            p.observe(id(2));
        }
        assert!(saw_next, "the 2->1 transition should become confident");
    }

    #[test]
    fn amortizes_orders_classes() {
        let o = Outlook {
            entered: id(1),
            expected_length: RunLengthClass::Long,
            next_phase: None,
        };
        assert!(o.amortizes(RunLengthClass::Short));
        assert!(o.amortizes(RunLengthClass::Long));
        assert!(!o.amortizes(RunLengthClass::VeryLong));
    }
}
