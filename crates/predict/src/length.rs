//! Phase length prediction (Section 6.2, Figure 9).

use serde::{Deserialize, Serialize};

use tpcp_core::PhaseId;

use crate::assoc::AssocTable;
use crate::history::PhaseHistory;

/// The paper's four run-length classes, in intervals of 10M instructions:
/// 1–15 (10–150M instructions), 16–127 (150M–1.3B), 128–1023 (1.3B–10B),
/// and ≥ 1024 (more than 10B instructions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RunLengthClass {
    /// 1–15 intervals.
    Short,
    /// 16–127 intervals.
    Medium,
    /// 128–1023 intervals.
    Long,
    /// 1024 or more intervals.
    VeryLong,
}

impl RunLengthClass {
    /// Classifies a run length in intervals.
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero (runs are at least one interval). Use
    /// [`RunLengthClass::try_from_length`] when zero is a reachable input.
    pub fn from_length(length: u64) -> Self {
        match Self::try_from_length(length) {
            Some(class) => class,
            None => panic!("run length must be at least 1 interval"),
        }
    }

    /// Classifies a run length in intervals, returning `None` for the
    /// impossible length zero instead of panicking.
    pub fn try_from_length(length: u64) -> Option<Self> {
        match length {
            0 => None,
            1..=15 => Some(RunLengthClass::Short),
            16..=127 => Some(RunLengthClass::Medium),
            128..=1023 => Some(RunLengthClass::Long),
            _ => Some(RunLengthClass::VeryLong),
        }
    }

    /// All classes, shortest first.
    pub const ALL: [RunLengthClass; 4] = [
        RunLengthClass::Short,
        RunLengthClass::Medium,
        RunLengthClass::Long,
        RunLengthClass::VeryLong,
    ];

    /// A display label matching the paper's buckets.
    pub fn label(self) -> &'static str {
        match self {
            RunLengthClass::Short => "1-15",
            RunLengthClass::Medium => "16-127",
            RunLengthClass::Long => "128-1023",
            RunLengthClass::VeryLong => "1024-",
        }
    }
}

impl core::fmt::Display for RunLengthClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[derive(Debug, Clone)]
struct LengthEntry {
    prediction: RunLengthClass,
    /// Hysteresis: a differing class must be seen twice in a row before it
    /// replaces the prediction (filters length "noise" in programs like
    /// gcc).
    candidate: Option<RunLengthClass>,
}

impl LengthEntry {
    fn update(&mut self, actual: RunLengthClass) {
        if actual == self.prediction {
            self.candidate = None;
        } else if self.candidate == Some(actual) {
            self.prediction = actual;
            self.candidate = None;
        } else {
            self.candidate = Some(actual);
        }
    }
}

/// The resolution of one phase-length prediction (produced when the
/// predicted phase's run completes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LengthJudgment {
    /// Predicted run-length class.
    pub predicted: RunLengthClass,
    /// The class the run actually fell into.
    pub actual: RunLengthClass,
    /// Whether the prediction came from the table (vs. the static
    /// "short" fallback on a tag miss).
    pub from_table: bool,
}

impl LengthJudgment {
    /// Whether the class was predicted correctly.
    pub fn correct(&self) -> bool {
        self.predicted == self.actual
    }
}

/// Predicts the run-length class of the next phase with an RLE-2 indexed,
/// 32-entry 4-way table and a two-in-a-row hysteresis update, exactly as in
/// Section 6.2.2. No confidence counters are used (the paper found accuracy
/// already high without them).
///
/// # Example
///
/// ```
/// use tpcp_core::PhaseId;
/// use tpcp_predict::{LengthClassPredictor, RunLengthClass};
///
/// let mut p = LengthClassPredictor::new(32, 4);
/// // Pattern: phase 1 runs 20 intervals (Medium), phase 2 runs 2 (Short).
/// let mut correct = 0;
/// let mut total = 0;
/// for rep in 0..20 {
///     for _ in 0..20 {
///         if let Some(j) = p.observe(PhaseId::new(1)) {
///             if rep > 5 { total += 1; correct += u32::from(j.correct()); }
///         }
///     }
///     for _ in 0..2 {
///         if let Some(j) = p.observe(PhaseId::new(2)) {
///             if rep > 5 { total += 1; correct += u32::from(j.correct()); }
///         }
///     }
/// }
/// assert!(correct as f64 / total as f64 > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct LengthClassPredictor {
    table: AssocTable<LengthEntry>,
    history: PhaseHistory,
    pending: Option<Pending>,
    correct: u64,
    total: u64,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    key: u64,
    predicted: RunLengthClass,
    from_table: bool,
}

impl LengthClassPredictor {
    /// Creates a predictor with the given table geometry (32-entry 4-way in
    /// the paper).
    pub fn new(entries: usize, ways: usize) -> Self {
        Self {
            table: AssocTable::new(entries, ways),
            history: PhaseHistory::new(4),
            pending: None,
            correct: 0,
            total: 0,
        }
    }

    /// The current outstanding prediction for the in-progress run's class.
    pub fn current_prediction(&self) -> Option<RunLengthClass> {
        self.pending.map(|p| p.predicted)
    }

    /// The RLE-2 index with run lengths quantized to their length class.
    ///
    /// Exact run lengths jitter by a few intervals between recurrences of
    /// the same program behaviour, so an exact-length key would almost
    /// never re-hit and every prediction would fall back to the static
    /// "short" guess — inconsistent with the near-zero misprediction rates
    /// the paper reports for gzip. Quantizing the history's lengths to the
    /// same four classes being predicted makes recurrences collide while
    /// preserving the run-length information in the index.
    fn quantized_key(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for (phase, len) in self.history.last_rle(2) {
            h ^= u64::from(phase.value()) + 1;
            h = h.wrapping_mul(FNV_PRIME);
            let class = RunLengthClass::from_length(len.max(1)) as u64;
            h ^= class + 1;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// Observes the next interval's phase. At a phase change, resolves the
    /// outstanding prediction for the run that just completed (returning
    /// its judgment), trains the table, and issues a prediction for the new
    /// phase's run.
    pub fn observe(&mut self, phase: PhaseId) -> Option<LengthJudgment> {
        let current = self.history.current_phase();
        match current {
            Some(c) if c == phase => {
                self.history.push(phase);
                None
            }
            _ => {
                // The previous run (if any) just completed.
                let judgment = if current.is_some() {
                    let run = self.history.current_run();
                    let actual = RunLengthClass::from_length(run);
                    self.pending.take().map(|p| {
                        // Train the entry this prediction came from.
                        match self.table.get_mut(p.key) {
                            Some(entry) => entry.update(actual),
                            None => {
                                self.table.insert(
                                    p.key,
                                    LengthEntry {
                                        prediction: actual,
                                        candidate: None,
                                    },
                                );
                            }
                        }
                        let j = LengthJudgment {
                            predicted: p.predicted,
                            actual,
                            from_table: p.from_table,
                        };
                        self.total += 1;
                        if j.correct() {
                            self.correct += 1;
                        }
                        j
                    })
                } else {
                    None
                };

                // Enter the new phase and predict its run's class.
                self.history.push(phase);
                let key = self.quantized_key();
                let (predicted, from_table) = match self.table.get(key) {
                    Some(entry) => (entry.prediction, true),
                    // Static fallback: most runs fall in the smallest class.
                    None => (RunLengthClass::Short, false),
                };
                self.pending = Some(Pending {
                    key,
                    predicted,
                    from_table,
                });
                judgment
            }
        }
    }

    /// `(correct, total)` resolved predictions.
    pub fn counts(&self) -> (u64, u64) {
        (self.correct, self.total)
    }

    /// Misprediction rate over resolved predictions.
    pub fn misprediction_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.total - self.correct) as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u32) -> PhaseId {
        PhaseId::new(v)
    }

    #[test]
    fn class_boundaries_match_paper() {
        assert_eq!(RunLengthClass::from_length(1), RunLengthClass::Short);
        assert_eq!(RunLengthClass::from_length(15), RunLengthClass::Short);
        assert_eq!(RunLengthClass::from_length(16), RunLengthClass::Medium);
        assert_eq!(RunLengthClass::from_length(127), RunLengthClass::Medium);
        assert_eq!(RunLengthClass::from_length(128), RunLengthClass::Long);
        assert_eq!(RunLengthClass::from_length(1023), RunLengthClass::Long);
        assert_eq!(RunLengthClass::from_length(1024), RunLengthClass::VeryLong);
        assert_eq!(
            RunLengthClass::from_length(u64::MAX),
            RunLengthClass::VeryLong
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_length_rejected() {
        RunLengthClass::from_length(0);
    }

    #[test]
    fn try_from_length_is_total() {
        assert_eq!(RunLengthClass::try_from_length(0), None);
        for (len, want) in [
            (1, RunLengthClass::Short),
            (15, RunLengthClass::Short),
            (16, RunLengthClass::Medium),
            (127, RunLengthClass::Medium),
            (128, RunLengthClass::Long),
            (1023, RunLengthClass::Long),
            (1024, RunLengthClass::VeryLong),
            (u64::MAX, RunLengthClass::VeryLong),
        ] {
            assert_eq!(RunLengthClass::try_from_length(len), Some(want), "{len}");
        }
    }

    #[test]
    fn labels_match_figure_nine() {
        let labels: Vec<_> = RunLengthClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["1-15", "16-127", "128-1023", "1024-"]);
    }

    #[test]
    fn hysteresis_requires_two_in_a_row() {
        let mut e = LengthEntry {
            prediction: RunLengthClass::Short,
            candidate: None,
        };
        e.update(RunLengthClass::Medium);
        assert_eq!(e.prediction, RunLengthClass::Short, "one sighting is noise");
        e.update(RunLengthClass::Medium);
        assert_eq!(e.prediction, RunLengthClass::Medium, "two in a row commit");
    }

    #[test]
    fn hysteresis_resets_on_agreement() {
        let mut e = LengthEntry {
            prediction: RunLengthClass::Short,
            candidate: None,
        };
        e.update(RunLengthClass::Medium);
        e.update(RunLengthClass::Short); // agreement clears the candidate
        e.update(RunLengthClass::Medium);
        assert_eq!(e.prediction, RunLengthClass::Short, "candidate was reset");
    }

    #[test]
    fn tag_miss_falls_back_to_short() {
        let mut p = LengthClassPredictor::new(32, 4);
        p.observe(id(1));
        assert_eq!(p.current_prediction(), Some(RunLengthClass::Short));
    }

    #[test]
    fn stable_alternation_is_learned() {
        let mut p = LengthClassPredictor::new(32, 4);
        // phase 1 runs 200 (Long), phase 2 runs 5 (Short).
        let mut last_judgments = Vec::new();
        for rep in 0..10 {
            for _ in 0..200 {
                if let Some(j) = p.observe(id(1)) {
                    if rep > 4 {
                        last_judgments.push(j);
                    }
                }
            }
            for _ in 0..5 {
                if let Some(j) = p.observe(id(2)) {
                    if rep > 4 {
                        last_judgments.push(j);
                    }
                }
            }
        }
        assert!(!last_judgments.is_empty());
        assert!(
            last_judgments.iter().all(|j| j.correct()),
            "trained predictor should be exact: {last_judgments:?}"
        );
    }

    #[test]
    fn counts_track_resolutions() {
        let mut p = LengthClassPredictor::new(32, 4);
        for _ in 0..3 {
            p.observe(id(1));
        }
        p.observe(id(2)); // resolves run of 1 (length 3)
        p.observe(id(1)); // resolves run of 2 (length 1)
        let (_, total) = p.counts();
        assert_eq!(total, 2);
    }

    #[test]
    fn misprediction_rate_empty_is_zero() {
        let p = LengthClassPredictor::new(32, 4);
        assert_eq!(p.misprediction_rate(), 0.0);
    }
}
