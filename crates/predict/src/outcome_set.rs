//! Bounded multisets of phase-change outcomes, supporting the paper's
//! most-recent, Last-4, Top-1, and Top-4 prediction policies.

use serde::{Deserialize, Serialize};

use tpcp_core::PhaseId;

/// Maximum distinct outcomes tracked per table entry. Large enough for
/// Last-4/Top-4 policies with headroom; bounded as hardware would be.
const MAX_OUTCOMES: usize = 8;

/// The outcomes recorded for one phase-change-table entry.
///
/// Tracks up to [`MAX_OUTCOMES`] distinct outcomes with both recency order
/// (for most-recent and Last-K policies) and occurrence counts (for Top-K
/// policies). When full, the least frequent (oldest on tie) outcome is
/// evicted.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub(crate) struct OutcomeSet {
    /// Most recent first.
    items: Vec<(PhaseId, u32)>,
}

impl OutcomeSet {
    /// Creates a set seeded with one outcome.
    pub fn with(outcome: PhaseId) -> Self {
        let mut s = Self::default();
        s.record(outcome);
        s
    }

    /// Records an occurrence of `outcome`, moving it to the front of the
    /// recency order.
    pub fn record(&mut self, outcome: PhaseId) {
        if let Some(pos) = self.items.iter().position(|(p, _)| *p == outcome) {
            let (p, c) = self.items.remove(pos);
            self.items.insert(0, (p, c.saturating_add(1)));
            return;
        }
        if self.items.len() >= MAX_OUTCOMES {
            // Evict the least frequent; ties broken toward the oldest.
            let evict = self
                .items
                .iter()
                .enumerate()
                .rev()
                .min_by_key(|(_, (_, c))| *c)
                .map(|(i, _)| i)
                .expect("set is full, hence non-empty");
            self.items.remove(evict);
        }
        self.items.insert(0, (outcome, 1));
    }

    /// The most recently recorded outcome (the standard Markov/RLE
    /// prediction).
    pub fn most_recent(&self) -> Option<PhaseId> {
        self.items.first().map(|(p, _)| *p)
    }

    /// Whether `outcome` is among the `k` most recently seen unique
    /// outcomes (the Last-K policy).
    pub fn last_k_contains(&self, k: usize, outcome: PhaseId) -> bool {
        self.items.iter().take(k).any(|(p, _)| *p == outcome)
    }

    /// The most frequently seen outcome (ties broken toward recency).
    pub fn top1(&self) -> Option<PhaseId> {
        self.items
            .iter()
            .enumerate()
            .max_by_key(|(i, (_, c))| (*c, usize::MAX - i))
            .map(|(_, (p, _))| *p)
    }

    /// Whether `outcome` is among the `k` most frequent outcomes.
    pub fn top_k_contains(&self, k: usize, outcome: PhaseId) -> bool {
        let mut by_freq: Vec<_> = self.items.iter().enumerate().collect();
        // Sort by descending count; ties toward more recent (lower index).
        by_freq.sort_by(|(ia, (_, ca)), (ib, (_, cb))| cb.cmp(ca).then(ia.cmp(ib)));
        by_freq.iter().take(k).any(|(_, (p, _))| *p == outcome)
    }

    /// Number of distinct outcomes currently tracked.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Iterates outcomes most-recent first.
    pub fn iter_recent(&self) -> impl Iterator<Item = PhaseId> + '_ {
        self.items.iter().map(|(p, _)| *p)
    }

    /// Iterates outcomes most-frequent first (ties toward recency).
    pub fn iter_top(&self) -> impl Iterator<Item = PhaseId> + '_ {
        let mut by_freq: Vec<_> = self.items.iter().enumerate().collect();
        by_freq.sort_by(|(ia, (_, ca)), (ib, (_, cb))| cb.cmp(ca).then(ia.cmp(ib)));
        by_freq.into_iter().map(|(_, (p, _))| *p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u32) -> PhaseId {
        PhaseId::new(v)
    }

    #[test]
    fn most_recent_follows_inserts() {
        let mut s = OutcomeSet::with(id(1));
        s.record(id(2));
        assert_eq!(s.most_recent(), Some(id(2)));
        s.record(id(1));
        assert_eq!(s.most_recent(), Some(id(1)));
    }

    #[test]
    fn last_k_is_recency_based() {
        let mut s = OutcomeSet::default();
        for v in [1, 2, 3, 4, 5] {
            s.record(id(v));
        }
        assert!(s.last_k_contains(4, id(5)));
        assert!(s.last_k_contains(4, id(2)));
        assert!(!s.last_k_contains(4, id(1)), "1 fell out of the last 4");
    }

    #[test]
    fn top1_is_frequency_based() {
        let mut s = OutcomeSet::default();
        for v in [1, 2, 2, 2, 3] {
            s.record(id(v));
        }
        assert_eq!(s.top1(), Some(id(2)));
        // Most-recent differs from top-1 here.
        assert_eq!(s.most_recent(), Some(id(3)));
    }

    #[test]
    fn top_k_contains_frequent_outcomes() {
        let mut s = OutcomeSet::default();
        for v in [1, 1, 1, 2, 2, 3, 3, 4, 5] {
            s.record(id(v));
        }
        assert!(s.top_k_contains(4, id(1)));
        assert!(s.top_k_contains(4, id(2)));
        assert!(s.top_k_contains(4, id(3)));
        // 4 and 5 tie at count 1; exactly one of them fills the 4th slot
        // (recency favors 5).
        assert!(s.top_k_contains(4, id(5)));
        assert!(!s.top_k_contains(4, id(4)));
    }

    #[test]
    fn bounded_capacity_evicts_least_frequent() {
        let mut s = OutcomeSet::default();
        for v in 1..=8u32 {
            s.record(id(v));
            s.record(id(v)); // count 2 each
        }
        s.record(id(1)); // bump 1 to count 3
        s.record(id(99)); // forces eviction of some count-2 entry
        assert_eq!(s.len(), MAX_OUTCOMES);
        assert!(s.last_k_contains(8, id(99)));
        assert!(s.last_k_contains(8, id(1)), "highest-count entry survives");
    }

    #[test]
    fn recount_on_reinsert() {
        let mut s = OutcomeSet::with(id(7));
        s.record(id(7));
        s.record(id(7));
        assert_eq!(s.top1(), Some(id(7)));
        assert_eq!(s.len(), 1);
    }
}
