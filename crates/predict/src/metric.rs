//! Direct metric-value prediction — the Duesterwald et al. (PACT'03)
//! alternative the paper contrasts itself with.
//!
//! Instead of predicting a phase *ID* (from which any number of per-phase
//! statistics can be looked up), these predictors forecast the next
//! interval's value of one hardware metric (here CPI) directly. The
//! paper's argument for phase IDs is that one ID prediction serves every
//! metric at once and survives hardware reconfiguration; this module
//! exists to make that comparison measurable (see the `metric-pred`
//! experiment).

use tpcp_core::PhaseId;

/// A predictor of the next interval's value of a hardware metric.
pub trait MetricPredictor {
    /// Predicts the next interval's value (`None` until warmed up).
    fn predict(&self) -> Option<f64>;

    /// Observes the actual value of the interval that just completed,
    /// together with its phase ID (ignored by phase-blind predictors).
    fn observe(&mut self, phase: PhaseId, value: f64);
}

/// Predicts the next value equals the last value.
#[derive(Debug, Clone, Copy, Default)]
pub struct LastValueMetric {
    last: Option<f64>,
}

impl LastValueMetric {
    /// Creates an empty predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MetricPredictor for LastValueMetric {
    fn predict(&self) -> Option<f64> {
        self.last
    }

    fn observe(&mut self, _phase: PhaseId, value: f64) {
        self.last = Some(value);
    }
}

/// Exponentially weighted moving average of the metric (Duesterwald et
/// al.'s strongest simple predictor for slowly varying metrics).
#[derive(Debug, Clone, Copy)]
pub struct EwmaMetric {
    alpha: f64,
    state: Option<f64>,
}

impl EwmaMetric {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`
    /// (1 = last value).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, state: None }
    }
}

impl MetricPredictor for EwmaMetric {
    fn predict(&self) -> Option<f64> {
        self.state
    }

    fn observe(&mut self, _phase: PhaseId, value: f64) {
        self.state = Some(match self.state {
            None => value,
            Some(s) => s + self.alpha * (value - s),
        });
    }
}

/// Phase-indexed metric prediction: the paper's approach. Maintains a
/// running mean of the metric per phase ID and predicts the mean of the
/// (last-value-predicted) next phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseIndexedMetric {
    means: std::collections::HashMap<PhaseId, (f64, u64)>,
    current: Option<PhaseId>,
}

impl PhaseIndexedMetric {
    /// Creates an empty predictor.
    pub fn new() -> Self {
        Self::default()
    }

    /// The learned mean for a phase, if any.
    pub fn phase_mean(&self, phase: PhaseId) -> Option<f64> {
        self.means.get(&phase).map(|&(m, _)| m)
    }
}

impl MetricPredictor for PhaseIndexedMetric {
    fn predict(&self) -> Option<f64> {
        let phase = self.current?;
        self.phase_mean(phase)
    }

    fn observe(&mut self, phase: PhaseId, value: f64) {
        let (mean, count) = self.means.entry(phase).or_insert((0.0, 0));
        *count += 1;
        *mean += (value - *mean) / *count as f64;
        self.current = Some(phase);
    }
}

/// Streaming mean-absolute-error tracker for evaluating metric predictors.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricError {
    abs_sum: f64,
    value_sum: f64,
    count: u64,
}

impl MetricError {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one resolved prediction.
    pub fn record(&mut self, predicted: f64, actual: f64) {
        self.abs_sum += (predicted - actual).abs();
        self.value_sum += actual.abs();
        self.count += 1;
    }

    /// Mean absolute error.
    pub fn mae(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.abs_sum / self.count as f64
        }
    }

    /// MAE relative to the mean actual value (a scale-free error).
    pub fn relative_error(&self) -> f64 {
        if self.value_sum == 0.0 {
            0.0
        } else {
            self.abs_sum / self.value_sum
        }
    }

    /// Number of resolved predictions.
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u32) -> PhaseId {
        PhaseId::new(v)
    }

    #[test]
    fn last_value_metric_tracks_input() {
        let mut p = LastValueMetric::new();
        assert_eq!(p.predict(), None);
        p.observe(id(1), 2.5);
        assert_eq!(p.predict(), Some(2.5));
        p.observe(id(2), 7.0);
        assert_eq!(p.predict(), Some(7.0));
    }

    #[test]
    fn ewma_smooths() {
        let mut p = EwmaMetric::new(0.5);
        p.observe(id(1), 0.0);
        p.observe(id(1), 4.0);
        assert_eq!(p.predict(), Some(2.0));
        p.observe(id(1), 4.0);
        assert_eq!(p.predict(), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_validates_alpha() {
        EwmaMetric::new(0.0);
    }

    #[test]
    fn phase_indexed_remembers_each_phase() {
        let mut p = PhaseIndexedMetric::new();
        // Alternating phases with very different CPIs.
        for _ in 0..5 {
            p.observe(id(1), 1.0);
            p.observe(id(2), 9.0);
        }
        assert_eq!(p.phase_mean(id(1)), Some(1.0));
        assert_eq!(p.phase_mean(id(2)), Some(9.0));
        // Currently in phase 2: predicting its mean.
        assert_eq!(p.predict(), Some(9.0));
    }

    #[test]
    fn phase_indexed_beats_last_value_on_alternation() {
        // Phase pattern 1,2,1,2 with CPIs 1.0 / 9.0: last-value is always
        // wrong by 8; the phase-indexed predictor is wrong only until the
        // phase change (same as LV here) — but with a *phase change
        // prediction* feeding it, it would be exact. Evaluate the simple
        // in-phase case: runs of 3 intervals.
        let mut lv = LastValueMetric::new();
        let mut pi = PhaseIndexedMetric::new();
        let mut lv_err = MetricError::new();
        let mut pi_err = MetricError::new();
        for rep in 0..20 {
            for (phase, cpi) in [(1u32, 1.0f64), (2, 9.0)] {
                for _ in 0..3 {
                    if rep > 2 {
                        if let Some(p) = lv.predict() {
                            lv_err.record(p, cpi);
                        }
                        if let Some(p) = pi.predict() {
                            pi_err.record(p, cpi);
                        }
                    }
                    lv.observe(id(phase), cpi);
                    pi.observe(id(phase), cpi);
                }
            }
        }
        assert!(
            pi_err.mae() <= lv_err.mae(),
            "phase indexing should not lose: {} vs {}",
            pi_err.mae(),
            lv_err.mae()
        );
    }

    #[test]
    fn error_tracker_math() {
        let mut e = MetricError::new();
        e.record(1.0, 2.0);
        e.record(3.0, 2.0);
        assert_eq!(e.count(), 2);
        assert!((e.mae() - 1.0).abs() < 1e-12);
        assert!((e.relative_error() - 0.5).abs() < 1e-12);
    }
}
