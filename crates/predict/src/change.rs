//! Phase change prediction (Sections 5.2.2, 5.2.3, and 6.1).

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use tpcp_core::PhaseId;

use crate::assoc::AssocTable;
use crate::confidence::ConfidenceCounter;
use crate::history::{HistoryKind, PhaseHistory};
use crate::outcome_set::OutcomeSet;

/// How a table entry's recorded outcomes are turned into a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChangePolicy {
    /// Predict the most recently seen outcome (standard Markov/RLE).
    MostRecent,
    /// Count a prediction correct if the actual outcome is any of the last
    /// `k` unique outcomes (the paper's "Last 4" predictors).
    LastK(usize),
    /// Predict the `k` most frequent outcomes (the paper's Top-1/Top-4).
    TopK(usize),
}

/// A phase-change prediction snapshot, taken before the outcome is known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangePrediction {
    /// The single-valued prediction (most recent or top-1 outcome).
    pub primary: PhaseId,
    /// All outcomes the policy accepts as "correct" (≤ k entries).
    pub candidates: Vec<PhaseId>,
    /// Whether the entry's confidence counter endorses this prediction.
    pub confident: bool,
}

impl ChangePrediction {
    /// Whether `actual` matches this prediction under its policy.
    pub fn matches(&self, actual: PhaseId) -> bool {
        self.candidates.contains(&actual)
    }
}

#[derive(Debug, Clone)]
struct ChangeEntry {
    outcomes: OutcomeSet,
    confidence: ConfidenceCounter,
}

/// A table-based predictor of the *outcome of the next phase change*.
///
/// The table is indexed by a hash of the phase ID history — either the last
/// N unique phase IDs (Markov-N) or the last N run-length-encoded (phase,
/// run length) pairs (RLE-N) — and is 32-entry 4-way set associative by
/// default, as in the paper.
///
/// Update policy (Section 5.2.3): entries are inserted **only on phase
/// changes**; on a tag hit that wrongly predicts a change while the phase
/// stays the same, the entry is removed (RLE predictors; last value would
/// have been correct, so the entry only pollutes the table).
///
/// # Example
///
/// ```
/// use tpcp_core::PhaseId;
/// use tpcp_predict::{ChangePolicy, HistoryKind, PhaseChangePredictor};
///
/// let mut p = PhaseChangePredictor::new(
///     HistoryKind::Rle(2), ChangePolicy::MostRecent, true, 32, 4);
/// // Periodic pattern: 1,1,2,1,1,2,... the RLE predictor learns that
/// // (1, run=2) is followed by phase 2.
/// for _ in 0..10 {
///     p.observe(PhaseId::new(1));
///     p.observe(PhaseId::new(1));
///     p.observe(PhaseId::new(2));
/// }
/// p.observe(PhaseId::new(1));
/// p.observe(PhaseId::new(1));
/// let pred = p.predict().expect("trained pattern should hit");
/// assert_eq!(pred.primary, PhaseId::new(2));
/// ```
#[derive(Debug, Clone)]
pub struct PhaseChangePredictor {
    kind: HistoryKind,
    policy: ChangePolicy,
    use_confidence: bool,
    remove_on_false_change: bool,
    table: AssocTable<ChangeEntry>,
    history: PhaseHistory,
}

impl PhaseChangePredictor {
    /// Creates a predictor.
    ///
    /// * `kind` — Markov-N or RLE-N indexing.
    /// * `policy` — how entries predict (most recent / Last-K / Top-K).
    /// * `use_confidence` — attach a 1-bit confidence counter per entry;
    ///   when `false`, every prediction reports `confident = true`.
    /// * `entries`, `ways` — table geometry (the paper uses 32 and 4; one
    ///   Figure 8 variant uses 128 entries).
    ///
    /// RLE predictors remove entries on falsely predicted changes; Markov
    /// predictors keep them (the paper describes the removal rule in the
    /// RLE section only).
    ///
    /// # Panics
    ///
    /// Panics on invalid table geometry or a zero history order.
    pub fn new(
        kind: HistoryKind,
        policy: ChangePolicy,
        use_confidence: bool,
        entries: usize,
        ways: usize,
    ) -> Self {
        assert!(kind.order() > 0, "history order must be positive");
        let remove_on_false_change = matches!(kind, HistoryKind::Rle(_));
        Self {
            kind,
            policy,
            use_confidence,
            remove_on_false_change,
            table: AssocTable::new(entries, ways),
            history: PhaseHistory::new(kind.order().max(4) + 1),
        }
    }

    /// The predictor's history kind.
    pub fn kind(&self) -> HistoryKind {
        self.kind
    }

    /// The phase of the current run (`None` before any observation).
    pub fn current_phase(&self) -> Option<PhaseId> {
        self.history.current_phase()
    }

    /// Number of live table entries.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    fn snapshot(&self, entry: &ChangeEntry) -> ChangePrediction {
        let primary = match self.policy {
            ChangePolicy::TopK(_) => entry.outcomes.top1(),
            _ => entry.outcomes.most_recent(),
        }
        .expect("entries always hold at least one outcome");
        let candidates = match self.policy {
            ChangePolicy::MostRecent => vec![primary],
            ChangePolicy::LastK(k) => entry.outcomes.iter_recent().take(k).collect(),
            ChangePolicy::TopK(k) => entry.outcomes.iter_top().take(k).collect(),
        };
        let confident = !self.use_confidence || entry.confidence.is_confident();
        ChangePrediction {
            primary,
            candidates,
            confident,
        }
    }

    /// The prediction for the outcome of the next phase change, given the
    /// current history. `None` when the history is empty or the table has
    /// no entry for the current key (a tag miss).
    pub fn predict(&self) -> Option<ChangePrediction> {
        self.history.current_phase()?;
        let key = self.history.key(self.kind);
        self.table.get(key).map(|e| self.snapshot(e))
    }

    /// Observes the next interval's phase, training the table:
    ///
    /// - on a **phase change**, the entry for the pre-change history is
    ///   updated with (or inserted as) the new outcome, and its confidence
    ///   counter is trained on whether the policy would have predicted the
    ///   change correctly;
    /// - on a **non-change tag hit**, the entry wrongly predicted a change:
    ///   its confidence is decremented, and RLE predictors remove it.
    ///
    /// Returns `true` if this interval was a phase change.
    pub fn observe(&mut self, phase: PhaseId) -> bool {
        let Some(current) = self.history.current_phase() else {
            // Very first interval: just start the history.
            self.history.push(phase);
            return true;
        };
        let key = self.history.key(self.kind);
        let changed = phase != current;

        if changed {
            match self.table.get_mut(key) {
                Some(entry) => {
                    let correct = {
                        let snap_policy = self.policy;
                        entry_matches(entry, snap_policy, phase)
                    };
                    if correct {
                        entry.confidence.correct();
                    } else {
                        entry.confidence.incorrect();
                    }
                    entry.outcomes.record(phase);
                }
                None => {
                    self.table.insert(
                        key,
                        ChangeEntry {
                            outcomes: OutcomeSet::with(phase),
                            confidence: ConfidenceCounter::change_table_default(),
                        },
                    );
                }
            }
        } else if let Some(entry) = self.table.get_mut(key) {
            // Tag hit while the phase stayed the same: the table predicted
            // a change that did not occur; last value would have been
            // right.
            entry.confidence.incorrect();
            if self.remove_on_false_change {
                self.table.remove(key);
            }
        }

        self.history.push(phase);
        changed
    }
}

fn entry_matches(entry: &ChangeEntry, policy: ChangePolicy, actual: PhaseId) -> bool {
    match policy {
        ChangePolicy::MostRecent => entry.outcomes.most_recent() == Some(actual),
        ChangePolicy::LastK(k) => entry.outcomes.last_k_contains(k, actual),
        ChangePolicy::TopK(1) => entry.outcomes.top1() == Some(actual),
        ChangePolicy::TopK(k) => entry.outcomes.top_k_contains(k, actual),
    }
}

/// Judgment of one phase change for Figure 8's five-way breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChangeJudgment {
    /// Confident and correct.
    ConfidentCorrect,
    /// Unconfident but correct.
    UnconfidentCorrect,
    /// No table entry for the pre-change history.
    TagMiss,
    /// Unconfident and incorrect.
    UnconfidentIncorrect,
    /// Confident and incorrect (the expensive failure mode).
    ConfidentIncorrect,
}

/// Aggregate Figure 8 counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChangeBreakdown {
    /// Confident, correct predictions.
    pub conf_correct: u64,
    /// Unconfident, correct predictions.
    pub unconf_correct: u64,
    /// Tag misses (no prediction available).
    pub tag_misses: u64,
    /// Unconfident, incorrect predictions.
    pub unconf_incorrect: u64,
    /// Confident, incorrect predictions.
    pub conf_incorrect: u64,
}

impl ChangeBreakdown {
    /// Total phase changes judged.
    pub fn total(&self) -> u64 {
        self.conf_correct
            + self.unconf_correct
            + self.tag_misses
            + self.unconf_incorrect
            + self.conf_incorrect
    }

    /// Records one judgment.
    pub fn record(&mut self, judgment: ChangeJudgment) {
        match judgment {
            ChangeJudgment::ConfidentCorrect => self.conf_correct += 1,
            ChangeJudgment::UnconfidentCorrect => self.unconf_correct += 1,
            ChangeJudgment::TagMiss => self.tag_misses += 1,
            ChangeJudgment::UnconfidentIncorrect => self.unconf_incorrect += 1,
            ChangeJudgment::ConfidentIncorrect => self.conf_incorrect += 1,
        }
    }

    /// Fraction of changes correctly predicted (confident or not).
    pub fn correct_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.conf_correct + self.unconf_correct) as f64 / self.total() as f64
        }
    }

    /// Fraction of changes with confident correct predictions (coverage at
    /// confidence).
    pub fn confident_correct_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.conf_correct as f64 / self.total() as f64
        }
    }

    /// Fraction of changes with confident *incorrect* predictions.
    pub fn confident_incorrect_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.conf_incorrect as f64 / self.total() as f64
        }
    }
}

/// Drives a [`PhaseChangePredictor`] over a phase stream and judges each
/// phase change for Figure 8.
#[derive(Debug, Clone)]
pub struct ChangeEvaluator {
    predictor: PhaseChangePredictor,
    breakdown: ChangeBreakdown,
}

impl ChangeEvaluator {
    /// Wraps a predictor.
    pub fn new(predictor: PhaseChangePredictor) -> Self {
        Self {
            predictor,
            breakdown: ChangeBreakdown::default(),
        }
    }

    /// Observes one interval's phase; if it completed a phase change, the
    /// pre-change prediction is judged and returned.
    pub fn observe(&mut self, phase: PhaseId) -> Option<ChangeJudgment> {
        let current = self.predictor.current_phase();
        let judgment = match current {
            Some(c) if c != phase => Some(match self.predictor.predict() {
                None => ChangeJudgment::TagMiss,
                Some(pred) => match (pred.confident, pred.matches(phase)) {
                    (true, true) => ChangeJudgment::ConfidentCorrect,
                    (false, true) => ChangeJudgment::UnconfidentCorrect,
                    (false, false) => ChangeJudgment::UnconfidentIncorrect,
                    (true, false) => ChangeJudgment::ConfidentIncorrect,
                },
            }),
            _ => None,
        };
        if let Some(j) = judgment {
            self.breakdown.record(j);
        }
        self.predictor.observe(phase);
        judgment
    }

    /// The accumulated Figure 8 breakdown.
    pub fn breakdown(&self) -> ChangeBreakdown {
        self.breakdown
    }
}

/// The cold-start upper bound of Figure 8: an infinite-memory predictor
/// that counts a phase change as predictable if the same (history → outcome)
/// transition was ever seen before.
#[derive(Debug, Clone)]
pub struct PerfectMarkov {
    kind: HistoryKind,
    seen: HashSet<(u64, u32)>,
    history: PhaseHistory,
    correct: u64,
    total: u64,
}

impl PerfectMarkov {
    /// Creates a perfect predictor with Markov-N (or RLE-N) history keys.
    pub fn new(kind: HistoryKind) -> Self {
        Self {
            kind,
            seen: HashSet::new(),
            history: PhaseHistory::new(kind.order().max(4) + 1),
            correct: 0,
            total: 0,
        }
    }

    /// Observes one interval's phase; returns `Some(correct)` at changes.
    pub fn observe(&mut self, phase: PhaseId) -> Option<bool> {
        let result = match self.history.current_phase() {
            Some(c) if c != phase => {
                let key = self.history.key(self.kind);
                let correct = self.seen.contains(&(key, phase.value()));
                self.seen.insert((key, phase.value()));
                self.total += 1;
                if correct {
                    self.correct += 1;
                }
                Some(correct)
            }
            _ => None,
        };
        self.history.push(phase);
        result
    }

    /// Fraction of phase changes that had been seen before.
    pub fn correct_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// `(correct, total)` change counts.
    pub fn counts(&self) -> (u64, u64) {
        (self.correct, self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u32) -> PhaseId {
        PhaseId::new(v)
    }

    fn rle2() -> PhaseChangePredictor {
        PhaseChangePredictor::new(HistoryKind::Rle(2), ChangePolicy::MostRecent, true, 32, 4)
    }

    fn markov2() -> PhaseChangePredictor {
        PhaseChangePredictor::new(
            HistoryKind::Markov(2),
            ChangePolicy::MostRecent,
            true,
            32,
            4,
        )
    }

    #[test]
    fn learns_periodic_pattern() {
        let mut p = rle2();
        for _ in 0..8 {
            for v in [1, 1, 1, 2] {
                p.observe(id(v));
            }
        }
        // Mid-pattern: after 1,1,1 the next change goes to 2.
        p.observe(id(1));
        p.observe(id(1));
        p.observe(id(1));
        let pred = p.predict().expect("pattern should be in table");
        assert_eq!(pred.primary, id(2));
        assert!(pred.confident, "repeated correct outcomes build confidence");
    }

    #[test]
    fn rle_removes_false_change_entries() {
        let mut p = rle2();
        // Train: 1 runs for 2, then 2. Then present a longer run of 1.
        for _ in 0..4 {
            p.observe(id(1));
            p.observe(id(1));
            p.observe(id(2));
        }
        let before = p.table_len();
        // Run of 1 reaches length 2 → table predicts change to 2, but the
        // run continues: the entry must be removed.
        p.observe(id(1));
        p.observe(id(1));
        p.observe(id(1)); // false change prediction here
        assert!(p.table_len() < before, "false-change entry removed");
    }

    #[test]
    fn markov_keeps_entries_on_false_change() {
        let mut p = markov2();
        for _ in 0..4 {
            p.observe(id(1));
            p.observe(id(2));
        }
        let before = p.table_len();
        p.observe(id(2));
        p.observe(id(2));
        assert_eq!(p.table_len(), before, "Markov tables are not pruned");
    }

    #[test]
    fn evaluator_classifies_tag_miss_first() {
        let mut e = ChangeEvaluator::new(rle2());
        e.observe(id(1));
        let j = e.observe(id(2)).expect("phase change");
        assert_eq!(j, ChangeJudgment::TagMiss);
    }

    #[test]
    fn evaluator_learns_alternation() {
        let mut e = ChangeEvaluator::new(markov2());
        for i in 0..100u32 {
            e.observe(id(i % 2 + 1));
        }
        let b = e.breakdown();
        assert!(b.total() >= 98);
        assert!(
            b.correct_fraction() > 0.9,
            "alternation is learnable: {b:?}"
        );
    }

    #[test]
    fn confidence_gates_noisy_patterns() {
        // Changes with pseudo-random outcomes: confident-incorrect should be
        // rarer than unconfident-incorrect thanks to the 1-bit counter.
        let mut e = ChangeEvaluator::new(markov2());
        let mut x = 9u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            e.observe(id((x >> 60) as u32 % 5 + 1));
        }
        let b = e.breakdown();
        assert!(b.total() > 1000);
        assert!(
            b.conf_incorrect < b.total() / 4,
            "confidence limits damage: {b:?}"
        );
    }

    #[test]
    fn last4_policy_accepts_recent_outcomes() {
        let mut p =
            PhaseChangePredictor::new(HistoryKind::Markov(1), ChangePolicy::LastK(4), false, 32, 4);
        // From phase 1 we alternately go to 2 and 3.
        for _ in 0..6 {
            p.observe(id(1));
            p.observe(id(2));
            p.observe(id(1));
            p.observe(id(3));
        }
        p.observe(id(1));
        let pred = p.predict().expect("hit");
        assert!(pred.matches(id(2)) && pred.matches(id(3)), "{pred:?}");
    }

    #[test]
    fn top1_policy_predicts_mode() {
        let mut p =
            PhaseChangePredictor::new(HistoryKind::Markov(1), ChangePolicy::TopK(1), false, 32, 4);
        // From phase 1: go to 2 three times for every one go to 3.
        for _ in 0..5 {
            p.observe(id(1));
            p.observe(id(2));
            p.observe(id(1));
            p.observe(id(2));
            p.observe(id(1));
            p.observe(id(2));
            p.observe(id(1));
            p.observe(id(3));
        }
        p.observe(id(1));
        let pred = p.predict().expect("hit");
        assert_eq!(pred.primary, id(2), "top-1 is the most frequent target");
        assert!(!pred.matches(id(3)), "top-1 accepts only the mode");
    }

    #[test]
    fn perfect_markov_is_cold_start_bounded() {
        let mut p = PerfectMarkov::new(HistoryKind::Markov(1));
        for _ in 0..10 {
            for v in [1, 2, 3] {
                p.observe(id(v));
            }
        }
        let (correct, total) = p.counts();
        // First lap's transitions are cold; everything after repeats.
        assert!(total >= 29);
        assert!(
            correct >= total - 3,
            "only cold-start misses: {correct}/{total}"
        );
    }

    #[test]
    fn perfect_markov_never_predicts_novel_changes() {
        let mut p = PerfectMarkov::new(HistoryKind::Markov(2));
        for v in 1..50u32 {
            if let Some(correct) = p.observe(id(v)) {
                assert!(!correct, "every change is novel in this stream");
            }
        }
    }

    #[test]
    fn breakdown_totals_balance() {
        let mut b = ChangeBreakdown::default();
        for j in [
            ChangeJudgment::ConfidentCorrect,
            ChangeJudgment::TagMiss,
            ChangeJudgment::UnconfidentIncorrect,
            ChangeJudgment::ConfidentIncorrect,
            ChangeJudgment::UnconfidentCorrect,
        ] {
            b.record(j);
        }
        assert_eq!(b.total(), 5);
        assert!((b.correct_fraction() - 0.4).abs() < 1e-12);
    }
}
