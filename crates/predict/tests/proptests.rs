//! Property-based tests for predictor data structures.

use proptest::prelude::*;
use tpcp_core::PhaseId;
use tpcp_predict::{AssocTable, ConfidenceCounter, HistoryKind, PhaseHistory};

proptest! {
    /// The associative table behaves like a (lossy) map: a `get` after
    /// `insert` returns the inserted value unless a later insert to the
    /// same set evicted it; capacity is never exceeded.
    #[test]
    fn assoc_table_is_bounded_map(ops in prop::collection::vec((0u64..64, 0u32..1000), 1..200)) {
        let mut table: AssocTable<u32> = AssocTable::new(16, 4);
        let mut last_inserted = std::collections::HashMap::new();
        for &(k, v) in &ops {
            table.insert(k, v);
            last_inserted.insert(k, v);
            prop_assert!(table.len() <= table.capacity());
        }
        // Everything still resident matches the most recent insert.
        for (k, v) in table.iter() {
            prop_assert_eq!(last_inserted[&k], *v);
        }
        // Accounting: live + evicted = distinct keys inserted... not exact
        // (reinsertion of a present key is not an eviction), but evictions
        // can never exceed total inserts.
        prop_assert!(table.evictions() <= ops.len() as u64);
    }

    /// Removing a key always makes subsequent gets miss.
    #[test]
    fn assoc_remove_is_final(keys in prop::collection::vec(0u64..32, 1..50)) {
        let mut table: AssocTable<u64> = AssocTable::new(32, 4);
        for &k in &keys {
            table.insert(k, k);
        }
        for &k in &keys {
            table.remove(k);
            prop_assert_eq!(table.get(k), None);
        }
        prop_assert!(table.is_empty());
    }

    /// Confidence counters stay within their bit width and confidence is
    /// monotone in the counter value.
    #[test]
    fn confidence_counter_bounded(bits in 1u32..7, outcomes in prop::collection::vec(any::<bool>(), 0..200)) {
        let max = (1u16 << bits) as u8 - 1;
        let threshold = max / 2 + 1;
        let mut c = ConfidenceCounter::new(bits, threshold);
        for &correct in &outcomes {
            if correct { c.correct() } else { c.incorrect() }
            prop_assert!(c.value() <= max);
            prop_assert_eq!(c.is_confident(), c.value() >= threshold);
        }
    }

    /// History: the RLE view's lengths sum to the number of observed
    /// intervals (up to the retained depth), and the unique view equals
    /// the RLE view's phases.
    #[test]
    fn history_views_agree(stream in prop::collection::vec(0u32..5, 1..100)) {
        let mut h = PhaseHistory::new(64);
        for &p in &stream {
            h.push(PhaseId::new(p));
        }
        // Depth 64 retains 64 completed runs plus the current one.
        let rle = h.last_rle(65);
        let unique = h.last_unique(65);
        prop_assert_eq!(rle.len(), unique.len());
        for ((p_rle, len), p_u) in rle.iter().zip(&unique) {
            prop_assert_eq!(p_rle, p_u);
            prop_assert!(*len >= 1);
        }
        let total: u64 = rle.iter().map(|&(_, n)| n).sum();
        // The history retains 64 completed runs plus the current one; when
        // the stream has more runs than that, the oldest fall out.
        let n_runs = stream
            .iter()
            .zip(stream.iter().skip(1))
            .filter(|(a, b)| a != b)
            .count()
            + 1;
        if n_runs <= 65 {
            prop_assert_eq!(total, stream.len() as u64);
        } else {
            prop_assert!(total <= stream.len() as u64);
        }
        // Consecutive RLE entries never share a phase (maximal runs).
        for w in rle.windows(2) {
            prop_assert_ne!(w[0].0, w[1].0);
        }
    }

    /// Markov keys are insensitive to run lengths; RLE keys are not
    /// (whenever the run structure actually differs).
    #[test]
    fn key_sensitivity(phases in prop::collection::vec(0u32..4, 2..10)) {
        // Deduplicate consecutive phases so each is a distinct run.
        let mut runs: Vec<u32> = Vec::new();
        for &p in &phases {
            if runs.last() != Some(&p) {
                runs.push(p);
            }
        }
        prop_assume!(runs.len() >= 2);

        let mut short = PhaseHistory::new(16);
        let mut long = PhaseHistory::new(16);
        for &p in &runs {
            short.push(PhaseId::new(p));
            long.push(PhaseId::new(p));
            long.push(PhaseId::new(p)); // double-length runs
        }
        prop_assert_eq!(
            short.key(HistoryKind::Markov(3)),
            long.key(HistoryKind::Markov(3))
        );
        prop_assert_ne!(
            short.key(HistoryKind::Rle(3)),
            long.key(HistoryKind::Rle(3))
        );
    }
}
