//! The accumulator table — step 2 of the tracking architecture.

use serde::{Deserialize, Serialize};

use tpcp_trace::BranchEvent;

use crate::snapshot::{self, SnapReader, SnapshotError};

/// Saturation ceiling for each accumulator: 24 bits, as in the paper
/// ("each entry in the accumulator table is 24 bits, so it will never
/// overflow with 10 million instruction intervals").
pub(crate) const COUNTER_MAX: u64 = (1 << 24) - 1;

/// SplitMix64's finalizer: decorrelates the strongly structured low bits
/// of instruction addresses before masking them down to a bucket index.
/// Shared by every feature extractor that hashes PCs, so back-ends bucket
/// the same way and differ only in *what* they count.
#[inline]
pub(crate) fn mix64(pc: u64) -> u64 {
    let mut z = pc;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An array of N saturating counters holding the signature of the current
/// interval (the paper's Figure 1).
///
/// Each committed branch PC is hashed into one of the N counters, and the
/// counter is incremented by the number of instructions committed since the
/// previous branch — tracking the *proportion* of the interval's execution
/// attributable to each bucket of static code.
///
/// # Example
///
/// ```
/// use tpcp_core::AccumulatorTable;
/// use tpcp_trace::BranchEvent;
///
/// let mut acc = AccumulatorTable::new(16);
/// acc.observe(BranchEvent::new(0x4000, 100));
/// acc.observe(BranchEvent::new(0x4000, 50));
/// assert_eq!(acc.total(), 150);
/// assert_eq!(acc.counters().iter().sum::<u64>(), 150);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccumulatorTable {
    counters: Vec<u64>,
    total: u64,
    index_mask: u64,
}

impl AccumulatorTable {
    /// Creates a table of `n` counters.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two (the paper's dynamic bit
    /// selection divides by the counter count with a shift, which requires
    /// a power-of-two table).
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "accumulator count must be a power of two"
        );
        Self {
            counters: vec![0; n],
            total: 0,
            index_mask: n as u64 - 1,
        }
    }

    /// Number of counters (the dimensionality of the projected signature).
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the table has observed nothing since the last reset.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The counter values.
    pub fn counters(&self) -> &[u64] {
        &self.counters
    }

    /// Total instruction count accumulated since the last reset (used for
    /// the dynamic bit selection's average).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Average counter value — `total / n`, computed with a shift exactly
    /// as the hardware would.
    pub fn average(&self) -> u64 {
        self.total >> self.index_mask.count_ones()
    }

    /// Hashes a branch PC into a counter index.
    ///
    /// A 64-bit finalizer (SplitMix64's mixing function) decorrelates the
    /// low bits of instruction addresses, which are strongly structured.
    #[inline]
    pub fn index_of(&self, pc: u64) -> usize {
        (mix64(pc) & self.index_mask) as usize
    }

    /// Records one committed branch: hashes the PC and increments the
    /// selected counter by the block's instruction count (saturating at
    /// 24 bits).
    #[inline]
    pub fn observe(&mut self, ev: BranchEvent) {
        let idx = self.index_of(ev.pc);
        let c = &mut self.counters[idx];
        *c = (*c + u64::from(ev.insns)).min(COUNTER_MAX);
        self.total += u64::from(ev.insns);
    }

    /// Clears all counters for the next interval.
    pub fn reset(&mut self) {
        self.counters.fill(0);
        self.total = 0;
    }

    /// Appends this table's state to a snapshot.
    pub(crate) fn snap_write(&self, out: &mut Vec<u8>) {
        snapshot::put_varint(out, self.counters.len() as u64);
        for &c in &self.counters {
            snapshot::put_varint(out, c);
        }
        snapshot::put_varint(out, self.total);
    }

    /// Restores a table from a snapshot, re-checking the constructor's
    /// invariants and recomputing the index mask.
    pub(crate) fn snap_read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.bounded_count(1)?;
        if n == 0 || !n.is_power_of_two() {
            return Err(SnapshotError::Malformed(
                "accumulator count must be a power of two",
            ));
        }
        let mut counters = Vec::with_capacity(n);
        for _ in 0..n {
            let c = r.varint()?;
            if c > COUNTER_MAX {
                return Err(SnapshotError::Malformed(
                    "accumulator counter above the 24-bit ceiling",
                ));
            }
            counters.push(c);
        }
        Ok(Self {
            counters,
            total: r.varint()?,
            index_mask: n as u64 - 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        AccumulatorTable::new(12);
    }

    #[test]
    fn observe_accumulates_by_hash_bucket() {
        let mut acc = AccumulatorTable::new(8);
        let idx = acc.index_of(0x1234);
        acc.observe(BranchEvent::new(0x1234, 10));
        acc.observe(BranchEvent::new(0x1234, 5));
        assert_eq!(acc.counters()[idx], 15);
    }

    #[test]
    fn same_pc_same_bucket() {
        let acc = AccumulatorTable::new(16);
        assert_eq!(acc.index_of(0xABCD), acc.index_of(0xABCD));
    }

    #[test]
    fn hash_spreads_sequential_pcs() {
        // Sequential branch addresses should not all collapse into a couple
        // of buckets.
        let acc = AccumulatorTable::new(16);
        let mut used = std::collections::BTreeSet::new();
        for i in 0..64u64 {
            used.insert(acc.index_of(0x40_0000 + i * 4));
        }
        assert!(used.len() >= 12, "used {} of 16 buckets", used.len());
    }

    #[test]
    fn counters_saturate_at_24_bits() {
        let mut acc = AccumulatorTable::new(2);
        // Find a PC for bucket 0 and hammer it.
        let pc = (0..100u64).find(|&p| acc.index_of(p) == 0).unwrap();
        for _ in 0..10_000 {
            acc.observe(BranchEvent::new(pc, u32::MAX));
        }
        assert_eq!(acc.counters()[0], COUNTER_MAX);
    }

    #[test]
    fn average_uses_shift_semantics() {
        let mut acc = AccumulatorTable::new(4);
        acc.observe(BranchEvent::new(0, 103));
        assert_eq!(acc.average(), 103 / 4);
    }

    #[test]
    fn reset_clears_everything() {
        let mut acc = AccumulatorTable::new(4);
        acc.observe(BranchEvent::new(7, 9));
        acc.reset();
        assert!(acc.is_empty());
        assert!(acc.counters().iter().all(|&c| c == 0));
        assert_eq!(acc.total(), 0);
    }

    #[test]
    fn total_tracks_all_increments() {
        let mut acc = AccumulatorTable::new(4);
        for i in 0..10 {
            acc.observe(BranchEvent::new(i, 100));
        }
        assert_eq!(acc.total(), 1000);
    }
}
