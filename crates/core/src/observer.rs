//! The [`PhaseObserver`] interface: consumers of classified intervals.
//!
//! The classifier turns each interval into a [`PhaseId`]; everything built
//! on top of classification — next-phase predictors, change predictors,
//! CoV and run-length accumulators, metric predictors — consumes the same
//! `(phase id, interval summary)` stream. [`PhaseObserver`] names that
//! contract so an experiment engine can classify an interval once and fan
//! the result out to any number of downstream consumers.

use tpcp_trace::IntervalSummary;

use crate::phase_id::PhaseId;

/// A consumer of the classified-interval stream.
///
/// Called once per interval, in program order, with the phase the
/// classifier assigned and the interval's summary (CPI and
/// microarchitectural event counts).
pub trait PhaseObserver {
    /// Observes one classified interval.
    fn observe_phase(&mut self, id: PhaseId, summary: &IntervalSummary);
}

impl<T: PhaseObserver + ?Sized> PhaseObserver for &mut T {
    fn observe_phase(&mut self, id: PhaseId, summary: &IntervalSummary) {
        (**self).observe_phase(id, summary);
    }
}

impl<T: PhaseObserver + ?Sized> PhaseObserver for Box<T> {
    fn observe_phase(&mut self, id: PhaseId, summary: &IntervalSummary) {
        (**self).observe_phase(id, summary);
    }
}

/// The trivial observer, for lanes that only need the classification
/// byproducts (phase IDs, CoV, run lengths) the engine collects itself.
impl PhaseObserver for () {
    fn observe_phase(&mut self, _id: PhaseId, _summary: &IntervalSummary) {}
}

/// Every observer in a tuple sees every interval; handy for pairing a
/// predictor with the accumulator scoring it.
impl<A: PhaseObserver, B: PhaseObserver> PhaseObserver for (A, B) {
    fn observe_phase(&mut self, id: PhaseId, summary: &IntervalSummary) {
        self.0.observe_phase(id, summary);
        self.1.observe_phase(id, summary);
    }
}
