//! Versioned binary snapshots of classifier state.
//!
//! A [`PhaseClassifier`](crate::PhaseClassifier) can be captured with
//! [`snapshot`](crate::PhaseClassifier::snapshot) and rebuilt with
//! [`from_snapshot`](crate::PhaseClassifier::from_snapshot); the restored
//! classifier continues **bit-identically** — same phase IDs, same LRU
//! eviction order, same adaptive-threshold decisions. This is what lets
//! the serve binary evict an idle session's tables under memory pressure
//! and re-admit it later without the client observing a difference.
//!
//! The format is hand-rolled (magic `TPCPSNP1`, varints, f64 bit
//! patterns) rather than serde-derived, because snapshots cross process
//! boundaries and may be fed back corrupted: every declared count is
//! bounded against the remaining input before allocation (the same
//! OOM-guard idiom as the trace codec), every restored invariant the
//! constructors would assert is re-checked as an error, and redundant
//! derived state (signature weights, region counts, index masks, the simd
//! column mirror) is recomputed rather than trusted.

use std::fmt;

/// Leading magic of every classifier snapshot.
pub(crate) const SNAPSHOT_MAGIC: &[u8; 8] = b"TPCPSNP1";

/// Why a snapshot could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot does not start with the `TPCPSNP1` magic.
    BadMagic,
    /// The snapshot ended before a declared field.
    Truncated,
    /// A decoded field violates a classifier invariant.
    Malformed(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a TPCPSNP1 classifier snapshot"),
            Self::Truncated => write!(f, "snapshot truncated"),
            Self::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Appends a varint.
pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends an `f64` as its little-endian bit pattern (restores bit-exact).
pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Bounded reader over snapshot bytes.
pub(crate) struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed — the bound for declared-count checks.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotError> {
        let byte = *self.buf.get(self.pos).ok_or(SnapshotError::Truncated)?;
        self.pos += 1;
        Ok(byte)
    }

    pub(crate) fn varint(&mut self) -> Result<u64, SnapshotError> {
        let mut out = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = *self.buf.get(self.pos).ok_or(SnapshotError::Truncated)?;
            self.pos += 1;
            let payload = u64::from(byte & 0x7f);
            if shift == 63 && payload > 1 {
                return Err(SnapshotError::Malformed("overlong varint"));
            }
            out |= payload << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
        }
        Err(SnapshotError::Malformed("overlong varint"))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, SnapshotError> {
        let end = self
            .pos
            .checked_add(8)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapshotError::Truncated)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapshotError::Truncated)?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a declared element count and bounds it: each element costs at
    /// least `min_bytes` of input still unread, so a count that cannot fit
    /// is rejected *before* anything is allocated.
    pub(crate) fn bounded_count(&mut self, min_bytes: usize) -> Result<usize, SnapshotError> {
        let declared = self.varint()?;
        let max = (self.remaining() / min_bytes.max(1)) as u64;
        if declared > max {
            return Err(SnapshotError::Malformed("implausible element count"));
        }
        Ok(declared as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut r = SnapReader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn overlong_varint_rejected() {
        // Eleven continuation bytes can never be a valid u64.
        let buf = [0x80u8; 11];
        let mut r = SnapReader::new(&buf);
        assert!(matches!(r.varint(), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn f64_round_trips_bit_exact() {
        for v in [0.0f64, -0.0, 0.25, f64::MAX, f64::MIN_POSITIVE] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            let mut r = SnapReader::new(&buf);
            assert_eq!(r.f64().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn bounded_count_rejects_implausible_declarations() {
        // Declares 1000 elements with only 2 bytes of payload behind it.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1000);
        buf.extend_from_slice(&[0, 0]);
        let mut r = SnapReader::new(&buf);
        assert!(matches!(
            r.bounded_count(1),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_reads_report_truncated() {
        let mut r = SnapReader::new(&[0x80]);
        assert_eq!(r.varint(), Err(SnapshotError::Truncated));
        let mut r = SnapReader::new(&[1, 2, 3]);
        assert_eq!(r.f64().unwrap_err(), SnapshotError::Truncated);
        let mut r = SnapReader::new(&[]);
        assert_eq!(r.u8().unwrap_err(), SnapshotError::Truncated);
        let mut r = SnapReader::new(&[1]);
        assert_eq!(r.bytes(2).unwrap_err(), SnapshotError::Truncated);
    }
}
