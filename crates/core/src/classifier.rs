//! The online phase classifier: ties the accumulator, signatures, and the
//! signature table together with the paper's transition-phase and
//! adaptive-threshold logic.

use serde::{Deserialize, Serialize};

use tpcp_trace::BranchEvent;

use crate::config::{BitSelectionMode, ClassifierConfig};
use crate::extractor::{AnyExtractor, ExtractorKind, FeatureExtractor};
use crate::phase_id::PhaseId;
use crate::signature::Signature;
use crate::snapshot::{self, SnapReader, SnapshotError, SNAPSHOT_MAGIC};
use crate::table::{MatchOutcome, SignatureTable};

/// Detailed result of classifying one interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Classification {
    /// The phase the interval was classified into.
    pub phase_id: PhaseId,
    /// Normalized distance to the matched signature, or `None` when the
    /// signature was new (inserted).
    pub distance: Option<f64>,
    /// Whether the signature missed the table and was inserted.
    pub new_signature: bool,
    /// Whether the matched entry crossed the Min Counter threshold on this
    /// interval and was promoted to a real phase ID.
    pub promoted: bool,
    /// Whether adaptive feedback halved the matched phase's similarity
    /// threshold on this interval.
    pub threshold_tightened: bool,
}

/// The complete online phase classification architecture.
///
/// Feed it every committed branch with [`observe`](Self::observe); at each
/// interval boundary call [`end_interval`](Self::end_interval) with the
/// interval's CPI (the adaptive feedback metric) to receive the interval's
/// [`PhaseId`].
///
/// # Example
///
/// ```
/// use tpcp_core::{ClassifierConfig, PhaseClassifier, PhaseId};
/// use tpcp_trace::BranchEvent;
///
/// // Disable the transition phase to mimic the prior work's classifier.
/// let cfg = ClassifierConfig::builder().min_count(0).adaptive(None).build();
/// let mut c = PhaseClassifier::new(cfg);
/// c.observe(BranchEvent::new(0x1000, 500));
/// let id = c.end_interval(1.2);
/// assert!(!id.is_transition(), "min_count 0 assigns real IDs immediately");
/// assert_eq!(c.phases_created(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseClassifier {
    config: ClassifierConfig,
    extractor: AnyExtractor,
    table: SignatureTable,
    next_phase_id: u32,
    intervals_seen: u64,
    transition_intervals: u64,
    /// Recycled dimension buffer: each interval's signature is projected
    /// into this storage, and when the signature matches a table entry the
    /// displaced entry's buffer comes back here. Steady-state
    /// classification therefore allocates only when a *new* signature is
    /// inserted. Scratch state, excluded from snapshots.
    #[serde(skip)]
    scratch: Vec<u16>,
}

impl PhaseClassifier {
    /// Builds a classifier from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`ClassifierConfig::validate`]).
    pub fn new(config: ClassifierConfig) -> Self {
        config.validate();
        Self {
            config,
            extractor: config.extractor.build(config.accumulators),
            table: SignatureTable::new(config.table_entries, config.similarity_threshold),
            next_phase_id: 1,
            intervals_seen: 0,
            transition_intervals: 0,
            scratch: Vec::with_capacity(config.accumulators),
        }
    }

    /// The classifier's configuration.
    pub fn config(&self) -> &ClassifierConfig {
        &self.config
    }

    /// Records one committed branch of the current interval.
    ///
    /// This is the per-branch fast path of the architecture (for the
    /// default BBV back-end, a hash and a saturating add, pipelined in
    /// hardware); it forwards to the configured
    /// [`FeatureExtractor`](crate::FeatureExtractor).
    #[inline]
    pub fn observe(&mut self, ev: BranchEvent) {
        self.extractor.observe(ev);
    }

    /// Ends the current interval and classifies it, returning its phase ID.
    ///
    /// `cpi` is the interval's measured cycles-per-instruction; it is used
    /// *only* for the adaptive threshold feedback (classification itself is
    /// purely code-signature based, so phase IDs remain stable across
    /// hardware reconfigurations).
    pub fn end_interval(&mut self, cpi: f64) -> PhaseId {
        self.end_interval_detailed(cpi).phase_id
    }

    /// [`end_interval`](Self::end_interval) with full diagnostics.
    pub fn end_interval_detailed(&mut self, cpi: f64) -> Classification {
        let buf = std::mem::take(&mut self.scratch);
        let sig = self.extractor.finalize_into(&self.config, buf);
        self.extractor.reset();
        self.classify_signature(sig, cpi)
    }

    /// Ends the current interval against an *externally owned* feature
    /// extractor, returning the interval's phase ID.
    ///
    /// This is the shared-accumulation entry point: many classifier
    /// configurations that agree on the extractor shape (kind and
    /// dimension count) can ride one per-branch observation pass — an
    /// extractor's state depends only on the event stream and its shape —
    /// and each classifier reads the finished state at the interval
    /// boundary. The caller owns the extractor's lifecycle — this method
    /// does **not** reset it, so it can be handed to the next classifier;
    /// the classifier's own internal extractor is untouched.
    ///
    /// Generic over [`FeatureExtractor`], so it accepts the crate's
    /// [`AnyExtractor`], a plain
    /// [`AccumulatorTable`](crate::AccumulatorTable) (the pre-trait
    /// call shape, still bit-identical), or a downstream implementation.
    ///
    /// # Panics
    ///
    /// Panics if `features` does not match the configured extractor kind,
    /// or does not have exactly the configured number of dimensions (the
    /// signature would not match the table's stored signatures).
    pub fn end_interval_from<E>(&mut self, features: &E, cpi: f64) -> PhaseId
    where
        E: FeatureExtractor + ?Sized,
    {
        self.end_interval_from_detailed(features, cpi).phase_id
    }

    /// [`end_interval_from`](Self::end_interval_from) with full
    /// diagnostics.
    pub fn end_interval_from_detailed<E>(&mut self, features: &E, cpi: f64) -> Classification
    where
        E: FeatureExtractor + ?Sized,
    {
        assert_eq!(
            features.kind(),
            self.config.extractor,
            "shared extractor kind must match the classifier's configuration"
        );
        assert_eq!(
            features.dims(),
            self.config.accumulators,
            "shared accumulator count must match the classifier's configuration"
        );
        let buf = std::mem::take(&mut self.scratch);
        let sig = features.finalize_into(&self.config, buf);
        self.classify_signature(sig, cpi)
    }

    /// Classifies one finished interval signature: table search, transition
    /// phase promotion, and adaptive threshold feedback. Shared by the
    /// owned-accumulator and shared-accumulator interval boundaries.
    fn classify_signature(&mut self, sig: Signature, cpi: f64) -> Classification {
        self.intervals_seen += 1;

        let outcome = if self.config.best_match {
            self.table.find_best_match(&sig)
        } else {
            self.table.find_first_match(&sig)
        };

        let classification = match outcome {
            MatchOutcome::Matched { index, distance } => {
                self.scratch = self.table.touch(index, sig).into_dims();
                let min_count = self.config.min_count;
                let adaptive = self.config.adaptive;
                let mut promoted = false;
                let mut tightened = false;

                let next_id = &mut self.next_phase_id;
                let entry = self.table.entry_mut(index);
                entry.min_counter = entry.min_counter.saturating_add(1);

                // Promotion out of the transition phase (Section 4.4): the
                // entry earns a real phase ID once its signature has
                // appeared more than `min_count` times.
                if entry.phase_id.is_none() && u32::from(entry.min_counter) > u32::from(min_count) {
                    entry.phase_id = Some(PhaseId::new(*next_id));
                    *next_id += 1;
                    promoted = true;
                }

                let phase_id = entry.phase_id.unwrap_or(PhaseId::TRANSITION);

                // Adaptive feedback (Section 4.6): only stable phases track
                // CPI; a large deviation halves the threshold and clears
                // the statistics.
                if let (Some(adaptive), Some(_)) = (adaptive, entry.phase_id) {
                    if entry.cpi_samples > 0 {
                        let mean = entry.cpi_mean;
                        if mean > 0.0 && ((cpi - mean).abs() / mean) > adaptive.deviation_threshold
                        {
                            entry.threshold /= 2.0;
                            entry.clear_cpi();
                            tightened = true;
                        }
                    }
                    entry.record_cpi(cpi);
                }

                Classification {
                    phase_id,
                    distance: Some(distance),
                    new_signature: false,
                    promoted,
                    threshold_tightened: tightened,
                }
            }
            MatchOutcome::NoMatch => {
                let index = self.table.insert(sig);
                let entry = self.table.entry_mut(index);
                // With the transition phase disabled (min_count 0), new
                // signatures receive a real phase ID immediately, as in the
                // prior work.
                let phase_id = if self.config.min_count == 0 {
                    let id = PhaseId::new(self.next_phase_id);
                    self.next_phase_id += 1;
                    entry.phase_id = Some(id);
                    if self.config.adaptive.is_some() {
                        entry.record_cpi(cpi);
                    }
                    id
                } else {
                    PhaseId::TRANSITION
                };
                Classification {
                    phase_id,
                    distance: None,
                    new_signature: true,
                    promoted: self.config.min_count == 0,
                    threshold_tightened: false,
                }
            }
        };

        if classification.phase_id.is_transition() {
            self.transition_intervals += 1;
        }
        classification
    }

    /// Convenience: classify a whole interval from an event iterator.
    pub fn classify_interval<I>(&mut self, events: I, cpi: f64) -> PhaseId
    where
        I: IntoIterator<Item = BranchEvent>,
    {
        for ev in events {
            self.observe(ev);
        }
        self.end_interval(cpi)
    }

    /// Number of *real* (stable) phase IDs created so far. This is the
    /// "number of phases detected" metric of Figures 2–4.
    pub fn phases_created(&self) -> u64 {
        u64::from(self.next_phase_id) - 1
    }

    /// Total intervals classified.
    pub fn intervals_seen(&self) -> u64 {
        self.intervals_seen
    }

    /// Intervals classified into the transition phase.
    pub fn transition_intervals(&self) -> u64 {
        self.transition_intervals
    }

    /// Fraction of intervals classified into the transition phase
    /// (the "transition time" metric of Figure 4).
    pub fn transition_fraction(&self) -> f64 {
        if self.intervals_seen == 0 {
            0.0
        } else {
            self.transition_intervals as f64 / self.intervals_seen as f64
        }
    }

    /// Read access to the signature table (for experiments and tests).
    pub fn table(&self) -> &SignatureTable {
        &self.table
    }

    /// Serializes the complete classifier state into a versioned binary
    /// snapshot (magic `TPCPSNP1`).
    ///
    /// A classifier rebuilt with [`from_snapshot`](Self::from_snapshot)
    /// continues bit-identically: same phase IDs, same LRU order, same
    /// adaptive-threshold decisions. The scratch dimension buffer is the
    /// only state excluded — it never affects outcomes.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        write_config(&mut out, &self.config);
        self.extractor.snap_write(&mut out);
        self.table.snap_write(&mut out);
        snapshot::put_varint(&mut out, u64::from(self.next_phase_id));
        snapshot::put_varint(&mut out, self.intervals_seen);
        snapshot::put_varint(&mut out, self.transition_intervals);
        out
    }

    /// Rebuilds a classifier from a [`snapshot`](Self::snapshot).
    ///
    /// Never panics on malformed input: every invariant the constructors
    /// assert is re-checked and reported as a [`SnapshotError`], and
    /// declared counts are bounded against the input size before
    /// allocation — the entry point is safe to feed bytes that crossed a
    /// network or a disk.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let Some(body) = bytes.strip_prefix(SNAPSHOT_MAGIC.as_slice()) else {
            return Err(SnapshotError::BadMagic);
        };
        let mut r = SnapReader::new(body);
        let config = read_config(&mut r)?;
        let extractor = AnyExtractor::snap_read(&mut r)?;
        if extractor.kind() != config.extractor || extractor.dims() != config.accumulators {
            return Err(SnapshotError::Malformed(
                "extractor state does not match the configuration",
            ));
        }
        let table = SignatureTable::snap_read(&mut r)?;
        let next_phase_id = u32::try_from(r.varint()?)
            .map_err(|_| SnapshotError::Malformed("phase ID counter exceeds 32 bits"))?;
        if next_phase_id == 0 {
            return Err(SnapshotError::Malformed("phase ID counter must start at 1"));
        }
        let intervals_seen = r.varint()?;
        let transition_intervals = r.varint()?;
        if r.remaining() != 0 {
            return Err(SnapshotError::Malformed("trailing bytes"));
        }
        Ok(Self {
            config,
            extractor,
            table,
            next_phase_id,
            intervals_seen,
            transition_intervals,
            scratch: Vec::with_capacity(config.accumulators),
        })
    }

    /// Routes the table search through the scalar per-entry scan even when
    /// the `simd` feature is compiled in
    /// (see [`SignatureTable::set_scalar_scan`]). Classification outcomes
    /// are bit-identical either way; the knob lets benchmarks and
    /// equivalence tests drive both kernels from one binary. A no-op
    /// without the feature.
    pub fn force_scalar_kernels(&mut self, scalar: bool) {
        self.table.set_scalar_scan(scalar);
    }
}

/// Appends a classifier configuration to a snapshot.
fn write_config(out: &mut Vec<u8>, config: &ClassifierConfig) {
    snapshot::put_varint(out, config.accumulators as u64);
    snapshot::put_varint(out, u64::from(config.bits_per_dim));
    match config.table_entries {
        Some(c) => {
            out.push(1);
            snapshot::put_varint(out, c as u64);
        }
        None => out.push(0),
    }
    snapshot::put_f64(out, config.similarity_threshold);
    out.push(config.min_count);
    match config.adaptive {
        Some(a) => {
            out.push(1);
            snapshot::put_f64(out, a.deviation_threshold);
        }
        None => out.push(0),
    }
    out.push(u8::from(config.best_match));
    match config.bit_selection {
        BitSelectionMode::Dynamic => out.push(0),
        BitSelectionMode::Static { low_bit } => {
            out.push(1);
            snapshot::put_varint(out, u64::from(low_bit));
        }
    }
    out.push(match config.extractor {
        ExtractorKind::Bbv => 0,
        ExtractorKind::WorkingSet => 1,
        ExtractorKind::BranchMix => 2,
    });
}

/// Restores a classifier configuration, re-applying every rule
/// [`ClassifierConfig::validate`] asserts — as errors, not panics, since
/// snapshot bytes may come from an untrusted peer.
fn read_config(r: &mut SnapReader<'_>) -> Result<ClassifierConfig, SnapshotError> {
    let accumulators = r.varint()? as usize;
    let bits_per_dim = u32::try_from(r.varint()?)
        .map_err(|_| SnapshotError::Malformed("bits per dimension out of range"))?;
    let table_entries = match r.u8()? {
        0 => None,
        _ => Some(r.varint()? as usize),
    };
    let similarity_threshold = r.f64()?;
    let min_count = r.u8()?;
    let adaptive = match r.u8()? {
        0 => None,
        _ => Some(crate::config::AdaptiveConfig {
            deviation_threshold: r.f64()?,
        }),
    };
    let best_match = r.u8()? != 0;
    let bit_selection = match r.u8()? {
        0 => BitSelectionMode::Dynamic,
        1 => BitSelectionMode::Static {
            low_bit: u32::try_from(r.varint()?)
                .map_err(|_| SnapshotError::Malformed("static low bit out of range"))?,
        },
        _ => return Err(SnapshotError::Malformed("unknown bit selection tag")),
    };
    let extractor = match r.u8()? {
        0 => ExtractorKind::Bbv,
        1 => ExtractorKind::WorkingSet,
        2 => ExtractorKind::BranchMix,
        _ => return Err(SnapshotError::Malformed("unknown extractor kind tag")),
    };
    let config = ClassifierConfig {
        accumulators,
        bits_per_dim,
        table_entries,
        similarity_threshold,
        min_count,
        adaptive,
        best_match,
        bit_selection,
        extractor,
    };

    // The same rules `validate()` panics on, as decode errors.
    if accumulators == 0 || !accumulators.is_power_of_two() {
        return Err(SnapshotError::Malformed(
            "accumulator count must be a power of two",
        ));
    }
    match extractor {
        ExtractorKind::Bbv => {}
        ExtractorKind::WorkingSet => {
            if let BitSelectionMode::Static { low_bit } = bit_selection {
                if low_bit != 0 {
                    return Err(SnapshotError::Malformed(
                        "working-set extractor needs a static selection at bit 0",
                    ));
                }
            }
        }
        ExtractorKind::BranchMix => {
            if accumulators < 2 {
                return Err(SnapshotError::Malformed(
                    "branch-mix extractor needs at least 2 dimensions",
                ));
            }
        }
    }
    if !(1..=16).contains(&bits_per_dim) {
        return Err(SnapshotError::Malformed(
            "bits per dimension must be in 1..=16",
        ));
    }
    let threshold_ok = similarity_threshold > 0.0 && similarity_threshold <= 1.0;
    if !threshold_ok {
        return Err(SnapshotError::Malformed(
            "similarity threshold must be in (0, 1]",
        ));
    }
    if table_entries == Some(0) {
        return Err(SnapshotError::Malformed("table capacity must be positive"));
    }
    if let Some(a) = adaptive {
        let deviation_ok = a.deviation_threshold > 0.0;
        if !deviation_ok {
            return Err(SnapshotError::Malformed(
                "deviation threshold must be positive",
            ));
        }
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulator::AccumulatorTable;

    /// An interval that executes blocks from a PC bank deterministically.
    fn run_interval(c: &mut PhaseClassifier, base_pc: u64, cpi: f64) -> PhaseId {
        for i in 0..200u64 {
            c.observe(BranchEvent::new(base_pc + (i % 8) * 0x40, 50));
        }
        c.end_interval(cpi)
    }

    fn paper_classifier() -> PhaseClassifier {
        PhaseClassifier::new(ClassifierConfig::hpca2005())
    }

    #[test]
    fn first_occurrences_are_transition() {
        let mut c = paper_classifier();
        // min_count 8: the first 8 appearances stay in transition.
        for i in 0..8 {
            let id = run_interval(&mut c, 0x1000, 1.0);
            assert!(id.is_transition(), "appearance {i} should be transition");
        }
        let id = run_interval(&mut c, 0x1000, 1.0);
        assert!(!id.is_transition(), "9th appearance is stable");
        assert_eq!(c.phases_created(), 1);
    }

    #[test]
    fn min_count_zero_assigns_ids_immediately() {
        let cfg = ClassifierConfig::builder().min_count(0).build();
        let mut c = PhaseClassifier::new(cfg);
        assert!(!run_interval(&mut c, 0x1000, 1.0).is_transition());
        assert_eq!(c.transition_intervals(), 0);
    }

    #[test]
    fn recurring_phase_keeps_its_id() {
        let mut c = paper_classifier();
        let mut ids = Vec::new();
        for _ in 0..20 {
            ids.push(run_interval(&mut c, 0x1000, 1.0));
        }
        let stable: Vec<_> = ids.iter().filter(|id| !id.is_transition()).collect();
        assert!(!stable.is_empty());
        assert!(stable.windows(2).all(|w| w[0] == w[1]), "one stable ID");
    }

    #[test]
    fn different_code_different_phase() {
        let mut c = paper_classifier();
        for _ in 0..12 {
            run_interval(&mut c, 0x1000, 1.0);
        }
        for _ in 0..12 {
            run_interval(&mut c, 0x90_0000, 3.0);
        }
        assert_eq!(c.phases_created(), 2);
        let a = run_interval(&mut c, 0x1000, 1.0);
        let b = run_interval(&mut c, 0x90_0000, 3.0);
        assert_ne!(a, b);
    }

    #[test]
    fn alternating_phases_both_promoted() {
        let mut c = paper_classifier();
        for _ in 0..10 {
            run_interval(&mut c, 0x1000, 1.0);
            run_interval(&mut c, 0x90_0000, 3.0);
        }
        assert_eq!(c.phases_created(), 2);
    }

    #[test]
    fn transition_fraction_counts_unstable_intervals() {
        let mut c = paper_classifier();
        for _ in 0..16 {
            run_interval(&mut c, 0x1000, 1.0);
        }
        // 8 transition + 8 stable.
        assert_eq!(c.transition_intervals(), 8);
        assert!((c.transition_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn adaptive_feedback_tightens_threshold() {
        let cfg = ClassifierConfig::builder()
            .min_count(0)
            .adaptive(Some(crate::config::AdaptiveConfig {
                deviation_threshold: 0.25,
            }))
            .build();
        let mut c = PhaseClassifier::new(cfg);
        run_interval(&mut c, 0x1000, 1.0);
        run_interval(&mut c, 0x1000, 1.0);
        // CPI jumps by 3x: far over the 25% deviation threshold.
        let mut got_tightened = false;
        for i in 0..400u64 {
            c.observe(BranchEvent::new(0x1000 + (i % 8) * 0x40, 50));
            if i == 399 {
                let detail = c.end_interval_detailed(3.0);
                got_tightened = detail.threshold_tightened;
            }
        }
        c.end_interval(3.0); // flush leftover events from loop structure
        assert!(
            got_tightened,
            "large CPI deviation must halve the threshold"
        );
    }

    #[test]
    fn static_config_never_tightens() {
        let cfg = ClassifierConfig::builder()
            .min_count(0)
            .adaptive(None)
            .build();
        let mut c = PhaseClassifier::new(cfg);
        for cpi in [1.0, 5.0, 0.2, 9.0] {
            for i in 0..200u64 {
                c.observe(BranchEvent::new(0x1000 + (i % 8) * 0x40, 50));
            }
            let d = c.end_interval_detailed(cpi);
            assert!(!d.threshold_tightened);
        }
        let base = c.table().base_threshold();
        assert!(c.table().iter().all(|e| (e.threshold - base).abs() < 1e-12));
    }

    #[test]
    fn small_table_recreates_lost_phases() {
        // With a 1-entry table, alternating between two codes evicts
        // constantly, so phase IDs keep being created (the Figure 2 effect).
        let cfg = ClassifierConfig::builder()
            .table_entries(Some(1))
            .min_count(0)
            .build();
        let mut c = PhaseClassifier::new(cfg);
        for _ in 0..5 {
            run_interval(&mut c, 0x1000, 1.0);
            run_interval(&mut c, 0x90_0000, 3.0);
        }
        assert!(
            c.phases_created() >= 8,
            "thrashing table inflates phase count: {}",
            c.phases_created()
        );
    }

    #[test]
    fn empty_interval_is_classified_consistently() {
        let mut c = paper_classifier();
        let first = c.end_interval(0.0);
        assert!(
            first.is_transition(),
            "a brand-new empty signature is unstable"
        );
        // Repeating the empty interval eventually promotes it like any
        // other signature.
        for _ in 0..10 {
            c.end_interval(0.0);
        }
        assert_eq!(c.phases_created(), 1);
    }

    #[test]
    fn classify_interval_convenience_matches_manual() {
        let mut manual = paper_classifier();
        let mut auto = paper_classifier();
        let events: Vec<_> = (0..100u64)
            .map(|i| BranchEvent::new(0x2000 + (i % 4) * 0x10, 25))
            .collect();
        for ev in &events {
            manual.observe(*ev);
        }
        let a = manual.end_interval(1.5);
        let b = auto.classify_interval(events, 1.5);
        assert_eq!(a, b);
    }

    #[test]
    fn classifier_state_is_serializable() {
        // The paper's 10M-instruction granularity is "at the level of
        // context switching": an OS integrating this architecture must be
        // able to save and restore per-process phase state. Compile-time
        // check that the whole classifier state is (de)serializable.
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<PhaseClassifier>();
        assert_serde::<SignatureTable>();
        assert_serde::<Classification>();
    }

    #[test]
    fn suspended_and_resumed_classifier_continues_identically() {
        // Clone mid-stream (the state snapshot a suspend would serialize)
        // and check both copies evolve identically.
        let mut c = paper_classifier();
        for _ in 0..10 {
            run_interval(&mut c, 0x1000, 1.0);
            run_interval(&mut c, 0x9_0000, 3.0);
        }
        let mut resumed = c.clone();
        for _ in 0..10 {
            let a = run_interval(&mut c, 0x1000, 1.0);
            let b = run_interval(&mut resumed, 0x1000, 1.0);
            assert_eq!(a, b);
        }
        assert_eq!(c.phases_created(), resumed.phases_created());
    }

    #[test]
    fn static_bit_selection_misscal_can_zero_signatures() {
        // A static selection aimed at bits 14..19 sees nothing when the
        // counters only ever reach a few hundred — every signature is
        // all-zero and everything collapses into a single phase. This is
        // the failure mode the paper's dynamic selection removes.
        let cfg = ClassifierConfig::builder()
            .min_count(0)
            .adaptive(None)
            .bit_selection(crate::config::BitSelectionMode::Static { low_bit: 14 })
            .build();
        let mut c = PhaseClassifier::new(cfg);
        // Two very different (tiny) intervals.
        c.observe(BranchEvent::new(0x1000, 200));
        let a = c.end_interval(1.0);
        c.observe(BranchEvent::new(0x9_0000, 200));
        let b = c.end_interval(3.0);
        assert_eq!(a, b, "mis-scaled static selection cannot distinguish them");

        // Dynamic selection separates the same two intervals.
        let mut d = PhaseClassifier::new(
            ClassifierConfig::builder()
                .min_count(0)
                .adaptive(None)
                .build(),
        );
        d.observe(BranchEvent::new(0x1000, 200));
        let a = d.end_interval(1.0);
        d.observe(BranchEvent::new(0x9_0000, 200));
        let b = d.end_interval(3.0);
        assert_ne!(a, b, "dynamic selection adapts to the interval scale");
    }

    #[test]
    fn shared_accumulator_matches_owned_path() {
        // Driving a classifier through `end_interval_from` with an external
        // accumulator must reproduce the owned-accumulator path exactly,
        // including full diagnostics.
        let mut owned = paper_classifier();
        let mut shared = paper_classifier();
        let mut acc = AccumulatorTable::new(ClassifierConfig::hpca2005().accumulators);
        for (pc, cpi) in [
            (0x1000u64, 1.0),
            (0x2000, 2.0),
            (0x1000, 1.1),
            (0x1000, 0.9),
            (0x3000, 4.0),
            (0x1000, 1.0),
        ]
        .into_iter()
        .cycle()
        .take(40)
        {
            for i in 0..200u64 {
                let ev = BranchEvent::new(pc + (i % 8) * 0x40, 50);
                owned.observe(ev);
                acc.observe(ev);
            }
            let a = owned.end_interval_detailed(cpi);
            let b = shared.end_interval_from_detailed(&acc, cpi);
            acc.reset();
            assert_eq!(a, b);
        }
        assert_eq!(owned.phases_created(), shared.phases_created());
        assert_eq!(owned.transition_intervals(), shared.transition_intervals());
    }

    #[test]
    fn shared_accumulator_is_not_reset_by_classifier() {
        let mut c = paper_classifier();
        let mut acc = AccumulatorTable::new(ClassifierConfig::hpca2005().accumulators);
        acc.observe(BranchEvent::new(0x1000, 100));
        let before = acc.clone();
        c.end_interval_from(&acc, 1.0);
        assert_eq!(acc, before, "caller owns the accumulator lifecycle");
    }

    #[test]
    #[should_panic(expected = "shared accumulator count")]
    fn shared_accumulator_count_mismatch_panics() {
        let mut c = paper_classifier(); // 16 accumulators
        let acc = AccumulatorTable::new(64);
        c.end_interval_from(&acc, 1.0);
    }

    #[test]
    #[should_panic(expected = "shared extractor kind")]
    fn shared_extractor_kind_mismatch_panics() {
        let mut c = paper_classifier(); // BBV extraction
        let ws =
            crate::extractor::WorkingSetExtractor::new(ClassifierConfig::hpca2005().accumulators);
        c.end_interval_from(&ws, 1.0);
    }

    #[test]
    fn custom_extractor_panic_escapes_to_caller() {
        // The generic `end_interval_from` is open to downstream extractor
        // implementations, which the classifier cannot vouch for: a panic
        // inside `finalize_into` must propagate (the engine contains it
        // with a per-lane unwind boundary — see the experiments crate).
        struct Exploding;
        impl FeatureExtractor for Exploding {
            fn kind(&self) -> crate::extractor::ExtractorKind {
                crate::extractor::ExtractorKind::Bbv
            }
            fn dims(&self) -> usize {
                ClassifierConfig::hpca2005().accumulators
            }
            fn observe(&mut self, _ev: BranchEvent) {}
            fn finalize_into(&self, _config: &ClassifierConfig, _buf: Vec<u16>) -> Signature {
                panic!("extractor blew up mid-finalize");
            }
            fn reset(&mut self) {}
        }
        let mut c = paper_classifier();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.end_interval_from(&Exploding, 1.0)
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("blew up"), "panic payload: {msg:?}");
    }

    #[test]
    fn snapshot_restores_bit_identical_classification() {
        // Across all three extractors: classify a while, snapshot, restore,
        // then drive the original and the restored copy with the same
        // stream and require identical full diagnostics.
        for kind in ExtractorKind::ALL {
            let cfg = ClassifierConfig::builder().extractor(kind).build();
            let mut c = PhaseClassifier::new(cfg);
            for rep in 0..12 {
                run_interval(
                    &mut c,
                    0x1000 + (rep % 3) * 0x9_0000,
                    1.0 + rep as f64 * 0.1,
                );
            }
            // Mid-interval events too: the extractor state must survive.
            for i in 0..37u64 {
                c.observe(BranchEvent::new(0x5000 + i * 0x40, 21));
            }
            let snap = c.snapshot();
            let mut restored =
                PhaseClassifier::from_snapshot(&snap).unwrap_or_else(|e| panic!("{kind}: {e}"));
            for step in 0..24u64 {
                let ev = BranchEvent::new(0x1000 + (step % 5) * 0x11_0000, 33);
                c.observe(ev);
                restored.observe(ev);
                if step % 4 == 3 {
                    let cpi = 1.0 + (step % 7) as f64;
                    let a = c.end_interval_detailed(cpi);
                    let b = restored.end_interval_detailed(cpi);
                    assert_eq!(a, b, "{kind} diverged after restore");
                }
            }
            assert_eq!(c.phases_created(), restored.phases_created());
            assert_eq!(c.intervals_seen(), restored.intervals_seen());
            assert_eq!(c.transition_intervals(), restored.transition_intervals());
        }
    }

    #[test]
    fn snapshot_survives_lru_churn() {
        // A tiny table churns its LRU constantly; the private stamps must
        // round-trip so post-restore evictions pick the same victims.
        let cfg = ClassifierConfig::builder()
            .table_entries(Some(2))
            .min_count(0)
            .build();
        let mut c = PhaseClassifier::new(cfg);
        for rep in 0..9 {
            run_interval(&mut c, 0x1000 + (rep % 3) * 0x9_0000, 1.0);
        }
        let mut restored = PhaseClassifier::from_snapshot(&c.snapshot()).unwrap();
        for rep in 0..9 {
            let pc = 0x1000 + (rep % 4) * 0x7_0000;
            let a = run_interval(&mut c, pc, 2.0);
            let b = run_interval(&mut restored, pc, 2.0);
            assert_eq!(a, b);
        }
        assert_eq!(c.table().evictions(), restored.table().evictions());
    }

    #[test]
    fn snapshot_rejects_garbage_without_panicking() {
        assert!(matches!(
            PhaseClassifier::from_snapshot(b"not a snapshot"),
            Err(crate::snapshot::SnapshotError::BadMagic)
        ));
        // Every truncation of a valid snapshot must fail cleanly.
        let mut c = paper_classifier();
        for _ in 0..10 {
            run_interval(&mut c, 0x1000, 1.0);
        }
        let snap = c.snapshot();
        for len in 0..snap.len() {
            assert!(
                PhaseClassifier::from_snapshot(&snap[..len]).is_err(),
                "prefix of {len} bytes must not decode"
            );
        }
        // Flipping each byte must never panic (errors are fine; some flips
        // still decode — e.g. a toggled boolean).
        for i in 0..snap.len() {
            let mut bad = snap.clone();
            bad[i] ^= 0xFF;
            let _ = PhaseClassifier::from_snapshot(&bad);
        }
        // Trailing bytes are rejected.
        let mut padded = snap.clone();
        padded.push(0);
        assert!(PhaseClassifier::from_snapshot(&padded).is_err());
    }

    #[test]
    fn snapshot_bounds_declared_counts() {
        // A snapshot declaring a huge entry count with no bytes behind it
        // must be rejected before allocating.
        let c = paper_classifier();
        let snap = c.snapshot();
        // Corrupt: replace everything after the magic + config with a
        // huge varint; decode must error (not OOM or panic).
        let mut bad = snap[..SNAPSHOT_MAGIC.len() + 24].to_vec();
        bad.extend([0xFF; 10]);
        assert!(PhaseClassifier::from_snapshot(&bad).is_err());
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut c = paper_classifier();
            let mut ids = Vec::new();
            for pc in [0x1000u64, 0x2000, 0x1000, 0x3000, 0x1000] {
                for _ in 0..6 {
                    ids.push(run_interval(&mut c, pc, 1.0));
                }
            }
            ids
        };
        assert_eq!(run(), run());
    }
}
