//! Compressed signatures with dynamic bit selection (Section 4.2).

use serde::{Deserialize, Serialize};

use crate::accumulator::AccumulatorTable;
use crate::snapshot::{self, SnapReader, SnapshotError};

/// Which bits to copy out of each accumulator when forming a signature.
///
/// Computed per interval from the average counter value: if the average
/// needs `b` bits, the hardware keeps two extra bits of headroom (values up
/// to 4× the average remain representable), then copies the top
/// `bits_per_dim` bits of that range. Counters with a set bit *above* the
/// kept range saturate to the all-ones value.
///
/// # Example
///
/// ```
/// use tpcp_core::BitSelection;
///
/// // Average counter value 1000 needs 10 bits; with 2 headroom bits the
/// // MSB position is 11, and with 6-bit dims we copy bits 11..=6.
/// let sel = BitSelection::for_average(1000, 6);
/// assert_eq!(sel.compress(0), 0);
/// assert_eq!(sel.compress(1 << 11), 0b100000);
/// assert_eq!(sel.compress(u64::MAX), 0b111111); // saturates
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSelection {
    /// Lowest bit position copied.
    low_bit: u32,
    /// Number of bits copied per counter.
    bits_per_dim: u32,
}

impl BitSelection {
    /// Chooses the selection for an interval whose average counter value is
    /// `average`, copying `bits_per_dim` bits per counter.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_dim` is zero or greater than 16.
    pub fn for_average(average: u64, bits_per_dim: u32) -> Self {
        assert!(
            (1..=16).contains(&bits_per_dim),
            "bits per dimension must be in 1..=16"
        );
        // Bits needed to represent the average (at least 1).
        let bits_needed = 64 - average.max(1).leading_zeros();
        // Keep two more bits so counters 2-4x the average are representable.
        let msb = bits_needed + 1; // highest kept bit position (0-indexed)
        let low_bit = (msb + 1).saturating_sub(bits_per_dim);
        Self {
            low_bit,
            bits_per_dim,
        }
    }

    /// Builds a selection from explicit bit positions (used to model the
    /// prior work's *static* choice of bits 14–21).
    pub fn fixed(low_bit: u32, bits_per_dim: u32) -> Self {
        assert!(
            (1..=16).contains(&bits_per_dim),
            "bits per dimension must be in 1..=16"
        );
        Self {
            low_bit,
            bits_per_dim,
        }
    }

    /// Lowest copied bit position.
    pub fn low_bit(&self) -> u32 {
        self.low_bit
    }

    /// Bits copied per dimension.
    pub fn bits_per_dim(&self) -> u32 {
        self.bits_per_dim
    }

    /// Maximum representable dimension value (`2^bits_per_dim - 1`).
    pub fn max_dim(&self) -> u16 {
        ((1u32 << self.bits_per_dim) - 1) as u16
    }

    /// Compresses one 24-bit counter to a `bits_per_dim`-bit value,
    /// saturating when a more significant bit is set above the selection.
    #[inline]
    pub fn compress(&self, counter: u64) -> u16 {
        let top = self.low_bit + self.bits_per_dim; // first bit above range
        if top < 64 && (counter >> top) != 0 {
            return self.max_dim();
        }
        ((counter >> self.low_bit) as u32 & ((1 << self.bits_per_dim) - 1)) as u16
    }
}

/// A compressed interval signature: one small value per accumulator.
///
/// Signatures are compared with the Manhattan distance, normalized by the
/// total weight of both signatures so a similarity threshold is a fraction
/// of "how different could they possibly be": 0 means identical code
/// profiles, 1 means disjoint.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    dims: Vec<u16>,
    selection: BitSelection,
    /// Sum of `dims`, cached at construction. The table search compares
    /// the probe signature against every entry; caching the weight keeps
    /// each comparison to one pass over the dimensions instead of three.
    weight: u64,
}

impl Signature {
    /// Forms the signature of the current interval from the accumulator
    /// table, choosing bits dynamically from the interval's average counter
    /// value (Section 4.2).
    pub fn from_accumulator(acc: &AccumulatorTable, bits_per_dim: u32) -> Self {
        let selection = BitSelection::for_average(acc.average(), bits_per_dim);
        Self::with_selection(acc, selection)
    }

    /// Like [`from_accumulator`](Self::from_accumulator), but reuses `buf`
    /// as the dimension storage instead of allocating. Pair with
    /// [`into_dims`](Self::into_dims) to recycle one buffer across
    /// intervals — the classifier's steady state allocates nothing.
    pub fn from_accumulator_in(acc: &AccumulatorTable, bits_per_dim: u32, buf: Vec<u16>) -> Self {
        let selection = BitSelection::for_average(acc.average(), bits_per_dim);
        Self::with_selection_in(acc, selection, buf)
    }

    /// Forms a signature using an explicit bit selection (for modeling the
    /// static selection of prior work and for ablation experiments).
    pub fn with_selection(acc: &AccumulatorTable, selection: BitSelection) -> Self {
        Self::with_selection_in(acc, selection, Vec::with_capacity(acc.len()))
    }

    /// [`with_selection`](Self::with_selection) into a reused buffer.
    pub fn with_selection_in(
        acc: &AccumulatorTable,
        selection: BitSelection,
        buf: Vec<u16>,
    ) -> Self {
        Self::from_counters_in(acc.counters(), selection, buf)
    }

    /// Forms a signature directly from a raw counter slice — the entry
    /// point for feature extractors that are not accumulator tables (a
    /// working-set bitmap, branch-direction counters). Identical
    /// compression semantics to [`with_selection_in`](Self::with_selection_in),
    /// which delegates here.
    pub fn from_counters_in(counters: &[u64], selection: BitSelection, mut buf: Vec<u16>) -> Self {
        buf.clear();
        let mut weight = 0u64;
        buf.extend(counters.iter().map(|&c| {
            let d = selection.compress(c);
            weight += u64::from(d);
            d
        }));
        Self {
            dims: buf,
            selection,
            weight,
        }
    }

    /// The compressed per-dimension values.
    pub fn dims(&self) -> &[u16] {
        &self.dims
    }

    /// Consumes the signature, returning its dimension buffer for reuse.
    pub fn into_dims(self) -> Vec<u16> {
        self.dims
    }

    /// The bit selection this signature was formed under.
    pub fn selection(&self) -> BitSelection {
        self.selection
    }

    /// Sum of all dimension values (the signature's "weight"), cached at
    /// construction.
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// Raw Manhattan distance between two signatures.
    ///
    /// # Panics
    ///
    /// Panics if the signatures have different dimensionality.
    pub fn manhattan_distance(&self, other: &Signature) -> u64 {
        assert_eq!(
            self.dims.len(),
            other.dims.len(),
            "signatures must have equal dimensionality"
        );
        self.dims
            .iter()
            .zip(&other.dims)
            .map(|(&a, &b)| u64::from(a.abs_diff(b)))
            .sum()
    }

    /// Normalized distance in `[0, 1]`: the Manhattan distance divided by
    /// the combined weight of both signatures.
    ///
    /// Identical signatures score 0; signatures with disjoint non-zero
    /// dimensions score 1. Two all-zero signatures are defined to be
    /// identical (distance 0).
    ///
    /// A similarity threshold of 25% ("a signature can be no more than 25%
    /// different", Figure 4) is `normalized_distance < 0.25`.
    pub fn normalized_distance(&self, other: &Signature) -> f64 {
        let denom = self.weight() + other.weight();
        if denom == 0 {
            return 0.0;
        }
        self.manhattan_distance(other) as f64 / denom as f64
    }

    /// Thresholded distance with early exit: returns the normalized
    /// distance when it is strictly below `threshold`, or `None` without
    /// finishing the scan once the running Manhattan total proves the
    /// result cannot pass.
    ///
    /// The decision is *identical* to
    /// `normalized_distance(other) < threshold` — including on the exact
    /// boundary — because the early-exit cutoff is the conservative integer
    /// truncation of `threshold × (weight + weight)` (a partial Manhattan
    /// total strictly above it already implies the final normalized
    /// distance is ≥ the threshold, since the total only grows), while the
    /// accept decision re-applies the same floating-point predicate the
    /// unthresholded path uses. The dimension scan runs in fixed-size
    /// chunks of plain `abs_diff` adds so the compiler can vectorize it.
    ///
    /// # Panics
    ///
    /// Panics if the signatures have different dimensionality.
    pub fn within_distance(&self, other: &Signature, threshold: f64) -> Option<f64> {
        let (denom, bound) = match self.scan_bounds(other, threshold) {
            Ok(pair) => pair,
            Err(trivial) => return trivial,
        };

        const CHUNK: usize = 16;
        let mut total = 0u64;
        let mut chunks = self.dims.chunks_exact(CHUNK);
        let mut other_chunks = other.dims.chunks_exact(CHUNK);
        for (a, b) in chunks.by_ref().zip(other_chunks.by_ref()) {
            let mut partial = 0u64;
            for i in 0..CHUNK {
                partial += u64::from(a[i].abs_diff(b[i]));
            }
            total += partial;
            if total > bound {
                return None;
            }
        }
        for (&a, &b) in chunks.remainder().iter().zip(other_chunks.remainder()) {
            total += u64::from(a.abs_diff(b));
        }
        accept_total(total, bound, denom, threshold)
    }

    /// Appends this signature to a snapshot (the cached weight is derived
    /// state, recomputed on restore).
    pub(crate) fn snap_write(&self, out: &mut Vec<u8>) {
        snapshot::put_varint(out, u64::from(self.selection.low_bit));
        snapshot::put_varint(out, u64::from(self.selection.bits_per_dim));
        snapshot::put_varint(out, self.dims.len() as u64);
        for &d in &self.dims {
            snapshot::put_varint(out, u64::from(d));
        }
    }

    /// Restores a signature from a snapshot, re-checking the selection
    /// range and dimension bounds the constructors enforce.
    pub(crate) fn snap_read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let low_bit = r.varint()?;
        let bits_per_dim = r.varint()?;
        // `for_average` can select up to bit 65 for a saturated average
        // (one headroom bit past the top), so allow a little past 64.
        if low_bit > 66 || !(1..=16).contains(&bits_per_dim) {
            return Err(SnapshotError::Malformed("bit selection out of range"));
        }
        let selection = BitSelection {
            low_bit: low_bit as u32,
            bits_per_dim: bits_per_dim as u32,
        };
        let n = r.bounded_count(1)?;
        let max_dim = u64::from(selection.max_dim());
        let mut dims = Vec::with_capacity(n);
        let mut weight = 0u64;
        for _ in 0..n {
            let d = r.varint()?;
            if d > max_dim {
                return Err(SnapshotError::Malformed(
                    "signature dimension above the selection's ceiling",
                ));
            }
            weight += d;
            dims.push(d as u16);
        }
        Ok(Self {
            dims,
            selection,
            weight,
        })
    }

    /// Shared preamble of the thresholded scans: dimensionality assert and
    /// the trivial decisions that need no dimension pass. `Ok` carries
    /// `(denom, bound)` for a real scan; `Err` is the early decision
    /// (both-zero signatures, or a non-positive threshold).
    #[inline]
    fn scan_bounds(&self, other: &Signature, threshold: f64) -> Result<(u64, u64), Option<f64>> {
        assert_eq!(
            self.dims.len(),
            other.dims.len(),
            "signatures must have equal dimensionality"
        );
        let denom = self.weight() + other.weight();
        if denom == 0 {
            // Both signatures are all-zero: defined distance 0.
            return Err((0.0 < threshold).then_some(0.0));
        }
        if threshold <= 0.0 {
            return Err(None);
        }
        // Any partial total strictly above this bound makes the final
        // normalized distance >= threshold, so a scan can stop early.
        Ok((denom, (threshold * denom as f64) as u64))
    }
}

/// The accept decision every thresholded scan funnels through: the
/// conservative integer cutoff rejects, then the exact float predicate —
/// the same one [`Signature::normalized_distance`] implies — decides.
/// Centralizing it is what makes "bit-identical across kernels" an
/// argument about one function rather than four copies.
#[inline]
pub(crate) fn accept_total(total: u64, bound: u64, denom: u64, threshold: f64) -> Option<f64> {
    if total > bound {
        return None;
    }
    let d = total as f64 / denom as f64;
    (d < threshold).then_some(d)
}

/// [`accept_total`] for a scan that already holds an exact Manhattan
/// total (the column scan computes totals for a whole block of entries
/// before deciding): applies the same trivial decisions as
/// [`Signature::within_distance`]'s preamble, then the same cutoff and
/// float predicate, so a `(probe, entry)` pair accepts with the same
/// distance through either path.
#[cfg(feature = "simd")]
#[inline]
pub(crate) fn accept_entry(total: u64, denom: u64, threshold: f64) -> Option<f64> {
    if denom == 0 {
        return (0.0 < threshold).then_some(0.0);
    }
    if threshold <= 0.0 {
        return None;
    }
    accept_total(total, (threshold * denom as f64) as u64, denom, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcp_trace::BranchEvent;

    fn acc_from(pairs: &[(u64, u32)], n: usize) -> AccumulatorTable {
        let mut acc = AccumulatorTable::new(n);
        for &(pc, insns) in pairs {
            acc.observe(BranchEvent::new(pc, insns));
        }
        acc
    }

    #[test]
    fn selection_tracks_average_magnitude() {
        // Larger averages select higher bits.
        let small = BitSelection::for_average(100, 6);
        let large = BitSelection::for_average(100_000, 6);
        assert!(large.low_bit() > small.low_bit());
    }

    #[test]
    fn selection_handles_zero_average() {
        let sel = BitSelection::for_average(0, 6);
        assert_eq!(sel.compress(0), 0);
        assert_eq!(sel.compress(3), 3);
    }

    #[test]
    fn compress_saturates_above_range() {
        let sel = BitSelection::for_average(1 << 10, 6);
        // Selection spans bits 12..=7. Bit 13 set => saturate.
        assert_eq!(sel.compress(1 << 20), sel.max_dim());
    }

    #[test]
    fn compress_extracts_selected_bits() {
        let sel = BitSelection::fixed(4, 6);
        assert_eq!(sel.compress(0b11_1111_0000), 0b11_1111);
        assert_eq!(sel.compress(0b01_0101_1111), 0b01_0101);
    }

    #[test]
    #[should_panic(expected = "bits per dimension")]
    fn zero_bits_rejected() {
        BitSelection::for_average(10, 0);
    }

    #[test]
    fn identical_accumulators_zero_distance() {
        let a = Signature::from_accumulator(&acc_from(&[(1, 100), (2, 200)], 8), 6);
        let b = Signature::from_accumulator(&acc_from(&[(1, 100), (2, 200)], 8), 6);
        assert_eq!(a.manhattan_distance(&b), 0);
        assert_eq!(a.normalized_distance(&b), 0.0);
    }

    #[test]
    fn disjoint_code_has_distance_one() {
        // Two intervals executing completely different code.
        let a = Signature::from_accumulator(&acc_from(&[(0x111, 1000)], 8), 6);
        let b = Signature::from_accumulator(&acc_from(&[(0x999, 1000)], 8), 6);
        // (Guard against unlucky hash collision of the two PCs.)
        let acc = AccumulatorTable::new(8);
        if acc.index_of(0x111) != acc.index_of(0x999) {
            assert!((a.normalized_distance(&b) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Signature::from_accumulator(&acc_from(&[(1, 10), (5, 300)], 8), 6);
        let b = Signature::from_accumulator(&acc_from(&[(5, 100), (9, 42)], 8), 6);
        assert_eq!(a.manhattan_distance(&b), b.manhattan_distance(&a));
    }

    #[test]
    fn empty_signatures_are_identical() {
        let a = Signature::from_accumulator(&AccumulatorTable::new(8), 6);
        let b = Signature::from_accumulator(&AccumulatorTable::new(8), 6);
        assert_eq!(a.normalized_distance(&b), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal dimensionality")]
    fn mismatched_dims_panic() {
        let a = Signature::from_accumulator(&AccumulatorTable::new(8), 6);
        let b = Signature::from_accumulator(&AccumulatorTable::new(16), 6);
        let _ = a.manhattan_distance(&b);
    }

    #[test]
    fn similar_intervals_have_small_distance() {
        // Same dominant code, slightly different proportions.
        let a = Signature::from_accumulator(&acc_from(&[(1, 10_000), (2, 5_000), (3, 100)], 16), 6);
        let b = Signature::from_accumulator(&acc_from(&[(1, 9_500), (2, 5_400), (3, 150)], 16), 6);
        let d = a.normalized_distance(&b);
        assert!(d < 0.125, "similar intervals should be within 12.5%: {d}");
    }

    #[test]
    fn cached_weight_matches_dims_sum() {
        let sig = Signature::from_accumulator(&acc_from(&[(1, 500), (7, 12_000)], 16), 6);
        let recomputed: u64 = sig.dims().iter().map(|&d| u64::from(d)).sum();
        assert_eq!(sig.weight(), recomputed);
    }

    #[test]
    fn buffer_reuse_builds_identical_signatures() {
        let acc = acc_from(&[(1, 10_000), (2, 5_000), (3, 100)], 16);
        let fresh = Signature::from_accumulator(&acc, 6);
        // A dirty recycled buffer (wrong contents, wrong length) must not
        // leak into the rebuilt signature.
        let recycled = vec![0xffffu16 >> 4; 3];
        let reused = Signature::from_accumulator_in(&acc, 6, recycled);
        assert_eq!(fresh, reused);
        assert_eq!(fresh.weight(), reused.weight());
        // The buffer round-trips out for the next interval.
        let buf = reused.into_dims();
        assert_eq!(buf.len(), 16);
        let again = Signature::from_accumulator_in(&acc, 6, buf);
        assert_eq!(fresh, again);
    }

    #[test]
    fn within_distance_matches_full_predicate_around_bound() {
        let a = Signature::from_accumulator(&acc_from(&[(1, 10_000), (2, 5_000), (3, 100)], 16), 6);
        let b = Signature::from_accumulator(&acc_from(&[(1, 9_500), (2, 5_400), (3, 150)], 16), 6);
        let d = a.normalized_distance(&b);
        assert!(d > 0.0, "fixture must have non-zero distance");

        // Strictly above the distance: accepted, same value.
        assert_eq!(a.within_distance(&b, d + 1e-9), Some(d));
        // Exactly at the distance: the predicate is strict, so rejected.
        assert_eq!(a.within_distance(&b, d), None);
        // Below the distance: rejected via the early exit.
        assert_eq!(a.within_distance(&b, d / 2.0), None);
    }

    #[test]
    fn within_distance_agrees_with_normalized_distance_randomized() {
        // Pseudo-random accumulator pairs at several dimensionalities and
        // thresholds: the thresholded scan must agree with the reference
        // predicate bit-for-bit.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [8usize, 16, 32, 64] {
            for _ in 0..50 {
                let pairs_a: Vec<_> = (0..20)
                    .map(|_| (next(), (next() % 50_000) as u32))
                    .collect();
                let pairs_b: Vec<_> = (0..20)
                    .map(|_| (next(), (next() % 50_000) as u32))
                    .collect();
                let a = Signature::from_accumulator(&acc_from(&pairs_a, n), 6);
                let b = Signature::from_accumulator(&acc_from(&pairs_b, n), 6);
                let reference = a.normalized_distance(&b);
                for threshold in [0.0, 0.125, 0.25, 0.5, 1.0, reference] {
                    let expect = (reference < threshold).then_some(reference);
                    assert_eq!(
                        a.within_distance(&b, threshold),
                        expect,
                        "n={n} threshold={threshold} reference={reference}"
                    );
                }
            }
        }
    }

    #[test]
    fn within_distance_zero_denominator_is_identical() {
        let a = Signature::from_accumulator(&AccumulatorTable::new(8), 6);
        let b = Signature::from_accumulator(&AccumulatorTable::new(8), 6);
        assert_eq!(a.within_distance(&b, 0.25), Some(0.0));
        assert_eq!(a.within_distance(&b, 0.0), None);
    }

    #[test]
    #[should_panic(expected = "equal dimensionality")]
    fn within_distance_mismatched_dims_panic() {
        let a = Signature::from_accumulator(&AccumulatorTable::new(8), 6);
        let b = Signature::from_accumulator(&AccumulatorTable::new(16), 6);
        let _ = a.within_distance(&b, 0.25);
    }

    #[test]
    fn six_bits_is_default_resolution() {
        let acc = acc_from(&[(1, 1000)], 8);
        let sig = Signature::from_accumulator(&acc, 6);
        assert!(sig.dims().iter().all(|&d| d <= 63));
        assert_eq!(sig.selection().bits_per_dim(), 6);
    }
}
