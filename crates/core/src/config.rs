//! Classifier configuration.

use serde::{Deserialize, Serialize};

use crate::extractor::ExtractorKind;

/// How signature bits are chosen when compressing accumulators — the
/// Section 4.2 design axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BitSelectionMode {
    /// Recompute the selection each interval from the average counter
    /// value (this paper's method).
    Dynamic,
    /// A fixed low bit position, as in the prior work's statically chosen
    /// bits 14–21 (appropriate only for one interval length / counter
    /// count combination).
    Static {
        /// Lowest copied bit position.
        low_bit: u32,
    },
}

/// Adaptive-threshold (phase splitting) parameters — Section 4.6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Relative CPI deviation that triggers a threshold tightening: when an
    /// interval's CPI differs from its phase's running average by more than
    /// this fraction, the phase's similarity threshold is halved and its
    /// CPI statistics cleared. The paper evaluates 50%, 25%, and 12.5%.
    pub deviation_threshold: f64,
}

/// Full configuration of the online phase classifier.
///
/// Construct via [`ClassifierConfig::builder`] or use one of the presets:
///
/// - [`ClassifierConfig::hpca2005`] — the paper's final configuration:
///   16 accumulators, 6 bits/dimension, 32-entry table, 25% similarity,
///   min-count 8, adaptive thresholds at 25% CPI deviation (Section 5).
/// - [`ClassifierConfig::sherwood_baseline`] — the prior work's
///   configuration: 32 accumulators, 12.5% similarity, no transition
///   phase, no adaptive thresholds (Section 4.3).
///
/// # Example
///
/// ```
/// use tpcp_core::ClassifierConfig;
///
/// let cfg = ClassifierConfig::builder()
///     .accumulators(16)
///     .table_entries(Some(64))
///     .similarity_threshold(0.125)
///     .min_count(4)
///     .build();
/// assert_eq!(cfg.accumulators, 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassifierConfig {
    /// Number of accumulator counters (signature dimensionality). Must be a
    /// power of two.
    pub accumulators: usize,
    /// Bits kept per dimension when compressing signatures (6 in the
    /// paper; fewer than 6 classifies poorly, more than 8 adds nothing).
    pub bits_per_dim: u32,
    /// Signature table capacity; `None` models the infinite table.
    pub table_entries: Option<usize>,
    /// Base similarity threshold (normalized distance bound), e.g. `0.25`.
    pub similarity_threshold: f64,
    /// Min Counter threshold: intervals are classified into the transition
    /// phase until their signature has appeared this many times. `0`
    /// disables the transition phase entirely (prior-work behaviour).
    pub min_count: u8,
    /// Adaptive threshold tightening; `None` keeps thresholds static.
    pub adaptive: Option<AdaptiveConfig>,
    /// Use best-match selection among in-threshold entries (the paper's
    /// improvement); `false` reverts to first-match (prior work).
    pub best_match: bool,
    /// How the bits copied from each accumulator are chosen.
    pub bit_selection: BitSelectionMode,
    /// Which feature back-end fills the signature each interval (the
    /// paper's BBV accumulation by default). `accumulators` is the
    /// signature dimensionality for every back-end. Defaults on
    /// deserialization so configurations saved before this field existed
    /// load as BBV.
    #[serde(default)]
    pub extractor: ExtractorKind,
}

impl ClassifierConfig {
    /// The paper's final classifier configuration (start of Section 5):
    /// "6 bits per accumulator, 16 accumulators, 32 signature table
    /// entries, 25% similarity threshold, 8 min counter threshold, and 25%
    /// performance deviation threshold".
    pub fn hpca2005() -> Self {
        Self {
            accumulators: 16,
            bits_per_dim: 6,
            table_entries: Some(32),
            similarity_threshold: 0.25,
            min_count: 8,
            adaptive: Some(AdaptiveConfig {
                deviation_threshold: 0.25,
            }),
            best_match: true,
            bit_selection: BitSelectionMode::Dynamic,
            extractor: ExtractorKind::Bbv,
        }
    }

    /// The prior work's baseline (Section 4.3): 32 accumulators, 32-entry
    /// table, 12.5% similarity threshold, no transition phase, no adaptive
    /// thresholds. (Best-match selection is kept on, as the paper applies
    /// it to all of its results.)
    pub fn sherwood_baseline() -> Self {
        Self {
            accumulators: 32,
            bits_per_dim: 6,
            table_entries: Some(32),
            similarity_threshold: 0.125,
            min_count: 0,
            adaptive: None,
            best_match: true,
            bit_selection: BitSelectionMode::Dynamic,
            extractor: ExtractorKind::Bbv,
        }
    }

    /// Starts a builder initialized to [`ClassifierConfig::hpca2005`].
    pub fn builder() -> ClassifierConfigBuilder {
        ClassifierConfigBuilder {
            config: Self::hpca2005(),
        }
    }

    /// Validates invariants; called by the classifier constructor.
    ///
    /// # Panics
    ///
    /// Panics if `accumulators` is zero or not a power of two,
    /// `bits_per_dim` is outside `1..=16`, the similarity threshold is
    /// outside `(0, 1]`, `table_entries` is `Some(0)`, or the extractor
    /// cannot fill a signature of `accumulators` dimensions:
    ///
    /// - [`ExtractorKind::BranchMix`] needs at least 2 dimensions (each
    ///   hashed bucket holds a taken/not-taken pair);
    /// - [`ExtractorKind::WorkingSet`] rejects a static bit selection
    ///   above bit 0 (its dimensions are a 0/1 bitmap, so higher bits are
    ///   never set and every signature would be all-zero).
    pub fn validate(&self) {
        assert!(
            self.accumulators > 0,
            "accumulator count must be positive (the signature needs at least one dimension)"
        );
        assert!(
            self.accumulators.is_power_of_two(),
            "accumulator count must be a power of two"
        );
        match self.extractor {
            ExtractorKind::Bbv => {}
            ExtractorKind::WorkingSet => {
                if let BitSelectionMode::Static { low_bit } = self.bit_selection {
                    assert!(
                        low_bit == 0,
                        "working-set extractor cannot fill a signature from a static bit \
                         selection above bit 0 (its dimensions are a 0/1 region bitmap)"
                    );
                }
            }
            ExtractorKind::BranchMix => {
                assert!(
                    self.accumulators >= 2,
                    "branch-mix extractor needs at least 2 dimensions (each bucket holds a \
                     taken/not-taken pair)"
                );
            }
        }
        assert!(
            (1..=16).contains(&self.bits_per_dim),
            "bits per dimension must be in 1..=16"
        );
        assert!(
            self.similarity_threshold > 0.0 && self.similarity_threshold <= 1.0,
            "similarity threshold must be in (0, 1]"
        );
        if let Some(c) = self.table_entries {
            assert!(c > 0, "table capacity must be positive");
        }
        if let Some(a) = self.adaptive {
            assert!(
                a.deviation_threshold > 0.0,
                "deviation threshold must be positive"
            );
        }
    }
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        Self::hpca2005()
    }
}

/// Builder for [`ClassifierConfig`]; see [`ClassifierConfig::builder`].
#[derive(Debug, Clone)]
pub struct ClassifierConfigBuilder {
    config: ClassifierConfig,
}

impl ClassifierConfigBuilder {
    /// Sets the number of accumulator counters.
    pub fn accumulators(mut self, n: usize) -> Self {
        self.config.accumulators = n;
        self
    }

    /// Sets the bits kept per signature dimension.
    pub fn bits_per_dim(mut self, bits: u32) -> Self {
        self.config.bits_per_dim = bits;
        self
    }

    /// Sets the signature table capacity (`None` = unbounded).
    pub fn table_entries(mut self, entries: Option<usize>) -> Self {
        self.config.table_entries = entries;
        self
    }

    /// Sets the base similarity threshold.
    pub fn similarity_threshold(mut self, t: f64) -> Self {
        self.config.similarity_threshold = t;
        self
    }

    /// Sets the Min Counter threshold (0 disables the transition phase).
    pub fn min_count(mut self, c: u8) -> Self {
        self.config.min_count = c;
        self
    }

    /// Enables or disables adaptive threshold tightening.
    pub fn adaptive(mut self, adaptive: Option<AdaptiveConfig>) -> Self {
        self.config.adaptive = adaptive;
        self
    }

    /// Chooses best-match (`true`) or first-match (`false`) selection.
    pub fn best_match(mut self, best: bool) -> Self {
        self.config.best_match = best;
        self
    }

    /// Chooses dynamic (paper) or static (prior work) bit selection.
    pub fn bit_selection(mut self, mode: BitSelectionMode) -> Self {
        self.config.bit_selection = mode;
        self
    }

    /// Chooses the feature back-end that fills the signature each
    /// interval (BBV accumulation, working-set bitmap, or branch mix).
    pub fn extractor(mut self, kind: ExtractorKind) -> Self {
        self.config.extractor = kind;
        self
    }

    /// Finalizes and validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`ClassifierConfig::validate`]).
    pub fn build(self) -> ClassifierConfig {
        self.config.validate();
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        ClassifierConfig::hpca2005().validate();
        ClassifierConfig::sherwood_baseline().validate();
    }

    #[test]
    fn paper_configuration_values() {
        let c = ClassifierConfig::hpca2005();
        assert_eq!(c.accumulators, 16);
        assert_eq!(c.bits_per_dim, 6);
        assert_eq!(c.table_entries, Some(32));
        assert_eq!(c.similarity_threshold, 0.25);
        assert_eq!(c.min_count, 8);
        assert_eq!(
            c.adaptive,
            Some(AdaptiveConfig {
                deviation_threshold: 0.25
            })
        );
    }

    #[test]
    fn builder_overrides_fields() {
        let c = ClassifierConfig::builder()
            .accumulators(64)
            .bits_per_dim(8)
            .table_entries(None)
            .similarity_threshold(0.5)
            .min_count(0)
            .adaptive(None)
            .best_match(false)
            .build();
        assert_eq!(c.accumulators, 64);
        assert_eq!(c.bits_per_dim, 8);
        assert_eq!(c.table_entries, None);
        assert!(!c.best_match);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn builder_validates() {
        ClassifierConfig::builder().accumulators(10).build();
    }

    #[test]
    fn presets_default_to_bbv_extraction() {
        assert_eq!(ClassifierConfig::hpca2005().extractor, ExtractorKind::Bbv);
        assert_eq!(
            ClassifierConfig::sherwood_baseline().extractor,
            ExtractorKind::Bbv
        );
    }

    #[test]
    fn every_extractor_kind_validates_at_paper_dimensions() {
        for kind in ExtractorKind::ALL {
            ClassifierConfig::builder()
                .extractor(kind)
                .build()
                .validate();
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dimensions_rejected() {
        ClassifierConfig::builder().accumulators(0).build();
    }

    #[test]
    #[should_panic(expected = "at least 2 dimensions")]
    fn branch_mix_rejects_one_dimension() {
        ClassifierConfig::builder()
            .extractor(ExtractorKind::BranchMix)
            .accumulators(1)
            .build();
    }

    #[test]
    #[should_panic(expected = "0/1 region bitmap")]
    fn working_set_rejects_static_selection_above_bit_zero() {
        ClassifierConfig::builder()
            .extractor(ExtractorKind::WorkingSet)
            .bit_selection(BitSelectionMode::Static { low_bit: 14 })
            .build();
    }

    #[test]
    fn working_set_accepts_static_selection_at_bit_zero() {
        let c = ClassifierConfig::builder()
            .extractor(ExtractorKind::WorkingSet)
            .bit_selection(BitSelectionMode::Static { low_bit: 0 })
            .build();
        assert_eq!(c.extractor, ExtractorKind::WorkingSet);
    }

    #[test]
    fn bbv_with_one_dimension_is_legal() {
        // Degenerate but fillable: one accumulator, one dimension.
        let c = ClassifierConfig::builder().accumulators(1).build();
        assert_eq!(c.accumulators, 1);
    }
}
