//! Hardware storage cost of a classifier configuration.
//!
//! The architecture is meant to be "simple, easily implementable (in
//! hardware or software)"; this module makes a configuration's storage
//! budget explicit so design points can be compared on cost as well as
//! quality (e.g. Figure 2's table-size sweep doubles table bits per step).

use serde::{Deserialize, Serialize};

use crate::config::ClassifierConfig;

/// Storage bits implied by a classifier configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardwareCost {
    /// Accumulator table bits (N counters × 24 bits).
    pub accumulator_bits: u64,
    /// Signature table bits: per entry, the compressed signature plus the
    /// phase ID (8 bits), Min Counter (8), LRU stamp (8), and — when
    /// adaptive thresholds are enabled — the per-entry threshold (8) and
    /// running CPI statistics (24).
    pub signature_table_bits: u64,
}

impl HardwareCost {
    /// Computes the cost of a configuration. Unbounded tables are costed
    /// at the paper's 32 entries (an unbounded table is a software
    /// construct used only as an experimental baseline).
    pub fn of(config: &ClassifierConfig) -> Self {
        let accumulator_bits = config.accumulators as u64 * 24;
        let entries = config.table_entries.unwrap_or(32) as u64;
        let signature_bits = config.accumulators as u64 * u64::from(config.bits_per_dim);
        let mut per_entry = signature_bits + 8 + 8 + 8;
        if config.adaptive.is_some() {
            per_entry += 8 + 24;
        }
        Self {
            accumulator_bits,
            signature_table_bits: entries * per_entry,
        }
    }

    /// Total storage in bits.
    pub fn total_bits(&self) -> u64 {
        self.accumulator_bits + self.signature_table_bits
    }

    /// Total storage in bytes (rounded up).
    pub fn total_bytes(&self) -> u64 {
        self.total_bits().div_ceil(8)
    }
}

impl core::fmt::Display for HardwareCost {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} B (accumulators {} b, signature table {} b)",
            self.total_bytes(),
            self.accumulator_bits,
            self.signature_table_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_a_few_hundred_bytes() {
        let cost = HardwareCost::of(&ClassifierConfig::hpca2005());
        // 16×24 = 384 accumulator bits; 32 entries × (96 sig + 24 book +
        // 32 adaptive) = 4864 bits → well under 1KB total.
        assert_eq!(cost.accumulator_bits, 384);
        assert!(cost.total_bytes() < 1024, "{}", cost.total_bytes());
    }

    #[test]
    fn bigger_tables_cost_linearly() {
        let small = HardwareCost::of(&ClassifierConfig::builder().table_entries(Some(16)).build());
        let large = HardwareCost::of(&ClassifierConfig::builder().table_entries(Some(64)).build());
        assert_eq!(large.signature_table_bits, 4 * small.signature_table_bits);
        assert_eq!(large.accumulator_bits, small.accumulator_bits);
    }

    #[test]
    fn adaptive_adds_per_entry_state() {
        let with = HardwareCost::of(&ClassifierConfig::hpca2005());
        let without = HardwareCost::of(&ClassifierConfig::builder().adaptive(None).build());
        assert!(with.signature_table_bits > without.signature_table_bits);
    }

    #[test]
    fn display_mentions_bytes() {
        let text = HardwareCost::of(&ClassifierConfig::hpca2005()).to_string();
        assert!(text.contains("B ("));
    }
}
