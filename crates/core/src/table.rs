//! The past-signature table (Figure 1) with LRU replacement and best-match
//! similarity search.

use serde::{Deserialize, Serialize};

#[cfg(feature = "simd")]
use crate::columns::{ColumnStore, BLOCK};
use crate::phase_id::PhaseId;
use crate::signature::Signature;
use crate::snapshot::{self, SnapReader, SnapshotError};

/// One signature table entry.
///
/// Alongside the stored signature, each entry carries the paper's
/// extensions: the Min Counter that gates promotion out of the transition
/// phase (Section 4.4), a per-entry similarity threshold that the adaptive
/// classifier can tighten (Section 4.6), and the running CPI statistics the
/// tightening decision is based on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableEntry {
    /// The representative signature for this (proto-)phase.
    pub signature: Signature,
    /// The real phase ID, once promoted; `None` while still in transition.
    pub phase_id: Option<PhaseId>,
    /// Saturating count of intervals classified into this entry.
    pub min_counter: u8,
    /// This entry's similarity threshold (normalized distance bound).
    pub threshold: f64,
    /// Running mean CPI of intervals classified here since the last clear.
    pub cpi_mean: f64,
    /// Number of CPI samples in `cpi_mean`.
    pub cpi_samples: u64,
    stamp: u64,
}

impl TableEntry {
    /// Folds a CPI observation into the running mean.
    pub fn record_cpi(&mut self, cpi: f64) {
        self.cpi_samples += 1;
        self.cpi_mean += (cpi - self.cpi_mean) / self.cpi_samples as f64;
    }

    /// Clears the CPI statistics (used after a threshold tightening, and by
    /// callers reacting to a hardware reconfiguration that changes CPI).
    pub fn clear_cpi(&mut self) {
        self.cpi_mean = 0.0;
        self.cpi_samples = 0;
    }
}

/// Result of searching the table for the current interval's signature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatchOutcome {
    /// A past signature within the similarity threshold was found; `index`
    /// is the best-matching entry and `distance` its normalized distance.
    Matched {
        /// Index of the best-matching entry.
        index: usize,
        /// Normalized distance to that entry.
        distance: f64,
    },
    /// No stored signature was within threshold.
    NoMatch,
}

/// The past-signature table: bounded (or unbounded) storage of previously
/// seen signatures with LRU replacement.
///
/// Serializable so a process's phase-tracking state can be suspended and
/// resumed across context switches — the 10M-instruction granularity the
/// paper targets is explicitly "at the level of context switching".
///
/// # Example
///
/// ```
/// use tpcp_core::{AccumulatorTable, MatchOutcome, Signature, SignatureTable};
/// use tpcp_trace::BranchEvent;
///
/// let mut table = SignatureTable::new(Some(32), 0.25);
/// let mut acc = AccumulatorTable::new(16);
/// acc.observe(BranchEvent::new(0x1000, 5_000));
/// let sig = Signature::from_accumulator(&acc, 6);
///
/// assert_eq!(table.find_best_match(&sig), MatchOutcome::NoMatch);
/// table.insert(sig.clone());
/// assert!(matches!(table.find_best_match(&sig), MatchOutcome::Matched { .. }));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SignatureTable {
    entries: Vec<TableEntry>,
    /// Column-major mirror of every entry's dimension vector, maintained
    /// incrementally by `insert`/`touch`/eviction and consumed by the
    /// SWAR block scan. See `crate::columns` for layout and the
    /// poisoning fallback for mixed-dimensionality tables.
    #[cfg(feature = "simd")]
    columns: ColumnStore,
    /// Route searches through the scalar per-entry scan even when the
    /// `simd` feature is compiled in (benchmark and equivalence knob).
    scalar_scan: bool,
    capacity: Option<usize>,
    base_threshold: f64,
    clock: u64,
    evictions: u64,
}

impl SignatureTable {
    /// Creates a table holding at most `capacity` signatures (`None` for
    /// the unbounded table used as the infinite-entry baseline), matching
    /// with the given base similarity threshold.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `Some(0)` or the threshold is not in
    /// `(0, 1]`.
    pub fn new(capacity: Option<usize>, base_threshold: f64) -> Self {
        if let Some(c) = capacity {
            assert!(c > 0, "table capacity must be positive");
        }
        assert!(
            base_threshold > 0.0 && base_threshold <= 1.0,
            "similarity threshold must be in (0, 1]"
        );
        Self {
            entries: Vec::new(),
            #[cfg(feature = "simd")]
            columns: ColumnStore::default(),
            scalar_scan: false,
            capacity,
            base_threshold,
            clock: 0,
            evictions: 0,
        }
    }

    /// Forces the scalar per-entry search even when the `simd` feature is
    /// compiled in. Both search paths return identical outcomes (same
    /// matches, same distances, same tie-breaks); this knob exists so
    /// benchmarks and equivalence tests can exercise both in one binary.
    /// A no-op without the feature, where scalar is the only path.
    pub fn set_scalar_scan(&mut self, scalar: bool) {
        self.scalar_scan = scalar;
    }

    /// Whether searches will take the SWAR column scan (`simd` feature
    /// compiled in, not overridden by
    /// [`set_scalar_scan`](Self::set_scalar_scan), and the column mirror
    /// is live — i.e. the table is not mixed-dimensionality).
    pub fn uses_simd_scan(&self) -> bool {
        #[cfg(feature = "simd")]
        {
            !self.scalar_scan
                && (self.entries.is_empty()
                    || self
                        .columns
                        .scannable(self.entries[0].signature.dims().len(), self.entries.len()))
        }
        #[cfg(not(feature = "simd"))]
        false
    }

    /// The base similarity threshold new entries start with.
    pub fn base_threshold(&self) -> f64 {
        self.base_threshold
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Shared access to an entry.
    pub fn entry(&self, index: usize) -> &TableEntry {
        &self.entries[index]
    }

    /// Mutable access to an entry (the classifier updates min counters,
    /// thresholds, and CPI statistics through this).
    ///
    /// Do not replace the entry's `signature` through this handle — use
    /// [`touch`](Self::touch), which also updates the column mirror the
    /// `simd` search scans. A signature swapped in here would desync the
    /// mirror (caught by a debug assertion on the next search).
    pub fn entry_mut(&mut self, index: usize) -> &mut TableEntry {
        &mut self.entries[index]
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = &TableEntry> {
        self.entries.iter()
    }

    /// Finds the entry most similar to `sig` among those within their own
    /// similarity threshold.
    ///
    /// The paper classifies into the *most similar* matching signature
    /// (best match), not the first match — Section 4.1, step 3.
    pub fn find_best_match(&self, sig: &Signature) -> MatchOutcome {
        #[cfg(feature = "simd")]
        if self.take_column_scan(sig) {
            return self.find_best_match_columns(sig);
        }
        self.find_best_match_scalar(sig)
    }

    /// Finds the *first* entry within threshold, in table order — the prior
    /// work's policy, kept for the ablation benchmark.
    pub fn find_first_match(&self, sig: &Signature) -> MatchOutcome {
        #[cfg(feature = "simd")]
        if self.take_column_scan(sig) {
            return self.find_first_match_columns(sig);
        }
        self.find_first_match_scalar(sig)
    }

    /// The scalar reference search behind
    /// [`find_best_match`](Self::find_best_match): a per-entry
    /// early-exiting [`Signature::within_distance`] scan. Always compiled;
    /// benchmarks and equivalence tests call it directly to compare
    /// against the column scan in one binary.
    pub fn find_best_match_scalar(&self, sig: &Signature) -> MatchOutcome {
        let mut best: Option<(usize, f64)> = None;
        for (i, entry) in self.entries.iter().enumerate() {
            // The per-entry threshold bounds the search, so the thresholded
            // early-exit scan replaces the full distance computation; the
            // running best is a further cutoff for entries that pass.
            if let Some(d) = sig.within_distance(&entry.signature, entry.threshold) {
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            }
        }
        match best {
            Some((index, distance)) => MatchOutcome::Matched { index, distance },
            None => MatchOutcome::NoMatch,
        }
    }

    /// The scalar reference search behind
    /// [`find_first_match`](Self::find_first_match).
    pub fn find_first_match_scalar(&self, sig: &Signature) -> MatchOutcome {
        for (i, entry) in self.entries.iter().enumerate() {
            if let Some(d) = sig.within_distance(&entry.signature, entry.threshold) {
                return MatchOutcome::Matched {
                    index: i,
                    distance: d,
                };
            }
        }
        MatchOutcome::NoMatch
    }

    /// Whether this probe should go through the column scan: the knob says
    /// so and the mirror can answer for this probe's dimensionality. A
    /// mixed-dimensionality table poisons the mirror, falls through to the
    /// scalar path, and panics there exactly as it did before the mirror
    /// existed.
    #[cfg(feature = "simd")]
    fn take_column_scan(&self, sig: &Signature) -> bool {
        !self.scalar_scan && self.columns.scannable(sig.dims().len(), self.entries.len())
    }

    /// Best-match search over the column mirror: exact Manhattan totals for
    /// [`BLOCK`] entries at a time from contiguous per-dimension columns,
    /// then the same accept predicate ([`signature::accept_entry`]) and the
    /// same strict `d < best` improvement rule as the scalar scan — so the
    /// winning index, distance, and tie-breaks (earliest entry wins equal
    /// distances) are bit-identical.
    #[cfg(feature = "simd")]
    fn find_best_match_columns(&self, sig: &Signature) -> MatchOutcome {
        let mut best: Option<(usize, f64)> = None;
        self.scan_columns(sig, |i, d| {
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
            true
        });
        match best {
            Some((index, distance)) => MatchOutcome::Matched { index, distance },
            None => MatchOutcome::NoMatch,
        }
    }

    /// First-match search over the column mirror. The block totals cover 16
    /// entries at a time, but accepts are consumed in entry order and the
    /// scan stops at the first, so the outcome matches the scalar
    /// table-order policy exactly.
    #[cfg(feature = "simd")]
    fn find_first_match_columns(&self, sig: &Signature) -> MatchOutcome {
        let mut found = MatchOutcome::NoMatch;
        self.scan_columns(sig, |i, d| {
            found = MatchOutcome::Matched {
                index: i,
                distance: d,
            };
            false
        });
        found
    }

    /// Streams the column mirror block by block, invoking `on_accept` for
    /// each entry (in table order) whose normalized distance passes its own
    /// threshold. `on_accept` returns whether to continue scanning.
    #[cfg(feature = "simd")]
    fn scan_columns(&self, sig: &Signature, mut on_accept: impl FnMut(usize, f64) -> bool) {
        let probe = sig.dims();
        let n = self.entries.len();
        let mut totals = [0u32; BLOCK];
        for base in (0..n).step_by(BLOCK) {
            self.columns.block_totals(probe, base, &mut totals);
            for (j, &block_total) in totals.iter().enumerate().take(n - base) {
                let i = base + j;
                let entry = &self.entries[i];
                let total = u64::from(block_total);
                debug_assert_eq!(
                    total,
                    sig.manhattan_distance(&entry.signature),
                    "column mirror out of sync at entry {i}"
                );
                let denom = sig.weight() + entry.signature.weight();
                if let Some(d) = crate::signature::accept_entry(total, denom, entry.threshold) {
                    if !on_accept(i, d) {
                        return;
                    }
                }
            }
        }
    }

    /// Marks an entry as just-used (moves it to MRU position in LRU order)
    /// and replaces its stored signature with the current one, as the
    /// architecture does on every match. Returns the displaced signature
    /// so callers can recycle its dimension buffer
    /// ([`Signature::into_dims`]).
    pub fn touch(&mut self, index: usize, current: Signature) -> Signature {
        self.clock += 1;
        #[cfg(feature = "simd")]
        self.columns.replace(index, current.dims());
        let entry = &mut self.entries[index];
        let displaced = std::mem::replace(&mut entry.signature, current);
        entry.stamp = self.clock;
        displaced
    }

    /// Inserts a new signature, evicting the LRU entry if at capacity.
    /// Returns the new entry's index.
    ///
    /// The new entry starts with Min Counter 1 (this interval is its first
    /// appearance), no phase ID, and the base similarity threshold.
    pub fn insert(&mut self, sig: Signature) -> usize {
        self.clock += 1;
        if let Some(cap) = self.capacity {
            if self.entries.len() >= cap {
                let lru = self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(i, _)| i)
                    .expect("capacity > 0 implies non-empty at cap");
                self.entries.swap_remove(lru);
                #[cfg(feature = "simd")]
                self.columns.swap_remove(lru);
                self.evictions += 1;
            }
        }
        #[cfg(feature = "simd")]
        self.columns.push(sig.dims());
        self.entries.push(TableEntry {
            signature: sig,
            phase_id: None,
            min_counter: 1,
            threshold: self.base_threshold,
            cpi_mean: 0.0,
            cpi_samples: 0,
            stamp: self.clock,
        });
        self.entries.len() - 1
    }

    /// Appends the full table state — entries with their private LRU
    /// stamps included — to a snapshot.
    pub(crate) fn snap_write(&self, out: &mut Vec<u8>) {
        out.push(u8::from(self.scalar_scan));
        match self.capacity {
            Some(c) => {
                out.push(1);
                snapshot::put_varint(out, c as u64);
            }
            None => out.push(0),
        }
        snapshot::put_f64(out, self.base_threshold);
        snapshot::put_varint(out, self.clock);
        snapshot::put_varint(out, self.evictions);
        snapshot::put_varint(out, self.entries.len() as u64);
        for entry in &self.entries {
            entry.signature.snap_write(out);
            match entry.phase_id {
                Some(id) => {
                    out.push(1);
                    snapshot::put_varint(out, u64::from(id.value()));
                }
                None => out.push(0),
            }
            out.push(entry.min_counter);
            snapshot::put_f64(out, entry.threshold);
            snapshot::put_f64(out, entry.cpi_mean);
            snapshot::put_varint(out, entry.cpi_samples);
            snapshot::put_varint(out, entry.stamp);
        }
    }

    /// Restores a table from a snapshot, re-checking the constructor's
    /// invariants and rebuilding the simd column mirror entry by entry (in
    /// table order, so the mirror matches an incrementally built one).
    pub(crate) fn snap_read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let scalar_scan = r.u8()? != 0;
        let capacity = match r.u8()? {
            0 => None,
            _ => Some(r.varint()? as usize),
        };
        if capacity == Some(0) {
            return Err(SnapshotError::Malformed("table capacity must be positive"));
        }
        let base_threshold = r.f64()?;
        let threshold_ok = base_threshold > 0.0 && base_threshold <= 1.0;
        if !threshold_ok {
            return Err(SnapshotError::Malformed(
                "similarity threshold must be in (0, 1]",
            ));
        }
        let clock = r.varint()?;
        let evictions = r.varint()?;
        // Each entry costs at least a signature header (3 varints) plus
        // the fixed fields.
        let n = r.bounded_count(3 + 1 + 1 + 8 + 8 + 1 + 1)?;
        if let Some(cap) = capacity {
            if n > cap {
                return Err(SnapshotError::Malformed("more entries than capacity"));
            }
        }
        let mut table = Self {
            entries: Vec::with_capacity(n),
            #[cfg(feature = "simd")]
            columns: ColumnStore::default(),
            scalar_scan,
            capacity,
            base_threshold,
            clock,
            evictions,
        };
        for _ in 0..n {
            let signature = Signature::snap_read(r)?;
            let phase_id = match r.u8()? {
                0 => None,
                _ => Some(PhaseId::new(u32::try_from(r.varint()?).map_err(|_| {
                    SnapshotError::Malformed("phase ID exceeds 32 bits")
                })?)),
            };
            let entry = TableEntry {
                signature,
                phase_id,
                min_counter: r.u8()?,
                threshold: r.f64()?,
                cpi_mean: r.f64()?,
                cpi_samples: r.varint()?,
                stamp: r.varint()?,
            };
            #[cfg(feature = "simd")]
            table.columns.push(entry.signature.dims());
            table.entries.push(entry);
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulator::AccumulatorTable;
    use tpcp_trace::BranchEvent;

    fn sig_of(pairs: &[(u64, u32)]) -> Signature {
        let mut acc = AccumulatorTable::new(16);
        for &(pc, insns) in pairs {
            acc.observe(BranchEvent::new(pc, insns));
        }
        Signature::from_accumulator(&acc, 6)
    }

    #[test]
    fn empty_table_never_matches() {
        let table = SignatureTable::new(Some(4), 0.25);
        assert_eq!(
            table.find_best_match(&sig_of(&[(1, 100)])),
            MatchOutcome::NoMatch
        );
    }

    #[test]
    fn exact_signature_matches_at_zero_distance() {
        let mut table = SignatureTable::new(Some(4), 0.25);
        let sig = sig_of(&[(1, 1000), (2, 500)]);
        table.insert(sig.clone());
        match table.find_best_match(&sig) {
            MatchOutcome::Matched { distance, .. } => assert_eq!(distance, 0.0),
            MatchOutcome::NoMatch => panic!("should match"),
        }
    }

    #[test]
    fn dissimilar_signature_does_not_match() {
        let mut table = SignatureTable::new(Some(4), 0.25);
        table.insert(sig_of(&[(0x1000, 1000)]));
        assert_eq!(
            table.find_best_match(&sig_of(&[(0x9999, 1000)])),
            MatchOutcome::NoMatch
        );
    }

    #[test]
    fn best_match_prefers_most_similar() {
        let mut table = SignatureTable::new(Some(4), 1.0); // everything matches
        let far = sig_of(&[(0x9999, 1000)]);
        let near = sig_of(&[(0x1000, 990), (0x2000, 10)]);
        table.insert(far);
        table.insert(near);
        let probe = sig_of(&[(0x1000, 1000)]);
        match table.find_best_match(&probe) {
            MatchOutcome::Matched { index, .. } => assert_eq!(index, 1, "nearest entry wins"),
            MatchOutcome::NoMatch => panic!("threshold 1.0 must match"),
        }
    }

    #[test]
    fn first_match_takes_table_order() {
        let mut table = SignatureTable::new(Some(4), 1.0);
        // Entry 0 half-overlaps the probe (distance ~0.5); entry 1 is exact.
        table.insert(sig_of(&[(0x1000, 500), (0x9999, 500)]));
        table.insert(sig_of(&[(0x1000, 1000)]));
        let probe = sig_of(&[(0x1000, 1000)]);
        match table.find_first_match(&probe) {
            MatchOutcome::Matched { index, .. } => assert_eq!(index, 0, "first within threshold"),
            MatchOutcome::NoMatch => panic!("threshold 1.0 must match"),
        }
        match table.find_best_match(&probe) {
            MatchOutcome::Matched { index, .. } => assert_eq!(index, 1, "best match differs"),
            MatchOutcome::NoMatch => panic!("threshold 1.0 must match"),
        }
    }

    #[test]
    fn lru_eviction_removes_least_recent() {
        let mut table = SignatureTable::new(Some(2), 0.25);
        let a = sig_of(&[(0x1000, 1000)]);
        let b = sig_of(&[(0x2000, 1000)]);
        let c = sig_of(&[(0x3000, 1000)]);
        table.insert(a.clone());
        let b_idx = table.insert(b.clone());
        table.touch(b_idx, b.clone()); // b is MRU, a is LRU
        table.insert(c); // evicts a
        assert_eq!(table.len(), 2);
        assert_eq!(table.evictions(), 1);
        assert_eq!(table.find_best_match(&a), MatchOutcome::NoMatch);
        assert!(matches!(
            table.find_best_match(&b),
            MatchOutcome::Matched { .. }
        ));
    }

    #[test]
    fn unbounded_table_never_evicts() {
        let mut table = SignatureTable::new(None, 0.25);
        for i in 0..1000u64 {
            table.insert(sig_of(&[(i * 0x40, 1000)]));
        }
        assert_eq!(table.len(), 1000);
        assert_eq!(table.evictions(), 0);
    }

    #[test]
    fn touch_replaces_signature() {
        let mut table = SignatureTable::new(Some(4), 0.25);
        let old = sig_of(&[(0x1000, 1000)]);
        let new = sig_of(&[(0x1000, 900), (0x2000, 100)]);
        let idx = table.insert(old);
        table.touch(idx, new.clone());
        assert_eq!(table.entry(idx).signature, new);
    }

    #[test]
    fn running_cpi_mean() {
        let mut e = TableEntry {
            signature: sig_of(&[(1, 1)]),
            phase_id: None,
            min_counter: 1,
            threshold: 0.25,
            cpi_mean: 0.0,
            cpi_samples: 0,
            stamp: 0,
        };
        e.record_cpi(1.0);
        e.record_cpi(2.0);
        e.record_cpi(3.0);
        assert!((e.cpi_mean - 2.0).abs() < 1e-12);
        e.clear_cpi();
        assert_eq!(e.cpi_samples, 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        SignatureTable::new(Some(0), 0.25);
    }

    #[test]
    #[should_panic(expected = "similarity threshold")]
    fn bad_threshold_rejected() {
        SignatureTable::new(Some(4), 0.0);
    }

    #[cfg(feature = "simd")]
    mod simd {
        use super::*;

        fn rng() -> impl FnMut() -> u64 {
            let mut state = 0xB504_F333_F9DE_6484u64;
            move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            }
        }

        /// Searches through both paths and asserts bit-identical outcomes
        /// (index, distance, and tie-breaks all ride the same comparisons).
        fn assert_scan_agreement(table: &SignatureTable, probe: &Signature) {
            assert!(
                table.uses_simd_scan(),
                "fixture must exercise the column scan"
            );
            assert_eq!(
                table.find_best_match(probe),
                table.find_best_match_scalar(probe),
                "best match diverged"
            );
            assert_eq!(
                table.find_first_match(probe),
                table.find_first_match_scalar(probe),
                "first match diverged"
            );
        }

        #[test]
        fn simd_column_scan_matches_scalar_through_lru_churn() {
            let mut next = rng();
            // Small capacity: evictions and touches constantly reshuffle the
            // mirror. Threshold 1.0 keeps many entries in play per search.
            let mut table = SignatureTable::new(Some(24), 1.0);
            let mut probes: Vec<Signature> = Vec::new();
            for step in 0..300 {
                let sig = sig_of(&[
                    (next() % 0x40_000, (next() % 40_000) as u32),
                    (next() % 0x40_000, (next() % 40_000) as u32),
                    (next() % 0x40_000, (next() % 40_000) as u32),
                ]);
                assert_scan_agreement(&table, &sig);
                // With threshold 1.0 nearly every probe matches, so force a
                // periodic insert to drive the table to capacity and churn
                // the LRU; otherwise mimic the classifier (touch on match,
                // insert on miss).
                match table.find_best_match(&sig) {
                    MatchOutcome::Matched { index, .. } if step % 3 != 0 => {
                        table.touch(index, sig.clone());
                    }
                    _ => {
                        table.insert(sig.clone());
                    }
                }
                if step % 7 == 0 {
                    probes.push(sig);
                }
                for probe in &probes {
                    assert_scan_agreement(&table, probe);
                }
            }
            assert!(table.evictions() > 0, "fixture must churn the LRU");
        }

        #[test]
        fn simd_scalar_scan_knob_forces_fallback() {
            let mut table = SignatureTable::new(Some(4), 0.25);
            let sig = sig_of(&[(0x1000, 1000)]);
            table.insert(sig.clone());
            assert!(table.uses_simd_scan());
            table.set_scalar_scan(true);
            assert!(!table.uses_simd_scan());
            assert!(matches!(
                table.find_best_match(&sig),
                MatchOutcome::Matched { distance: d, .. } if d == 0.0
            ));
            table.set_scalar_scan(false);
            assert!(table.uses_simd_scan());
        }

        #[test]
        fn simd_tied_distances_keep_earliest_entry() {
            // Two entries equidistant from the probe: both paths must pick
            // the earliest index (strict `<` improvement).
            let mut table = SignatureTable::new(Some(4), 1.0);
            table.insert(sig_of(&[(0x1000, 600), (0x5000, 400)]));
            table.insert(sig_of(&[(0x1000, 600), (0x5000, 400)]));
            let probe = sig_of(&[(0x1000, 1000)]);
            let scalar = table.find_best_match_scalar(&probe);
            let simd = table.find_best_match(&probe);
            assert_eq!(scalar, simd);
            assert!(matches!(simd, MatchOutcome::Matched { index: 0, .. }));
        }

        #[test]
        fn simd_zero_weight_probe_matches_like_scalar() {
            let mut table = SignatureTable::new(Some(4), 0.25);
            table.insert(sig_of(&[])); // all-zero signature
            let probe = sig_of(&[]);
            assert_scan_agreement(&table, &probe);
            assert!(matches!(
                table.find_best_match(&probe),
                MatchOutcome::Matched { distance: d, .. } if d == 0.0
            ));
        }
    }
}
