//! The past-signature table (Figure 1) with LRU replacement and best-match
//! similarity search.

use serde::{Deserialize, Serialize};

use crate::phase_id::PhaseId;
use crate::signature::Signature;

/// One signature table entry.
///
/// Alongside the stored signature, each entry carries the paper's
/// extensions: the Min Counter that gates promotion out of the transition
/// phase (Section 4.4), a per-entry similarity threshold that the adaptive
/// classifier can tighten (Section 4.6), and the running CPI statistics the
/// tightening decision is based on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableEntry {
    /// The representative signature for this (proto-)phase.
    pub signature: Signature,
    /// The real phase ID, once promoted; `None` while still in transition.
    pub phase_id: Option<PhaseId>,
    /// Saturating count of intervals classified into this entry.
    pub min_counter: u8,
    /// This entry's similarity threshold (normalized distance bound).
    pub threshold: f64,
    /// Running mean CPI of intervals classified here since the last clear.
    pub cpi_mean: f64,
    /// Number of CPI samples in `cpi_mean`.
    pub cpi_samples: u64,
    stamp: u64,
}

impl TableEntry {
    /// Folds a CPI observation into the running mean.
    pub fn record_cpi(&mut self, cpi: f64) {
        self.cpi_samples += 1;
        self.cpi_mean += (cpi - self.cpi_mean) / self.cpi_samples as f64;
    }

    /// Clears the CPI statistics (used after a threshold tightening, and by
    /// callers reacting to a hardware reconfiguration that changes CPI).
    pub fn clear_cpi(&mut self) {
        self.cpi_mean = 0.0;
        self.cpi_samples = 0;
    }
}

/// Result of searching the table for the current interval's signature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatchOutcome {
    /// A past signature within the similarity threshold was found; `index`
    /// is the best-matching entry and `distance` its normalized distance.
    Matched {
        /// Index of the best-matching entry.
        index: usize,
        /// Normalized distance to that entry.
        distance: f64,
    },
    /// No stored signature was within threshold.
    NoMatch,
}

/// The past-signature table: bounded (or unbounded) storage of previously
/// seen signatures with LRU replacement.
///
/// Serializable so a process's phase-tracking state can be suspended and
/// resumed across context switches — the 10M-instruction granularity the
/// paper targets is explicitly "at the level of context switching".
///
/// # Example
///
/// ```
/// use tpcp_core::{AccumulatorTable, MatchOutcome, Signature, SignatureTable};
/// use tpcp_trace::BranchEvent;
///
/// let mut table = SignatureTable::new(Some(32), 0.25);
/// let mut acc = AccumulatorTable::new(16);
/// acc.observe(BranchEvent::new(0x1000, 5_000));
/// let sig = Signature::from_accumulator(&acc, 6);
///
/// assert_eq!(table.find_best_match(&sig), MatchOutcome::NoMatch);
/// table.insert(sig.clone());
/// assert!(matches!(table.find_best_match(&sig), MatchOutcome::Matched { .. }));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SignatureTable {
    entries: Vec<TableEntry>,
    capacity: Option<usize>,
    base_threshold: f64,
    clock: u64,
    evictions: u64,
}

impl SignatureTable {
    /// Creates a table holding at most `capacity` signatures (`None` for
    /// the unbounded table used as the infinite-entry baseline), matching
    /// with the given base similarity threshold.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `Some(0)` or the threshold is not in
    /// `(0, 1]`.
    pub fn new(capacity: Option<usize>, base_threshold: f64) -> Self {
        if let Some(c) = capacity {
            assert!(c > 0, "table capacity must be positive");
        }
        assert!(
            base_threshold > 0.0 && base_threshold <= 1.0,
            "similarity threshold must be in (0, 1]"
        );
        Self {
            entries: Vec::new(),
            capacity,
            base_threshold,
            clock: 0,
            evictions: 0,
        }
    }

    /// The base similarity threshold new entries start with.
    pub fn base_threshold(&self) -> f64 {
        self.base_threshold
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Shared access to an entry.
    pub fn entry(&self, index: usize) -> &TableEntry {
        &self.entries[index]
    }

    /// Mutable access to an entry (the classifier updates min counters,
    /// thresholds, and CPI statistics through this).
    pub fn entry_mut(&mut self, index: usize) -> &mut TableEntry {
        &mut self.entries[index]
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = &TableEntry> {
        self.entries.iter()
    }

    /// Finds the entry most similar to `sig` among those within their own
    /// similarity threshold.
    ///
    /// The paper classifies into the *most similar* matching signature
    /// (best match), not the first match — Section 4.1, step 3.
    pub fn find_best_match(&self, sig: &Signature) -> MatchOutcome {
        let mut best: Option<(usize, f64)> = None;
        for (i, entry) in self.entries.iter().enumerate() {
            // The per-entry threshold bounds the search, so the thresholded
            // early-exit scan replaces the full distance computation; the
            // running best is a further cutoff for entries that pass.
            if let Some(d) = sig.within_distance(&entry.signature, entry.threshold) {
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            }
        }
        match best {
            Some((index, distance)) => MatchOutcome::Matched { index, distance },
            None => MatchOutcome::NoMatch,
        }
    }

    /// Finds the *first* entry within threshold, in table order — the prior
    /// work's policy, kept for the ablation benchmark.
    pub fn find_first_match(&self, sig: &Signature) -> MatchOutcome {
        for (i, entry) in self.entries.iter().enumerate() {
            if let Some(d) = sig.within_distance(&entry.signature, entry.threshold) {
                return MatchOutcome::Matched {
                    index: i,
                    distance: d,
                };
            }
        }
        MatchOutcome::NoMatch
    }

    /// Marks an entry as just-used (moves it to MRU position in LRU order)
    /// and replaces its stored signature with the current one, as the
    /// architecture does on every match. Returns the displaced signature
    /// so callers can recycle its dimension buffer
    /// ([`Signature::into_dims`]).
    pub fn touch(&mut self, index: usize, current: Signature) -> Signature {
        self.clock += 1;
        let entry = &mut self.entries[index];
        let displaced = std::mem::replace(&mut entry.signature, current);
        entry.stamp = self.clock;
        displaced
    }

    /// Inserts a new signature, evicting the LRU entry if at capacity.
    /// Returns the new entry's index.
    ///
    /// The new entry starts with Min Counter 1 (this interval is its first
    /// appearance), no phase ID, and the base similarity threshold.
    pub fn insert(&mut self, sig: Signature) -> usize {
        self.clock += 1;
        if let Some(cap) = self.capacity {
            if self.entries.len() >= cap {
                let lru = self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(i, _)| i)
                    .expect("capacity > 0 implies non-empty at cap");
                self.entries.swap_remove(lru);
                self.evictions += 1;
            }
        }
        self.entries.push(TableEntry {
            signature: sig,
            phase_id: None,
            min_counter: 1,
            threshold: self.base_threshold,
            cpi_mean: 0.0,
            cpi_samples: 0,
            stamp: self.clock,
        });
        self.entries.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulator::AccumulatorTable;
    use tpcp_trace::BranchEvent;

    fn sig_of(pairs: &[(u64, u32)]) -> Signature {
        let mut acc = AccumulatorTable::new(16);
        for &(pc, insns) in pairs {
            acc.observe(BranchEvent::new(pc, insns));
        }
        Signature::from_accumulator(&acc, 6)
    }

    #[test]
    fn empty_table_never_matches() {
        let table = SignatureTable::new(Some(4), 0.25);
        assert_eq!(
            table.find_best_match(&sig_of(&[(1, 100)])),
            MatchOutcome::NoMatch
        );
    }

    #[test]
    fn exact_signature_matches_at_zero_distance() {
        let mut table = SignatureTable::new(Some(4), 0.25);
        let sig = sig_of(&[(1, 1000), (2, 500)]);
        table.insert(sig.clone());
        match table.find_best_match(&sig) {
            MatchOutcome::Matched { distance, .. } => assert_eq!(distance, 0.0),
            MatchOutcome::NoMatch => panic!("should match"),
        }
    }

    #[test]
    fn dissimilar_signature_does_not_match() {
        let mut table = SignatureTable::new(Some(4), 0.25);
        table.insert(sig_of(&[(0x1000, 1000)]));
        assert_eq!(
            table.find_best_match(&sig_of(&[(0x9999, 1000)])),
            MatchOutcome::NoMatch
        );
    }

    #[test]
    fn best_match_prefers_most_similar() {
        let mut table = SignatureTable::new(Some(4), 1.0); // everything matches
        let far = sig_of(&[(0x9999, 1000)]);
        let near = sig_of(&[(0x1000, 990), (0x2000, 10)]);
        table.insert(far);
        table.insert(near);
        let probe = sig_of(&[(0x1000, 1000)]);
        match table.find_best_match(&probe) {
            MatchOutcome::Matched { index, .. } => assert_eq!(index, 1, "nearest entry wins"),
            MatchOutcome::NoMatch => panic!("threshold 1.0 must match"),
        }
    }

    #[test]
    fn first_match_takes_table_order() {
        let mut table = SignatureTable::new(Some(4), 1.0);
        // Entry 0 half-overlaps the probe (distance ~0.5); entry 1 is exact.
        table.insert(sig_of(&[(0x1000, 500), (0x9999, 500)]));
        table.insert(sig_of(&[(0x1000, 1000)]));
        let probe = sig_of(&[(0x1000, 1000)]);
        match table.find_first_match(&probe) {
            MatchOutcome::Matched { index, .. } => assert_eq!(index, 0, "first within threshold"),
            MatchOutcome::NoMatch => panic!("threshold 1.0 must match"),
        }
        match table.find_best_match(&probe) {
            MatchOutcome::Matched { index, .. } => assert_eq!(index, 1, "best match differs"),
            MatchOutcome::NoMatch => panic!("threshold 1.0 must match"),
        }
    }

    #[test]
    fn lru_eviction_removes_least_recent() {
        let mut table = SignatureTable::new(Some(2), 0.25);
        let a = sig_of(&[(0x1000, 1000)]);
        let b = sig_of(&[(0x2000, 1000)]);
        let c = sig_of(&[(0x3000, 1000)]);
        table.insert(a.clone());
        let b_idx = table.insert(b.clone());
        table.touch(b_idx, b.clone()); // b is MRU, a is LRU
        table.insert(c); // evicts a
        assert_eq!(table.len(), 2);
        assert_eq!(table.evictions(), 1);
        assert_eq!(table.find_best_match(&a), MatchOutcome::NoMatch);
        assert!(matches!(
            table.find_best_match(&b),
            MatchOutcome::Matched { .. }
        ));
    }

    #[test]
    fn unbounded_table_never_evicts() {
        let mut table = SignatureTable::new(None, 0.25);
        for i in 0..1000u64 {
            table.insert(sig_of(&[(i * 0x40, 1000)]));
        }
        assert_eq!(table.len(), 1000);
        assert_eq!(table.evictions(), 0);
    }

    #[test]
    fn touch_replaces_signature() {
        let mut table = SignatureTable::new(Some(4), 0.25);
        let old = sig_of(&[(0x1000, 1000)]);
        let new = sig_of(&[(0x1000, 900), (0x2000, 100)]);
        let idx = table.insert(old);
        table.touch(idx, new.clone());
        assert_eq!(table.entry(idx).signature, new);
    }

    #[test]
    fn running_cpi_mean() {
        let mut e = TableEntry {
            signature: sig_of(&[(1, 1)]),
            phase_id: None,
            min_counter: 1,
            threshold: 0.25,
            cpi_mean: 0.0,
            cpi_samples: 0,
            stamp: 0,
        };
        e.record_cpi(1.0);
        e.record_cpi(2.0);
        e.record_cpi(3.0);
        assert!((e.cpi_mean - 2.0).abs() < 1e-12);
        e.clear_cpi();
        assert_eq!(e.cpi_samples, 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        SignatureTable::new(Some(0), 0.25);
    }

    #[test]
    #[should_panic(expected = "similarity threshold")]
    fn bad_threshold_rejected() {
        SignatureTable::new(Some(4), 0.0);
    }
}
