//! Struct-of-arrays mirror of the signature table's dimension data.
//!
//! The AoS [`SignatureTable`](crate::SignatureTable) stores each entry's
//! [`Signature`](crate::Signature) inline, which is what the LRU logic,
//! serialization, and the public entry API want — but it scatters the
//! dimension vectors across the heap, so the per-interval table scan
//! (probe vs. *every* entry) chases a pointer per entry. This mirror keeps
//! the same dimension data column-major: one contiguous `u16` column per
//! dimension, entries side by side, padded to [`BLOCK`]-entry multiples.
//! The scan then streams whole columns, computing Manhattan totals for a
//! block of entries at a time with the SWAR kernels in
//! [`simd`](crate::simd).
//!
//! The mirror is maintained incrementally — `O(dims)` per insert, touch,
//! or eviction, against an `O(entries × dims)` scan per interval — and is
//! only compiled with the `simd` feature. If entries of differing
//! dimensionality are ever mixed into one table (the scalar search panics
//! on such tables the moment they are searched), the mirror poisons
//! itself and every search falls back to the scalar path, preserving the
//! pre-SoA behavior exactly.
//!
//! The block kernel itself is deliberately plain code: a fixed-width loop
//! over one contiguous 16-lane column segment per dimension, which LLVM
//! auto-vectorizes into packed `u16` abs-diff + widening adds. Explicit
//! lane tricks (SWAR or intrinsics) measured *slower* here — the layout,
//! not hand-packing, is what the compiler needed. Hand-written SWAR is
//! reserved for the varint decoder in `tpcp-trace`, where the byte stream
//! has no fixed lane structure for the auto-vectorizer to find.

/// Entries per scan block: one block's running totals (`[u32; BLOCK]`)
/// stay resident in two vector registers across the dimension loop.
pub(crate) const BLOCK: usize = 16;

/// Largest per-signature dimension count the 32-bit block accumulators
/// can total without overflow (`dims × 0xFFFF < 2^31`). Tables beyond
/// this fall back to the scalar scan.
pub(crate) const MAX_SCAN_DIMS: usize = 32_768;

/// Column-major storage of every entry's dimension vector.
#[derive(Debug, Clone, Default)]
pub(crate) struct ColumnStore {
    /// Dimensions per signature (fixed for the whole table).
    dims: usize,
    /// Entries of capacity per column; a multiple of [`BLOCK`], so a scan
    /// may always read one full block (padding lanes are ignored).
    stride: usize,
    /// Live entries.
    n: usize,
    /// `dims` columns of `stride` entries each, back to back.
    cols: Vec<u16>,
    /// Set when entries of differing dimensionality were mixed into the
    /// table; the mirror stops tracking and searches take the scalar path.
    poisoned: bool,
}

impl ColumnStore {
    /// Whether the columns can answer a scan for a probe of `probe_dims`
    /// dimensions over `entries` live entries.
    pub(crate) fn scannable(&self, probe_dims: usize, entries: usize) -> bool {
        !self.poisoned && self.n == entries && self.dims == probe_dims && self.dims <= MAX_SCAN_DIMS
    }

    /// Appends one entry's dimensions (the new last entry).
    pub(crate) fn push(&mut self, dims: &[u16]) {
        if self.poisoned {
            return;
        }
        if self.n == 0 {
            self.dims = dims.len();
        } else if dims.len() != self.dims {
            self.poison();
            return;
        }
        if self.n == self.stride {
            self.grow();
        }
        for (d, &v) in dims.iter().enumerate() {
            self.cols[d * self.stride + self.n] = v;
        }
        self.n += 1;
    }

    /// Mirrors `Vec::swap_remove(i)`: the last entry moves into slot `i`.
    pub(crate) fn swap_remove(&mut self, i: usize) {
        if self.poisoned {
            return;
        }
        debug_assert!(i < self.n);
        let last = self.n - 1;
        for d in 0..self.dims {
            let col = d * self.stride;
            self.cols[col + i] = self.cols[col + last];
        }
        self.n = last;
    }

    /// Replaces entry `i`'s dimensions in place (a table touch).
    pub(crate) fn replace(&mut self, i: usize, dims: &[u16]) {
        if self.poisoned {
            return;
        }
        debug_assert!(i < self.n);
        if dims.len() != self.dims {
            self.poison();
            return;
        }
        for (d, &v) in dims.iter().enumerate() {
            self.cols[d * self.stride + i] = v;
        }
    }

    fn poison(&mut self) {
        self.poisoned = true;
        self.cols = Vec::new();
        self.stride = 0;
        self.n = 0;
    }

    fn grow(&mut self) {
        let new_stride = (self.stride * 2).max(BLOCK);
        let mut cols = vec![0u16; self.dims * new_stride];
        for d in 0..self.dims {
            let src = d * self.stride;
            let dst = d * new_stride;
            cols[dst..dst + self.n].copy_from_slice(&self.cols[src..src + self.n]);
        }
        self.cols = cols;
        self.stride = new_stride;
    }

    /// Computes the exact Manhattan totals of `probe` against the block of
    /// entries starting at `base` (a multiple of [`BLOCK`]), writing one
    /// total per lane into `out`. Lanes at or past the live entry count
    /// hold garbage from the padding and must be ignored by the caller.
    ///
    /// Per dimension, one contiguous 16-lane column segment is consumed
    /// with a fixed-width lane loop — the shape LLVM turns into packed
    /// `u16` abs-diff and widening adds, with the 16 running totals held
    /// in vector registers across dimensions.
    pub(crate) fn block_totals(&self, probe: &[u16], base: usize, out: &mut [u32; BLOCK]) {
        debug_assert_eq!(probe.len(), self.dims);
        debug_assert_eq!(base % BLOCK, 0);
        debug_assert!(base + BLOCK <= self.stride || self.dims == 0);
        let mut acc = [0u32; BLOCK];
        for (d, &p) in probe.iter().enumerate() {
            let start = d * self.stride + base;
            let col: &[u16; BLOCK] = self.cols[start..start + BLOCK]
                .try_into()
                .expect("column segment is exactly one block");
            for (lane, &v) in acc.iter_mut().zip(col) {
                *lane += u32::from(v.abs_diff(p));
            }
        }
        *out = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manhattan(a: &[u16], b: &[u16]) -> u64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| u64::from(x.abs_diff(y)))
            .sum()
    }

    fn rng() -> impl FnMut() -> u64 {
        let mut state = 0x243F_6A88_85A3_08D3u64;
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        }
    }

    #[test]
    fn simd_block_totals_match_scalar_manhattan() {
        let mut next = rng();
        for dims in [1usize, 3, 16, 17, 64] {
            let mut store = ColumnStore::default();
            let mut rows: Vec<Vec<u16>> = Vec::new();
            for _ in 0..53 {
                let row: Vec<u16> = (0..dims).map(|_| next() as u16).collect();
                store.push(&row);
                rows.push(row);
            }
            assert!(store.scannable(dims, rows.len()));
            let probe: Vec<u16> = (0..dims).map(|_| next() as u16).collect();
            let mut out = [0u32; BLOCK];
            for base in (0..rows.len()).step_by(BLOCK) {
                store.block_totals(&probe, base, &mut out);
                for j in 0..BLOCK.min(rows.len() - base) {
                    assert_eq!(
                        u64::from(out[j]),
                        manhattan(&probe, &rows[base + j]),
                        "dims={dims} entry={}",
                        base + j
                    );
                }
            }
        }
    }

    #[test]
    fn simd_columns_track_swap_remove_and_replace() {
        let mut next = rng();
        let dims = 8usize;
        let mut store = ColumnStore::default();
        let mut rows: Vec<Vec<u16>> = Vec::new();
        let fresh = |next: &mut dyn FnMut() -> u64| -> Vec<u16> {
            (0..dims).map(|_| next() as u16).collect()
        };
        for _ in 0..40 {
            let row = fresh(&mut next);
            store.push(&row);
            rows.push(row);
        }
        // Interleave the three mutations the table performs, checking the
        // mirror stays exact after each.
        for step in 0..200 {
            match next() % 3 {
                0 if rows.len() > 1 => {
                    let i = (next() as usize) % rows.len();
                    store.swap_remove(i);
                    rows.swap_remove(i);
                }
                1 if !rows.is_empty() => {
                    let i = (next() as usize) % rows.len();
                    let row = fresh(&mut next);
                    store.replace(i, &row);
                    rows[i] = row;
                }
                _ => {
                    let row = fresh(&mut next);
                    store.push(&row);
                    rows.push(row);
                }
            }
            assert!(store.scannable(dims, rows.len()), "step {step}");
            let probe = fresh(&mut next);
            let mut out = [0u32; BLOCK];
            for base in (0..rows.len()).step_by(BLOCK) {
                store.block_totals(&probe, base, &mut out);
                for j in 0..BLOCK.min(rows.len() - base) {
                    assert_eq!(u64::from(out[j]), manhattan(&probe, &rows[base + j]));
                }
            }
        }
    }

    #[test]
    fn simd_mixed_dimensionality_poisons_the_mirror() {
        let mut store = ColumnStore::default();
        store.push(&[1, 2, 3]);
        store.push(&[4, 5]); // differing dims: mirror bows out
        assert!(!store.scannable(3, 2));
        assert!(!store.scannable(2, 2));
    }

    #[test]
    fn simd_zero_dimension_signatures_scan_to_zero_totals() {
        let mut store = ColumnStore::default();
        for _ in 0..5 {
            store.push(&[]);
        }
        assert!(store.scannable(0, 5));
        let mut out = [7u32; BLOCK];
        store.block_totals(&[], 0, &mut out);
        assert_eq!(out, [0u32; BLOCK]);
    }
}
