//! Online phase classification (the paper's Sections 4.1–4.6).
//!
//! This crate implements the dynamic phase classification architecture of
//! Sherwood et al. (ISCA'03) together with every improvement introduced by
//! *Lau, Schoenmackers, Calder, "Transition Phase Classification and
//! Prediction" (HPCA 2005)*:
//!
//! - an [`AccumulatorTable`] of saturating counters indexed by a hash of
//!   each committed branch PC, incremented by the dynamic basic block's
//!   instruction count (Section 4.1, steps 1–2);
//! - [`Signature`] formation with *dynamic bit selection* — the bits copied
//!   out of each 24-bit accumulator are chosen from the current average
//!   counter value, keeping two bits of headroom and saturating when a
//!   counter exceeds the representable range (Section 4.2);
//! - a [`SignatureTable`] with LRU replacement, Manhattan-distance
//!   similarity search, and *best-match* (not first-match) selection
//!   (Sections 4.1 step 3 and 4.3);
//! - the **transition phase**: a per-entry Min Counter classifies
//!   rarely-seen signatures into a single shared phase ID
//!   ([`PhaseId::TRANSITION`]) until they prove stable (Section 4.4);
//! - **adaptive per-phase similarity thresholds**, tightened when the CPI
//!   of intervals classified into a phase deviates from the phase's running
//!   average by more than a performance deviation threshold (Section 4.6).
//!
//! # Example
//!
//! ```
//! use tpcp_core::{ClassifierConfig, PhaseClassifier};
//! use tpcp_trace::BranchEvent;
//!
//! let mut classifier = PhaseClassifier::new(ClassifierConfig::hpca2005());
//!
//! // Phase A: loop over one set of branches. Classify 12 identical
//! // intervals; after the min-count threshold (8) the phase becomes stable.
//! let mut last = None;
//! for _ in 0..12 {
//!     for i in 0..100u64 {
//!         classifier.observe(BranchEvent::new(0x1000 + (i % 4) * 0x40, 25));
//!     }
//!     last = Some(classifier.end_interval(1.0));
//! }
//! let id = last.unwrap();
//! assert!(!id.is_transition(), "a recurring signature earns a real phase ID");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accumulator;
mod classifier;
#[cfg(feature = "simd")]
mod columns;
mod config;
mod cost;
mod extractor;
mod observer;
mod phase_id;
mod signature;
mod snapshot;
mod table;

pub use accumulator::AccumulatorTable;
pub use classifier::{Classification, PhaseClassifier};
pub use config::{AdaptiveConfig, BitSelectionMode, ClassifierConfig, ClassifierConfigBuilder};
pub use cost::HardwareCost;
pub use extractor::{
    AnyExtractor, BbvExtractor, BranchMixExtractor, ExtractorKind, FeatureExtractor,
    WorkingSetExtractor, REGION_BYTES,
};
pub use observer::PhaseObserver;
pub use phase_id::PhaseId;

// Re-exported so observer implementors downstream (predictors, metrics)
// can name the interval types without depending on `tpcp-trace` directly.
pub use signature::{BitSelection, Signature};
pub use snapshot::SnapshotError;
pub use table::{MatchOutcome, SignatureTable, TableEntry};
pub use tpcp_trace::{BranchEvent, IntervalSummary, MetricCounts};
