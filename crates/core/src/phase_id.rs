//! Phase identifiers.

use serde::{Deserialize, Serialize};

/// The identifier of a phase produced by the classifier.
///
/// ID 0 is reserved for the **transition phase** (Section 4.4): the shared
/// bucket for intervals whose signatures have not (yet) recurred often
/// enough to be considered stable behaviour. All stable phases receive IDs
/// starting from 1 in order of discovery.
///
/// # Example
///
/// ```
/// use tpcp_core::PhaseId;
///
/// assert!(PhaseId::TRANSITION.is_transition());
/// assert!(!PhaseId::new(3).is_transition());
/// assert_eq!(PhaseId::new(3).value(), 3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct PhaseId(u32);

impl PhaseId {
    /// The transition phase (phase ID zero).
    pub const TRANSITION: PhaseId = PhaseId(0);

    /// Wraps a raw phase identifier. `0` denotes the transition phase.
    pub const fn new(id: u32) -> Self {
        PhaseId(id)
    }

    /// The raw identifier value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Whether this is the transition phase.
    pub const fn is_transition(self) -> bool {
        self.0 == 0
    }
}

impl core::fmt::Display for PhaseId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_transition() {
            write!(f, "T")
        } else {
            write!(f, "P{}", self.0)
        }
    }
}

impl From<PhaseId> for u32 {
    fn from(id: PhaseId) -> u32 {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_is_zero() {
        assert_eq!(PhaseId::TRANSITION.value(), 0);
        assert_eq!(PhaseId::default(), PhaseId::TRANSITION);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PhaseId::TRANSITION.to_string(), "T");
        assert_eq!(PhaseId::new(7).to_string(), "P7");
    }

    #[test]
    fn ordering_follows_value() {
        assert!(PhaseId::TRANSITION < PhaseId::new(1));
        assert!(PhaseId::new(1) < PhaseId::new(2));
    }
}
