//! Pluggable feature extractors — the per-interval feature pipeline of
//! the classifier, abstracted behind one trait.
//!
//! The paper's architecture is hard-wired to BBV-style accumulation: hash
//! each committed branch PC, add the block's instruction count, project
//! the counters into a compressed signature at the interval boundary. The
//! phase-classification literature catalogs several competing features —
//! working sets, conditional-branch counts, memory-access signatures —
//! that share the same *shape*: observe each event cheaply, then produce
//! a fixed-width dimension vector when the interval ends. The
//! [`FeatureExtractor`] trait captures that shape so classification
//! back-ends can vary per lane while the signature table, transition
//! phase, and adaptive-threshold machinery stay untouched.
//!
//! Three back-ends ship in this crate:
//!
//! - [`BbvExtractor`] (an alias of [`AccumulatorTable`]) — the paper's
//!   branch-PC basic-block-vector path, and the default;
//! - [`WorkingSetExtractor`] — a touched-region bitmap over hashed PC
//!   ranges (Dhodapkar & Smith-style working-set signatures);
//! - [`BranchMixExtractor`] — per-bucket conditional-branch direction
//!   counts (taken/not-taken mix per hashed branch PC).
//!
//! [`AnyExtractor`] is the closed enum over those back-ends that the
//! classifier and the experiment engine store; the open trait exists so
//! downstream crates can drive [`PhaseClassifier::end_interval_from`]
//! with their own feature pipelines.
//!
//! [`PhaseClassifier::end_interval_from`]: crate::PhaseClassifier::end_interval_from

use serde::{Deserialize, Serialize};

use tpcp_trace::BranchEvent;

use crate::accumulator::{mix64, AccumulatorTable, COUNTER_MAX};
use crate::config::{BitSelectionMode, ClassifierConfig};
use crate::signature::{BitSelection, Signature};
use crate::snapshot::{self, SnapReader, SnapshotError};

/// The default feature back-end: the paper's [`AccumulatorTable`] of
/// PC-hashed, instruction-weighted saturating counters. The refactor that
/// introduced [`FeatureExtractor`] made the existing table *be* the BBV
/// extractor rather than wrapping it, so the default path is the same
/// type — and the same code — it always was.
pub type BbvExtractor = AccumulatorTable;

/// Which feature back-end a classifier uses to fill its signature each
/// interval. Selected per configuration via
/// [`ClassifierConfig::extractor`](crate::ClassifierConfig); the engine
/// shares one accumulation front-end per distinct `(kind, dims)` shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExtractorKind {
    /// Branch-PC BBV accumulation (the paper's architecture, Section 4.1).
    #[default]
    Bbv,
    /// Touched-region bitmap over hashed PC ranges.
    WorkingSet,
    /// Taken/not-taken conditional-branch counts per hashed branch.
    BranchMix,
}

impl ExtractorKind {
    /// Every kind, in a stable order (the cross-technique figure and the
    /// perf harness iterate this).
    pub const ALL: [ExtractorKind; 3] = [
        ExtractorKind::Bbv,
        ExtractorKind::WorkingSet,
        ExtractorKind::BranchMix,
    ];

    /// Short stable label, used in telemetry exports and reports.
    pub fn label(self) -> &'static str {
        match self {
            ExtractorKind::Bbv => "bbv",
            ExtractorKind::WorkingSet => "working-set",
            ExtractorKind::BranchMix => "branch-mix",
        }
    }

    /// Builds a fresh extractor of this kind with `dims` signature
    /// dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is not a power of two, or is below the kind's
    /// minimum (2 for [`ExtractorKind::BranchMix`]) — the combinations
    /// [`ClassifierConfig::validate`](crate::ClassifierConfig::validate)
    /// rejects.
    pub fn build(self, dims: usize) -> AnyExtractor {
        match self {
            ExtractorKind::Bbv => AnyExtractor::Bbv(AccumulatorTable::new(dims)),
            ExtractorKind::WorkingSet => AnyExtractor::WorkingSet(WorkingSetExtractor::new(dims)),
            ExtractorKind::BranchMix => AnyExtractor::BranchMix(BranchMixExtractor::new(dims)),
        }
    }
}

impl core::fmt::Display for ExtractorKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// A per-interval feature pipeline: observe each committed branch, then
/// project the interval's accumulated state into a fixed-width
/// [`Signature`] at the boundary.
///
/// Implementations must be deterministic functions of the observed event
/// sequence — the engine relies on a shared extractor instance producing
/// the same state as a lane-owned one fed the same events, and on
/// `finalize_into` being a pure read (the caller owns the reset cycle,
/// exactly as with the original shared [`AccumulatorTable`] path).
pub trait FeatureExtractor {
    /// Which back-end this is (the engine's sharing key, together with
    /// [`dims`](Self::dims)).
    fn kind(&self) -> ExtractorKind;

    /// Signature dimensionality this extractor produces.
    fn dims(&self) -> usize;

    /// Records one committed branch of the current interval — the
    /// per-event fast path.
    fn observe(&mut self, ev: BranchEvent);

    /// Projects the finished interval's state into a signature, recycling
    /// `buf` as the dimension storage. Must not mutate the extractor:
    /// several classifiers may read one shared instance at a boundary.
    fn finalize_into(&self, config: &ClassifierConfig, buf: Vec<u16>) -> Signature;

    /// Clears all per-interval state for the next interval.
    fn reset(&mut self);
}

/// The counter-magnitude projection shared by the counting back-ends:
/// dynamic bit selection from the average counter value (the paper's
/// Section 4.2), or the configured static selection.
fn project_counts(
    counters: &[u64],
    average: u64,
    config: &ClassifierConfig,
    buf: Vec<u16>,
) -> Signature {
    let selection = match config.bit_selection {
        BitSelectionMode::Dynamic => BitSelection::for_average(average, config.bits_per_dim),
        BitSelectionMode::Static { low_bit } => BitSelection::fixed(low_bit, config.bits_per_dim),
    };
    Signature::from_counters_in(counters, selection, buf)
}

impl FeatureExtractor for AccumulatorTable {
    fn kind(&self) -> ExtractorKind {
        ExtractorKind::Bbv
    }

    fn dims(&self) -> usize {
        self.len()
    }

    #[inline]
    fn observe(&mut self, ev: BranchEvent) {
        AccumulatorTable::observe(self, ev);
    }

    fn finalize_into(&self, config: &ClassifierConfig, buf: Vec<u16>) -> Signature {
        project_counts(self.counters(), self.average(), config, buf)
    }

    fn reset(&mut self) {
        AccumulatorTable::reset(self);
    }
}

/// Bytes of code per working-set region: 64, an instruction cache line.
/// Adjacent branches fall into one region; the bitmap tracks *which* code
/// was touched, not how hot it was.
pub const REGION_BYTES: u64 = 64;

const REGION_SHIFT: u32 = REGION_BYTES.trailing_zeros();

/// A touched-region bitmap over PC ranges: each committed branch marks
/// its 64-byte code region's hashed bucket. Dimensions are 0/1, so the
/// normalized signature distance becomes the symmetric difference of the
/// two intervals' working sets over their combined size — the classic
/// working-set signature similarity.
///
/// # Example
///
/// ```
/// use tpcp_core::{ClassifierConfig, FeatureExtractor, WorkingSetExtractor};
/// use tpcp_trace::BranchEvent;
///
/// let mut ws = WorkingSetExtractor::new(16);
/// ws.observe(BranchEvent::new(0x1000, 100));
/// ws.observe(BranchEvent::new(0x1004, 7)); // same 64-byte region
/// assert_eq!(ws.touched_regions(), 1);
/// let sig = ws.finalize_into(&ClassifierConfig::hpca2005(), Vec::new());
/// assert_eq!(sig.weight(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkingSetExtractor {
    /// One slot per bucket, 0 or 1. Stored as `u64`s so the projection
    /// shares [`Signature::from_counters_in`] with the counting back-ends.
    touched: Vec<u64>,
    /// Number of distinct buckets touched this interval.
    regions: u64,
    index_mask: u64,
}

impl WorkingSetExtractor {
    /// Creates a bitmap of `dims` region buckets.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is not a power of two.
    pub fn new(dims: usize) -> Self {
        assert!(
            dims.is_power_of_two(),
            "accumulator count must be a power of two"
        );
        Self {
            touched: vec![0; dims],
            regions: 0,
            index_mask: dims as u64 - 1,
        }
    }

    /// Distinct region buckets touched since the last reset.
    pub fn touched_regions(&self) -> u64 {
        self.regions
    }

    /// Appends the bitmap to a snapshot, packed 8 regions per byte (the
    /// region count and index mask are derived state, recomputed on
    /// restore).
    pub(crate) fn snap_write(&self, out: &mut Vec<u8>) {
        snapshot::put_varint(out, self.touched.len() as u64);
        for chunk in self.touched.chunks(8) {
            let mut byte = 0u8;
            for (bit, &slot) in chunk.iter().enumerate() {
                byte |= (slot as u8) << bit;
            }
            out.push(byte);
        }
    }

    /// Restores the bitmap from a snapshot.
    pub(crate) fn snap_read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let dims = r.varint()? as usize;
        if dims == 0 || !dims.is_power_of_two() {
            return Err(SnapshotError::Malformed(
                "working-set dimension count must be a power of two",
            ));
        }
        let packed = r.bytes(dims.div_ceil(8))?;
        let mut touched = Vec::with_capacity(dims);
        let mut regions = 0u64;
        for i in 0..dims {
            let bit = u64::from(packed[i / 8] >> (i % 8)) & 1;
            regions += bit;
            touched.push(bit);
        }
        Ok(Self {
            touched,
            regions,
            index_mask: dims as u64 - 1,
        })
    }
}

impl FeatureExtractor for WorkingSetExtractor {
    fn kind(&self) -> ExtractorKind {
        ExtractorKind::WorkingSet
    }

    fn dims(&self) -> usize {
        self.touched.len()
    }

    #[inline]
    fn observe(&mut self, ev: BranchEvent) {
        let idx = (mix64(ev.pc >> REGION_SHIFT) & self.index_mask) as usize;
        let slot = &mut self.touched[idx];
        if *slot == 0 {
            *slot = 1;
            self.regions += 1;
        }
    }

    fn finalize_into(&self, config: &ClassifierConfig, buf: Vec<u16>) -> Signature {
        // The bitmap is already in canonical 0/1 range: copy bit 0
        // directly instead of scaling to a counter average (dynamic
        // selection would shift the bitmap away for small
        // `bits_per_dim`). `validate` rejects static selections above
        // bit 0 for this extractor.
        Signature::from_counters_in(
            &self.touched,
            BitSelection::fixed(0, config.bits_per_dim),
            buf,
        )
    }

    fn reset(&mut self) {
        self.touched.fill(0);
        self.regions = 0;
    }
}

/// Conditional-branch direction counts: each committed branch is hashed
/// into one of `dims / 2` buckets and counted as taken or not-taken, so
/// each bucket contributes a (taken, not-taken) dimension pair. Two
/// intervals running the same code with different branch behaviour — a
/// data-dependent phase change BBV weights can miss — separate here.
///
/// The trace format records committed branches without an explicit
/// direction bit, so direction is inferred with the classic
/// backward-taken heuristic: a branch whose PC is at or below the
/// previous branch's PC is a loop back edge, hence taken. The inference
/// is a deterministic function of the event stream, which is all the
/// engine's shared-accumulation equivalence needs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchMixExtractor {
    /// `dims` counters: bucket `b`'s taken count at `2b`, not-taken at
    /// `2b + 1`. Saturating at the same 24-bit ceiling as the paper's
    /// accumulators.
    counters: Vec<u64>,
    /// Total branches observed this interval.
    total: u64,
    /// PC of the previous committed branch (0 at interval start).
    last_pc: u64,
    index_mask: u64,
}

impl BranchMixExtractor {
    /// Creates a mix table producing `dims` dimensions (`dims / 2`
    /// buckets of taken/not-taken pairs).
    ///
    /// # Panics
    ///
    /// Panics if `dims` is not a power of two, or is less than 2 (one
    /// bucket needs a full pair).
    pub fn new(dims: usize) -> Self {
        assert!(
            dims.is_power_of_two(),
            "accumulator count must be a power of two"
        );
        assert!(
            dims >= 2,
            "branch-mix extractor needs at least 2 dimensions (one taken/not-taken pair)"
        );
        Self {
            counters: vec![0; dims],
            total: 0,
            last_pc: 0,
            index_mask: (dims / 2) as u64 - 1,
        }
    }

    /// Total branches observed since the last reset.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Appends the mix counters to a snapshot.
    pub(crate) fn snap_write(&self, out: &mut Vec<u8>) {
        snapshot::put_varint(out, self.counters.len() as u64);
        for &c in &self.counters {
            snapshot::put_varint(out, c);
        }
        snapshot::put_varint(out, self.total);
        snapshot::put_varint(out, self.last_pc);
    }

    /// Restores the mix counters from a snapshot.
    pub(crate) fn snap_read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let dims = r.bounded_count(1)?;
        if !dims.is_power_of_two() || dims < 2 {
            return Err(SnapshotError::Malformed(
                "branch-mix dimension count must be a power of two of at least 2",
            ));
        }
        let mut counters = Vec::with_capacity(dims);
        for _ in 0..dims {
            let c = r.varint()?;
            if c > COUNTER_MAX {
                return Err(SnapshotError::Malformed(
                    "branch-mix counter above the 24-bit ceiling",
                ));
            }
            counters.push(c);
        }
        Ok(Self {
            counters,
            total: r.varint()?,
            last_pc: r.varint()?,
            index_mask: (dims / 2) as u64 - 1,
        })
    }
}

impl FeatureExtractor for BranchMixExtractor {
    fn kind(&self) -> ExtractorKind {
        ExtractorKind::BranchMix
    }

    fn dims(&self) -> usize {
        self.counters.len()
    }

    #[inline]
    fn observe(&mut self, ev: BranchEvent) {
        let taken = ev.pc <= self.last_pc;
        self.last_pc = ev.pc;
        let bucket = (mix64(ev.pc) & self.index_mask) as usize;
        let c = &mut self.counters[bucket * 2 + usize::from(!taken)];
        *c = (*c + 1).min(COUNTER_MAX);
        self.total += 1;
    }

    fn finalize_into(&self, config: &ClassifierConfig, buf: Vec<u16>) -> Signature {
        // Average branch count per dimension, with the same shift
        // semantics as the accumulator table's dynamic selection.
        let average = self.total >> self.counters.len().trailing_zeros();
        project_counts(&self.counters, average, config, buf)
    }

    fn reset(&mut self) {
        self.counters.fill(0);
        self.total = 0;
        self.last_pc = 0;
    }
}

/// The closed sum of the crate's feature back-ends — what
/// [`PhaseClassifier`](crate::PhaseClassifier) owns and what the
/// experiment engine shares across lanes of one shape. Dispatch is a
/// match, so the per-event path stays monomorphic inside each variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnyExtractor {
    /// The paper's accumulator table.
    Bbv(AccumulatorTable),
    /// Touched-region bitmap.
    WorkingSet(WorkingSetExtractor),
    /// Taken/not-taken branch counts.
    BranchMix(BranchMixExtractor),
}

impl AnyExtractor {
    /// Appends this extractor (kind tag + state) to a snapshot.
    pub(crate) fn snap_write(&self, out: &mut Vec<u8>) {
        match self {
            AnyExtractor::Bbv(x) => {
                out.push(0);
                x.snap_write(out);
            }
            AnyExtractor::WorkingSet(x) => {
                out.push(1);
                x.snap_write(out);
            }
            AnyExtractor::BranchMix(x) => {
                out.push(2);
                x.snap_write(out);
            }
        }
    }

    /// Restores an extractor from a snapshot.
    pub(crate) fn snap_read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(AnyExtractor::Bbv(AccumulatorTable::snap_read(r)?)),
            1 => Ok(AnyExtractor::WorkingSet(WorkingSetExtractor::snap_read(r)?)),
            2 => Ok(AnyExtractor::BranchMix(BranchMixExtractor::snap_read(r)?)),
            _ => Err(SnapshotError::Malformed("unknown extractor kind tag")),
        }
    }
}

impl FeatureExtractor for AnyExtractor {
    fn kind(&self) -> ExtractorKind {
        match self {
            AnyExtractor::Bbv(_) => ExtractorKind::Bbv,
            AnyExtractor::WorkingSet(_) => ExtractorKind::WorkingSet,
            AnyExtractor::BranchMix(_) => ExtractorKind::BranchMix,
        }
    }

    fn dims(&self) -> usize {
        match self {
            AnyExtractor::Bbv(x) => x.dims(),
            AnyExtractor::WorkingSet(x) => x.dims(),
            AnyExtractor::BranchMix(x) => x.dims(),
        }
    }

    #[inline]
    fn observe(&mut self, ev: BranchEvent) {
        match self {
            AnyExtractor::Bbv(x) => FeatureExtractor::observe(x, ev),
            AnyExtractor::WorkingSet(x) => x.observe(ev),
            AnyExtractor::BranchMix(x) => x.observe(ev),
        }
    }

    fn finalize_into(&self, config: &ClassifierConfig, buf: Vec<u16>) -> Signature {
        match self {
            AnyExtractor::Bbv(x) => x.finalize_into(config, buf),
            AnyExtractor::WorkingSet(x) => x.finalize_into(config, buf),
            AnyExtractor::BranchMix(x) => x.finalize_into(config, buf),
        }
    }

    fn reset(&mut self) {
        match self {
            AnyExtractor::Bbv(x) => FeatureExtractor::reset(x),
            AnyExtractor::WorkingSet(x) => x.reset(),
            AnyExtractor::BranchMix(x) => x.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClassifierConfig {
        ClassifierConfig::hpca2005()
    }

    #[test]
    fn bbv_finalize_matches_legacy_signature_construction() {
        let mut acc = AccumulatorTable::new(16);
        for i in 0..500u64 {
            AccumulatorTable::observe(&mut acc, BranchEvent::new(0x4000 + i * 0x40, 30));
        }
        let legacy = Signature::from_accumulator_in(&acc, cfg().bits_per_dim, Vec::new());
        let via_trait = acc.finalize_into(&cfg(), Vec::new());
        assert_eq!(legacy, via_trait);

        let static_cfg = ClassifierConfig::builder()
            .bit_selection(BitSelectionMode::Static { low_bit: 4 })
            .build();
        let legacy_static =
            Signature::with_selection_in(&acc, BitSelection::fixed(4, 6), Vec::new());
        assert_eq!(legacy_static, acc.finalize_into(&static_cfg, Vec::new()));
    }

    #[test]
    fn kinds_build_matching_shapes() {
        for kind in ExtractorKind::ALL {
            let ext = kind.build(16);
            assert_eq!(ext.kind(), kind);
            assert_eq!(ext.dims(), 16);
            assert_eq!(ext.finalize_into(&cfg(), Vec::new()).dims().len(), 16);
        }
    }

    #[test]
    fn working_set_is_a_binary_bitmap() {
        let mut ws = WorkingSetExtractor::new(16);
        // Two branches in one region, one in another: weight counts
        // regions, not executions or instructions.
        ws.observe(BranchEvent::new(0x1000, 500));
        ws.observe(BranchEvent::new(0x1020, 500));
        ws.observe(BranchEvent::new(0x9000, 1));
        assert_eq!(ws.touched_regions(), 2);
        let sig = ws.finalize_into(&cfg(), Vec::new());
        assert!(sig.dims().iter().all(|&d| d <= 1));
        assert_eq!(sig.weight(), 2);
    }

    #[test]
    fn working_set_distance_is_symmetric_difference() {
        let sig_of = |pcs: &[u64]| {
            let mut ws = WorkingSetExtractor::new(64);
            for &pc in pcs {
                ws.observe(BranchEvent::new(pc, 10));
            }
            ws.finalize_into(&cfg(), Vec::new())
        };
        let a = sig_of(&[0x1000, 0x2000, 0x3000]);
        let same = sig_of(&[0x1000, 0x2000, 0x3000]);
        assert_eq!(a.normalized_distance(&same), 0.0);
        let disjoint = sig_of(&[0x8_0000, 0x9_0000, 0xA_0000]);
        // Disjoint working sets are maximally distant (unless the hash
        // collides buckets, which these spread-out PCs avoid at 64 dims).
        if a.manhattan_distance(&disjoint) == a.weight() + disjoint.weight() {
            assert!((a.normalized_distance(&disjoint) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn branch_mix_separates_direction_patterns() {
        // The same multiset of branch PCs, executed as two tight loops
        // (repeats — backward/taken edges at both sites) vs. as a
        // ping-pong alternation (the higher site only ever arrives from
        // below — not-taken). Identical hash buckets, different mixes.
        let sig_of = |pcs: &[u64]| {
            let mut bm = BranchMixExtractor::new(16);
            for &pc in pcs {
                bm.observe(BranchEvent::new(pc, 10));
            }
            bm.finalize_into(&cfg(), Vec::new())
        };
        let mut blocked: Vec<u64> = vec![0x1000; 100];
        blocked.extend(std::iter::repeat_n(0x2000, 100));
        let alternating: Vec<u64> = (0..200u64).map(|i| 0x1000 + (i % 2) * 0x1000).collect();
        let a = sig_of(&blocked);
        let b = sig_of(&alternating);
        assert!(
            a.normalized_distance(&b) > 0.2,
            "direction mix must separate: {}",
            a.normalized_distance(&b)
        );
    }

    #[test]
    fn branch_mix_counts_saturate() {
        let mut bm = BranchMixExtractor::new(2);
        for _ in 0..(COUNTER_MAX + 10) {
            bm.observe(BranchEvent::new(0x1000, 1));
        }
        assert!(bm.counters.iter().all(|&c| c <= COUNTER_MAX));
        assert_eq!(bm.total(), COUNTER_MAX + 10);
    }

    #[test]
    fn reset_restores_initial_state() {
        for kind in ExtractorKind::ALL {
            let mut ext = kind.build(16);
            for i in 0..100u64 {
                ext.observe(BranchEvent::new(0x1000 + i * 8, 5));
            }
            ext.reset();
            assert_eq!(ext, kind.build(16), "{kind} reset must be pristine");
        }
    }

    #[test]
    fn observation_order_matters_only_for_branch_mix() {
        let run = |kind: ExtractorKind, pcs: &[u64]| {
            let mut ext = kind.build(16);
            for &pc in pcs {
                ext.observe(BranchEvent::new(pc, 10));
            }
            ext.finalize_into(&cfg(), Vec::new())
        };
        let fwd = [0x1000u64, 0x2000, 0x3000, 0x4000];
        let rev = [0x4000u64, 0x3000, 0x2000, 0x1000];
        assert_eq!(run(ExtractorKind::Bbv, &fwd), run(ExtractorKind::Bbv, &rev));
        assert_eq!(
            run(ExtractorKind::WorkingSet, &fwd),
            run(ExtractorKind::WorkingSet, &rev)
        );
        assert_ne!(
            run(ExtractorKind::BranchMix, &fwd),
            run(ExtractorKind::BranchMix, &rev),
            "direction inference is order-sensitive by design"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn working_set_rejects_non_power_of_two() {
        WorkingSetExtractor::new(12);
    }

    #[test]
    #[should_panic(expected = "at least 2 dimensions")]
    fn branch_mix_rejects_single_dimension() {
        BranchMixExtractor::new(1);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ExtractorKind::Bbv.label(), "bbv");
        assert_eq!(ExtractorKind::WorkingSet.label(), "working-set");
        assert_eq!(ExtractorKind::BranchMix.label(), "branch-mix");
        assert_eq!(ExtractorKind::default(), ExtractorKind::Bbv);
    }

    #[test]
    fn extractors_serialize_round_trip() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<AnyExtractor>();
        assert_serde::<ExtractorKind>();
        assert_serde::<WorkingSetExtractor>();
        assert_serde::<BranchMixExtractor>();
    }
}
