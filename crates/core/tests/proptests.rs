//! Property-based tests for classifier invariants.

use proptest::prelude::*;
use tpcp_core::{
    AccumulatorTable, BitSelection, ClassifierConfig, PhaseClassifier, PhaseId, Signature,
};
use tpcp_trace::BranchEvent;

fn arb_events() -> impl Strategy<Value = Vec<BranchEvent>> {
    prop::collection::vec(
        (0u64..1 << 20, 1u32..500).prop_map(|(pc, n)| BranchEvent::new(pc * 4, n)),
        1..100,
    )
}

fn signature_of(events: &[BranchEvent], dims: usize) -> Signature {
    let mut acc = AccumulatorTable::new(dims);
    for &ev in events {
        acc.observe(ev);
    }
    Signature::from_accumulator(&acc, 6)
}

proptest! {
    /// Signature distance is a pseudometric: non-negative, symmetric,
    /// zero on identical inputs, and normalized into [0, 1].
    #[test]
    fn distance_is_pseudometric(a in arb_events(), b in arb_events()) {
        let sa = signature_of(&a, 16);
        let sb = signature_of(&b, 16);
        let d_ab = sa.normalized_distance(&sb);
        let d_ba = sb.normalized_distance(&sa);
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d_ab));
        prop_assert!(sa.normalized_distance(&sa) < 1e-12);
    }

    /// Compression never exceeds the per-dimension ceiling and is monotone
    /// in the counter value.
    #[test]
    fn compression_bounded_and_monotone(avg in 1u64..1 << 24, c1 in 0u64..1 << 24, c2 in 0u64..1 << 24) {
        let sel = BitSelection::for_average(avg, 6);
        let lo = c1.min(c2);
        let hi = c1.max(c2);
        let v_lo = sel.compress(lo);
        let v_hi = sel.compress(hi);
        prop_assert!(v_lo <= 63 && v_hi <= 63);
        prop_assert!(v_lo <= v_hi, "compress must be monotone: {lo}->{v_lo}, {hi}->{v_hi}");
    }

    /// The classifier is a pure function of its input stream.
    #[test]
    fn classifier_is_deterministic(intervals in prop::collection::vec((arb_events(), 0.1f64..10.0), 1..30)) {
        let run = || {
            let mut c = PhaseClassifier::new(ClassifierConfig::hpca2005());
            intervals
                .iter()
                .map(|(evs, cpi)| c.classify_interval(evs.iter().copied(), *cpi))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Structural invariants hold on any input: the table never exceeds its
    /// capacity, phase IDs are dense, and interval accounting balances.
    #[test]
    fn classifier_invariants(intervals in prop::collection::vec((arb_events(), 0.1f64..10.0), 1..40),
                             capacity in 1usize..16,
                             min_count in 0u8..4) {
        let cfg = ClassifierConfig::builder()
            .table_entries(Some(capacity))
            .min_count(min_count)
            .build();
        let mut c = PhaseClassifier::new(cfg);
        let mut max_id = 0u32;
        let mut stable = 0u64;
        for (evs, cpi) in &intervals {
            let id = c.classify_interval(evs.iter().copied(), *cpi);
            if !id.is_transition() {
                stable += 1;
                max_id = max_id.max(id.value());
            }
            prop_assert!(c.table().len() <= capacity);
        }
        // IDs are allocated densely from 1.
        prop_assert!(u64::from(max_id) <= c.phases_created());
        prop_assert_eq!(stable + c.transition_intervals(), c.intervals_seen());
        prop_assert_eq!(c.intervals_seen(), intervals.len() as u64);
    }

    /// With min_count = 0 no interval is ever classified as transition.
    #[test]
    fn no_transition_when_disabled(intervals in prop::collection::vec((arb_events(), 0.1f64..10.0), 1..30)) {
        let cfg = ClassifierConfig::builder().min_count(0).build();
        let mut c = PhaseClassifier::new(cfg);
        for (evs, cpi) in &intervals {
            let id = c.classify_interval(evs.iter().copied(), *cpi);
            prop_assert_ne!(id, PhaseId::TRANSITION);
        }
        prop_assert_eq!(c.transition_fraction(), 0.0);
    }

    /// Repeating the same interval enough times always yields a stable
    /// phase, independent of the events' content.
    #[test]
    fn repetition_promotes(events in arb_events(), min_count in 1u8..10) {
        let cfg = ClassifierConfig::builder().min_count(min_count).build();
        let mut c = PhaseClassifier::new(cfg);
        let mut last = PhaseId::TRANSITION;
        for _ in 0..=u32::from(min_count) + 1 {
            last = c.classify_interval(events.iter().copied(), 1.0);
        }
        prop_assert!(!last.is_transition());
    }
}

/// Scalar-vs-column-scan search equivalence: the struct-of-arrays block
/// scan behind the `simd` feature must return bit-identical `MatchOutcome`s
/// to the per-entry scalar search on any table, including the boundary
/// cases the contract calls out — thresholds landing exactly on a stored
/// distance (strict `<` accept) and zero-weight signatures (zero
/// denominator).
#[cfg(feature = "simd")]
mod simd {
    use super::*;
    use tpcp_core::{MatchOutcome, SignatureTable};

    fn table_of(sigs: &[Signature], threshold: f64) -> SignatureTable {
        let mut table = SignatureTable::new(None, threshold);
        for sig in sigs {
            table.insert(sig.clone());
        }
        table
    }

    proptest! {
        /// Best- and first-match agree between the column scan and the
        /// scalar search on arbitrary tables and probes.
        #[test]
        fn simd_table_search_matches_scalar(
            batches in prop::collection::vec(arb_events(), 1..40),
            probe in arb_events(),
            threshold in 0.01f64..1.0,
            dims_pow in 0u32..3,
        ) {
            let dims = 16usize << dims_pow;
            let sigs: Vec<Signature> = batches.iter().map(|b| signature_of(b, dims)).collect();
            let table = table_of(&sigs, threshold);
            prop_assert!(table.uses_simd_scan());
            let probe = signature_of(&probe, dims);
            prop_assert_eq!(table.find_best_match(&probe), table.find_best_match_scalar(&probe));
            prop_assert_eq!(table.find_first_match(&probe), table.find_first_match_scalar(&probe));
        }

        /// A threshold equal to an exact stored distance is a *reject* on
        /// both paths: the accept predicate is strictly `<`, and the
        /// column scan's integer cutoff must not flip it.
        #[test]
        fn simd_exact_threshold_boundary_agrees(
            a in arb_events(),
            b in arb_events(),
            extras in prop::collection::vec(arb_events(), 0..20),
        ) {
            let sa = signature_of(&a, 16);
            let sb = signature_of(&b, 16);
            let d = sa.normalized_distance(&sb);
            prop_assume!(d > 0.0 && d <= 1.0);
            let mut sigs: Vec<Signature> = extras.iter().map(|e| signature_of(e, 16)).collect();
            sigs.push(sb);
            // The table threshold *is* the probe's exact distance to sb.
            let table = table_of(&sigs, d);
            let simd_best = table.find_best_match(&sa);
            prop_assert_eq!(&simd_best, &table.find_best_match_scalar(&sa));
            if let MatchOutcome::Matched { distance, .. } = simd_best {
                prop_assert!(distance < d, "strict-< accept must hold: {} !< {}", distance, d);
            }
            prop_assert_eq!(table.find_first_match(&sa), table.find_first_match_scalar(&sa));
        }

        /// Zero-weight signatures (empty accumulators) hit the
        /// zero-denominator trivial decision; both paths must agree for
        /// zero-weight probes, zero-weight entries, and both at once.
        #[test]
        fn simd_zero_denominator_agrees(
            batches in prop::collection::vec(arb_events(), 0..10),
            probe_empty in any::<bool>(),
            threshold in 0.01f64..1.0,
        ) {
            let zero = Signature::from_accumulator(&AccumulatorTable::new(16), 6);
            let mut sigs: Vec<Signature> = batches.iter().map(|b| signature_of(b, 16)).collect();
            sigs.push(zero.clone());
            let table = table_of(&sigs, threshold);
            let probe = if probe_empty || batches.is_empty() {
                zero
            } else {
                signature_of(&batches[0], 16)
            };
            prop_assert_eq!(table.find_best_match(&probe), table.find_best_match_scalar(&probe));
            prop_assert_eq!(table.find_first_match(&probe), table.find_first_match_scalar(&probe));
        }
    }
}
