//! Property-based tests for classifier invariants.

use proptest::prelude::*;
use tpcp_core::{
    AccumulatorTable, BitSelection, ClassifierConfig, PhaseClassifier, PhaseId, Signature,
};
use tpcp_trace::BranchEvent;

fn arb_events() -> impl Strategy<Value = Vec<BranchEvent>> {
    prop::collection::vec(
        (0u64..1 << 20, 1u32..500).prop_map(|(pc, n)| BranchEvent::new(pc * 4, n)),
        1..100,
    )
}

fn signature_of(events: &[BranchEvent], dims: usize) -> Signature {
    let mut acc = AccumulatorTable::new(dims);
    for &ev in events {
        acc.observe(ev);
    }
    Signature::from_accumulator(&acc, 6)
}

proptest! {
    /// Signature distance is a pseudometric: non-negative, symmetric,
    /// zero on identical inputs, and normalized into [0, 1].
    #[test]
    fn distance_is_pseudometric(a in arb_events(), b in arb_events()) {
        let sa = signature_of(&a, 16);
        let sb = signature_of(&b, 16);
        let d_ab = sa.normalized_distance(&sb);
        let d_ba = sb.normalized_distance(&sa);
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d_ab));
        prop_assert!(sa.normalized_distance(&sa) < 1e-12);
    }

    /// Compression never exceeds the per-dimension ceiling and is monotone
    /// in the counter value.
    #[test]
    fn compression_bounded_and_monotone(avg in 1u64..1 << 24, c1 in 0u64..1 << 24, c2 in 0u64..1 << 24) {
        let sel = BitSelection::for_average(avg, 6);
        let lo = c1.min(c2);
        let hi = c1.max(c2);
        let v_lo = sel.compress(lo);
        let v_hi = sel.compress(hi);
        prop_assert!(v_lo <= 63 && v_hi <= 63);
        prop_assert!(v_lo <= v_hi, "compress must be monotone: {lo}->{v_lo}, {hi}->{v_hi}");
    }

    /// The classifier is a pure function of its input stream.
    #[test]
    fn classifier_is_deterministic(intervals in prop::collection::vec((arb_events(), 0.1f64..10.0), 1..30)) {
        let run = || {
            let mut c = PhaseClassifier::new(ClassifierConfig::hpca2005());
            intervals
                .iter()
                .map(|(evs, cpi)| c.classify_interval(evs.iter().copied(), *cpi))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Structural invariants hold on any input: the table never exceeds its
    /// capacity, phase IDs are dense, and interval accounting balances.
    #[test]
    fn classifier_invariants(intervals in prop::collection::vec((arb_events(), 0.1f64..10.0), 1..40),
                             capacity in 1usize..16,
                             min_count in 0u8..4) {
        let cfg = ClassifierConfig::builder()
            .table_entries(Some(capacity))
            .min_count(min_count)
            .build();
        let mut c = PhaseClassifier::new(cfg);
        let mut max_id = 0u32;
        let mut stable = 0u64;
        for (evs, cpi) in &intervals {
            let id = c.classify_interval(evs.iter().copied(), *cpi);
            if !id.is_transition() {
                stable += 1;
                max_id = max_id.max(id.value());
            }
            prop_assert!(c.table().len() <= capacity);
        }
        // IDs are allocated densely from 1.
        prop_assert!(u64::from(max_id) <= c.phases_created());
        prop_assert_eq!(stable + c.transition_intervals(), c.intervals_seen());
        prop_assert_eq!(c.intervals_seen(), intervals.len() as u64);
    }

    /// With min_count = 0 no interval is ever classified as transition.
    #[test]
    fn no_transition_when_disabled(intervals in prop::collection::vec((arb_events(), 0.1f64..10.0), 1..30)) {
        let cfg = ClassifierConfig::builder().min_count(0).build();
        let mut c = PhaseClassifier::new(cfg);
        for (evs, cpi) in &intervals {
            let id = c.classify_interval(evs.iter().copied(), *cpi);
            prop_assert_ne!(id, PhaseId::TRANSITION);
        }
        prop_assert_eq!(c.transition_fraction(), 0.0);
    }

    /// Repeating the same interval enough times always yields a stable
    /// phase, independent of the events' content.
    #[test]
    fn repetition_promotes(events in arb_events(), min_count in 1u8..10) {
        let cfg = ClassifierConfig::builder().min_count(min_count).build();
        let mut c = PhaseClassifier::new(cfg);
        let mut last = PhaseId::TRANSITION;
        for _ in 0..=u32::from(min_count) + 1 {
            last = c.classify_interval(events.iter().copied(), 1.0);
        }
        prop_assert!(!last.is_transition());
    }
}
