//! Branch predictors: two-bit counters, bimodal, gshare, and the Table 1
//! hybrid (McFarling-style chooser).

use serde::{Deserialize, Serialize};

/// A saturating two-bit counter, the basic element of all predictors here.
///
/// States 0–1 predict not-taken, 2–3 predict taken.
///
/// # Example
///
/// ```
/// use tpcp_uarch::TwoBitCounter;
///
/// let mut c = TwoBitCounter::weakly_not_taken();
/// assert!(!c.predict_taken());
/// c.update(true);
/// c.update(true);
/// assert!(c.predict_taken());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TwoBitCounter(u8);

impl TwoBitCounter {
    /// State 1: predicts not-taken, one taken away from flipping.
    pub const fn weakly_not_taken() -> Self {
        Self(1)
    }

    /// State 2: predicts taken, one not-taken away from flipping.
    pub const fn weakly_taken() -> Self {
        Self(2)
    }

    /// Current prediction.
    #[inline]
    pub fn predict_taken(&self) -> bool {
        self.0 >= 2
    }

    /// Trains the counter with the branch's actual direction.
    #[inline]
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }

    /// Raw state in `0..=3` (for tests and introspection).
    pub fn state(&self) -> u8 {
        self.0
    }
}

impl Default for TwoBitCounter {
    fn default() -> Self {
        Self::weakly_not_taken()
    }
}

/// A PC-indexed table of two-bit counters.
///
/// This is the "8k bimodal predictor" of Table 1 when sized at 8192 entries.
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    table: Vec<TwoBitCounter>,
    mask: u64,
}

impl BimodalPredictor {
    /// Creates a predictor with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Self {
            table: vec![TwoBitCounter::default(); entries],
            mask: entries as u64 - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        // Drop the low 2 bits (instruction alignment) before indexing.
        ((pc >> 2) & self.mask) as usize
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].predict_taken()
    }

    /// Trains the entry for `pc` with the actual direction.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i].update(taken);
    }
}

/// A gshare predictor: global history XOR PC indexes a counter table.
///
/// Table 1 specifies an 8-bit history with 2K two-bit counters.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    table: Vec<TwoBitCounter>,
    mask: u64,
    history: u64,
    history_mask: u64,
}

impl GsharePredictor {
    /// Creates a gshare predictor with `entries` counters and
    /// `history_bits` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `history_bits > 32`.
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        assert!(history_bits <= 32, "history too long");
        Self {
            table: vec![TwoBitCounter::default(); entries],
            mask: entries as u64 - 1,
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }

    /// Predicts the direction of the branch at `pc` under current history.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].predict_taken()
    }

    /// Trains the indexed entry and shifts the outcome into the history.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i].update(taken);
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
    }
}

/// The Table 1 hybrid predictor: gshare + bimodal with a chooser.
///
/// The chooser is a PC-indexed table of two-bit counters trained toward
/// whichever component was correct when they disagree (McFarling's
/// combining predictor). Statistics are accumulated so the timing model can
/// charge misprediction penalties.
///
/// # Example
///
/// ```
/// use tpcp_uarch::HybridPredictor;
///
/// let mut bp = HybridPredictor::hpca2005();
/// // A strongly biased branch becomes predictable quickly.
/// for _ in 0..64 {
///     bp.observe(0x400_100, true);
/// }
/// let (correct, total) = bp.accuracy_counts();
/// assert!(total == 64 && correct >= 60);
/// ```
#[derive(Debug, Clone)]
pub struct HybridPredictor {
    gshare: GsharePredictor,
    bimodal: BimodalPredictor,
    chooser: Vec<TwoBitCounter>,
    chooser_mask: u64,
    correct: u64,
    total: u64,
}

impl HybridPredictor {
    /// Builds the predictor with explicit component sizes.
    ///
    /// # Panics
    ///
    /// Panics if any table size is not a power of two.
    pub fn new(
        gshare_entries: usize,
        history_bits: u32,
        bimodal_entries: usize,
        chooser_entries: usize,
    ) -> Self {
        assert!(
            chooser_entries.is_power_of_two(),
            "chooser entries must be a power of two"
        );
        Self {
            gshare: GsharePredictor::new(gshare_entries, history_bits),
            bimodal: BimodalPredictor::new(bimodal_entries),
            chooser: vec![TwoBitCounter::weakly_taken(); chooser_entries],
            chooser_mask: chooser_entries as u64 - 1,
            correct: 0,
            total: 0,
        }
    }

    /// The paper's Table 1 configuration: 8-bit gshare with 2K two-bit
    /// counters, an 8K bimodal predictor, and an 8K chooser.
    pub fn hpca2005() -> Self {
        Self::new(2048, 8, 8192, 8192)
    }

    fn chooser_index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.chooser_mask) as usize
    }

    /// Predicts the direction for the branch at `pc` without training.
    pub fn predict(&self, pc: u64) -> bool {
        let use_gshare = self.chooser[self.chooser_index(pc)].predict_taken();
        if use_gshare {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    /// Predicts, trains all components with the actual outcome, and returns
    /// whether the prediction was correct.
    pub fn observe(&mut self, pc: u64, taken: bool) -> bool {
        let g = self.gshare.predict(pc);
        let b = self.bimodal.predict(pc);
        let ci = self.chooser_index(pc);
        let use_gshare = self.chooser[ci].predict_taken();
        let prediction = if use_gshare { g } else { b };

        // Train the chooser only when the components disagree.
        if g != b {
            self.chooser[ci].update(g == taken);
        }
        self.gshare.update(pc, taken);
        self.bimodal.update(pc, taken);

        let correct = prediction == taken;
        self.total += 1;
        if correct {
            self.correct += 1;
        }
        correct
    }

    /// `(correct, total)` observation counts since construction or the last
    /// [`reset_stats`](Self::reset_stats).
    pub fn accuracy_counts(&self) -> (u64, u64) {
        (self.correct, self.total)
    }

    /// Misprediction rate over observed branches; `0.0` before any.
    pub fn misprediction_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.total - self.correct) as f64 / self.total as f64
        }
    }

    /// Clears accuracy counters (predictor state is retained).
    pub fn reset_stats(&mut self) {
        self.correct = 0;
        self.total = 0;
    }
}

impl Default for HybridPredictor {
    fn default() -> Self {
        Self::hpca2005()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_counter_saturates() {
        let mut c = TwoBitCounter::weakly_not_taken();
        for _ in 0..10 {
            c.update(true);
        }
        assert_eq!(c.state(), 3);
        for _ in 0..10 {
            c.update(false);
        }
        assert_eq!(c.state(), 0);
    }

    #[test]
    fn two_bit_counter_hysteresis() {
        let mut c = TwoBitCounter::weakly_not_taken();
        c.update(true);
        c.update(true); // state 3
        c.update(false); // state 2: still predicts taken
        assert!(c.predict_taken());
    }

    #[test]
    fn bimodal_learns_bias() {
        let mut p = BimodalPredictor::new(64);
        for _ in 0..4 {
            p.update(0x100, true);
        }
        assert!(p.predict(0x100));
        // 0x104 indexes the adjacent, untrained entry.
        assert!(!p.predict(0x104), "untrained entries default not-taken");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bimodal_size_validated() {
        BimodalPredictor::new(100);
    }

    #[test]
    fn gshare_distinguishes_by_history() {
        // A branch alternating T/NT is mispredicted by bimodal but learnable
        // by gshare once history separates the two contexts.
        let mut g = GsharePredictor::new(1024, 8);
        let pc = 0x400;
        let mut correct = 0;
        let mut total = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            let pred = g.predict(pc);
            if i >= 100 {
                total += 1;
                if pred == taken {
                    correct += 1;
                }
            }
            g.update(pc, taken);
        }
        assert!(
            correct as f64 / total as f64 > 0.95,
            "gshare should learn alternation: {correct}/{total}"
        );
    }

    #[test]
    fn hybrid_beats_components_on_mixed_workload() {
        // Branch A: biased taken. Branch B: alternating. The hybrid should
        // achieve high accuracy on both by choosing per-PC.
        let mut h = HybridPredictor::hpca2005();
        for i in 0..2000 {
            h.observe(0x1000, true);
            h.observe(0x2000, i % 2 == 0);
        }
        h.reset_stats();
        for i in 0..1000 {
            h.observe(0x1000, true);
            h.observe(0x2000, i % 2 == 0);
        }
        let (correct, total) = h.accuracy_counts();
        assert!(
            correct as f64 / total as f64 > 0.93,
            "hybrid accuracy {correct}/{total}"
        );
    }

    #[test]
    fn random_branch_is_hard() {
        // A pseudo-random direction stream should hover near 50% accuracy.
        let mut h = HybridPredictor::hpca2005();
        let mut x = 0x12345678u64;
        for _ in 0..4000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.observe(0x3000, (x >> 63) & 1 == 1);
        }
        let rate = h.misprediction_rate();
        assert!(rate > 0.35 && rate < 0.65, "misprediction rate {rate}");
    }

    #[test]
    fn misprediction_rate_empty_is_zero() {
        let h = HybridPredictor::hpca2005();
        assert_eq!(h.misprediction_rate(), 0.0);
    }

    #[test]
    fn reset_stats_clears_counts() {
        let mut h = HybridPredictor::hpca2005();
        h.observe(0x10, true);
        h.reset_stats();
        assert_eq!(h.accuracy_counts(), (0, 0));
    }
}
