//! Microarchitecture simulation substrate.
//!
//! The paper's methodology collects profiles with SimpleScalar's out-of-order
//! timing model (its Table 1 configuration). This crate rebuilds the pieces
//! of that substrate that the phase classification evaluation actually
//! depends on:
//!
//! - set-associative [`Cache`]s with LRU replacement (16K 4-way L1 I/D,
//!   128K 8-way L2),
//! - the Table 1 hybrid branch predictor (8-bit gshare with 2K 2-bit
//!   counters, an 8K bimodal predictor, and a meta chooser)
//!   ([`HybridPredictor`]),
//! - a [`Tlb`] with 8K pages and a fixed 30-cycle miss penalty,
//! - an interval-level [`TimingModel`] that converts event counts into
//!   cycles using Table 1 latencies (L2 12 cycles, memory 120 cycles,
//!   4-wide out-of-order issue), and
//! - deterministic [address stream generators](stream) used by
//!   `tpcp-workloads` to drive the hierarchy with realistic locality.
//!
//! The crucial property for reproducing the paper is that per-interval CPI
//! is *computed from* the code's behaviour in these structures — different
//! code regions have different working sets, strides, and branch behaviour,
//! and therefore different CPI. The correlation between code signatures and
//! performance that the phase classifier exploits is emergent, not injected.
//!
//! # Example
//!
//! ```
//! use tpcp_uarch::{MachineConfig, MemoryHierarchy};
//!
//! let mut mem = MemoryHierarchy::new(&MachineConfig::hpca2005());
//! // A tight 1KB loop hits in L1 after the first pass.
//! for _ in 0..4 {
//!     for addr in (0..1024u64).step_by(32) {
//!         mem.access_data(addr, false);
//!     }
//! }
//! let stats = mem.dl1_stats();
//! assert!(stats.hit_rate() > 0.7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod cache;
mod config;
mod hierarchy;
mod prefetch;
pub mod stream;
mod timing;
mod tlb;

pub use branch::{BimodalPredictor, GsharePredictor, HybridPredictor, TwoBitCounter};
pub use cache::{AccessKind, Cache, CacheConfig, CacheStats};
pub use config::MachineConfig;
pub use hierarchy::{DataAccessOutcome, MemoryHierarchy};
pub use prefetch::StridePrefetcher;
pub use timing::{EventCounts, TimingModel};
pub use tlb::Tlb;
