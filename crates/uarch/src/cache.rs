//! Set-associative caches with true-LRU replacement.

use serde::{Deserialize, Serialize};

/// Whether an access reads or writes. Writes allocate like reads
/// (write-allocate), matching SimpleScalar's default cache model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load (or instruction fetch).
    Read,
    /// A store.
    Write,
}

/// Geometry of one cache level.
///
/// # Example
///
/// ```
/// use tpcp_uarch::CacheConfig;
///
/// let l1 = CacheConfig::new(16 * 1024, 4, 32);
/// assert_eq!(l1.num_sets(), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Block (line) size in bytes. Must be a power of two.
    pub block_bytes: u64,
}

impl CacheConfig {
    /// Creates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, if `block_bytes` is not a power of
    /// two, or if the geometry does not divide evenly into sets.
    pub fn new(size_bytes: u64, assoc: usize, block_bytes: u64) -> Self {
        assert!(
            size_bytes > 0 && assoc > 0 && block_bytes > 0,
            "zero cache dimension"
        );
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        let cfg = Self {
            size_bytes,
            assoc,
            block_bytes,
        };
        let blocks = size_bytes / block_bytes;
        assert!(
            blocks.is_multiple_of(assoc as u64) && blocks >= assoc as u64,
            "cache size must divide into whole sets"
        );
        assert!(
            cfg.num_sets().is_power_of_two(),
            "set count must be a power of two"
        );
        cfg
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / self.block_bytes / self.assoc as u64
    }
}

/// Hit/miss/eviction counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Valid lines evicted by replacement.
    pub evictions: u64,
}

impl CacheStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of accesses that hit; `0.0` when no accesses occurred.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of accesses that missed; `0.0` when no accesses occurred.
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    stamp: u64,
}

/// A set-associative cache with true-LRU replacement.
///
/// Supports dynamically reducing the number of active ways (for the
/// phase-guided cache reconfiguration example in the workspace root), as in
/// the selective-cache-ways energy optimizations the paper cites as
/// consumers of phase information.
///
/// # Example
///
/// ```
/// use tpcp_uarch::{AccessKind, Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 32));
/// assert!(!c.access(0x0, AccessKind::Read));  // cold miss
/// assert!(c.access(0x0, AccessKind::Read));   // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    set_mask: u64,
    block_shift: u32,
    active_ways: usize,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache with the given geometry, all ways active.
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        Self {
            config,
            sets: vec![vec![Line::default(); config.assoc]; num_sets as usize],
            set_mask: num_sets - 1,
            block_shift: config.block_bytes.trailing_zeros(),
            active_ways: config.assoc,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of currently active ways.
    pub fn active_ways(&self) -> usize {
        self.active_ways
    }

    /// Activates exactly `ways` ways per set, invalidating lines in ways
    /// that are being turned off.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or exceeds the configured associativity.
    pub fn set_active_ways(&mut self, ways: usize) {
        assert!(
            ways >= 1 && ways <= self.config.assoc,
            "active ways must be in 1..={}",
            self.config.assoc
        );
        if ways < self.active_ways {
            for set in &mut self.sets {
                for line in set.iter_mut().skip(ways) {
                    line.valid = false;
                }
            }
        }
        self.active_ways = ways;
    }

    /// Invalidates every line and resets the LRU clock (not the statistics).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for line in set.iter_mut() {
                line.valid = false;
            }
        }
        self.clock = 0;
    }

    /// Performs one access; returns `true` on hit.
    ///
    /// Misses allocate (write-allocate policy), evicting the LRU line of the
    /// set when necessary.
    pub fn access(&mut self, addr: u64, _kind: AccessKind) -> bool {
        self.clock += 1;
        let block = addr >> self.block_shift;
        let set_idx = (block & self.set_mask) as usize;
        let tag = block >> self.set_mask.count_ones();
        let active = self.active_ways;
        let set = &mut self.sets[set_idx];

        for line in set.iter_mut().take(active) {
            if line.valid && line.tag == tag {
                line.stamp = self.clock;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;

        // Choose victim: first invalid way, else LRU among active ways.
        let victim = set
            .iter()
            .take(active)
            .position(|l| !l.valid)
            .unwrap_or_else(|| {
                set.iter()
                    .enumerate()
                    .take(active)
                    .min_by_key(|(_, l)| l.stamp)
                    .map(|(i, _)| i)
                    .expect("active >= 1")
            });
        if set[victim].valid {
            self.stats.evictions += 1;
        }
        set[victim] = Line {
            tag,
            valid: true,
            stamp: self.clock,
        };
        false
    }

    /// Installs the block containing `addr` without recording a demand
    /// access (used for prefetch fills). Evicts the LRU line if needed and
    /// counts the eviction, but neither a hit nor a miss.
    pub fn fill(&mut self, addr: u64) {
        if self.probe(addr) {
            return;
        }
        self.clock += 1;
        let block = addr >> self.block_shift;
        let set_idx = (block & self.set_mask) as usize;
        let tag = block >> self.set_mask.count_ones();
        let active = self.active_ways;
        let clock = self.clock;
        let set = &mut self.sets[set_idx];
        let victim = set
            .iter()
            .take(active)
            .position(|l| !l.valid)
            .unwrap_or_else(|| {
                set.iter()
                    .enumerate()
                    .take(active)
                    .min_by_key(|(_, l)| l.stamp)
                    .map(|(i, _)| i)
                    .expect("active >= 1")
            });
        if set[victim].valid {
            self.stats.evictions += 1;
        }
        set[victim] = Line {
            tag,
            valid: true,
            stamp: clock,
        };
    }

    /// Whether the block containing `addr` is currently resident (no state
    /// change, no statistics update).
    pub fn probe(&self, addr: u64) -> bool {
        let block = addr >> self.block_shift;
        let set_idx = (block & self.set_mask) as usize;
        let tag = block >> self.set_mask.count_ones();
        self.sets[set_idx]
            .iter()
            .take(self.active_ways)
            .any(|l| l.valid && l.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets, 2 ways, 32B blocks.
        Cache::new(CacheConfig::new(256, 2, 32))
    }

    #[test]
    fn config_geometry() {
        let cfg = CacheConfig::new(16 * 1024, 4, 32);
        assert_eq!(cfg.num_sets(), 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_block_rejected() {
        CacheConfig::new(1024, 2, 48);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000, AccessKind::Read));
        assert!(c.access(0x1000, AccessKind::Read));
        assert!(c.access(0x101f, AccessKind::Read), "same 32B block");
        assert!(!c.access(0x1020, AccessKind::Read), "next block");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Three blocks mapping to the same set (set stride = 4 sets * 32B = 128B).
        let a = 0x0000;
        let b = 0x0080;
        let d = 0x0100;
        c.access(a, AccessKind::Read);
        c.access(b, AccessKind::Read);
        c.access(a, AccessKind::Read); // a is now MRU
        c.access(d, AccessKind::Read); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn eviction_counted() {
        let mut c = tiny();
        for i in 0..3 {
            c.access(i * 0x80, AccessKind::Read);
        }
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn disabling_ways_shrinks_capacity() {
        let mut c = tiny();
        c.access(0x0000, AccessKind::Read);
        c.access(0x0080, AccessKind::Read); // both resident in 2 ways
        assert!(c.probe(0x0000) && c.probe(0x0080));
        c.set_active_ways(1);
        // Way 1 invalidated; at most one of the two survives.
        let resident = [0x0000, 0x0080].iter().filter(|&&a| c.probe(a)).count();
        assert!(resident <= 1);
        // Direct-mapped behaviour now: two conflicting blocks thrash.
        c.access(0x0000, AccessKind::Read);
        c.access(0x0080, AccessKind::Read);
        assert!(!c.probe(0x0000));
    }

    #[test]
    #[should_panic(expected = "active ways")]
    fn zero_ways_rejected() {
        tiny().set_active_ways(0);
    }

    #[test]
    fn reenabling_ways_restores_associativity() {
        let mut c = tiny();
        c.set_active_ways(1);
        c.set_active_ways(2);
        c.access(0x0000, AccessKind::Read);
        c.access(0x0080, AccessKind::Read);
        assert!(c.probe(0x0000) && c.probe(0x0080));
    }

    #[test]
    fn flush_invalidates_but_keeps_stats() {
        let mut c = tiny();
        c.access(0x0, AccessKind::Read);
        c.flush();
        assert!(!c.probe(0x0));
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = tiny();
        c.access(0x0, AccessKind::Read);
        let before = c.stats();
        assert!(c.probe(0x0));
        assert!(!c.probe(0x4000));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn hit_and_miss_rates() {
        let mut c = tiny();
        c.access(0x0, AccessKind::Read);
        c.access(0x0, AccessKind::Read);
        c.access(0x0, AccessKind::Read);
        c.access(0x0, AccessKind::Read);
        let s = c.stats();
        assert_eq!(s.accesses(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_rates_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
    }

    #[test]
    fn writes_allocate() {
        let mut c = tiny();
        assert!(!c.access(0x40, AccessKind::Write));
        assert!(c.access(0x40, AccessKind::Read));
    }

    #[test]
    fn streaming_larger_than_cache_always_misses_after_warmup() {
        let mut c = tiny(); // 256B capacity
                            // Stream over 4KB repeatedly with 32B stride: every access misses
                            // after the first lap because the reuse distance exceeds capacity.
        for _ in 0..4 {
            for addr in (0..4096u64).step_by(32) {
                c.access(addr, AccessKind::Read);
            }
        }
        assert_eq!(c.stats().hits, 0);
    }
}
