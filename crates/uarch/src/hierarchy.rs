//! The composed memory hierarchy: L1 I/D, unified L2, and data TLB.

use serde::{Deserialize, Serialize};

use crate::cache::{AccessKind, Cache, CacheStats};
use crate::config::MachineConfig;
use crate::prefetch::StridePrefetcher;
use crate::tlb::Tlb;

/// Where a data access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataAccessOutcome {
    /// Hit in the L1 data cache.
    L1,
    /// Missed L1, hit the unified L2.
    L2,
    /// Missed both levels; serviced by memory.
    Memory,
}

/// The Table 1 memory hierarchy wired together.
///
/// Instruction fetches probe IL1 then L2; data accesses probe the TLB, DL1,
/// then L2. The hierarchy only reports where each access was satisfied —
/// the [`TimingModel`](crate::TimingModel) turns outcome counts into cycles.
///
/// # Example
///
/// ```
/// use tpcp_uarch::{DataAccessOutcome, MachineConfig, MemoryHierarchy};
///
/// let mut mem = MemoryHierarchy::new(&MachineConfig::hpca2005());
/// assert_eq!(mem.access_data(0x1_0000, false), DataAccessOutcome::Memory);
/// assert_eq!(mem.access_data(0x1_0000, false), DataAccessOutcome::L1);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    il1: Cache,
    dl1: Cache,
    l2: Cache,
    tlb: Tlb,
    tlb_miss_count: u64,
    prefetcher: StridePrefetcher,
    prefetch_fills: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from a machine configuration.
    pub fn new(config: &MachineConfig) -> Self {
        Self {
            il1: Cache::new(config.il1),
            dl1: Cache::new(config.dl1),
            l2: Cache::new(config.l2),
            tlb: Tlb::new(config.tlb_entries, config.page_bytes),
            tlb_miss_count: 0,
            prefetcher: StridePrefetcher::new(config.prefetch_degree),
            prefetch_fills: 0,
        }
    }

    /// Fetches the instruction block at `pc`; returns `true` if it required
    /// going to L2 or beyond (an IL1 miss), and whether L2 also missed.
    ///
    /// Returns `(il1_miss, l2_miss)`.
    pub fn fetch_instruction(&mut self, pc: u64) -> (bool, bool) {
        if self.il1.access(pc, AccessKind::Read) {
            (false, false)
        } else {
            let l2_hit = self.l2.access(pc, AccessKind::Read);
            (true, !l2_hit)
        }
    }

    /// Performs a data access and reports where it was satisfied.
    ///
    /// The TLB is probed on every data access; TLB misses are counted
    /// separately (see [`take_tlb_misses`](Self::take_tlb_misses)) because
    /// their latency is charged independently of the cache outcome.
    pub fn access_data(&mut self, addr: u64, write: bool) -> DataAccessOutcome {
        if !self.tlb.access(addr) {
            self.tlb_miss_count += 1;
        }
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let outcome = if self.dl1.access(addr, kind) {
            DataAccessOutcome::L1
        } else if self.l2.access(addr, kind) {
            DataAccessOutcome::L2
        } else {
            DataAccessOutcome::Memory
        };
        if outcome != DataAccessOutcome::L1 {
            // Demand miss: let the (possibly disabled) stride prefetcher
            // pull upcoming lines into DL1 and L2. Prefetch fills are
            // tracked but charged no demand latency (they overlap with the
            // triggering miss in a real memory system).
            for pf_addr in self.prefetcher.on_miss(addr) {
                if !self.dl1.probe(pf_addr) {
                    self.dl1.fill(pf_addr);
                    self.l2.fill(pf_addr);
                    self.prefetch_fills += 1;
                }
            }
        }
        outcome
    }

    /// Lines brought in by the prefetcher so far.
    pub fn prefetch_fills(&self) -> u64 {
        self.prefetch_fills
    }

    /// Returns and clears the TLB miss count accumulated since the last call.
    pub fn take_tlb_misses(&mut self) -> u64 {
        std::mem::take(&mut self.tlb_miss_count)
    }

    /// L1 instruction cache statistics.
    pub fn il1_stats(&self) -> CacheStats {
        self.il1.stats()
    }

    /// L1 data cache statistics.
    pub fn dl1_stats(&self) -> CacheStats {
        self.dl1.stats()
    }

    /// Unified L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Shared access to the data cache.
    pub fn dl1(&self) -> &Cache {
        &self.dl1
    }

    /// Mutable access to the data cache (e.g. for way reconfiguration).
    pub fn dl1_mut(&mut self) -> &mut Cache {
        &mut self.dl1
    }

    /// Resets all statistics (contents are retained).
    pub fn reset_stats(&mut self) {
        self.il1.reset_stats();
        self.dl1.reset_stats();
        self.l2.reset_stats();
        self.tlb.reset_stats();
        self.tlb_miss_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(&MachineConfig::hpca2005())
    }

    #[test]
    fn data_miss_fills_both_levels() {
        let mut m = mem();
        assert_eq!(m.access_data(0x8000, false), DataAccessOutcome::Memory);
        assert_eq!(m.access_data(0x8000, false), DataAccessOutcome::L1);
    }

    #[test]
    fn l2_catches_l1_victims() {
        let mut m = mem();
        // Fill one DL1 set (4 ways) plus one more conflicting block.
        // DL1: 16K/4way/32B = 128 sets, so set stride = 128*32 = 4096.
        for i in 0..5u64 {
            m.access_data(i * 4096, false);
        }
        // The first block was evicted from DL1 but fits comfortably in L2.
        assert_eq!(m.access_data(0, false), DataAccessOutcome::L2);
    }

    #[test]
    fn instruction_fetch_tracks_misses() {
        let mut m = mem();
        assert_eq!(m.fetch_instruction(0x400_000), (true, true));
        assert_eq!(m.fetch_instruction(0x400_000), (false, false));
        assert_eq!(m.il1_stats().misses, 1);
        assert_eq!(m.il1_stats().hits, 1);
    }

    #[test]
    fn tlb_misses_collected_and_cleared() {
        let mut m = mem();
        m.access_data(0x0000, false);
        m.access_data(0x4000, false); // different 8K page
        assert_eq!(m.take_tlb_misses(), 2);
        assert_eq!(m.take_tlb_misses(), 0);
        m.access_data(0x0000, false); // page still cached
        assert_eq!(m.take_tlb_misses(), 0);
    }

    #[test]
    fn working_set_larger_than_l2_goes_to_memory() {
        let mut m = mem();
        // Stream 1MB (8x the 128K L2) twice.
        let mut memory_hits = 0;
        for lap in 0..2 {
            for addr in (0..1_048_576u64).step_by(64) {
                let outcome = m.access_data(addr, false);
                if lap == 1 && outcome == DataAccessOutcome::Memory {
                    memory_hits += 1;
                }
            }
        }
        assert!(
            memory_hits > 10_000,
            "streaming should defeat the L2: {memory_hits}"
        );
    }

    #[test]
    fn prefetcher_off_by_default() {
        let mut m = mem();
        for addr in (0..64 * 1024u64).step_by(64) {
            m.access_data(addr, false);
        }
        assert_eq!(m.prefetch_fills(), 0);
    }

    #[test]
    fn stride_prefetch_converts_misses_to_hits() {
        let mut cfg = MachineConfig::hpca2005();
        cfg.prefetch_degree = 4;
        let mut with = MemoryHierarchy::new(&cfg);
        let mut without = mem();
        // A long 64B-stride stream over 4MB: every line is a cold miss
        // without prefetching; the stride prefetcher hides most of them.
        for addr in (0..4 * 1024 * 1024u64).step_by(64) {
            with.access_data(addr, false);
            without.access_data(addr, false);
        }
        assert!(with.prefetch_fills() > 1000);
        assert!(
            with.dl1_stats().miss_rate() < without.dl1_stats().miss_rate() / 2.0,
            "prefetching should at least halve the miss rate: {} vs {}",
            with.dl1_stats().miss_rate(),
            without.dl1_stats().miss_rate()
        );
    }

    #[test]
    fn pointer_chase_defeats_the_prefetcher() {
        let mut cfg = MachineConfig::hpca2005();
        cfg.prefetch_degree = 4;
        let mut m = MemoryHierarchy::new(&cfg);
        let mut chase = crate::stream::PointerChaseStream::new(0, 1 << 16, 64);
        use crate::stream::AddressStream;
        for _ in 0..20_000 {
            m.access_data(chase.next_addr(), false);
        }
        // Random-looking deltas almost never repeat: few useful fills.
        assert!(
            m.prefetch_fills() < 2_000,
            "chase should not trigger streams: {}",
            m.prefetch_fills()
        );
    }

    #[test]
    fn reset_stats_zeroes_everything() {
        let mut m = mem();
        m.access_data(0x123, true);
        m.fetch_instruction(0x456);
        m.reset_stats();
        assert_eq!(m.dl1_stats().accesses(), 0);
        assert_eq!(m.il1_stats().accesses(), 0);
        assert_eq!(m.l2_stats().accesses(), 0);
    }
}
