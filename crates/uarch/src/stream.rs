//! Deterministic address stream generators.
//!
//! Workload models drive the memory hierarchy with these streams to give
//! each code region a distinct, repeatable locality signature: sequential
//! (stride) access, uniform random access over a working set, and
//! pointer-chasing over a pseudo-random permutation (the mcf-like access
//! pattern with no spatial locality and a serialized dependence chain).
//!
//! All generators are deterministic from their construction parameters, so
//! full experiment runs are reproducible bit-for-bit.

use serde::{Deserialize, Serialize};

/// A deterministic generator of data addresses.
pub trait AddressStream {
    /// Produces the next address in the stream.
    fn next_addr(&mut self) -> u64;
}

/// SplitMix64 — a tiny, high-quality deterministic PRNG used by the streams.
///
/// We use our own implementation rather than `rand` so the substrate crate
/// has no RNG dependency and streams stay stable across `rand` upgrades.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // simulation purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Sequential access with a fixed stride over a circular working set.
///
/// # Example
///
/// ```
/// use tpcp_uarch::stream::{AddressStream, StridedStream};
///
/// let mut s = StridedStream::new(0x1000, 64, 256);
/// assert_eq!(s.next_addr(), 0x1000);
/// assert_eq!(s.next_addr(), 0x1040);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StridedStream {
    base: u64,
    stride: u64,
    working_set: u64,
    offset: u64,
}

impl StridedStream {
    /// Creates a stream starting at `base`, advancing by `stride` bytes and
    /// wrapping every `working_set` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `stride` or `working_set` is zero.
    pub fn new(base: u64, stride: u64, working_set: u64) -> Self {
        assert!(stride > 0 && working_set > 0, "zero stride or working set");
        Self {
            base,
            stride,
            working_set,
            offset: 0,
        }
    }
}

impl AddressStream for StridedStream {
    fn next_addr(&mut self) -> u64 {
        let addr = self.base + self.offset;
        self.offset = (self.offset + self.stride) % self.working_set;
        addr
    }
}

/// Uniform random access over a working set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomStream {
    base: u64,
    working_set: u64,
    rng: SplitMix64,
}

impl RandomStream {
    /// Creates a stream of uniform addresses in `[base, base + working_set)`.
    ///
    /// # Panics
    ///
    /// Panics if `working_set` is zero.
    pub fn new(base: u64, working_set: u64, seed: u64) -> Self {
        assert!(working_set > 0, "zero working set");
        Self {
            base,
            working_set,
            rng: SplitMix64::new(seed),
        }
    }
}

impl AddressStream for RandomStream {
    fn next_addr(&mut self) -> u64 {
        // Align to 8 bytes like a word access.
        self.base + (self.rng.below(self.working_set) & !7)
    }
}

/// Pointer chasing over a full-period permutation of node slots.
///
/// Visits every one of `n_nodes` slots exactly once per period using a
/// full-period LCG (`n_nodes` is rounded up to a power of two so
/// `next = a*cur + c mod n` has full period with `a % 4 == 1`, `c` odd).
/// Consecutive addresses are decorrelated, defeating both spatial locality
/// and stride prefetching — the behaviour of mcf's linked data structures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PointerChaseStream {
    base: u64,
    node_bytes: u64,
    n_nodes: u64,
    current: u64,
}

impl PointerChaseStream {
    /// Creates a chase over `n_nodes` nodes of `node_bytes` bytes starting
    /// at `base`. `n_nodes` is rounded up to the next power of two.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` or `node_bytes` is zero.
    pub fn new(base: u64, n_nodes: u64, node_bytes: u64) -> Self {
        assert!(n_nodes > 0 && node_bytes > 0, "zero nodes or node size");
        Self {
            base,
            node_bytes,
            n_nodes: n_nodes.next_power_of_two(),
            current: 0,
        }
    }
}

impl AddressStream for PointerChaseStream {
    fn next_addr(&mut self) -> u64 {
        let addr = self.base + self.current * self.node_bytes;
        // Full-period LCG modulo a power of two: a ≡ 1 (mod 4), c odd.
        self.current = (self
            .current
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407))
            & (self.n_nodes - 1);
        addr
    }
}

/// A weighted mixture of streams, choosing per access.
///
/// Lets a region model, say, 80% stride + 20% random-global traffic.
#[derive(Debug, Clone)]
pub struct MixedStream {
    streams: Vec<(Box<dyn AddressStreamClone>, f64)>,
    rng: SplitMix64,
}

/// Object-safe clone support for boxed streams.
pub trait AddressStreamClone: AddressStream + core::fmt::Debug {
    /// Clones into a box.
    fn clone_box(&self) -> Box<dyn AddressStreamClone>;
}

impl<T> AddressStreamClone for T
where
    T: AddressStream + Clone + core::fmt::Debug + 'static,
{
    fn clone_box(&self) -> Box<dyn AddressStreamClone> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn AddressStreamClone> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl MixedStream {
    /// Creates a mixture; weights are normalized internally.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or total weight is not positive.
    pub fn new(parts: Vec<(Box<dyn AddressStreamClone>, f64)>, seed: u64) -> Self {
        assert!(!parts.is_empty(), "mixture needs at least one stream");
        let total: f64 = parts.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0, "mixture weights must be positive");
        let streams = parts.into_iter().map(|(s, w)| (s, w / total)).collect();
        Self {
            streams,
            rng: SplitMix64::new(seed),
        }
    }
}

impl AddressStream for MixedStream {
    fn next_addr(&mut self) -> u64 {
        let mut pick = self.rng.unit_f64();
        let last = self.streams.len() - 1;
        for (i, (stream, weight)) in self.streams.iter_mut().enumerate() {
            if pick < *weight || i == last {
                return stream.next_addr();
            }
            pick -= *weight;
        }
        unreachable!("loop always returns on the last stream");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn splitmix_unit_in_range() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn strided_wraps_at_working_set() {
        let mut s = StridedStream::new(100, 10, 30);
        let addrs: Vec<u64> = (0..6).map(|_| s.next_addr()).collect();
        assert_eq!(addrs, vec![100, 110, 120, 100, 110, 120]);
    }

    #[test]
    fn random_stays_in_working_set() {
        let mut s = RandomStream::new(0x10_000, 4096, 3);
        for _ in 0..1000 {
            let a = s.next_addr();
            assert!((0x10_000..0x11_000).contains(&a));
        }
    }

    #[test]
    fn pointer_chase_visits_all_nodes() {
        let mut s = PointerChaseStream::new(0, 8, 64);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..8 {
            seen.insert(s.next_addr());
        }
        assert_eq!(seen.len(), 8, "full-period permutation");
    }

    #[test]
    fn pointer_chase_is_not_sequential() {
        let mut s = PointerChaseStream::new(0, 1024, 64);
        let mut ascending = 0;
        let mut prev = s.next_addr();
        for _ in 0..1000 {
            let cur = s.next_addr();
            if cur == prev + 64 {
                ascending += 1;
            }
            prev = cur;
        }
        assert!(
            ascending < 50,
            "chase should rarely be sequential: {ascending}"
        );
    }

    #[test]
    fn mixture_draws_from_all_parts() {
        let parts: Vec<(Box<dyn AddressStreamClone>, f64)> = vec![
            (Box::new(StridedStream::new(0, 8, 64)), 0.5),
            (Box::new(StridedStream::new(1 << 30, 8, 64)), 0.5),
        ];
        let mut m = MixedStream::new(parts, 11);
        let mut low = 0;
        let mut high = 0;
        for _ in 0..1000 {
            if m.next_addr() >= 1 << 30 {
                high += 1;
            } else {
                low += 1;
            }
        }
        assert!(low > 300 && high > 300, "both parts sampled: {low}/{high}");
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn empty_mixture_rejected() {
        MixedStream::new(vec![], 0);
    }
}
