//! The baseline machine configuration (the paper's Table 1).

use serde::{Deserialize, Serialize};

use crate::cache::CacheConfig;

/// The baseline simulation model of the paper's Table 1.
///
/// | Unit | Configuration |
/// |---|---|
/// | I cache | 16K 4-way, 32B blocks, 1-cycle |
/// | D cache | 16K 4-way, 32B blocks, 1-cycle |
/// | L2 | 128K 8-way, 64B blocks, 12-cycle |
/// | Memory | 120-cycle |
/// | Branch pred | hybrid: 8-bit gshare w/ 2K 2-bit + 8K bimodal |
/// | Issue | out-of-order, 4 ops/cycle, 64-entry ROB |
/// | Virtual memory | 8K pages, 30-cycle fixed TLB miss |
///
/// # Example
///
/// ```
/// use tpcp_uarch::MachineConfig;
///
/// let m = MachineConfig::hpca2005();
/// assert_eq!(m.l2.size_bytes, 128 * 1024);
/// assert_eq!(m.memory_latency, 120);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// L1 instruction cache geometry.
    pub il1: CacheConfig,
    /// L1 data cache geometry.
    pub dl1: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// Main memory latency in cycles.
    pub memory_latency: u64,
    /// Fixed TLB miss latency in cycles.
    pub tlb_miss_latency: u64,
    /// TLB entry count (not specified by Table 1; see [`crate::Tlb`]).
    pub tlb_entries: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Maximum operations issued per cycle.
    pub issue_width: u64,
    /// Branch misprediction penalty in cycles (pipeline refill; a modeling
    /// constant — SimpleScalar's default front-end depth gives ~3–7 cycles,
    /// we use 7 for an out-of-order core with a 64-entry ROB).
    pub branch_penalty: u64,
    /// Fraction of a data-miss latency that out-of-order execution hides
    /// (memory-level parallelism). 0 = fully exposed, 1 = fully hidden.
    pub data_miss_overlap: f64,
    /// Stride-prefetch degree for the data side; `0` (the Table 1
    /// default — SimpleScalar has no prefetcher) disables prefetching.
    pub prefetch_degree: usize,
}

impl MachineConfig {
    /// The paper's Table 1 baseline.
    pub fn hpca2005() -> Self {
        Self {
            il1: CacheConfig::new(16 * 1024, 4, 32),
            dl1: CacheConfig::new(16 * 1024, 4, 32),
            l2: CacheConfig::new(128 * 1024, 8, 64),
            l2_latency: 12,
            memory_latency: 120,
            tlb_miss_latency: 30,
            tlb_entries: 64,
            page_bytes: 8192,
            issue_width: 4,
            branch_penalty: 7,
            data_miss_overlap: 0.75,
            prefetch_degree: 0,
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::hpca2005()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let m = MachineConfig::hpca2005();
        assert_eq!(m.il1.size_bytes, 16 * 1024);
        assert_eq!(m.il1.assoc, 4);
        assert_eq!(m.il1.block_bytes, 32);
        assert_eq!(m.dl1, m.il1);
        assert_eq!(m.l2.assoc, 8);
        assert_eq!(m.l2.block_bytes, 64);
        assert_eq!(m.l2_latency, 12);
        assert_eq!(m.tlb_miss_latency, 30);
        assert_eq!(m.page_bytes, 8192);
        assert_eq!(m.issue_width, 4);
    }

    #[test]
    fn default_is_table1() {
        assert_eq!(MachineConfig::default(), MachineConfig::hpca2005());
    }
}
