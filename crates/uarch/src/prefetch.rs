//! A simple stream/stride prefetcher (an opt-in extension).
//!
//! The paper's Table 1 machine has no prefetcher (SimpleScalar's default),
//! so [`MachineConfig::hpca2005`](crate::MachineConfig::hpca2005) leaves
//! this off (`prefetch_degree = 0`). Enabling it is useful for studying
//! how phase classification interacts with a memory system whose behaviour
//! changes under the same code — e.g. CPI compression between phases.

use serde::{Deserialize, Serialize};

/// Detects constant-stride miss streams and suggests prefetch addresses.
///
/// The detector watches the data-miss address stream: once two consecutive
/// miss deltas agree, it emits `degree` prefetch addresses ahead of each
/// stride-conforming miss.
///
/// # Example
///
/// ```
/// use tpcp_uarch::StridePrefetcher;
///
/// let mut p = StridePrefetcher::new(2);
/// assert!(p.on_miss(0x1000).is_empty());  // first miss: no pattern yet
/// assert!(p.on_miss(0x1040).is_empty());  // stride seen once
/// let prefetches = p.on_miss(0x1080);     // stride confirmed
/// assert_eq!(prefetches, vec![0x10c0, 0x1100]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StridePrefetcher {
    degree: usize,
    last_miss: Option<u64>,
    stride: i64,
    confirmed: bool,
}

impl StridePrefetcher {
    /// Creates a prefetcher issuing up to `degree` prefetches per miss.
    /// `degree == 0` disables it (every call returns no addresses).
    pub fn new(degree: usize) -> Self {
        Self {
            degree,
            last_miss: None,
            stride: 0,
            confirmed: false,
        }
    }

    /// Prefetch degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Observes a demand miss at `addr`; returns the addresses to prefetch.
    pub fn on_miss(&mut self, addr: u64) -> Vec<u64> {
        if self.degree == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        if let Some(last) = self.last_miss {
            let delta = addr.wrapping_sub(last) as i64;
            if delta != 0 && delta == self.stride {
                self.confirmed = true;
                for i in 1..=self.degree as i64 {
                    out.push(addr.wrapping_add((self.stride * i) as u64));
                }
            } else {
                self.stride = delta;
                self.confirmed = false;
            }
        }
        self.last_miss = Some(addr);
        out
    }

    /// Resets the detector (e.g. at a context switch).
    pub fn reset(&mut self) {
        self.last_miss = None;
        self.stride = 0;
        self.confirmed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_zero_is_inert() {
        let mut p = StridePrefetcher::new(0);
        for a in [0u64, 64, 128, 192] {
            assert!(p.on_miss(a).is_empty());
        }
    }

    #[test]
    fn learns_positive_and_negative_strides() {
        let mut p = StridePrefetcher::new(1);
        p.on_miss(0x2000);
        p.on_miss(0x1fc0); // delta -64
        assert_eq!(p.on_miss(0x1f80), vec![0x1f40]);
    }

    #[test]
    fn random_misses_never_confirm() {
        let mut p = StridePrefetcher::new(4);
        let mut issued = 0;
        let mut x = 7u64;
        for _ in 0..100 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            issued += p.on_miss(x & 0xFFFF_FFC0).len();
        }
        assert!(issued < 20, "random stream should rarely trigger: {issued}");
    }

    #[test]
    fn stride_change_retrains() {
        let mut p = StridePrefetcher::new(1);
        p.on_miss(0);
        p.on_miss(64);
        // Stride switches from 64 to 128: nothing issued while retraining.
        assert!(p.on_miss(64 + 128).is_empty());
        assert_eq!(p.on_miss(64 + 256), vec![64 + 384]);
    }

    #[test]
    fn reset_clears_training() {
        let mut p = StridePrefetcher::new(1);
        p.on_miss(0);
        p.on_miss(64);
        p.reset();
        assert!(p.on_miss(128).is_empty());
        assert!(p.on_miss(192).is_empty());
    }
}
