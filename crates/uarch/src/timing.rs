//! Interval-level timing model.
//!
//! SimpleScalar's `sim-outorder` computes cycles by simulating every pipeline
//! stage. For phase classification what matters is that cycles (and hence
//! CPI) respond to the same microarchitectural events with the Table 1
//! latencies. [`TimingModel`] therefore charges cycles per *event count*:
//! a base cost from issue width plus exposed penalties for I-cache misses,
//! data misses at each level, TLB misses, and branch mispredictions, with an
//! overlap factor modeling the memory-level parallelism an out-of-order core
//! extracts.

use serde::{Deserialize, Serialize};

use crate::config::MachineConfig;

/// Microarchitectural event counts for a stretch of execution (a dynamic
/// basic block, or a whole interval — the model is linear, so both work).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// Committed instructions.
    pub instructions: u64,
    /// L1 I-cache misses that hit in L2.
    pub il1_misses: u64,
    /// L1 D-cache misses that hit in L2.
    pub dl1_misses: u64,
    /// L2 misses (either side) that went to memory.
    pub l2_misses: u64,
    /// Data TLB misses.
    pub tlb_misses: u64,
    /// Branch mispredictions.
    pub branch_mispredictions: u64,
}

impl EventCounts {
    /// Component-wise accumulation.
    pub fn add(&mut self, other: &EventCounts) {
        self.instructions += other.instructions;
        self.il1_misses += other.il1_misses;
        self.dl1_misses += other.dl1_misses;
        self.l2_misses += other.l2_misses;
        self.tlb_misses += other.tlb_misses;
        self.branch_mispredictions += other.branch_mispredictions;
    }
}

/// Converts [`EventCounts`] into cycles under a [`MachineConfig`].
///
/// # Example
///
/// ```
/// use tpcp_uarch::{EventCounts, MachineConfig, TimingModel};
///
/// let tm = TimingModel::new(MachineConfig::hpca2005());
/// let ideal = tm.cycles(&EventCounts { instructions: 1000, ..Default::default() });
/// let missy = tm.cycles(&EventCounts {
///     instructions: 1000,
///     l2_misses: 50,
///     ..Default::default()
/// });
/// assert!(missy > ideal);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    config: MachineConfig,
    /// Base CPI achieved with no misses; 1/issue_width scaled by a pipeline
    /// efficiency factor (dependences keep real cores well under their
    /// ideal width).
    base_cpi: f64,
}

impl TimingModel {
    /// Builds a timing model over a machine configuration.
    pub fn new(config: MachineConfig) -> Self {
        // A 4-wide out-of-order core sustains roughly 1.6 IPC on
        // dependence-limited integer code; base CPI ≈ 0.6 before stalls.
        let base_cpi = (1.0 / config.issue_width as f64) * 2.5;
        Self { config, base_cpi }
    }

    /// The machine configuration this model charges latencies from.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Base CPI charged per instruction before any miss penalties.
    pub fn base_cpi(&self) -> f64 {
        self.base_cpi
    }

    /// Cycles for the given event counts.
    ///
    /// Data-side penalties (D-cache, L2, TLB) are scaled by
    /// `1 - data_miss_overlap` to model out-of-order latency hiding;
    /// I-cache misses and branch mispredictions stall the front end and are
    /// charged in full.
    pub fn cycles(&self, ev: &EventCounts) -> u64 {
        let c = &self.config;
        let exposed = 1.0 - c.data_miss_overlap;
        let mut cycles = ev.instructions as f64 * self.base_cpi;
        cycles += ev.il1_misses as f64 * c.l2_latency as f64;
        cycles += ev.dl1_misses as f64 * c.l2_latency as f64 * exposed;
        cycles += ev.l2_misses as f64 * c.memory_latency as f64 * exposed;
        cycles += ev.tlb_misses as f64 * c.tlb_miss_latency as f64;
        cycles += ev.branch_mispredictions as f64 * c.branch_penalty as f64;
        cycles.round() as u64
    }

    /// CPI for the given event counts (`0.0` for zero instructions).
    pub fn cpi(&self, ev: &EventCounts) -> f64 {
        if ev.instructions == 0 {
            0.0
        } else {
            self.cycles(ev) as f64 / ev.instructions as f64
        }
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        Self::new(MachineConfig::hpca2005())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tm() -> TimingModel {
        TimingModel::default()
    }

    #[test]
    fn zero_events_zero_cycles() {
        assert_eq!(tm().cycles(&EventCounts::default()), 0);
        assert_eq!(tm().cpi(&EventCounts::default()), 0.0);
    }

    #[test]
    fn base_cpi_within_reasonable_range() {
        let cpi = tm().cpi(&EventCounts {
            instructions: 1_000_000,
            ..Default::default()
        });
        assert!(cpi > 0.3 && cpi < 1.0, "ideal CPI {cpi}");
    }

    #[test]
    fn memory_bound_code_has_high_cpi() {
        // mcf-like: a pointer-chasing loop missing L2 every ~10 instructions.
        let cpi = tm().cpi(&EventCounts {
            instructions: 1_000_000,
            dl1_misses: 100_000,
            l2_misses: 100_000,
            tlb_misses: 20_000,
            ..Default::default()
        });
        assert!(cpi > 3.0, "memory-bound CPI {cpi}");
    }

    #[test]
    fn penalties_are_monotonic() {
        let base = EventCounts {
            instructions: 10_000,
            ..Default::default()
        };
        let tm = tm();
        let mut prev = tm.cycles(&base);
        for field in 0..5 {
            let mut ev = base;
            match field {
                0 => ev.il1_misses = 500,
                1 => ev.dl1_misses = 500,
                2 => ev.l2_misses = 500,
                3 => ev.tlb_misses = 500,
                _ => ev.branch_mispredictions = 500,
            }
            let with_penalty = tm.cycles(&ev);
            assert!(with_penalty > prev - 1, "each event class adds cycles");
            prev = tm.cycles(&base);
        }
    }

    #[test]
    fn linearity_under_accumulation() {
        let a = EventCounts {
            instructions: 5_000,
            dl1_misses: 100,
            ..Default::default()
        };
        let b = EventCounts {
            instructions: 7_000,
            l2_misses: 50,
            branch_mispredictions: 30,
            ..Default::default()
        };
        let mut sum = a;
        sum.add(&b);
        let tm = tm();
        let separately = tm.cycles(&a) + tm.cycles(&b);
        let together = tm.cycles(&sum);
        assert!(
            (separately as i64 - together as i64).abs() <= 1,
            "rounding only"
        );
    }

    #[test]
    fn overlap_reduces_data_penalty() {
        let mut cheap_cfg = MachineConfig::hpca2005();
        cheap_cfg.data_miss_overlap = 0.9;
        let mut exposed_cfg = MachineConfig::hpca2005();
        exposed_cfg.data_miss_overlap = 0.0;
        let ev = EventCounts {
            instructions: 10_000,
            l2_misses: 1_000,
            ..Default::default()
        };
        assert!(
            TimingModel::new(cheap_cfg).cycles(&ev) < TimingModel::new(exposed_cfg).cycles(&ev)
        );
    }
}
