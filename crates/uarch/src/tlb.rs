//! A data TLB with LRU replacement over fixed-size pages.

use serde::{Deserialize, Serialize};

/// Translation lookaside buffer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Translations that hit.
    pub hits: u64,
    /// Translations that missed (charged the fixed miss latency).
    pub misses: u64,
}

/// A fully-associative TLB with LRU replacement.
///
/// Table 1 specifies 8K-byte pages with a 30-cycle fixed miss latency; the
/// entry count is not given, so we default to 64 entries (SimpleScalar's
/// default DTLB size is 64 as well) — documented as a modeling choice in
/// DESIGN.md.
///
/// # Example
///
/// ```
/// use tpcp_uarch::Tlb;
///
/// let mut tlb = Tlb::new(4, 8192);
/// assert!(!tlb.access(0x0000));       // cold
/// assert!(tlb.access(0x1fff));        // same 8K page
/// assert!(!tlb.access(0x2000));       // next page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (page, stamp)
    capacity: usize,
    page_shift: u32,
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB holding `capacity` translations of `page_bytes` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `page_bytes` is not a power of two.
    pub fn new(capacity: usize, page_bytes: u64) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            page_shift: page_bytes.trailing_zeros(),
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// The Table 1 configuration: 8K pages, 64 entries.
    pub fn hpca2005() -> Self {
        Self::new(64, 8192)
    }

    /// Translates the page containing `addr`; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let page = addr >> self.page_shift;
        if let Some(entry) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            entry.1 = self.clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(i, _)| i)
                .expect("capacity > 0");
            self.entries.swap_remove(lru);
        }
        self.entries.push((page, self.clock));
        false
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets statistics without invalidating translations.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_granularity() {
        let mut tlb = Tlb::new(8, 8192);
        tlb.access(0x0);
        assert!(tlb.access(8191));
        assert!(!tlb.access(8192));
    }

    #[test]
    fn lru_replacement() {
        let mut tlb = Tlb::new(2, 8192);
        tlb.access(0x0000); // page 0
        tlb.access(0x2000); // page 1
        tlb.access(0x0000); // page 0 is MRU
        tlb.access(0x4000); // evicts page 1
        assert!(tlb.access(0x0000));
        assert!(!tlb.access(0x2000));
    }

    #[test]
    fn stats_accumulate() {
        let mut tlb = Tlb::new(2, 8192);
        tlb.access(0x0);
        tlb.access(0x0);
        tlb.access(0x2000);
        let s = tlb.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        tlb.reset_stats();
        assert_eq!(tlb.stats(), TlbStats::default());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        Tlb::new(0, 8192);
    }

    #[test]
    fn random_pages_beyond_capacity_thrash() {
        let mut tlb = Tlb::new(4, 8192);
        for lap in 0..3 {
            for page in 0..16u64 {
                let hit = tlb.access(page * 8192);
                if lap > 0 {
                    // Sequential sweep over 16 pages with 4 entries: LRU
                    // guarantees zero hits.
                    assert!(!hit);
                }
            }
        }
    }
}
