//! Offline SimPoint-style phase classification.
//!
//! The paper repeatedly compares its *online* classifier against the
//! *offline* classification produced by SimPoint (Sherwood et al.,
//! ASPLOS'02): "the resulting CPI CoV and number of phases produced are
//! comparable to the results of the offline phase classification algorithm
//! used in SimPoint" (Section 4.4). This crate implements that baseline:
//!
//! 1. project each interval's basic block vector to a low dimension with a
//!    deterministic random projection ([`RandomProjection`], 15 dimensions
//!    by default, the count the paper cites from ASPLOS'02);
//! 2. run k-means ([`kmeans`]) for a range of `k`;
//! 3. score each clustering with the Bayesian Information Criterion
//!    ([`bic_score`]) and pick the smallest `k` whose score reaches a set
//!    fraction of the best observed score (SimPoint's selection rule).
//!
//! # Example
//!
//! ```
//! use tpcp_simpoint::{SimPointConfig, SimPointClassifier};
//! use tpcp_trace::{BbvTrace, PhaseSpec, SyntheticTrace};
//!
//! let trace = SyntheticTrace::new(10_000)
//!     .phase(PhaseSpec::uniform(0x1000, 6, 1.0))
//!     .phase(PhaseSpec::uniform(0x9000, 6, 3.0))
//!     .schedule(&[(0, 20), (1, 20), (0, 20)])
//!     .generate();
//! let bbvs = BbvTrace::collect(trace.replay());
//!
//! let result = SimPointClassifier::new(SimPointConfig::default()).classify(&bbvs);
//! assert_eq!(result.assignments.len(), 60);
//! // The two scripted phases are separated.
//! assert_ne!(result.assignments[0], result.assignments[30]);
//! assert_eq!(result.assignments[0], result.assignments[50]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bic;
mod classify;
mod kmeans;
mod points;
mod projection;
mod stratified;

pub use bic::bic_score;
pub use classify::{SimPointClassifier, SimPointConfig, SimPointResult};
pub use kmeans::{kmeans, KmeansResult};
pub use points::{SimPoint, SimPoints};
pub use projection::RandomProjection;
pub use stratified::{StratifiedConfig, StratifiedEstimate, StratifiedPlan, Stratum};
