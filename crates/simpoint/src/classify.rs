//! The end-to-end SimPoint classifier: project → sweep k → pick by BIC.

use serde::{Deserialize, Serialize};

use tpcp_trace::BbvTrace;

use crate::bic::bic_score;
use crate::kmeans::kmeans;
use crate::projection::RandomProjection;

/// Configuration of the offline classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimPointConfig {
    /// Projected dimensionality (ASPLOS'02 uses 15).
    pub projected_dims: usize,
    /// Largest cluster count to consider.
    pub max_k: usize,
    /// Pick the smallest k whose BIC reaches this fraction of the best
    /// observed BIC (SimPoint's standard rule; 0.9 by default).
    pub bic_fraction: f64,
    /// k-means iteration cap.
    pub max_iters: usize,
    /// Seed for the projection and k-means initialization.
    pub seed: u64,
}

impl Default for SimPointConfig {
    fn default() -> Self {
        Self {
            projected_dims: 15,
            max_k: 10,
            bic_fraction: 0.9,
            max_iters: 100,
            seed: 0x5EED_0001,
        }
    }
}

/// Result of an offline classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimPointResult {
    /// Chosen cluster (phase) index per interval.
    pub assignments: Vec<usize>,
    /// The chosen number of clusters.
    pub k: usize,
    /// `(k, BIC score)` for every k evaluated.
    pub bic_scores: Vec<(usize, f64)>,
}

/// The offline SimPoint-style classifier; see the crate docs for the
/// algorithm and [`SimPointConfig`] for knobs.
#[derive(Debug, Clone, Copy)]
pub struct SimPointClassifier {
    config: SimPointConfig,
}

impl SimPointClassifier {
    /// Creates a classifier.
    ///
    /// # Panics
    ///
    /// Panics if `projected_dims` or `max_k` is zero, or `bic_fraction` is
    /// not in `(0, 1]`.
    pub fn new(config: SimPointConfig) -> Self {
        assert!(config.projected_dims > 0, "projected dims must be positive");
        assert!(config.max_k > 0, "max_k must be positive");
        assert!(
            config.bic_fraction > 0.0 && config.bic_fraction <= 1.0,
            "bic_fraction must be in (0, 1]"
        );
        Self { config }
    }

    /// The classifier's configuration.
    pub fn config(&self) -> &SimPointConfig {
        &self.config
    }

    /// Classifies a BBV trace into phases.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn classify(&self, trace: &BbvTrace) -> SimPointResult {
        assert!(!trace.is_empty(), "cannot classify an empty trace");
        let cfg = &self.config;
        let projection = RandomProjection::new(cfg.projected_dims, cfg.seed);
        let points = projection.project_all(&trace.vectors);

        let max_k = cfg.max_k.min(points.len());
        let runs: Vec<_> = (1..=max_k)
            .map(|k| {
                let r = kmeans(
                    &points,
                    k,
                    cfg.max_iters,
                    cfg.seed ^ (k as u64).wrapping_mul(0x9E37),
                );
                let score = bic_score(&points, &r);
                (k, r, score)
            })
            .collect();

        // SimPoint rule: smallest k reaching bic_fraction of the score
        // span above the worst score (scores can be negative, so normalize
        // against the observed range).
        let best = runs
            .iter()
            .map(|(_, _, s)| *s)
            .fold(f64::NEG_INFINITY, f64::max);
        let worst = runs
            .iter()
            .map(|(_, _, s)| *s)
            .fold(f64::INFINITY, f64::min);
        let span = (best - worst).max(f64::EPSILON);
        let threshold = worst + cfg.bic_fraction * span;

        let chosen = runs
            .iter()
            .find(|(_, _, s)| *s >= threshold)
            .or(runs.last())
            .expect("at least one k evaluated");

        SimPointResult {
            assignments: chosen.1.assignments.clone(),
            k: chosen.0,
            bic_scores: runs.iter().map(|(k, _, s)| (*k, *s)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcp_trace::{BbvTrace, PhaseSpec, SyntheticTrace};

    fn three_phase_trace() -> BbvTrace {
        let trace = SyntheticTrace::new(10_000)
            .phase(PhaseSpec::uniform(0x1000, 6, 1.0))
            .phase(PhaseSpec::uniform(0x9000, 6, 2.0))
            .phase(PhaseSpec::uniform(0x5_0000, 6, 3.0))
            .schedule(&[(0, 15), (1, 15), (2, 15), (0, 15)])
            .generate();
        BbvTrace::collect(trace.replay())
    }

    #[test]
    fn recovers_scripted_phases() {
        let result =
            SimPointClassifier::new(SimPointConfig::default()).classify(&three_phase_trace());
        // Reappearing phase 0 gets the same cluster.
        assert_eq!(result.assignments[0], result.assignments[50]);
        // The three scripted phases are distinguished.
        assert_ne!(result.assignments[0], result.assignments[20]);
        assert_ne!(result.assignments[20], result.assignments[35]);
        assert!(result.k >= 3, "chose k = {}", result.k);
    }

    #[test]
    fn bic_scores_reported_for_every_k() {
        let cfg = SimPointConfig {
            max_k: 6,
            ..Default::default()
        };
        let result = SimPointClassifier::new(cfg).classify(&three_phase_trace());
        assert_eq!(result.bic_scores.len(), 6);
        assert!(result.bic_scores.iter().all(|(_, s)| s.is_finite()));
    }

    #[test]
    fn deterministic_for_seed() {
        let trace = three_phase_trace();
        let a = SimPointClassifier::new(SimPointConfig::default()).classify(&trace);
        let b = SimPointClassifier::new(SimPointConfig::default()).classify(&trace);
        assert_eq!(a, b);
    }

    #[test]
    fn single_interval_trace_works() {
        let trace = SyntheticTrace::new(1_000)
            .phase(PhaseSpec::uniform(0x1000, 2, 1.0))
            .schedule(&[(0, 1)])
            .generate();
        let bbvs = BbvTrace::collect(trace.replay());
        let result = SimPointClassifier::new(SimPointConfig::default()).classify(&bbvs);
        assert_eq!(result.assignments, vec![0]);
        assert_eq!(result.k, 1);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        SimPointClassifier::new(SimPointConfig::default()).classify(&BbvTrace::default());
    }
}
