//! Bayesian Information Criterion scoring for clusterings.
//!
//! SimPoint picks its cluster count by scoring each k-means run with the
//! BIC formulation of Pelleg & Moore (X-means, ICML 2000): the
//! log-likelihood of the data under a spherical-Gaussian mixture fit to the
//! clustering, minus a complexity penalty of `p/2 * log(R)` where `p` is
//! the number of free parameters and `R` the number of points.

use crate::kmeans::KmeansResult;

/// Computes the BIC score of a clustering over `points`.
///
/// Higher is better. Scores are comparable across different `k` on the
/// *same* data set, which is exactly how SimPoint uses them.
///
/// # Panics
///
/// Panics if `points` is empty or assignments disagree with `points` in
/// length.
///
/// # Example
///
/// ```
/// use tpcp_simpoint::{bic_score, kmeans};
///
/// let mut points: Vec<Vec<f64>> = (0..20).map(|i| vec![f64::from(i % 2) * 10.0]).collect();
/// points[0][0] += 0.01; // break exact degeneracy
/// let good = kmeans(&points, 2, 50, 1);
/// let poor = kmeans(&points, 1, 50, 1);
/// assert!(bic_score(&points, &good) > bic_score(&points, &poor));
/// ```
pub fn bic_score(points: &[Vec<f64>], clustering: &KmeansResult) -> f64 {
    assert!(!points.is_empty(), "BIC needs at least one point");
    assert_eq!(
        points.len(),
        clustering.assignments.len(),
        "assignments must cover all points"
    );
    let r = points.len() as f64;
    let dims = points[0].len() as f64;
    let k = clustering.centroids.len() as f64;

    // Maximum-likelihood spherical variance estimate, floored to avoid a
    // degenerate (infinite-likelihood) fit when all points coincide.
    let variance = (clustering.distortion / (dims * (r - k).max(1.0))).max(1e-12);

    let mut cluster_sizes = vec![0u64; clustering.centroids.len()];
    for &a in &clustering.assignments {
        cluster_sizes[a] += 1;
    }

    // Log-likelihood under the fitted mixture.
    let mut log_likelihood = 0.0;
    for &rn in &cluster_sizes {
        if rn == 0 {
            continue;
        }
        let rn = rn as f64;
        log_likelihood += rn * (rn / r).ln()
            - (rn * dims / 2.0) * (2.0 * std::f64::consts::PI * variance).ln()
            - (rn - 1.0) * dims / 2.0;
    }

    // Free parameters: k-1 mixing weights, k*dims centroid coordinates, one
    // shared variance.
    let params = (k - 1.0) + k * dims + 1.0;
    log_likelihood - params / 2.0 * r.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::kmeans;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut v: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 5) as f64 * 0.1, (i % 3) as f64 * 0.1])
            .collect();
        v.extend((0..30).map(|i| vec![20.0 + (i % 5) as f64 * 0.1, 20.0 + (i % 3) as f64 * 0.1]));
        v
    }

    #[test]
    fn true_k_scores_best() {
        let points = two_blobs();
        let scores: Vec<f64> = (1..=5)
            .map(|k| bic_score(&points, &kmeans(&points, k, 100, 3)))
            .collect();
        let best_k = scores
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
            .map(|(i, _)| i + 1)
            .unwrap();
        assert_eq!(best_k, 2, "scores: {scores:?}");
    }

    #[test]
    fn overfitting_is_penalized() {
        let points = two_blobs();
        let k2 = bic_score(&points, &kmeans(&points, 2, 100, 3));
        let k5 = bic_score(&points, &kmeans(&points, 5, 100, 3));
        assert!(k2 > k5, "k=2 ({k2}) should beat k=5 ({k5})");
    }

    #[test]
    fn score_is_finite_on_degenerate_data() {
        let points = vec![vec![1.0, 2.0]; 10];
        let score = bic_score(&points, &kmeans(&points, 2, 50, 0));
        assert!(score.is_finite());
    }

    #[test]
    #[should_panic(expected = "cover all points")]
    fn mismatched_assignments_rejected() {
        let points = vec![vec![0.0], vec![1.0]];
        let mut clustering = kmeans(&points, 1, 10, 0);
        clustering.assignments.pop();
        bic_score(&points, &clustering);
    }
}
