//! Simulation point selection — what SimPoint is actually *for*.
//!
//! After clustering, SimPoint picks one representative interval per
//! cluster (the interval closest to the cluster centroid) and weights it
//! by the cluster's share of execution. Simulating only those points and
//! combining them with their weights estimates whole-program behaviour at
//! a tiny fraction of the cost (Sherwood et al., ASPLOS'02).

use serde::{Deserialize, Serialize};

use tpcp_trace::BbvTrace;

use crate::classify::SimPointResult;
use crate::projection::RandomProjection;

/// One chosen simulation point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimPoint {
    /// Interval index of the representative.
    pub interval: usize,
    /// The cluster it represents.
    pub cluster: usize,
    /// Fraction of execution (intervals) its cluster accounts for.
    pub weight: f64,
}

/// The selected simulation points for one program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimPoints {
    /// One point per non-empty cluster, ordered by cluster index.
    pub points: Vec<SimPoint>,
}

impl SimPoints {
    /// Picks simulation points from a clustering of `trace`.
    ///
    /// For each cluster, the member interval whose projected BBV is
    /// closest to the cluster's mean is chosen; its weight is the
    /// cluster's interval share.
    ///
    /// # Panics
    ///
    /// Panics if `result.assignments` does not match the trace length.
    pub fn select(
        trace: &BbvTrace,
        result: &SimPointResult,
        projection: &RandomProjection,
    ) -> Self {
        assert_eq!(
            trace.len(),
            result.assignments.len(),
            "clustering must cover the trace"
        );
        let points_proj = projection.project_all(&trace.vectors);
        let k = result.k;

        // Cluster means in projected space.
        let dims = projection.dims();
        let mut sums = vec![vec![0.0; dims]; k];
        let mut counts = vec![0usize; k];
        for (p, &c) in points_proj.iter().zip(&result.assignments) {
            counts[c] += 1;
            for (s, &x) in sums[c].iter_mut().zip(p) {
                *s += x;
            }
        }

        let mut points = Vec::new();
        for cluster in 0..k {
            if counts[cluster] == 0 {
                continue;
            }
            let mean: Vec<f64> = sums[cluster]
                .iter()
                .map(|s| s / counts[cluster] as f64)
                .collect();
            let representative = points_proj
                .iter()
                .enumerate()
                .filter(|(i, _)| result.assignments[*i] == cluster)
                .min_by(|(_, a), (_, b)| {
                    let da: f64 = a.iter().zip(&mean).map(|(x, m)| (x - m) * (x - m)).sum();
                    let db: f64 = b.iter().zip(&mean).map(|(x, m)| (x - m) * (x - m)).sum();
                    da.partial_cmp(&db).expect("finite distances")
                })
                .map(|(i, _)| i)
                .expect("non-empty cluster has a representative");
            points.push(SimPoint {
                interval: representative,
                cluster,
                weight: counts[cluster] as f64 / trace.len() as f64,
            });
        }
        Self { points }
    }

    /// Estimates whole-program CPI by combining each point's CPI with its
    /// cluster weight — the SimPoint use case.
    pub fn estimate_cpi(&self, trace: &BbvTrace) -> f64 {
        self.points
            .iter()
            .map(|p| trace.summaries[p.interval].cpi() * p.weight)
            .sum()
    }

    /// The true whole-program CPI (weighted by interval instructions) for
    /// comparison with [`estimate_cpi`](Self::estimate_cpi).
    pub fn true_cpi(trace: &BbvTrace) -> f64 {
        let cycles: u64 = trace.summaries.iter().map(|s| s.cycles).sum();
        let insns: u64 = trace.summaries.iter().map(|s| s.instructions).sum();
        if insns == 0 {
            0.0
        } else {
            cycles as f64 / insns as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{SimPointClassifier, SimPointConfig};
    use tpcp_trace::{PhaseSpec, SyntheticTrace};

    fn trace() -> BbvTrace {
        let t = SyntheticTrace::new(10_000)
            .phase(PhaseSpec::uniform(0x1000, 6, 1.0))
            .phase(PhaseSpec::uniform(0x9000, 6, 4.0))
            .schedule(&[(0, 30), (1, 10), (0, 20)])
            .generate();
        BbvTrace::collect(t.replay())
    }

    fn classify(trace: &BbvTrace) -> (SimPointResult, RandomProjection) {
        let cfg = SimPointConfig::default();
        let result = SimPointClassifier::new(cfg).classify(trace);
        (result, RandomProjection::new(cfg.projected_dims, cfg.seed))
    }

    #[test]
    fn one_point_per_cluster_weights_sum_to_one() {
        let trace = trace();
        let (result, projection) = classify(&trace);
        let points = SimPoints::select(&trace, &result, &projection);
        assert!(!points.points.is_empty());
        let total: f64 = points.points.iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
        // Representatives belong to their clusters.
        for p in &points.points {
            assert_eq!(result.assignments[p.interval], p.cluster);
        }
    }

    #[test]
    fn estimated_cpi_close_to_true_cpi() {
        let trace = trace();
        let (result, projection) = classify(&trace);
        let points = SimPoints::select(&trace, &result, &projection);
        let estimate = points.estimate_cpi(&trace);
        let truth = SimPoints::true_cpi(&trace);
        let err = (estimate - truth).abs() / truth;
        assert!(
            err < 0.05,
            "estimate {estimate} vs true {truth} ({err:.1}% error)"
        );
    }

    #[test]
    fn true_cpi_of_empty_trace_is_zero() {
        assert_eq!(SimPoints::true_cpi(&BbvTrace::default()), 0.0);
    }
}
