//! Seeded k-means with k-means++ initialization.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of one k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// Cluster index per point.
    pub assignments: Vec<usize>,
    /// Final centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances from points to their centroids.
    pub distortion: f64,
    /// Iterations executed before convergence (or the cap).
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs k-means on `points` with `k` clusters.
///
/// Initialization is k-means++ driven by a seeded RNG, so results are fully
/// reproducible. Empty clusters are re-seeded to the farthest point from
/// its centroid.
///
/// # Panics
///
/// Panics if `points` is empty, `k` is zero, or points have inconsistent
/// dimensionality.
///
/// # Example
///
/// ```
/// use tpcp_simpoint::kmeans;
///
/// let points = vec![
///     vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1],
///     vec![5.0, 5.0], vec![5.1, 5.0], vec![5.0, 5.1],
/// ];
/// let result = kmeans(&points, 2, 100, 42);
/// assert_eq!(result.assignments[0], result.assignments[1]);
/// assert_ne!(result.assignments[0], result.assignments[3]);
/// ```
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iters: usize, seed: u64) -> KmeansResult {
    assert!(!points.is_empty(), "kmeans needs at least one point");
    assert!(k > 0, "k must be positive");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "all points must share dimensionality"
    );
    let k = k.min(points.len());
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())].clone());
    let mut min_d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = min_d2.iter().sum();
        let next = if total <= f64::EPSILON {
            // All points coincide with current centroids; pick arbitrary.
            rng.random_range(0..points.len())
        } else {
            let mut target = rng.random::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in min_d2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            let d = sq_dist(p, centroids.last().expect("just pushed"));
            if d < min_d2[i] {
                min_d2[i] = d;
            }
        }
    }

    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    for iter in 0..max_iters {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..centroids.len())
                .min_by(|&a, &b| {
                    sq_dist(p, &centroids[a])
                        .partial_cmp(&sq_dist(p, &centroids[b]))
                        .expect("distances are finite")
                })
                .expect("k >= 1");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if count > 0 {
                for (ci, &s) in c.iter_mut().zip(sum) {
                    *ci = s / count as f64;
                }
            }
        }
        // Re-seed empty clusters with the globally farthest point.
        for (ci, &count) in counts.iter().enumerate() {
            if count == 0 {
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(ia, a), (ib, b)| {
                        sq_dist(a, &centroids[assignments[*ia]])
                            .partial_cmp(&sq_dist(b, &centroids[assignments[*ib]]))
                            .expect("finite")
                    })
                    .map(|(i, _)| i)
                    .expect("points non-empty");
                centroids[ci] = points[far].clone();
            }
        }
        if !changed && iter > 0 {
            break;
        }
    }

    let distortion = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| sq_dist(p, &centroids[a]))
        .sum();
    KmeansResult {
        assignments,
        centroids,
        distortion,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: (f64, f64), n: usize, spread: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let angle = i as f64 * 2.399963; // golden-angle spiral
                vec![
                    center.0 + spread * angle.cos() * (i as f64 / n as f64),
                    center.1 + spread * angle.sin() * (i as f64 / n as f64),
                ]
            })
            .collect()
    }

    #[test]
    fn separates_well_spaced_blobs() {
        let mut points = blob((0.0, 0.0), 30, 0.5);
        points.extend(blob((10.0, 10.0), 30, 0.5));
        let r = kmeans(&points, 2, 100, 1);
        let first = r.assignments[0];
        assert!(r.assignments[..30].iter().all(|&a| a == first));
        assert!(r.assignments[30..].iter().all(|&a| a != first));
    }

    #[test]
    fn k_one_groups_everything() {
        let points = blob((3.0, 3.0), 20, 1.0);
        let r = kmeans(&points, 1, 50, 0);
        assert!(r.assignments.iter().all(|&a| a == 0));
        assert_eq!(r.centroids.len(), 1);
    }

    #[test]
    fn k_capped_at_point_count() {
        let points = vec![vec![0.0], vec![1.0]];
        let r = kmeans(&points, 10, 50, 0);
        assert!(r.centroids.len() <= 2);
    }

    #[test]
    fn deterministic_for_seed() {
        let points = blob((0.0, 0.0), 40, 2.0);
        let a = kmeans(&points, 3, 100, 9);
        let b = kmeans(&points, 3, 100, 9);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.distortion, b.distortion);
    }

    #[test]
    fn more_clusters_never_increase_distortion_much() {
        let mut points = blob((0.0, 0.0), 25, 1.0);
        points.extend(blob((8.0, 0.0), 25, 1.0));
        points.extend(blob((0.0, 8.0), 25, 1.0));
        let d2 = kmeans(&points, 2, 100, 4).distortion;
        let d3 = kmeans(&points, 3, 100, 4).distortion;
        assert!(d3 < d2, "the true k should fit better: {d3} vs {d2}");
    }

    #[test]
    fn identical_points_converge() {
        let points = vec![vec![1.0, 1.0]; 10];
        let r = kmeans(&points, 3, 50, 7);
        assert!(r.distortion < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_input_rejected() {
        kmeans(&[], 2, 10, 0);
    }

    #[test]
    #[should_panic(expected = "share dimensionality")]
    fn ragged_input_rejected() {
        kmeans(&[vec![1.0], vec![1.0, 2.0]], 1, 10, 0);
    }
}
