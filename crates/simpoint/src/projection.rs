//! Deterministic random projection of sparse BBVs.

use tpcp_trace::Bbv;

/// Projects sparse basic block vectors into a dense low-dimensional space.
///
/// Instead of materializing a projection matrix over the (unbounded) space
/// of branch PCs, the coefficient for `(pc, dim)` is derived on the fly
/// from a hash of the pair and the seed — deterministic, storage-free, and
/// equivalent in distribution to the uniform random matrix SimPoint uses.
///
/// # Example
///
/// ```
/// use tpcp_simpoint::RandomProjection;
/// use tpcp_trace::{BbvBuilder, BranchEvent};
///
/// let proj = RandomProjection::new(15, 42);
/// let mut b = BbvBuilder::new();
/// b.observe(BranchEvent::new(0x1000, 100));
/// let v = proj.project(&b.finish());
/// assert_eq!(v.len(), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomProjection {
    dims: usize,
    seed: u64,
}

impl RandomProjection {
    /// Creates a projection to `dims` dimensions with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is zero.
    pub fn new(dims: usize, seed: u64) -> Self {
        assert!(dims > 0, "projection dimension must be positive");
        Self { dims, seed }
    }

    /// Output dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    fn coefficient(&self, pc: u64, dim: usize) -> f64 {
        // SplitMix64-style hash of (seed, pc, dim) -> uniform [0, 1).
        let mut z = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(pc)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(dim as u64 + 1);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Projects one normalized BBV to a dense vector.
    pub fn project(&self, bbv: &Bbv) -> Vec<f64> {
        let mut out = vec![0.0; self.dims];
        for (pc, weight) in bbv.iter() {
            for (dim, slot) in out.iter_mut().enumerate() {
                *slot += weight * self.coefficient(pc, dim);
            }
        }
        out
    }

    /// Projects every BBV of a trace.
    pub fn project_all(&self, bbvs: &[Bbv]) -> Vec<Vec<f64>> {
        bbvs.iter().map(|b| self.project(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcp_trace::{BbvBuilder, BranchEvent};

    fn bbv(pairs: &[(u64, u32)]) -> Bbv {
        let mut b = BbvBuilder::new();
        for &(pc, n) in pairs {
            b.observe(BranchEvent::new(pc, n));
        }
        b.finish()
    }

    #[test]
    fn deterministic_for_same_seed() {
        let v = bbv(&[(0x10, 50), (0x20, 50)]);
        let a = RandomProjection::new(8, 7).project(&v);
        let b = RandomProjection::new(8, 7).project(&v);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let v = bbv(&[(0x10, 50), (0x20, 50)]);
        let a = RandomProjection::new(8, 1).project(&v);
        let b = RandomProjection::new(8, 2).project(&v);
        assert_ne!(a, b);
    }

    #[test]
    fn projection_is_linear_in_weights() {
        // Identical distributions (same normalized BBV) project identically
        // regardless of absolute counts.
        let a = bbv(&[(0x10, 10), (0x20, 30)]);
        let b = bbv(&[(0x10, 100), (0x20, 300)]);
        let proj = RandomProjection::new(8, 3);
        let pa = proj.project(&a);
        let pb = proj.project(&b);
        for (x, y) in pa.iter().zip(&pb) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn distinct_code_projects_apart() {
        let proj = RandomProjection::new(15, 42);
        let a = proj.project(&bbv(&[(0x10, 100)]));
        let b = proj.project(&bbv(&[(0x9000, 100)]));
        let dist: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).powi(2)).sum();
        assert!(dist.sqrt() > 0.1, "distinct PCs should separate: {dist}");
    }

    #[test]
    fn empty_bbv_projects_to_zero() {
        let proj = RandomProjection::new(4, 0);
        let b = BbvBuilder::new().finish();
        assert_eq!(proj.project(&b), vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_rejected() {
        RandomProjection::new(0, 0);
    }

    #[test]
    fn coefficients_are_unit_uniform() {
        let proj = RandomProjection::new(1, 9);
        let mut sum = 0.0;
        let n = 10_000;
        for pc in 0..n {
            let c = proj.coefficient(pc, 0);
            assert!((0.0..1.0).contains(&c));
            sum += c;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
