//! Two-phase stratified-sampling replay planner (Ekman & Stenström,
//! "Enhancing Multiprocessor Architecture Simulation Speed Using Matched
//! Pair Comparison" / classic survey-sampling theory applied to
//! simulation sampling).
//!
//! The planner turns a *cheap* first classification pass into a *small*
//! second measurement pass:
//!
//! 1. **Stratify.** The first pass assigns every interval a phase id and
//!    a cheap CPI proxy (the interval summaries come free with any
//!    replay). Phases are the strata: intervals inside one phase behave
//!    alike, so a few samples per phase represent the lot. A phase that
//!    still mixes regimes — above all the transition phase, which pools
//!    everything the classifier could not place — is cut at the largest
//!    gaps of its sorted CPIs so every final stratum is tight.
//! 2. **Allocate.** The measurement budget is split across strata by
//!    Neyman allocation — `n_h ∝ N_h·σ_h`, stratum size times CPI
//!    standard deviation — which minimizes the estimator's variance for
//!    a fixed total sample count. Homogeneous phases get few samples,
//!    noisy phases get many.
//! 3. **Select.** Within each stratum, members are picked by
//!    deterministic systematic sampling, evenly spaced through the
//!    stratum's members *ordered by cheap-pass CPI* (implicit
//!    stratification on the auxiliary). No RNG: a plan is reproducible
//!    from its inputs alone.
//! 4. **Estimate.** After the sampled replay, the whole-trace CPI is the
//!    stratum-size-weighted mean of the per-stratum sample means, with a
//!    finite-population-corrected standard error.
//!
//! The selected intervals become a [`ReplayPlan`] that the experiment
//! engine's seek-driven replay decodes directly, skipping everything
//! else.

use serde::{Deserialize, Serialize};

use tpcp_trace::ReplayPlan;

/// Knobs for [`StratifiedPlan::design`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StratifiedConfig {
    /// Total intervals the second pass may decode. Clamped to at least
    /// `min_per_stratum` per stratum and at most the trace length.
    pub budget: usize,
    /// Floor on samples per stratum (capped at the stratum size). At
    /// least 1, so every observed phase contributes to the estimate.
    pub min_per_stratum: usize,
    /// Maximum number of CPI bands a heterogeneous phase is split into
    /// (1 disables sub-stratification). The transition phase is
    /// heterogeneous *by construction* — it pools intervals the
    /// classifier could not place — so treating it as one stratum leaves
    /// an irreducible bias no allocation can fix; cutting it at the
    /// largest gaps of its sorted cheap-pass CPIs isolates each regime
    /// into a tight band instead.
    pub cpi_bands: usize,
    /// A sorted-CPI gap cuts a phase when it exceeds this fraction of
    /// the phase's mean CPI. Smooth phases have no such gaps and stay
    /// whole, preserving the speedup.
    pub band_spread: f64,
}

impl Default for StratifiedConfig {
    fn default() -> Self {
        Self {
            budget: 30,
            min_per_stratum: 1,
            cpi_bands: 4,
            band_spread: 0.10,
        }
    }
}

/// One stratum — a (phase, CPI band) cell — of the design: its
/// population statistics from the cheap pass and the sample count Neyman
/// allocation granted it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stratum {
    /// The phase id that defines the stratum.
    pub id: u64,
    /// CPI band within the phase (0 when the phase was not split).
    pub band: usize,
    /// Intervals of the trace in this stratum (`N_h`).
    pub size: usize,
    /// Mean cheap-pass CPI over the stratum.
    pub mean_cpi: f64,
    /// Population standard deviation of the cheap-pass CPI (`σ_h`).
    pub std_cpi: f64,
    /// Samples allocated to the stratum (`n_h`, `min_per_stratum ≤ n_h ≤
    /// N_h`).
    pub allocated: usize,
}

/// A designed sampling plan: strata, the selected interval indices, and
/// the [`ReplayPlan`] that decodes exactly those intervals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StratifiedPlan {
    /// Strata ordered by (phase id, CPI band).
    pub strata: Vec<Stratum>,
    /// Selected interval indices, ascending, deduplicated.
    pub intervals: Vec<u64>,
    /// Trace length the plan was designed for (`N`).
    pub n_intervals: usize,
    /// Stratum index (into [`strata`](Self::strata)) of each selected
    /// interval, parallel to [`intervals`](Self::intervals).
    pub stratum_of: Vec<usize>,
}

/// The combined estimate a sampled replay yields.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StratifiedEstimate {
    /// Estimated whole-trace mean interval CPI: `Σ W_h · x̄_h` with
    /// `W_h = N_h / N`.
    pub cpi: f64,
    /// Finite-population-corrected standard error of the estimate:
    /// `sqrt(Σ W_h² · s_h²/n_h · (1 − n_h/N_h))`.
    pub std_error: f64,
}

impl StratifiedPlan {
    /// Designs a plan from the cheap pass: one phase id and one CPI proxy
    /// per interval.
    ///
    /// Fully deterministic — identical inputs give an identical plan.
    ///
    /// # Panics
    ///
    /// Panics if `ids` and `cpis` differ in length or are empty, or if
    /// `config.min_per_stratum` is 0.
    pub fn design(ids: &[u64], cpis: &[f64], config: &StratifiedConfig) -> Self {
        assert_eq!(ids.len(), cpis.len(), "one CPI per classified interval");
        assert!(!ids.is_empty(), "cannot design a plan for an empty trace");
        assert!(config.min_per_stratum >= 1, "min_per_stratum must be >= 1");
        let n = ids.len();

        // Group interval positions by phase id, deterministically ordered.
        let mut members: std::collections::BTreeMap<u64, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, &id) in ids.iter().enumerate() {
            members.entry(id).or_default().push(i);
        }

        // Sub-stratify at the big *gaps* in each phase's sorted CPI
        // list. A heterogeneous phase — above all the transition phase,
        // which pools intervals the classifier could not place — is a
        // mixture of distinct regimes, and the largest CPI gaps are the
        // regime boundaries. Splitting there isolates each regime into
        // its own tight band (a lone outlier becomes a singleton band
        // and is simply sampled once); a smooth phase has no large gaps
        // and stays whole, where CPI-ordered systematic sampling is
        // already accurate. A gap counts when it exceeds `band_spread`
        // of the phase's mean CPI; the `cpi_bands − 1` largest such
        // gaps cut the phase.
        let mut cells: Vec<(u64, usize, Vec<usize>)> = Vec::new();
        for (&id, idxs) in &members {
            let mut by_cpi = idxs.clone();
            by_cpi.sort_by(|&a, &b| {
                cpis[a]
                    .partial_cmp(&cpis[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            let len = by_cpi.len();
            let mean = by_cpi.iter().map(|&i| cpis[i]).sum::<f64>() / len as f64;
            let threshold = config.band_spread * mean.abs().max(f64::EPSILON);
            let mut cuts: Vec<(f64, usize)> = Vec::new();
            if config.cpi_bands > 1 {
                for w in 0..len.saturating_sub(1) {
                    let gap = cpis[by_cpi[w + 1]] - cpis[by_cpi[w]];
                    if gap > threshold {
                        cuts.push((gap, w + 1));
                    }
                }
                cuts.sort_by(|a, b| {
                    b.0.partial_cmp(&a.0)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.1.cmp(&b.1))
                });
                cuts.truncate(config.cpi_bands - 1);
            }
            let mut bounds: Vec<usize> = cuts.iter().map(|&(_, pos)| pos).collect();
            bounds.sort_unstable();
            bounds.push(len);
            let mut lo = 0;
            for (b, &hi) in bounds.iter().enumerate() {
                cells.push((id, b, by_cpi[lo..hi].to_vec()));
                lo = hi;
            }
        }

        // Population statistics per stratum.
        let mut strata: Vec<Stratum> = cells
            .iter()
            .map(|&(id, band, ref idxs)| {
                let size = idxs.len();
                let mean = idxs.iter().map(|&i| cpis[i]).sum::<f64>() / size as f64;
                let var = idxs
                    .iter()
                    .map(|&i| {
                        let d = cpis[i] - mean;
                        d * d
                    })
                    .sum::<f64>()
                    / size as f64;
                Stratum {
                    id,
                    band,
                    size,
                    mean_cpi: mean,
                    std_cpi: var.sqrt(),
                    allocated: 0,
                }
            })
            .collect();

        // Neyman weights N_h·σ_h; a degenerate all-constant trace falls
        // back to proportional allocation so the budget is still spent.
        let mut weights: Vec<f64> = strata.iter().map(|s| s.size as f64 * s.std_cpi).collect();
        if weights.iter().all(|&w| w == 0.0) {
            for (w, s) in weights.iter_mut().zip(&strata) {
                *w = s.size as f64;
            }
        }

        // Floors first, then spend the rest by Neyman shares with
        // largest-remainder rounding, respecting stratum capacity. The
        // cap loop reruns when a stratum saturates, so small strata
        // cannot absorb budget they cannot hold.
        let floor_total: usize = strata
            .iter_mut()
            .map(|s| {
                s.allocated = config.min_per_stratum.min(s.size);
                s.allocated
            })
            .sum();
        let budget = config.budget.clamp(floor_total, n);
        let mut remaining = budget - floor_total;
        while remaining > 0 {
            let open: Vec<usize> = (0..strata.len())
                .filter(|&h| strata[h].allocated < strata[h].size)
                .collect();
            if open.is_empty() {
                break;
            }
            let total_w: f64 = open.iter().map(|&h| weights[h]).sum();
            // All open weights zero (their strata were exhausted in the
            // proportional fallback): spread evenly.
            let share = |h: usize| {
                if total_w > 0.0 {
                    remaining as f64 * weights[h] / total_w
                } else {
                    remaining as f64 / open.len() as f64
                }
            };
            let mut granted = 0usize;
            let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(open.len());
            for &h in &open {
                let cap = strata[h].size - strata[h].allocated;
                let want = share(h);
                let add = (want.floor() as usize).min(cap);
                strata[h].allocated += add;
                granted += add;
                if strata[h].allocated < strata[h].size {
                    fracs.push((h, want - want.floor()));
                }
            }
            let mut leftover = remaining - granted;
            if leftover > 0 {
                // Largest fractional remainder, stratum order (phase id,
                // then band) as tie-break.
                fracs.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                for (h, _) in fracs {
                    if leftover == 0 {
                        break;
                    }
                    if strata[h].allocated < strata[h].size {
                        strata[h].allocated += 1;
                        granted += 1;
                        leftover -= 1;
                    }
                }
            }
            if granted == 0 {
                break; // nothing placeable: every open stratum refused
            }
            remaining -= granted;
        }

        // Systematic selection through each stratum's members, which are
        // already ordered by cheap-pass CPI ("implicit stratification").
        // Picks spread evenly across the stratum's CPI *distribution*,
        // not its timeline, so even a single sample lands on the CPI
        // median rather than an arbitrary occurrence.
        let mut picked: Vec<(u64, usize)> = Vec::with_capacity(budget);
        for (h, (_, _, idxs)) in cells.iter().enumerate() {
            let n_h = strata[h].allocated;
            let len = idxs.len();
            for j in 0..n_h {
                let pos = ((j as f64 + 0.5) * len as f64 / n_h as f64).floor() as usize;
                picked.push((idxs[pos.min(len - 1)] as u64, h));
            }
        }
        picked.sort_unstable();
        picked.dedup();
        let (intervals, stratum_of): (Vec<u64>, Vec<usize>) = picked.into_iter().unzip();

        Self {
            strata,
            intervals,
            n_intervals: n,
            stratum_of,
        }
    }

    /// The [`ReplayPlan`] decoding exactly the selected intervals.
    pub fn replay_plan(&self) -> ReplayPlan {
        ReplayPlan::from_intervals(self.intervals.iter().copied())
    }

    /// Intervals the second pass decodes.
    pub fn sampled_intervals(&self) -> usize {
        self.intervals.len()
    }

    /// Decode-work ratio of a full replay over this plan (`N / n`).
    pub fn speedup(&self) -> f64 {
        if self.intervals.is_empty() {
            0.0
        } else {
            self.n_intervals as f64 / self.intervals.len() as f64
        }
    }

    /// Combines the sampled replay's measured CPIs — `measured[i]` is the
    /// CPI of `self.intervals[i]` — into the whole-trace estimate.
    ///
    /// # Panics
    ///
    /// Panics if `measured` is not parallel to
    /// [`intervals`](Self::intervals).
    pub fn estimate(&self, measured: &[f64]) -> StratifiedEstimate {
        assert_eq!(
            measured.len(),
            self.intervals.len(),
            "one measurement per planned interval"
        );
        let n_total = self.n_intervals as f64;
        // Per-stratum sample mean and (n_h − 1)-denominator variance.
        let mut sums = vec![0.0f64; self.strata.len()];
        let mut sq = vec![0.0f64; self.strata.len()];
        let mut counts = vec![0usize; self.strata.len()];
        for (&h, &x) in self.stratum_of.iter().zip(measured) {
            sums[h] += x;
            sq[h] += x * x;
            counts[h] += 1;
        }
        let mut cpi = 0.0;
        let mut var = 0.0;
        for (h, stratum) in self.strata.iter().enumerate() {
            let n_h = counts[h] as f64;
            if counts[h] == 0 {
                continue;
            }
            let w = stratum.size as f64 / n_total;
            let mean = sums[h] / n_h;
            cpi += w * mean;
            if counts[h] > 1 && counts[h] < stratum.size {
                let s2 = (sq[h] - n_h * mean * mean).max(0.0) / (n_h - 1.0);
                let fpc = 1.0 - n_h / stratum.size as f64;
                var += w * w * s2 / n_h * fpc;
            }
        }
        StratifiedEstimate {
            cpi,
            std_error: var.sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two phases with very different CPI noise: ids alternate in blocks,
    /// phase 0 is flat at 1.0, phase 1 is noisy around 3.0.
    fn noisy_inputs(n: usize) -> (Vec<u64>, Vec<f64>) {
        let mut ids = Vec::with_capacity(n);
        let mut cpis = Vec::with_capacity(n);
        for i in 0..n {
            if (i / 16) % 2 == 0 {
                ids.push(0);
                cpis.push(1.0);
            } else {
                ids.push(1);
                // Deterministic "noise" with nonzero variance.
                cpis.push(3.0 + ((i * 37) % 11) as f64 / 10.0);
            }
        }
        (ids, cpis)
    }

    #[test]
    fn allocation_spends_the_budget_and_respects_caps() {
        let (ids, cpis) = noisy_inputs(256);
        let config = StratifiedConfig {
            budget: 40,
            min_per_stratum: 2,
            ..StratifiedConfig::default()
        };
        let plan = StratifiedPlan::design(&ids, &cpis, &config);
        let total: usize = plan.strata.iter().map(|s| s.allocated).sum();
        assert_eq!(total, 40);
        for s in &plan.strata {
            assert!(s.allocated >= 2.min(s.size));
            assert!(s.allocated <= s.size);
        }
        assert_eq!(plan.sampled_intervals(), 40);
        assert!(plan.speedup() > 6.0);
    }

    #[test]
    fn neyman_favors_the_noisy_stratum() {
        let (ids, cpis) = noisy_inputs(256);
        let plan = StratifiedPlan::design(
            &ids,
            &cpis,
            &StratifiedConfig {
                budget: 32,
                min_per_stratum: 1,
                cpi_bands: 1, // banding off: test pure Neyman allocation
                band_spread: 0.10,
            },
        );
        // Phase 0 has zero variance: the floor only. Phase 1 gets the rest.
        let flat = &plan.strata[0];
        let noisy = &plan.strata[1];
        assert_eq!(flat.allocated, 1, "zero-variance stratum takes the floor");
        assert_eq!(noisy.allocated, 31);
    }

    #[test]
    fn zero_variance_everywhere_falls_back_to_proportional() {
        let ids: Vec<u64> = (0..120).map(|i| u64::from(i >= 90)).collect();
        let cpis = vec![2.0; 120]; // all strata flat
        let plan = StratifiedPlan::design(
            &ids,
            &cpis,
            &StratifiedConfig {
                budget: 12,
                min_per_stratum: 1,
                ..StratifiedConfig::default()
            },
        );
        let a: Vec<usize> = plan.strata.iter().map(|s| s.allocated).collect();
        assert_eq!(a.iter().sum::<usize>(), 12);
        // 90/30 split: proportional allocation is 9/3.
        assert_eq!(a, vec![9, 3]);
    }

    #[test]
    fn design_is_deterministic_and_sorted() {
        let (ids, cpis) = noisy_inputs(200);
        let config = StratifiedConfig::default();
        let a = StratifiedPlan::design(&ids, &cpis, &config);
        let b = StratifiedPlan::design(&ids, &cpis, &config);
        assert_eq!(a, b);
        assert!(a.intervals.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(a.intervals.len(), a.stratum_of.len());
    }

    #[test]
    fn estimator_is_exact_when_strata_are_internally_constant() {
        // Phases with zero within-stratum variance: any sample reproduces
        // the stratum mean, so the stratified estimate is exact no matter
        // how small the budget.
        let ids: Vec<u64> = (0..300).map(|i| (i / 25) as u64 % 3).collect();
        let cpis: Vec<f64> = ids.iter().map(|&id| 1.0 + id as f64).collect();
        let plan = StratifiedPlan::design(
            &ids,
            &cpis,
            &StratifiedConfig {
                budget: 3,
                min_per_stratum: 1,
                ..StratifiedConfig::default()
            },
        );
        assert_eq!(plan.sampled_intervals(), 3, "one sample per flat phase");
        let measured: Vec<f64> = plan.intervals.iter().map(|&i| cpis[i as usize]).collect();
        let est = plan.estimate(&measured);
        let exact = cpis.iter().sum::<f64>() / cpis.len() as f64;
        assert!((est.cpi - exact).abs() < 1e-12, "{} vs {exact}", est.cpi);
        assert_eq!(est.std_error, 0.0);
        assert_eq!(plan.speedup(), 100.0);
    }

    #[test]
    fn budget_of_everything_reproduces_the_exact_mean() {
        let (ids, cpis) = noisy_inputs(128);
        let plan = StratifiedPlan::design(
            &ids,
            &cpis,
            &StratifiedConfig {
                budget: 128,
                min_per_stratum: 1,
                ..StratifiedConfig::default()
            },
        );
        assert_eq!(plan.sampled_intervals(), 128);
        let measured: Vec<f64> = plan.intervals.iter().map(|&i| cpis[i as usize]).collect();
        let est = plan.estimate(&measured);
        let exact = cpis.iter().sum::<f64>() / cpis.len() as f64;
        assert!((est.cpi - exact).abs() < 1e-12, "{} vs {exact}", est.cpi);
        assert_eq!(est.std_error, 0.0, "census has no sampling error");
    }

    #[test]
    fn small_budget_estimate_is_close_with_sane_error_bar() {
        let (ids, cpis) = noisy_inputs(512);
        let plan = StratifiedPlan::design(
            &ids,
            &cpis,
            &StratifiedConfig {
                budget: 24,
                min_per_stratum: 2,
                ..StratifiedConfig::default()
            },
        );
        let measured: Vec<f64> = plan.intervals.iter().map(|&i| cpis[i as usize]).collect();
        let est = plan.estimate(&measured);
        let exact = cpis.iter().sum::<f64>() / cpis.len() as f64;
        let err = (est.cpi - exact).abs() / exact;
        assert!(err < 0.02, "{:.4} vs {exact:.4}: {err:.3} error", est.cpi);
        assert!(est.std_error >= 0.0 && est.std_error < 0.5, "{est:?}");
        assert!(plan.speedup() > 20.0);
    }

    #[test]
    fn heterogeneous_stratum_is_banded_and_estimated_without_bias() {
        // A "transition"-like phase pooling three CPI regimes (what the
        // online classifier's phase 0 looks like) next to one tight
        // phase. As a single stratum the pooled phase biases any
        // equal-weight sample; CPI banding splits it into tight cells.
        let mut ids = Vec::new();
        let mut cpis = Vec::new();
        for i in 0..120 {
            if i % 5 == 0 {
                ids.push(0u64);
                cpis.push(match (i / 5) % 3 {
                    0 => 1.0,
                    1 => 6.0,
                    _ => 12.0,
                });
            } else {
                ids.push(1);
                cpis.push(6.0 + (i % 7) as f64 * 0.01);
            }
        }
        let plan = StratifiedPlan::design(
            &ids,
            &cpis,
            &StratifiedConfig {
                budget: 12,
                min_per_stratum: 1,
                cpi_bands: 4,
                band_spread: 0.10,
            },
        );
        assert!(
            plan.strata.iter().filter(|s| s.id == 0).count() > 1,
            "the pooled phase is split into CPI bands"
        );
        assert_eq!(
            plan.strata.iter().filter(|s| s.id == 1).count(),
            1,
            "the tight phase stays whole"
        );
        let measured: Vec<f64> = plan.intervals.iter().map(|&i| cpis[i as usize]).collect();
        let est = plan.estimate(&measured);
        let exact = cpis.iter().sum::<f64>() / cpis.len() as f64;
        let err = (est.cpi - exact).abs() / exact;
        assert!(err < 0.02, "{:.4} vs {exact:.4}: {err:.3} error", est.cpi);
    }

    #[test]
    fn replay_plan_covers_exactly_the_selected_intervals() {
        let (ids, cpis) = noisy_inputs(96);
        let plan = StratifiedPlan::design(&ids, &cpis, &StratifiedConfig::default());
        let rp = plan.replay_plan();
        assert!(!rp.is_full());
        assert_eq!(
            rp.intervals_planned(96),
            plan.sampled_intervals() as u64,
            "plan decodes exactly the selection"
        );
        // Every selected interval is inside a planned range.
        let ranges = rp.ranges().unwrap();
        for &i in &plan.intervals {
            assert!(ranges.iter().any(|&(s, e)| s <= i && i < e), "{i}");
        }
    }
}
