//! Whole-trace summary statistics (for tooling and sanity checks).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::recorded::RecordedTrace;

/// Summary statistics of a recorded trace.
///
/// # Example
///
/// ```
/// use tpcp_trace::{PhaseSpec, SyntheticTrace, TraceStats};
///
/// let trace = SyntheticTrace::new(10_000)
///     .phase(PhaseSpec::uniform(0x1000, 4, 2.0))
///     .schedule(&[(0, 10)])
///     .generate();
/// let stats = TraceStats::of(&trace);
/// assert_eq!(stats.intervals, 10);
/// assert_eq!(stats.distinct_pcs, 4);
/// assert!((stats.mean_cpi - 2.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of intervals.
    pub intervals: usize,
    /// Total committed instructions.
    pub instructions: u64,
    /// Total branch events.
    pub events: u64,
    /// Distinct branch PCs across the whole trace.
    pub distinct_pcs: usize,
    /// Mean events per interval.
    pub events_per_interval: f64,
    /// Mean dynamic basic block size in instructions.
    pub mean_block_insns: f64,
    /// Instruction-weighted mean CPI.
    pub mean_cpi: f64,
    /// Minimum per-interval CPI.
    pub min_cpi: f64,
    /// Maximum per-interval CPI.
    pub max_cpi: f64,
}

impl TraceStats {
    /// Computes statistics over `trace`. An empty trace yields all zeros.
    pub fn of(trace: &RecordedTrace) -> Self {
        let mut pcs = BTreeSet::new();
        let mut events = 0u64;
        let mut instructions = 0u64;
        let mut cycles = 0u64;
        let mut min_cpi = f64::INFINITY;
        let mut max_cpi = 0.0f64;
        for interval in &trace.intervals {
            events += interval.events.len() as u64;
            instructions += interval.summary.instructions;
            cycles += interval.summary.cycles;
            let cpi = interval.summary.cpi();
            min_cpi = min_cpi.min(cpi);
            max_cpi = max_cpi.max(cpi);
            for ev in &interval.events {
                pcs.insert(ev.pc);
            }
        }
        let intervals = trace.len();
        Self {
            intervals,
            instructions,
            events,
            distinct_pcs: pcs.len(),
            events_per_interval: if intervals == 0 {
                0.0
            } else {
                events as f64 / intervals as f64
            },
            mean_block_insns: if events == 0 {
                0.0
            } else {
                instructions as f64 / events as f64
            },
            mean_cpi: if instructions == 0 {
                0.0
            } else {
                cycles as f64 / instructions as f64
            },
            min_cpi: if intervals == 0 { 0.0 } else { min_cpi },
            max_cpi,
        }
    }
}

impl core::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} intervals, {} instructions, {} events ({:.0}/interval, {:.1} insns/block), \
             {} distinct PCs, CPI {:.2} [{:.2}, {:.2}]",
            self.intervals,
            self.instructions,
            self.events,
            self.events_per_interval,
            self.mean_block_insns,
            self.distinct_pcs,
            self.mean_cpi,
            self.min_cpi,
            self.max_cpi
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::BranchEvent;
    use crate::interval::IntervalCutter;

    #[test]
    fn empty_trace_is_all_zero() {
        let stats = TraceStats::of(&RecordedTrace::default());
        assert_eq!(stats.intervals, 0);
        assert_eq!(stats.mean_cpi, 0.0);
        assert_eq!(stats.min_cpi, 0.0);
        assert_eq!(stats.events_per_interval, 0.0);
    }

    #[test]
    fn counts_are_exact() {
        let events = vec![
            (BranchEvent::new(0x10, 50), 100),
            (BranchEvent::new(0x20, 50), 100),
            (BranchEvent::new(0x10, 50), 200),
            (BranchEvent::new(0x30, 50), 200),
        ];
        let trace = RecordedTrace::record(IntervalCutter::from_iter(100, events));
        let stats = TraceStats::of(&trace);
        assert_eq!(stats.intervals, 2);
        assert_eq!(stats.instructions, 200);
        assert_eq!(stats.events, 4);
        assert_eq!(stats.distinct_pcs, 3);
        assert_eq!(stats.mean_block_insns, 50.0);
        assert!((stats.mean_cpi - 3.0).abs() < 1e-12);
        assert!((stats.min_cpi - 2.0).abs() < 1e-12);
        assert!((stats.max_cpi - 4.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let events = vec![(BranchEvent::new(0x10, 10), 20)];
        let trace = RecordedTrace::record(IntervalCutter::from_iter(10, events));
        let text = TraceStats::of(&trace).to_string();
        assert!(text.contains("1 intervals"));
        assert!(text.contains("distinct PCs"));
    }
}
