//! Per-trace interval index: the seek substrate for sampled replay.
//!
//! An encoded trace ([`encode_trace`](crate::encode_trace)) is a purely
//! sequential format — varint event frames mean interval *i*'s byte
//! position depends on every frame before it. That is fine for full
//! replay, but a sampled replay that wants intervals `{17, 903, 2044}`
//! should not have to decode the 2041 intervals it is skipping.
//!
//! [`TraceIndex`] fixes that with one checkpoint per interval *boundary*
//! (`n_intervals + 1` of them): the byte offset where the interval's frame
//! starts, plus running event / instruction / cycle totals up to that
//! boundary. Because the codec resets its PC-delta base at every interval
//! frame, a frame boundary is a self-contained decode entry point —
//! [`StreamingDecoder::seek_to_interval`] just moves the cursor and
//! resumes zero-copy decode, bit-identical to having streamed there.
//!
//! The running totals make the index useful beyond seeking: whole-run and
//! per-interval CPI fall out of checkpoint differences without touching
//! the payload, which is what the stratified replay planner feeds on.
//!
//! The index is written as a *versioned sidecar* (magic `TPCPIDX1`) next
//! to the cached payload. A sidecar is only trusted after
//! [`TraceIndex::validate`] ties it to the exact payload bytes via length
//! and checksum; anything structurally off decodes to
//! [`IndexError::CorruptIndex`] — never a panic — so a torn write or a
//! flipped byte degrades to a cache re-simulation, not a crash.
//!
//! Sidecar format (all integers little-endian):
//!
//! ```text
//! magic  b"TPCPIDX1"                      8 bytes
//! payload_len: u64
//! payload_checksum: u64
//! n_intervals: u64
//! per boundary i in 0..=n_intervals:
//!   byte_offset: u64   // start of interval i's frame; end of payload for i == n
//!   events: u64        // events decoded before this boundary
//!   instructions: u64  // instructions committed before this boundary
//!   cycles: u64        // cycles charged before this boundary
//! index_checksum: u64  // over every byte after the magic, trailer excluded
//! ```
//!
//! The trailing self-checksum means a byte flip *anywhere* in the sidecar
//! surfaces as [`IndexError::CorruptIndex`] at decode time; the payload
//! checksum in the header ties an intact sidecar to its exact payload
//! bytes.

use bytes::{BufMut, Bytes, BytesMut};

use crate::codec::{CodecError, StreamingDecoder};
use crate::event::BranchEvent;
use crate::interval::{IntervalSource, IntervalSummary};

pub(crate) const INDEX_MAGIC: &[u8; 8] = b"TPCPIDX1";
/// magic + payload_len + payload_checksum + n_intervals.
const INDEX_HEADER_BYTES: usize = 8 + 8 + 8 + 8;
/// Fixed encoded size of one [`IntervalCheckpoint`].
const CHECKPOINT_BYTES: usize = 32;
/// Byte offset of the first interval frame in an encoded trace payload
/// (trace magic + interval count).
const PAYLOAD_HEADER_BYTES: u64 = 16;

/// Errors produced when decoding, validating, or seeking with an interval
/// index sidecar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// The sidecar bytes are not a well-formed index: wrong magic,
    /// truncated, trailing garbage, or internally inconsistent
    /// checkpoints. The payload may still be fine — rebuild the index
    /// from it, or quarantine both if provenance is in doubt.
    CorruptIndex,
    /// The sidecar is well-formed but does not describe this payload
    /// (length, checksum, or interval count disagree).
    PayloadMismatch,
    /// A seek or plan referenced an interval beyond the end of the trace.
    SeekOutOfRange,
}

impl core::fmt::Display for IndexError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IndexError::CorruptIndex => write!(f, "interval index sidecar is corrupt"),
            IndexError::PayloadMismatch => {
                write!(f, "interval index does not match the trace payload")
            }
            IndexError::SeekOutOfRange => {
                write!(f, "seek target is beyond the end of the trace")
            }
        }
    }
}

impl std::error::Error for IndexError {}

/// Checksum tying a sidecar to its payload bytes: an FNV-style mix over
/// 8-byte words (fast enough to be cheaper than re-walking every varint,
/// which is the point of having a sidecar at all), folded with the length
/// so truncation to a word boundary still changes the digest.
pub(crate) fn payload_checksum(buf: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut chunks = buf.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = (h ^ w).wrapping_mul(0x0000_0100_0000_01b3).rotate_left(23);
    }
    for &b in chunks.remainder() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ buf.len() as u64
}

/// Running totals at one interval boundary. Checkpoint `i` describes the
/// state *before* interval `i` decodes; checkpoint `n_intervals` is the
/// end-of-trace total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntervalCheckpoint {
    /// Byte offset of interval `i`'s frame in the payload (end of the last
    /// frame for the final checkpoint).
    pub byte_offset: u64,
    /// Branch events decoded before this boundary.
    pub events: u64,
    /// Instructions committed before this boundary.
    pub instructions: u64,
    /// Cycles charged before this boundary.
    pub cycles: u64,
}

/// A per-trace interval index: byte offsets and running CPI-metric totals
/// at every interval boundary, persisted as a versioned sidecar.
///
/// Built once per trace (during encode, or by re-walking a payload) and
/// validated against the exact payload bytes before any seek trusts it.
///
/// # Example
///
/// ```
/// use tpcp_trace::{encode_trace_with_index, RecordedTrace, TraceIndex};
/// # use tpcp_trace::{BranchEvent, IntervalCutter};
///
/// # let events = (0..40u64).map(|i| (BranchEvent::new(i % 2, 10), 10u64));
/// # let trace = RecordedTrace::record(IntervalCutter::from_iter(100, events));
/// let (payload, index) = encode_trace_with_index(&trace);
/// index.validate(&payload)?;
/// let reloaded = TraceIndex::decode(&index.encode())?;
/// assert_eq!(index, reloaded);
/// # Ok::<(), tpcp_trace::IndexError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceIndex {
    pub(crate) payload_len: u64,
    pub(crate) payload_checksum: u64,
    /// `n_intervals + 1` entries; entry `i` is the boundary before
    /// interval `i`.
    pub(crate) checkpoints: Vec<IntervalCheckpoint>,
}

impl TraceIndex {
    /// Builds the index by streaming over an encoded trace payload.
    ///
    /// This walks every frame, so it doubles as full payload validation:
    /// a buffer this accepts is exactly a buffer
    /// [`validate_trace`](crate::validate_trace) accepts.
    ///
    /// # Errors
    ///
    /// Returns the [`CodecError`] of the first malformed frame.
    pub fn build(payload: &[u8]) -> Result<Self, CodecError> {
        let mut decoder = StreamingDecoder::new(payload)?;
        // Bounded by `StreamingDecoder::new`'s plausibility check.
        let mut checkpoints = Vec::with_capacity(decoder.n_intervals() as usize + 1);
        let mut events = 0u64;
        let mut instructions = 0u64;
        let mut cycles = 0u64;
        loop {
            checkpoints.push(IntervalCheckpoint {
                byte_offset: decoder.position() as u64,
                events,
                instructions,
                cycles,
            });
            match decoder.try_next_interval_with(&mut |_| events += 1)? {
                Some(summary) => {
                    instructions += summary.instructions;
                    cycles += summary.cycles;
                }
                None => break,
            }
        }
        Ok(Self {
            payload_len: payload.len() as u64,
            payload_checksum: payload_checksum(payload),
            checkpoints,
        })
    }

    /// Number of intervals in the indexed trace.
    pub fn n_intervals(&self) -> u64 {
        self.checkpoints.len() as u64 - 1
    }

    /// All `n_intervals + 1` boundary checkpoints.
    pub fn checkpoints(&self) -> &[IntervalCheckpoint] {
        &self.checkpoints
    }

    /// The checkpoint at boundary `i` (`i == n_intervals` is the
    /// end-of-trace total), or `None` past that.
    pub fn checkpoint(&self, i: u64) -> Option<&IntervalCheckpoint> {
        usize::try_from(i)
            .ok()
            .and_then(|i| self.checkpoints.get(i))
    }

    /// Length of the payload this index describes, in bytes.
    pub fn payload_len(&self) -> u64 {
        self.payload_len
    }

    /// Total instructions across the whole trace, straight off the final
    /// checkpoint — no payload access.
    pub fn total_instructions(&self) -> u64 {
        self.checkpoints[self.checkpoints.len() - 1].instructions
    }

    /// Total cycles across the whole trace.
    pub fn total_cycles(&self) -> u64 {
        self.checkpoints[self.checkpoints.len() - 1].cycles
    }

    /// Whole-run cycles per instruction (0.0 for an empty trace), from
    /// checkpoint totals alone.
    pub fn true_cpi(&self) -> f64 {
        let insns = self.total_instructions();
        if insns == 0 {
            0.0
        } else {
            self.total_cycles() as f64 / insns as f64
        }
    }

    /// CPI of interval `i` from adjacent checkpoint differences, without
    /// decoding the payload. `None` past the last interval; `0.0` for an
    /// empty interval.
    pub fn interval_cpi(&self, i: u64) -> Option<f64> {
        let lo = self.checkpoint(i)?;
        let hi = self.checkpoint(i + 1)?;
        let insns = hi.instructions - lo.instructions;
        Some(if insns == 0 {
            0.0
        } else {
            (hi.cycles - lo.cycles) as f64 / insns as f64
        })
    }

    /// Encoded byte length of interval `i`'s frame, or `None` past the
    /// last interval.
    pub fn interval_bytes(&self, i: u64) -> Option<u64> {
        let lo = self.checkpoint(i)?;
        let hi = self.checkpoint(i + 1)?;
        Some(hi.byte_offset - lo.byte_offset)
    }

    /// Serializes the index into its sidecar byte format, self-checksum
    /// trailer included.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(
            INDEX_HEADER_BYTES + self.checkpoints.len() * CHECKPOINT_BYTES + 8,
        );
        buf.put_slice(INDEX_MAGIC);
        buf.put_u64_le(self.payload_len);
        buf.put_u64_le(self.payload_checksum);
        buf.put_u64_le(self.n_intervals());
        for cp in &self.checkpoints {
            buf.put_u64_le(cp.byte_offset);
            buf.put_u64_le(cp.events);
            buf.put_u64_le(cp.instructions);
            buf.put_u64_le(cp.cycles);
        }
        let trailer = payload_checksum(&buf.as_slice()[INDEX_MAGIC.len()..]);
        buf.put_u64_le(trailer);
        buf.freeze()
    }

    /// Deserializes a sidecar buffer, checking structural integrity only
    /// (magic, exact length, monotonic checkpoints). Pair with
    /// [`validate`](Self::validate) before trusting it against a payload.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::CorruptIndex`] for anything malformed —
    /// truncated buffers and flipped bytes are expected inputs here (torn
    /// cache writes), never a reason to panic.
    pub fn decode(buf: &[u8]) -> Result<Self, IndexError> {
        let magic = buf
            .get(..INDEX_MAGIC.len())
            .ok_or(IndexError::CorruptIndex)?;
        if magic != INDEX_MAGIC {
            return Err(IndexError::CorruptIndex);
        }
        // Self-checksum trailer first: any flipped or missing byte after
        // the magic — header fields and checkpoints alike — fails here
        // before any field is interpreted.
        let trailer_at = buf
            .len()
            .checked_sub(8)
            .filter(|&at| at >= INDEX_HEADER_BYTES)
            .ok_or(IndexError::CorruptIndex)?;
        let mut trailer_pos = trailer_at;
        let declared_sum = read_u64(buf, &mut trailer_pos)?;
        if payload_checksum(&buf[INDEX_MAGIC.len()..trailer_at]) != declared_sum {
            return Err(IndexError::CorruptIndex);
        }
        let buf = &buf[..trailer_at];
        let mut pos = INDEX_MAGIC.len();
        let payload_len = read_u64(buf, &mut pos)?;
        let payload_checksum = read_u64(buf, &mut pos)?;
        let n_intervals = read_u64(buf, &mut pos)?;
        let body = buf.len() - pos;
        // Exact-size check: rejects truncation *and* trailing garbage, and
        // bounds the allocation below against the actual buffer.
        let n_checkpoints = n_intervals
            .checked_add(1)
            .filter(|&n| {
                n == (body / CHECKPOINT_BYTES) as u64 && body.is_multiple_of(CHECKPOINT_BYTES)
            })
            .ok_or(IndexError::CorruptIndex)? as usize;
        let mut checkpoints = Vec::with_capacity(n_checkpoints);
        let mut prev = IntervalCheckpoint::default();
        for i in 0..n_checkpoints {
            let cp = IntervalCheckpoint {
                byte_offset: read_u64(buf, &mut pos)?,
                events: read_u64(buf, &mut pos)?,
                instructions: read_u64(buf, &mut pos)?,
                cycles: read_u64(buf, &mut pos)?,
            };
            let monotonic = cp.byte_offset >= prev.byte_offset
                && cp.events >= prev.events
                && cp.instructions >= prev.instructions
                && cp.cycles >= prev.cycles;
            // The first checkpoint must sit right after the payload
            // header; every offset must stay inside the payload.
            let anchored = if i == 0 {
                cp.byte_offset == PAYLOAD_HEADER_BYTES.min(payload_len)
            } else {
                monotonic
            };
            if !anchored || cp.byte_offset > payload_len {
                return Err(IndexError::CorruptIndex);
            }
            prev = cp;
            checkpoints.push(cp);
        }
        Ok(Self {
            payload_len,
            payload_checksum,
            checkpoints,
        })
    }

    /// Ties this index to a payload: length, checksum, and the payload
    /// header's declared interval count must all agree. A sidecar passing
    /// this is byte-for-byte the one built from exactly these payload
    /// bytes, so cached hits can skip the full varint re-walk.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::PayloadMismatch`] on any disagreement.
    pub fn validate(&self, payload: &[u8]) -> Result<(), IndexError> {
        if payload.len() as u64 != self.payload_len
            || payload_checksum(payload) != self.payload_checksum
        {
            return Err(IndexError::PayloadMismatch);
        }
        // Cross-check the payload header's interval count (bytes 8..16)
        // against ours — catches an index transplanted from a same-length
        // payload faster than the checksum would in the common case.
        let declared = payload
            .get(8..16)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")));
        if declared != Some(self.n_intervals()) {
            return Err(IndexError::PayloadMismatch);
        }
        Ok(())
    }
}

#[inline]
fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64, IndexError> {
    let end = pos.checked_add(8).ok_or(IndexError::CorruptIndex)?;
    let bytes = buf.get(*pos..end).ok_or(IndexError::CorruptIndex)?;
    *pos = end;
    Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
}

/// Which intervals of a trace a replay should decode: everything, or a
/// normalized set of half-open `[start, end)` interval ranges.
///
/// Constructed ranges are sorted, overlap-merged, and adjacent-merged, so
/// downstream consumers can assume each range is preceded by a real gap.
/// A `Full` plan is not the same as a plan covering every interval
/// operationally — `Full` replays through the plain streaming path with
/// zero seek machinery — but both deliver the identical event stream.
///
/// # Example
///
/// ```
/// use tpcp_trace::ReplayPlan;
///
/// let plan = ReplayPlan::from_ranges([(7, 9), (2, 4), (4, 6)]);
/// assert_eq!(plan.ranges(), Some(&[(2, 6), (7, 9)][..]));
/// assert_eq!(plan.intervals_planned(100), 6);
/// assert!(ReplayPlan::full().is_full());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayPlan {
    /// `None` = full replay; `Some` = sorted disjoint ranges.
    ranges: Option<Vec<(u64, u64)>>,
}

impl Default for ReplayPlan {
    fn default() -> Self {
        Self::full()
    }
}

impl ReplayPlan {
    /// The plan that replays every interval through the plain streaming
    /// path (no index required, bit-identical to pre-plan replays by
    /// construction).
    pub fn full() -> Self {
        Self { ranges: None }
    }

    /// A sampled plan from half-open `[start, end)` interval ranges, in
    /// any order. Empty ranges are dropped; overlapping and adjacent
    /// ranges merge.
    pub fn from_ranges<I: IntoIterator<Item = (u64, u64)>>(ranges: I) -> Self {
        let mut sorted: Vec<(u64, u64)> = ranges.into_iter().filter(|r| r.0 < r.1).collect();
        sorted.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(sorted.len());
        for (start, end) in sorted {
            match merged.last_mut() {
                Some(last) if start <= last.1 => last.1 = last.1.max(end),
                _ => merged.push((start, end)),
            }
        }
        Self {
            ranges: Some(merged),
        }
    }

    /// A sampled plan from individual interval indices (runs of
    /// consecutive indices merge into ranges).
    pub fn from_intervals<I: IntoIterator<Item = u64>>(intervals: I) -> Self {
        Self::from_ranges(intervals.into_iter().map(|i| (i, i + 1)))
    }

    /// `true` for the full-replay plan.
    pub fn is_full(&self) -> bool {
        self.ranges.is_none()
    }

    /// The normalized ranges of a sampled plan; `None` for a full plan.
    pub fn ranges(&self) -> Option<&[(u64, u64)]> {
        self.ranges.as_deref()
    }

    /// How many intervals of an `n_intervals`-long trace this plan
    /// decodes (ranges clamped to the trace length).
    pub fn intervals_planned(&self, n_intervals: u64) -> u64 {
        match &self.ranges {
            None => n_intervals,
            Some(ranges) => ranges
                .iter()
                .map(|&(s, e)| e.min(n_intervals).saturating_sub(s))
                .sum(),
        }
    }

    /// The end of the last planned range (`None` for full or empty plans).
    pub fn max_interval(&self) -> Option<u64> {
        self.ranges.as_ref().and_then(|r| r.last()).map(|&(_, e)| e)
    }
}

/// What a planned replay skipped, for telemetry: whole-plan totals
/// computed against the index at construction time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SkipStats {
    /// Intervals the plan leaves undecoded.
    pub intervals_skipped: u64,
    /// Payload bytes the plan never touches (gap frames).
    pub bytes_skipped: u64,
    /// Seeks a full run of the plan performs (gaps entered).
    pub seeks: u64,
}

/// An [`IntervalSource`] that decodes only the intervals of a
/// [`ReplayPlan`], seeking across the gaps via a validated [`TraceIndex`].
///
/// Consumers downstream of [`drive`](crate::drive) see a *gap-free*
/// stream of the planned intervals: each delivered interval is
/// bit-identical (summary and events) to what a full streaming replay
/// would have delivered for that interval, and skipped intervals simply
/// never appear. Interval summaries keep their original `index`, so
/// position-aware sinks still know where each interval came from.
///
/// A decode error mid-plan ends the stream and is reported by
/// [`error`](Self::error), mirroring [`StreamingDecoder`]'s
/// `IntervalSource` contract.
///
/// # Example
///
/// ```
/// use tpcp_trace::{
///     encode_trace_with_index, IntervalSource, PlannedReplay, RecordedTrace, ReplayPlan,
///     StreamingDecoder,
/// };
/// # use tpcp_trace::{BranchEvent, IntervalCutter};
///
/// # let events = (0..400u64).map(|i| (BranchEvent::new(i % 5, 10), 10u64));
/// # let trace = RecordedTrace::record(IntervalCutter::from_iter(100, events));
/// let (payload, index) = encode_trace_with_index(&trace);
/// let plan = ReplayPlan::from_ranges([(1, 2), (3, 4)]);
/// let decoder = StreamingDecoder::new(&payload)?;
/// let mut replay = PlannedReplay::new(decoder, &index, &plan)?;
/// let decoded: Vec<u64> = std::iter::from_fn(|| replay.next_interval(&mut |_| {}))
///     .map(|s| s.index)
///     .collect();
/// assert_eq!(decoded, vec![1, 3]);
/// assert_eq!(replay.error(), None);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct PlannedReplay<'a> {
    decoder: StreamingDecoder<'a>,
    index: &'a TraceIndex,
    /// Normalized ranges clamped-checked against the trace at
    /// construction; `[(0, n)]` for a fully-sampled plan.
    ranges: Vec<(u64, u64)>,
    cur: usize,
    stats: SkipStats,
    error: Option<CodecError>,
}

impl<'a> PlannedReplay<'a> {
    /// Wraps a freshly opened decoder with a plan and its trace's index.
    ///
    /// # Errors
    ///
    /// [`IndexError::PayloadMismatch`] when the index and decoder disagree
    /// on the interval count (the index belongs to different bytes), and
    /// [`IndexError::SeekOutOfRange`] when the plan references intervals
    /// past the end of the trace — a plan built for a different trace
    /// should fail loudly, not silently truncate.
    pub fn new(
        decoder: StreamingDecoder<'a>,
        index: &'a TraceIndex,
        plan: &ReplayPlan,
    ) -> Result<Self, IndexError> {
        let n = decoder.n_intervals();
        if index.n_intervals() != n {
            return Err(IndexError::PayloadMismatch);
        }
        let ranges: Vec<(u64, u64)> = match plan.ranges() {
            None => vec![(0, n)],
            Some(r) => r.to_vec(),
        };
        if plan.max_interval().is_some_and(|end| end > n) {
            return Err(IndexError::SeekOutOfRange);
        }
        // Whole-plan skip totals from checkpoint differences. The
        // unwraps-by-index are safe: every range end is <= n, and the
        // index has n + 1 checkpoints.
        let mut stats = SkipStats::default();
        let mut cursor = 0u64; // next un-accounted interval
        for &(start, end) in &ranges {
            if start > cursor {
                stats.seeks += 1;
                stats.intervals_skipped += start - cursor;
                let lo = index.checkpoints[cursor as usize].byte_offset;
                let hi = index.checkpoints[start as usize].byte_offset;
                stats.bytes_skipped += hi - lo;
            }
            cursor = end;
        }
        if cursor < n {
            stats.intervals_skipped += n - cursor;
            let lo = index.checkpoints[cursor as usize].byte_offset;
            let hi = index.checkpoints[n as usize].byte_offset;
            stats.bytes_skipped += hi - lo;
        }
        Ok(Self {
            decoder,
            index,
            ranges,
            cur: 0,
            stats,
            error: None,
        })
    }

    /// The decode error that ended the replay early, if any.
    pub fn error(&self) -> Option<CodecError> {
        self.error.clone()
    }

    /// Whole-plan skip totals (computed up front, independent of how far
    /// the replay has progressed).
    pub fn skip_stats(&self) -> SkipStats {
        self.stats
    }

    /// Intervals this plan decodes in total.
    pub fn intervals_planned(&self) -> u64 {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// Access to the wrapped decoder (kernel-selection knobs, progress).
    pub fn decoder_mut(&mut self) -> &mut StreamingDecoder<'a> {
        &mut self.decoder
    }
}

impl IntervalSource for PlannedReplay<'_> {
    fn next_interval(&mut self, on_event: &mut dyn FnMut(BranchEvent)) -> Option<IntervalSummary> {
        if self.error.is_some() {
            return None;
        }
        let &(start, end) = self.ranges.get(self.cur)?;
        if self.decoder.intervals_decoded() < start {
            // Construction validated every range against this exact
            // index/decoder pair, so the seek cannot fail; treat a
            // disagreement as end-of-stream rather than panicking.
            if self.decoder.seek_to_interval(self.index, start).is_err() {
                return None;
            }
        }
        match self.decoder.try_next_interval(on_event) {
            Ok(Some(summary)) => {
                if self.decoder.intervals_decoded() >= end {
                    self.cur += 1;
                }
                Some(summary)
            }
            Ok(None) => None,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode_trace, encode_trace_with_index};
    use crate::interval::IntervalCutter;
    use crate::recorded::RecordedTrace;

    fn sample(n_events: u64) -> RecordedTrace {
        let events = (0..n_events).map(|i| {
            let pc = 0x0040_0000 + (i % 11) * 4;
            (BranchEvent::new(pc, (i % 13 + 1) as u32), (i % 7) + 1)
        });
        RecordedTrace::record(IntervalCutter::from_iter(64, events))
    }

    #[test]
    fn build_matches_encode_time_index() {
        let trace = sample(500);
        let (payload, index) = encode_trace_with_index(&trace);
        let rebuilt = TraceIndex::build(&payload).unwrap();
        assert_eq!(index, rebuilt);
        assert_eq!(index.n_intervals(), trace.len() as u64);
    }

    #[test]
    fn index_round_trips_and_validates() {
        let (payload, index) = encode_trace_with_index(&sample(300));
        let decoded = TraceIndex::decode(&index.encode()).unwrap();
        assert_eq!(index, decoded);
        decoded.validate(&payload).unwrap();
    }

    #[test]
    fn checkpoints_agree_with_streamed_totals() {
        let trace = sample(400);
        let (payload, index) = encode_trace_with_index(&trace);
        let mut decoder = StreamingDecoder::new(&payload).unwrap();
        let (mut events, mut insns, mut cycles) = (0u64, 0u64, 0u64);
        let mut i = 0u64;
        loop {
            let cp = index.checkpoint(i).unwrap();
            assert_eq!(cp.byte_offset as usize, decoder.position());
            assert_eq!(
                (cp.events, cp.instructions, cp.cycles),
                (events, insns, cycles)
            );
            match decoder
                .try_next_interval_with(&mut |_| events += 1)
                .unwrap()
            {
                Some(s) => {
                    insns += s.instructions;
                    cycles += s.cycles;
                }
                None => break,
            }
            i += 1;
        }
        assert_eq!(index.total_instructions(), insns);
        assert_eq!(index.total_cycles(), cycles);
        assert_eq!(
            index.checkpoint(i).unwrap().byte_offset as usize,
            payload.len()
        );
    }

    #[test]
    fn interval_cpi_matches_summaries() {
        let trace = sample(350);
        let (_, index) = encode_trace_with_index(&trace);
        for (i, interval) in trace.intervals.iter().enumerate() {
            let cpi = index.interval_cpi(i as u64).unwrap();
            assert!((cpi - interval.summary.cpi()).abs() < 1e-12);
        }
        assert_eq!(index.interval_cpi(trace.len() as u64), None);
    }

    #[test]
    fn truncated_sidecar_is_corrupt_not_panic() {
        let (_, index) = encode_trace_with_index(&sample(200));
        let encoded = index.encode();
        for cut in 0..encoded.len() {
            assert_eq!(
                TraceIndex::decode(&encoded[..cut]),
                Err(IndexError::CorruptIndex),
                "cut at {cut}"
            );
        }
        // Trailing garbage is equally rejected.
        let mut long = encoded.to_vec();
        long.push(0);
        assert_eq!(TraceIndex::decode(&long), Err(IndexError::CorruptIndex));
    }

    #[test]
    fn mismatched_payload_rejected() {
        let (payload_a, index_a) = encode_trace_with_index(&sample(300));
        let (payload_b, index_b) = encode_trace_with_index(&sample(301));
        index_a.validate(&payload_a).unwrap();
        assert_eq!(
            index_a.validate(&payload_b),
            Err(IndexError::PayloadMismatch)
        );
        assert_eq!(
            index_b.validate(&payload_a),
            Err(IndexError::PayloadMismatch)
        );
        // A payload edit (flip one event byte) breaks the checksum tie.
        let mut edited = payload_a.to_vec();
        let last = edited.len() - 1;
        edited[last] ^= 0x01;
        assert_eq!(index_a.validate(&edited), Err(IndexError::PayloadMismatch));
    }

    #[test]
    fn plan_normalizes_ranges() {
        let plan = ReplayPlan::from_ranges([(5, 5), (8, 10), (0, 2), (2, 4), (9, 12)]);
        assert_eq!(plan.ranges(), Some(&[(0, 4), (8, 12)][..]));
        assert_eq!(plan.intervals_planned(100), 8);
        assert_eq!(plan.intervals_planned(10), 6); // clamped tail
        assert_eq!(plan.max_interval(), Some(12));

        let from_points = ReplayPlan::from_intervals([3, 1, 2, 7]);
        assert_eq!(from_points.ranges(), Some(&[(1, 4), (7, 8)][..]));
    }

    #[test]
    fn planned_replay_skips_and_counts() {
        let trace = sample(1000);
        let (payload, index) = encode_trace_with_index(&trace);
        let n = index.n_intervals();
        assert!(n >= 6, "need enough intervals, got {n}");
        let plan = ReplayPlan::from_ranges([(1, 2), (4, 6)]);
        let decoder = StreamingDecoder::new(&payload).unwrap();
        let mut replay = PlannedReplay::new(decoder, &index, &plan).unwrap();
        let stats = replay.skip_stats();
        assert_eq!(stats.seeks, 2);
        assert_eq!(stats.intervals_skipped, n - 3);
        let payload_body = payload.len() as u64 - index.checkpoints[0].byte_offset;
        let planned_bytes: u64 = [1u64, 4, 5]
            .iter()
            .map(|&i| index.interval_bytes(i).unwrap())
            .sum();
        assert_eq!(stats.bytes_skipped, payload_body - planned_bytes);

        let mut seen = Vec::new();
        while let Some(s) = replay.next_interval(&mut |_| {}) {
            seen.push(s.index);
        }
        assert_eq!(seen, vec![1, 4, 5]);
        assert_eq!(replay.error(), None);
    }

    #[test]
    fn fully_sampled_plan_is_bit_identical_to_streaming() {
        let trace = sample(800);
        let (payload, index) = encode_trace_with_index(&trace);
        let n = index.n_intervals();

        let mut streamed: Vec<(IntervalSummary, Vec<BranchEvent>)> = Vec::new();
        let mut decoder = StreamingDecoder::new(&payload).unwrap();
        let mut events = Vec::new();
        while let Some(s) = decoder.next_interval(&mut |ev| events.push(ev)) {
            streamed.push((s, std::mem::take(&mut events)));
        }

        for plan in [ReplayPlan::full(), ReplayPlan::from_ranges([(0, n)])] {
            let decoder = StreamingDecoder::new(&payload).unwrap();
            let mut replay = PlannedReplay::new(decoder, &index, &plan).unwrap();
            let mut sampled = Vec::new();
            let mut events = Vec::new();
            while let Some(s) = replay.next_interval(&mut |ev| events.push(ev)) {
                sampled.push((s, std::mem::take(&mut events)));
            }
            assert_eq!(streamed, sampled);
            assert_eq!(replay.skip_stats(), SkipStats::default());
        }
    }

    #[test]
    fn out_of_range_plan_fails_loudly() {
        let (payload, index) = encode_trace_with_index(&sample(300));
        let n = index.n_intervals();
        let plan = ReplayPlan::from_ranges([(0, n + 1)]);
        let decoder = StreamingDecoder::new(&payload).unwrap();
        assert_eq!(
            PlannedReplay::new(decoder, &index, &plan).err(),
            Some(IndexError::SeekOutOfRange)
        );
    }

    #[test]
    fn foreign_index_rejected_at_construction() {
        let (payload, _) = encode_trace_with_index(&sample(300));
        let (_, other) = encode_trace_with_index(&sample(700));
        let decoder = StreamingDecoder::new(&payload).unwrap();
        assert_eq!(
            PlannedReplay::new(decoder, &other, &ReplayPlan::full()).err(),
            Some(IndexError::PayloadMismatch)
        );
    }

    #[test]
    fn plain_encode_matches_indexed_encode() {
        let trace = sample(600);
        let (payload, _) = encode_trace_with_index(&trace);
        assert_eq!(encode_trace(&trace), payload);
    }
}
