//! Recording and replaying interval traces.
//!
//! Recording lets the (comparatively expensive) simulation substrate run
//! once while many classifier/predictor configurations replay the identical
//! event stream — the same methodology as the paper, which collects
//! SimpleScalar profiles once and sweeps architecture parameters offline.

use serde::{Deserialize, Serialize};

use crate::event::BranchEvent;
use crate::interval::{IntervalSource, IntervalSummary};

/// One recorded interval: its events and its summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordedInterval {
    /// Every committed-branch event of the interval, in program order.
    pub events: Vec<BranchEvent>,
    /// The interval's summary (index, instructions, cycles).
    pub summary: IntervalSummary,
}

/// A fully materialized interval trace.
///
/// # Example
///
/// ```
/// use tpcp_trace::{BranchEvent, IntervalCutter, IntervalSource, RecordedTrace};
///
/// let events = (0..40u64).map(|i| (BranchEvent::new(i % 2, 10), 10u64));
/// let trace = RecordedTrace::record(IntervalCutter::from_iter(100, events));
/// assert_eq!(trace.len(), 4);
///
/// // Replay is identical to the original stream.
/// let mut replay = trace.replay();
/// let mut n = 0;
/// while replay.next_interval(&mut |_| n += 1).is_some() {}
/// assert_eq!(n, 40);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RecordedTrace {
    /// All intervals in execution order.
    pub intervals: Vec<RecordedInterval>,
}

impl RecordedTrace {
    /// Drains `source` and stores every interval.
    pub fn record<S: IntervalSource>(mut source: S) -> Self {
        let mut intervals = Vec::new();
        let mut events = Vec::new();
        while let Some(summary) = source.next_interval(&mut |ev| events.push(ev)) {
            intervals.push(RecordedInterval {
                events: std::mem::take(&mut events),
                summary,
            });
        }
        Self { intervals }
    }

    /// Number of recorded intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Total committed instructions across all intervals.
    pub fn total_instructions(&self) -> u64 {
        self.intervals
            .iter()
            .map(|iv| iv.summary.instructions)
            .sum()
    }

    /// Creates a borrowing [`IntervalSource`] that replays this trace.
    pub fn replay(&self) -> ReplaySource<'_> {
        ReplaySource {
            trace: self,
            next: 0,
        }
    }
}

/// Borrowing replay of a [`RecordedTrace`]; see [`RecordedTrace::replay`].
#[derive(Debug, Clone)]
pub struct ReplaySource<'a> {
    trace: &'a RecordedTrace,
    next: usize,
}

impl IntervalSource for ReplaySource<'_> {
    fn next_interval(&mut self, on_event: &mut dyn FnMut(BranchEvent)) -> Option<IntervalSummary> {
        let interval = self.trace.intervals.get(self.next)?;
        self.next += 1;
        for &ev in &interval.events {
            on_event(ev);
        }
        Some(interval.summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::IntervalCutter;

    fn sample_trace() -> RecordedTrace {
        let events = vec![
            (BranchEvent::new(1, 30), 60),
            (BranchEvent::new(2, 30), 30),
            (BranchEvent::new(3, 30), 90),
            (BranchEvent::new(4, 30), 30),
        ];
        RecordedTrace::record(IntervalCutter::from_iter(60, events))
    }

    #[test]
    fn record_preserves_every_event() {
        let trace = sample_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.intervals[0].events.len(), 2);
        assert_eq!(trace.intervals[1].events.len(), 2);
        assert_eq!(trace.total_instructions(), 120);
    }

    #[test]
    fn replay_matches_recording() {
        let trace = sample_trace();
        let replayed = RecordedTrace::record(trace.replay());
        assert_eq!(trace, replayed);
    }

    #[test]
    fn replay_is_restartable_from_fresh_handle() {
        let trace = sample_trace();
        let first = trace.replay().drain_summaries();
        let second = trace.replay().drain_summaries();
        assert_eq!(first, second);
    }

    #[test]
    fn empty_trace_replays_empty() {
        let trace = RecordedTrace::default();
        assert!(trace.is_empty());
        assert!(trace.replay().next_interval(&mut |_| {}).is_none());
    }
}
