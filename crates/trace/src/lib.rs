//! Execution trace primitives for phase classification.
//!
//! This crate defines the data that flows between the simulation substrate
//! (`tpcp-uarch`/`tpcp-workloads`) and the phase classification
//! architecture (`tpcp-core`): committed-branch events, fixed-length
//! execution intervals, and basic block vectors (BBVs).
//!
//! The hardware architecture in the paper observes exactly two things about
//! the running program:
//!
//! 1. the program counter of every committed branch, together with the number
//!    of instructions committed since the previous branch
//!    ([`BranchEvent`]), and
//! 2. a per-interval performance metric (cycles per instruction), used only
//!    for *evaluating* classifications and for the adaptive-threshold
//!    feedback ([`IntervalSummary`]).
//!
//! # Example
//!
//! ```
//! use tpcp_trace::{BranchEvent, IntervalCutter, IntervalSource};
//!
//! // A toy "program": alternate between two branches, 100 instructions each,
//! // 2 cycles per instruction.
//! let events = (0..1000u64).map(|i| {
//!     let pc = if i % 2 == 0 { 0x400_000 } else { 0x400_100 };
//!     (BranchEvent::new(pc, 100), 200u64)
//! });
//! let mut source = IntervalCutter::from_iter(10_000, events);
//!
//! let mut n_events = 0usize;
//! let summary = source
//!     .next_interval(&mut |_ev| n_events += 1)
//!     .expect("stream has at least one interval");
//! assert_eq!(n_events, 100);                    // 100 events * 100 insns
//! assert_eq!(summary.instructions, 10_000);
//! assert!((summary.cpi() - 2.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbv;
mod codec;
mod event;
mod frame;
mod index;
mod interval;
mod metrics;
mod recorded;
mod sink;
mod stats;
mod synthetic;

pub use bbv::{Bbv, BbvBuilder, BbvTrace};
pub use codec::{
    decode_trace, encode_trace, encode_trace_with_index, validate_trace, CodecError,
    StreamingDecoder,
};
pub use event::BranchEvent;
pub use frame::{wire, FrameDecoder, FrameError, FrameReader, FrameWriter, FRAME_MAX};
pub use index::{IndexError, IntervalCheckpoint, PlannedReplay, ReplayPlan, SkipStats, TraceIndex};
pub use interval::{IntervalCutter, IntervalSource, IntervalSummary, TimedEvent};
pub use metrics::MetricCounts;
pub use recorded::{RecordedInterval, RecordedTrace, ReplaySource};
pub use sink::{drive, IntervalSink};
pub use stats::TraceStats;
pub use synthetic::{PhaseSpec, SyntheticTrace};
