//! Fixed-length execution intervals and the sources that produce them.

use serde::{Deserialize, Serialize};

use crate::event::BranchEvent;

/// A branch event paired with the number of cycles the timing model charged
/// to its dynamic basic block.
///
/// The cycle component never reaches the phase classifier (real hardware
/// cannot see "cycles per block" either); it is folded into the per-interval
/// [`IntervalSummary::cycles`], from which CPI is derived.
pub type TimedEvent = (BranchEvent, u64);

/// Summary statistics for one completed interval of execution.
///
/// Produced by an [`IntervalSource`] after all of the interval's branch
/// events have been delivered to the caller's event callback.
///
/// # Example
///
/// ```
/// use tpcp_trace::IntervalSummary;
///
/// let s = IntervalSummary::new(3, 10_000_000, 14_000_000);
/// assert!((s.cpi() - 1.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IntervalSummary {
    /// Zero-based position of this interval in the program's execution.
    pub index: u64,
    /// Instructions committed in this interval. Equal to the configured
    /// interval size except possibly for the final, truncated interval.
    pub instructions: u64,
    /// Cycles the timing model charged to this interval.
    pub cycles: u64,
    /// Microarchitectural event counts for the interval (all zero for
    /// sources without a timing model, e.g. synthetic traces).
    #[serde(default)]
    pub metrics: crate::metrics::MetricCounts,
}

impl IntervalSummary {
    /// Creates a summary with no microarchitectural metrics (see
    /// [`with_metrics`](Self::with_metrics)).
    pub fn new(index: u64, instructions: u64, cycles: u64) -> Self {
        Self {
            index,
            instructions,
            cycles,
            metrics: crate::metrics::MetricCounts::default(),
        }
    }

    /// Attaches event counts (builder-style).
    pub fn with_metrics(mut self, metrics: crate::metrics::MetricCounts) -> Self {
        self.metrics = metrics;
        self
    }

    /// Cycles per instruction for this interval.
    ///
    /// Returns `0.0` for an empty interval rather than dividing by zero, so
    /// degenerate traces remain safe to analyze.
    #[inline]
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// The interval's event counts per thousand instructions, aligned with
    /// [`MetricCounts::LABELS`](crate::metrics::MetricCounts::LABELS).
    pub fn mpki(&self) -> [f64; crate::metrics::MetricCounts::COUNT] {
        self.metrics.per_kilo_instruction(self.instructions)
    }
}

/// A source of fixed-length execution intervals.
///
/// Implementors stream one interval at a time: each call to
/// [`next_interval`](Self::next_interval) delivers every [`BranchEvent`] in
/// the interval to `on_event` (in program order) and then returns the
/// interval's [`IntervalSummary`]. `None` signals the end of the program.
///
/// The callback style (rather than returning an allocated `Vec`) lets the
/// phase classifier update its accumulator table in place, mirroring the
/// pipelined hash-and-increment hardware of the paper, and keeps memory flat
/// regardless of trace length.
pub trait IntervalSource {
    /// Advances to the next interval.
    ///
    /// Invokes `on_event` once per committed branch in program order, then
    /// returns the interval summary. Returns `None` when the program has
    /// finished; after `None`, subsequent calls must keep returning `None`.
    fn next_interval(&mut self, on_event: &mut dyn FnMut(BranchEvent)) -> Option<IntervalSummary>;

    /// Runs the source to completion, discarding events, and returns all
    /// interval summaries. Convenient for tests and whole-program statistics.
    fn drain_summaries(&mut self) -> Vec<IntervalSummary>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        while let Some(s) = self.next_interval(&mut |_| {}) {
            out.push(s);
        }
        out
    }
}

impl<T: IntervalSource + ?Sized> IntervalSource for &mut T {
    fn next_interval(&mut self, on_event: &mut dyn FnMut(BranchEvent)) -> Option<IntervalSummary> {
        (**self).next_interval(on_event)
    }
}

impl<T: IntervalSource + ?Sized> IntervalSource for Box<T> {
    fn next_interval(&mut self, on_event: &mut dyn FnMut(BranchEvent)) -> Option<IntervalSummary> {
        (**self).next_interval(on_event)
    }
}

/// Cuts a stream of [`TimedEvent`]s into fixed-length intervals.
///
/// An interval ends at the first event that brings the committed instruction
/// count to `interval_size` or beyond; the boundary event belongs to the
/// interval it completes (intervals are therefore `>= interval_size`
/// instructions, except a truncated final interval).
///
/// # Example
///
/// ```
/// use tpcp_trace::{BranchEvent, IntervalCutter, IntervalSource};
///
/// let events = vec![
///     (BranchEvent::new(0x10, 60), 60),
///     (BranchEvent::new(0x20, 60), 120),
///     (BranchEvent::new(0x30, 60), 60),
/// ];
/// let mut cutter = IntervalCutter::from_iter(100, events);
/// let first = cutter.next_interval(&mut |_| {}).unwrap();
/// assert_eq!(first.instructions, 120); // 60 + 60 crosses the 100 boundary
/// let last = cutter.next_interval(&mut |_| {}).unwrap();
/// assert_eq!(last.instructions, 60);   // truncated tail
/// assert!(cutter.next_interval(&mut |_| {}).is_none());
/// ```
#[derive(Debug)]
pub struct IntervalCutter<I> {
    inner: I,
    interval_size: u64,
    next_index: u64,
    finished: bool,
}

impl<I> IntervalCutter<I> {
    /// Interval size in committed instructions.
    pub fn interval_size(&self) -> u64 {
        self.interval_size
    }
}

impl<I: Iterator<Item = TimedEvent>> IntervalCutter<I> {
    /// Creates a cutter over any iterator of timed events.
    ///
    /// # Panics
    ///
    /// Panics if `interval_size` is zero.
    pub fn from_iter<T>(interval_size: u64, events: T) -> Self
    where
        T: IntoIterator<IntoIter = I, Item = TimedEvent>,
    {
        assert!(interval_size > 0, "interval size must be positive");
        Self {
            inner: events.into_iter(),
            interval_size,
            next_index: 0,
            finished: false,
        }
    }
}

impl<I: Iterator<Item = TimedEvent>> IntervalSource for IntervalCutter<I> {
    fn next_interval(&mut self, on_event: &mut dyn FnMut(BranchEvent)) -> Option<IntervalSummary> {
        if self.finished {
            return None;
        }
        let mut instructions = 0u64;
        let mut cycles = 0u64;
        loop {
            match self.inner.next() {
                Some((ev, cy)) => {
                    instructions += u64::from(ev.insns);
                    cycles += cy;
                    on_event(ev);
                    if instructions >= self.interval_size {
                        break;
                    }
                }
                None => {
                    self.finished = true;
                    if instructions == 0 {
                        return None;
                    }
                    break;
                }
            }
        }
        let summary = IntervalSummary::new(self.next_index, instructions, cycles);
        self.next_index += 1;
        Some(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pc: u64, insns: u32, cycles: u64) -> TimedEvent {
        (BranchEvent::new(pc, insns), cycles)
    }

    #[test]
    fn empty_stream_yields_no_intervals() {
        let mut cutter = IntervalCutter::from_iter(100, Vec::new());
        assert!(cutter.next_interval(&mut |_| {}).is_none());
        // Stays `None` on repeated calls.
        assert!(cutter.next_interval(&mut |_| {}).is_none());
    }

    #[test]
    #[should_panic(expected = "interval size must be positive")]
    fn zero_interval_size_panics() {
        let _ = IntervalCutter::from_iter(0, Vec::new());
    }

    #[test]
    fn events_delivered_in_order() {
        let events = vec![ev(1, 10, 10), ev(2, 10, 10), ev(3, 10, 10)];
        let mut cutter = IntervalCutter::from_iter(15, events);
        let mut seen = Vec::new();
        cutter.next_interval(&mut |e| seen.push(e.pc)).unwrap();
        assert_eq!(seen, vec![1, 2]);
        seen.clear();
        cutter.next_interval(&mut |e| seen.push(e.pc)).unwrap();
        assert_eq!(seen, vec![3]);
    }

    #[test]
    fn boundary_event_belongs_to_completed_interval() {
        let events = vec![ev(1, 100, 100), ev(2, 1, 1)];
        let mut cutter = IntervalCutter::from_iter(100, events);
        let first = cutter.next_interval(&mut |_| {}).unwrap();
        assert_eq!(first.instructions, 100);
        let second = cutter.next_interval(&mut |_| {}).unwrap();
        assert_eq!(second.instructions, 1);
    }

    #[test]
    fn indices_are_sequential() {
        let events: Vec<_> = (0..10).map(|i| ev(i, 50, 50)).collect();
        let mut cutter = IntervalCutter::from_iter(100, events);
        let summaries = cutter.drain_summaries();
        let indices: Vec<_> = summaries.iter().map(|s| s.index).collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cpi_aggregates_cycles_over_instructions() {
        let events = vec![ev(1, 50, 100), ev(2, 50, 300)];
        let mut cutter = IntervalCutter::from_iter(100, events);
        let s = cutter.next_interval(&mut |_| {}).unwrap();
        assert!((s.cpi() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_interval_cpi_is_zero() {
        let s = IntervalSummary::new(0, 0, 123);
        assert_eq!(s.cpi(), 0.0);
    }

    #[test]
    fn trait_object_and_reference_forwarding() {
        let events = vec![ev(1, 10, 10)];
        let mut cutter = IntervalCutter::from_iter(5, events);
        // &mut dyn works:
        let src: &mut dyn IntervalSource = &mut cutter;
        assert!(src.next_interval(&mut |_| {}).is_some());
    }
}
