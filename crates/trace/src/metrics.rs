//! Per-interval microarchitectural event counts.
//!
//! The paper evaluates homogeneity on CPI, but its premise (from Sherwood
//! et al., ASPLOS'02) is that intervals grouped by code signature behave
//! similarly across *all* architectural metrics. Carrying the raw event
//! counts in each interval lets the evaluation check that claim for cache
//! misses, TLB misses, and branch mispredictions too (the `multi-metric`
//! experiment).

use serde::{Deserialize, Serialize};

/// Raw event counts for one interval. All counts are absolute; use
/// [`per_kilo_instruction`](MetricCounts::per_kilo_instruction) for the
/// scale-free MPKI view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MetricCounts {
    /// L1 instruction cache misses.
    pub il1_misses: u64,
    /// L1 data cache misses.
    pub dl1_misses: u64,
    /// Unified L2 misses.
    pub l2_misses: u64,
    /// Data TLB misses.
    pub tlb_misses: u64,
    /// Branch mispredictions.
    pub branch_mispredictions: u64,
}

impl MetricCounts {
    /// Number of tracked metrics.
    pub const COUNT: usize = 5;

    /// Display labels, index-aligned with
    /// [`as_array`](MetricCounts::as_array).
    pub const LABELS: [&'static str; Self::COUNT] =
        ["il1 miss", "dl1 miss", "l2 miss", "tlb miss", "br misp"];

    /// The counts as an array (same order as [`LABELS`](Self::LABELS)).
    pub fn as_array(&self) -> [u64; Self::COUNT] {
        [
            self.il1_misses,
            self.dl1_misses,
            self.l2_misses,
            self.tlb_misses,
            self.branch_mispredictions,
        ]
    }

    /// Misses/events per thousand instructions, index-aligned with
    /// [`LABELS`](Self::LABELS). Zero instructions yields all zeros.
    pub fn per_kilo_instruction(&self, instructions: u64) -> [f64; Self::COUNT] {
        if instructions == 0 {
            return [0.0; Self::COUNT];
        }
        self.as_array()
            .map(|c| c as f64 * 1000.0 / instructions as f64)
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: &MetricCounts) {
        self.il1_misses += other.il1_misses;
        self.dl1_misses += other.dl1_misses;
        self.l2_misses += other.l2_misses;
        self.tlb_misses += other.tlb_misses;
        self.branch_mispredictions += other.branch_mispredictions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_and_labels_align() {
        let m = MetricCounts {
            il1_misses: 1,
            dl1_misses: 2,
            l2_misses: 3,
            tlb_misses: 4,
            branch_mispredictions: 5,
        };
        assert_eq!(m.as_array(), [1, 2, 3, 4, 5]);
        assert_eq!(MetricCounts::LABELS.len(), MetricCounts::COUNT);
    }

    #[test]
    fn mpki_scales() {
        let m = MetricCounts {
            dl1_misses: 50,
            ..Default::default()
        };
        let mpki = m.per_kilo_instruction(10_000);
        assert_eq!(mpki[1], 5.0);
        assert_eq!(m.per_kilo_instruction(0), [0.0; 5]);
    }

    #[test]
    fn add_accumulates() {
        let mut a = MetricCounts {
            il1_misses: 1,
            ..Default::default()
        };
        a.add(&MetricCounts {
            il1_misses: 2,
            branch_mispredictions: 7,
            ..Default::default()
        });
        assert_eq!(a.il1_misses, 3);
        assert_eq!(a.branch_mispredictions, 7);
    }
}
