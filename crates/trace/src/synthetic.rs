//! Scripted synthetic traces for testing classifiers and predictors.
//!
//! [`SyntheticTrace`] produces an interval stream whose ground-truth phase
//! structure is known exactly, which makes it possible to unit-test phase
//! classification and prediction logic in isolation from the full workload
//! simulator in `tpcp-workloads`.

use serde::{Deserialize, Serialize};

use crate::event::BranchEvent;
use crate::interval::IntervalCutter;
use crate::interval::TimedEvent;
use crate::recorded::RecordedTrace;

/// The code and performance behaviour of one ground-truth phase.
///
/// Each interval of the phase executes blocks round-robin from `blocks`
/// (a slice of `(branch pc, instructions per block)` pairs) at `cpi` cycles
/// per instruction, with a deterministic ±`cpi_jitter` ripple so intervals
/// are similar but not identical — as in real programs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// `(pc, insns)` pairs executed round-robin within the phase.
    pub blocks: Vec<(u64, u32)>,
    /// Mean cycles per instruction for intervals of this phase.
    pub cpi: f64,
    /// Peak-to-mean CPI ripple (e.g. `0.02` for ±2%). Deterministic.
    pub cpi_jitter: f64,
}

impl PhaseSpec {
    /// A phase whose blocks live in a bank of `n_blocks` PCs starting at
    /// `base_pc`, each block 50 instructions, with the given CPI.
    pub fn uniform(base_pc: u64, n_blocks: usize, cpi: f64) -> Self {
        Self {
            blocks: (0..n_blocks as u64)
                .map(|i| (base_pc + i * 0x40, 50))
                .collect(),
            cpi,
            cpi_jitter: 0.01,
        }
    }
}

/// A deterministic, scripted program: a schedule of ground-truth phases.
///
/// # Example
///
/// ```
/// use tpcp_trace::{PhaseSpec, SyntheticTrace};
///
/// let trace = SyntheticTrace::new(10_000)
///     .phase(PhaseSpec::uniform(0x1000, 4, 1.0))
///     .phase(PhaseSpec::uniform(0x9000, 4, 3.0))
///     .schedule(&[(0, 10), (1, 5), (0, 10)])
///     .generate();
/// assert_eq!(trace.len(), 25);
/// // Ground truth: intervals 10..15 are the high-CPI phase.
/// assert!(trace.intervals[12].summary.cpi() > 2.5);
/// assert!(trace.intervals[2].summary.cpi() < 1.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SyntheticTrace {
    interval_size: u64,
    phases: Vec<PhaseSpec>,
    schedule: Vec<(usize, u64)>,
}

impl SyntheticTrace {
    /// Creates a builder producing intervals of `interval_size` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `interval_size` is zero.
    pub fn new(interval_size: u64) -> Self {
        assert!(interval_size > 0, "interval size must be positive");
        Self {
            interval_size,
            phases: Vec::new(),
            schedule: Vec::new(),
        }
    }

    /// Registers a phase and returns the builder. Phases are indexed in
    /// registration order, starting from 0, for use in [`schedule`].
    ///
    /// [`schedule`]: Self::schedule
    pub fn phase(mut self, spec: PhaseSpec) -> Self {
        self.phases.push(spec);
        self
    }

    /// Appends `(phase index, interval count)` runs to the schedule.
    pub fn schedule(mut self, runs: &[(usize, u64)]) -> Self {
        self.schedule.extend_from_slice(runs);
        self
    }

    /// The ground-truth phase index of each interval, in order.
    pub fn ground_truth(&self) -> Vec<usize> {
        self.schedule
            .iter()
            .flat_map(|&(phase, n)| std::iter::repeat_n(phase, n as usize))
            .collect()
    }

    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if the schedule references a phase index that was never
    /// registered, or if a scheduled phase has no blocks.
    pub fn generate(&self) -> RecordedTrace {
        let mut events: Vec<TimedEvent> = Vec::new();
        let mut interval_counter = 0u64;
        for &(phase_idx, run) in &self.schedule {
            let spec = self
                .phases
                .get(phase_idx)
                .unwrap_or_else(|| panic!("schedule references unknown phase {phase_idx}"));
            assert!(!spec.blocks.is_empty(), "phase {phase_idx} has no blocks");
            for _ in 0..run {
                // Deterministic ripple: a small triangle wave over intervals.
                let ripple = match interval_counter % 4 {
                    0 => 0.0,
                    1 => spec.cpi_jitter,
                    2 => 0.0,
                    _ => -spec.cpi_jitter,
                };
                let cpi = spec.cpi * (1.0 + ripple);
                let mut emitted = 0u64;
                let mut block = 0usize;
                while emitted < self.interval_size {
                    let (pc, insns) = spec.blocks[block % spec.blocks.len()];
                    block += 1;
                    let cycles = (f64::from(insns) * cpi).round() as u64;
                    events.push((BranchEvent::new(pc, insns), cycles));
                    emitted += u64::from(insns);
                }
                interval_counter += 1;
            }
        }
        RecordedTrace::record(IntervalCutter::from_iter(self.interval_size, events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_phase() -> SyntheticTrace {
        SyntheticTrace::new(1_000)
            .phase(PhaseSpec::uniform(0x1000, 4, 1.0))
            .phase(PhaseSpec::uniform(0x9000, 4, 2.0))
            .schedule(&[(0, 5), (1, 5)])
    }

    #[test]
    fn generates_scheduled_interval_count() {
        let trace = two_phase().generate();
        assert_eq!(trace.len(), 10);
    }

    #[test]
    fn ground_truth_matches_schedule() {
        let gt = two_phase().ground_truth();
        assert_eq!(gt.len(), 10);
        assert!(gt[..5].iter().all(|&p| p == 0));
        assert!(gt[5..].iter().all(|&p| p == 1));
    }

    #[test]
    fn phases_have_distinct_cpi() {
        let trace = two_phase().generate();
        let low = trace.intervals[0].summary.cpi();
        let high = trace.intervals[9].summary.cpi();
        assert!(low < 1.1, "low-phase CPI was {low}");
        assert!(high > 1.8, "high-phase CPI was {high}");
    }

    #[test]
    fn phases_use_disjoint_pcs() {
        let trace = two_phase().generate();
        let pcs0: std::collections::BTreeSet<u64> =
            trace.intervals[0].events.iter().map(|e| e.pc).collect();
        let pcs9: std::collections::BTreeSet<u64> =
            trace.intervals[9].events.iter().map(|e| e.pc).collect();
        assert!(pcs0.is_disjoint(&pcs9));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = two_phase().generate();
        let b = two_phase().generate();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "unknown phase")]
    fn bad_schedule_panics() {
        SyntheticTrace::new(100)
            .phase(PhaseSpec::uniform(0, 1, 1.0))
            .schedule(&[(3, 1)])
            .generate();
    }
}
