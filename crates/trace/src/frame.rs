//! Length-prefixed framing for streaming the varint codec over a socket.
//!
//! The serve binary (`tpcp-serve`) exchanges *frames*: a 4-byte
//! little-endian payload length followed by that many payload bytes. The
//! payload reuses the trace codec's varint/zigzag primitives (exposed here
//! through [`wire`]) so event streams on the wire compress exactly like
//! events in a recorded trace file.
//!
//! Framing is where transport robustness lives, so the reader distinguishes
//! every way a frame can fail to arrive:
//!
//! - a clean EOF *between* frames is a normal connection close
//!   ([`FrameReader::read_frame`] returns `Ok(None)`);
//! - an EOF *inside* a frame is [`FrameError::Truncated`];
//! - a read timeout with no bytes of the next frame yet is
//!   [`FrameError::Idle`] (the caller decides whether the session idled
//!   out);
//! - a read timeout *mid-frame* is [`FrameError::Stalled`] — a peer that
//!   started a frame and stopped feeding it;
//! - a declared length beyond [`FRAME_MAX`] is [`FrameError::Oversized`]
//!   and is detected *before* allocating, so a garbage prefix cannot OOM
//!   the server.

use std::fmt;
use std::io::{self, Read, Write};

use crate::codec::{self, CodecError};

/// Hard upper bound on a frame payload (1 MiB). Checked against the
/// declared length before any allocation.
pub const FRAME_MAX: usize = 1 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport error.
    Io(io::Error),
    /// The connection closed mid-frame (length prefix or payload cut off).
    Truncated,
    /// The declared payload length exceeds [`FRAME_MAX`].
    Oversized {
        /// The length the prefix declared.
        declared: u64,
    },
    /// A read deadline expired with no bytes of a new frame — the
    /// connection is idle at a frame boundary.
    Idle,
    /// A read deadline expired in the middle of a frame — the peer
    /// stalled after starting one.
    Stalled,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Truncated => write!(f, "connection closed mid-frame"),
            Self::Oversized { declared } => {
                write!(f, "declared frame length {declared} exceeds {FRAME_MAX}")
            }
            Self::Idle => write!(f, "read deadline expired between frames"),
            Self::Stalled => write!(f, "read deadline expired mid-frame"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Outcome of trying to fill a fixed-size buffer from a stream.
enum Fill {
    /// All requested bytes arrived.
    Complete,
    /// EOF before any byte arrived.
    CleanEof,
    /// EOF after some bytes arrived.
    Partial,
    /// Timeout before any byte arrived.
    TimedOutEmpty,
    /// Timeout after some bytes arrived.
    TimedOutPartial,
}

/// Reads exactly `buf.len()` bytes, classifying EOF and timeouts by
/// whether the fill had started. `WouldBlock`/`TimedOut` come from
/// `set_read_timeout` on sockets; `Interrupted` is retried.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<Fill, io::Error> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    Fill::CleanEof
                } else {
                    Fill::Partial
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(if filled == 0 {
                    Fill::TimedOutEmpty
                } else {
                    Fill::TimedOutPartial
                });
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Fill::Complete)
}

/// Reads length-prefixed frames from a stream, reusing one payload buffer.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    payload: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a stream.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            payload: Vec::new(),
        }
    }

    /// Shared access to the underlying stream.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Reads the next frame. `Ok(Some(payload))` on success, `Ok(None)` on
    /// a clean close at a frame boundary, `Err` otherwise (see
    /// [`FrameError`] for the taxonomy). The returned slice is valid until
    /// the next call.
    pub fn read_frame(&mut self) -> Result<Option<&[u8]>, FrameError> {
        let mut prefix = [0u8; 4];
        match read_full(&mut self.inner, &mut prefix)? {
            Fill::Complete => {}
            Fill::CleanEof => return Ok(None),
            Fill::Partial => return Err(FrameError::Truncated),
            Fill::TimedOutEmpty => return Err(FrameError::Idle),
            Fill::TimedOutPartial => return Err(FrameError::Stalled),
        }
        let declared = u32::from_le_bytes(prefix) as usize;
        if declared > FRAME_MAX {
            return Err(FrameError::Oversized {
                declared: declared as u64,
            });
        }
        self.payload.resize(declared, 0);
        match read_full(&mut self.inner, &mut self.payload)? {
            Fill::Complete => Ok(Some(&self.payload)),
            Fill::CleanEof | Fill::Partial => Err(FrameError::Truncated),
            Fill::TimedOutEmpty | Fill::TimedOutPartial => Err(FrameError::Stalled),
        }
    }
}

/// Writes length-prefixed frames to a stream.
#[derive(Debug)]
pub struct FrameWriter<W> {
    inner: W,
    /// Staging buffer so prefix + payload leave in ONE write call. Two
    /// small writes over TCP interact badly with Nagle + delayed ACK: the
    /// payload segment can lag the prefix by tens of milliseconds, which
    /// a peer running tight read deadlines misreads as a mid-frame stall.
    buf: Vec<u8>,
}

impl<W: Write> FrameWriter<W> {
    /// Wraps a stream.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            buf: Vec::new(),
        }
    }

    /// Shared access to the underlying stream.
    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    /// Writes one frame (length prefix, payload, flush) as a single
    /// write to the underlying stream.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`FRAME_MAX`] — writers construct their
    /// own payloads, so an oversized one is a local bug, not peer input.
    pub fn write_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        assert!(
            payload.len() <= FRAME_MAX,
            "frame payload exceeds FRAME_MAX"
        );
        self.buf.clear();
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.inner.write_all(&self.buf)?;
        self.inner.flush()
    }
}

/// An incremental frame decoder for nonblocking streams.
///
/// [`FrameReader`] owns a blocking stream and loses partial-frame
/// progress when a read would block, which makes it unusable under a
/// readiness loop where every read may return `WouldBlock` mid-frame.
/// `FrameDecoder` inverts the control flow: the caller reads whatever
/// bytes the socket has and [`extend`](Self::extend)s the decoder, then
/// drains complete frames with [`next_frame`](Self::next_frame). Partial
/// prefixes and payloads persist across calls, so a frame split over any
/// number of reads reassembles exactly.
///
/// The [`FRAME_MAX`] bound is enforced against the declared length
/// before the payload accumulates, so a garbage prefix cannot balloon
/// the buffer.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Offset of the first unconsumed byte in `buf`.
    start: usize,
}

/// Consumed-prefix size beyond which [`FrameDecoder::extend`] compacts
/// the buffer instead of growing it.
const DECODER_COMPACT_AT: usize = 64 * 1024;

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes read from the stream, compacting consumed space
    /// first so the buffer stays bounded by unconsumed data plus one
    /// compaction hysteresis.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= DECODER_COMPACT_AT {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes buffered — `(declared_len, available)` for the
    /// frame at the head, if its prefix is complete.
    fn head(&self) -> Option<(usize, usize)> {
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            return None;
        }
        let mut prefix = [0u8; 4];
        prefix.copy_from_slice(&self.buf[self.start..self.start + 4]);
        Some((u32::from_le_bytes(prefix) as usize, avail))
    }

    /// Pops the next complete frame, if one is buffered. `Ok(None)` means
    /// more bytes are needed; [`FrameError::Oversized`] means the prefix
    /// declared a length beyond [`FRAME_MAX`] and the stream offset is
    /// unrecoverable (the error repeats until the decoder is dropped).
    /// The returned slice is valid until the next `extend`.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, FrameError> {
        let Some((declared, avail)) = self.head() else {
            return Ok(None);
        };
        if declared > FRAME_MAX {
            return Err(FrameError::Oversized {
                declared: declared as u64,
            });
        }
        if avail < 4 + declared {
            return Ok(None);
        }
        let payload = self.start + 4;
        self.start = payload + declared;
        Ok(Some(&self.buf[payload..payload + declared]))
    }

    /// Whether a partial frame (or partial prefix) is pending — an EOF
    /// now would be a truncation, and a deadline now a stall rather than
    /// idleness.
    pub fn mid_frame(&self) -> bool {
        self.start < self.buf.len()
    }

    /// Whether `next_frame` would yield without more bytes (a complete
    /// frame is buffered, or an oversized prefix needs reporting).
    pub fn frame_ready(&self) -> bool {
        match self.head() {
            Some((declared, avail)) => declared > FRAME_MAX || avail >= 4 + declared,
            None => false,
        }
    }
}

/// Varint/zigzag/f64 primitives for composing frame payloads — the same
/// encodings the trace codec uses, re-exported for wire use so payload
/// bytes match trace-file bytes for the same values.
pub mod wire {
    use super::*;

    /// Appends a varint.
    pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                buf.push(byte);
                return;
            }
            buf.push(byte | 0x80);
        }
    }

    /// Appends a zigzag-encoded signed varint.
    pub fn put_signed(buf: &mut Vec<u8>, v: i64) {
        put_varint(buf, codec::zigzag_encode(v));
    }

    /// Appends an `f64` as its little-endian bit pattern (bit-exact).
    pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Decodes a varint at `*pos`, advancing it.
    pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
        codec::read_varint(buf, pos)
    }

    /// Decodes a zigzag-encoded signed varint at `*pos`, advancing it.
    pub fn read_signed(buf: &[u8], pos: &mut usize) -> Result<i64, CodecError> {
        Ok(codec::zigzag_decode(codec::read_varint(buf, pos)?))
    }

    /// Reads an `f64` from its little-endian bit pattern at `*pos`.
    pub fn read_f64(buf: &[u8], pos: &mut usize) -> Result<f64, CodecError> {
        let end = pos.checked_add(8).ok_or(CodecError::Truncated)?;
        let bytes = buf.get(*pos..end).ok_or(CodecError::Truncated)?;
        *pos = end;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    /// Reads one byte at `*pos`, advancing it.
    pub fn read_u8(buf: &[u8], pos: &mut usize) -> Result<u8, CodecError> {
        let byte = *buf.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        Ok(byte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A reader that yields scripted results, for exercising the timeout
    /// and short-read paths no in-memory cursor can produce.
    struct Scripted {
        steps: Vec<ScriptStep>,
    }

    enum ScriptStep {
        Bytes(Vec<u8>),
        WouldBlock,
        Eof,
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.steps.is_empty() {
                return Ok(0);
            }
            match self.steps.remove(0) {
                ScriptStep::Bytes(b) => {
                    let n = b.len().min(buf.len());
                    buf[..n].copy_from_slice(&b[..n]);
                    assert_eq!(n, b.len(), "script steps must fit the read buffer");
                    Ok(n)
                }
                ScriptStep::WouldBlock => Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "scripted timeout",
                )),
                ScriptStep::Eof => Ok(0),
            }
        }
    }

    fn framed(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        let mut w = FrameWriter::new(&mut out);
        for p in payloads {
            w.write_frame(p).unwrap();
        }
        out
    }

    #[test]
    fn round_trips_frames() {
        let bytes = framed(&[b"hello", b"", b"world"]);
        let mut r = FrameReader::new(Cursor::new(bytes));
        assert_eq!(r.read_frame().unwrap(), Some(&b"hello"[..]));
        assert_eq!(r.read_frame().unwrap(), Some(&b""[..]));
        assert_eq!(r.read_frame().unwrap(), Some(&b"world"[..]));
        assert!(r.read_frame().unwrap().is_none(), "clean EOF at boundary");
    }

    #[test]
    fn truncated_prefix_is_truncated_error() {
        let mut bytes = framed(&[b"hello"]);
        bytes.truncate(2); // half a length prefix
        let mut r = FrameReader::new(Cursor::new(bytes));
        assert!(matches!(r.read_frame(), Err(FrameError::Truncated)));
    }

    #[test]
    fn truncated_payload_is_truncated_error() {
        let mut bytes = framed(&[b"hello"]);
        bytes.truncate(bytes.len() - 2);
        let mut r = FrameReader::new(Cursor::new(bytes));
        assert!(matches!(r.read_frame(), Err(FrameError::Truncated)));
    }

    #[test]
    fn oversized_declared_length_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(b"garbage");
        let mut r = FrameReader::new(Cursor::new(bytes));
        match r.read_frame() {
            Err(FrameError::Oversized { declared }) => {
                assert_eq!(declared, u64::from(u32::MAX));
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn frame_max_boundary_is_accepted() {
        let payload = vec![0xAAu8; FRAME_MAX];
        let bytes = framed(&[&payload]);
        let mut r = FrameReader::new(Cursor::new(bytes));
        assert_eq!(r.read_frame().unwrap(), Some(&payload[..]));
    }

    #[test]
    fn timeout_at_boundary_is_idle() {
        let mut r = FrameReader::new(Scripted {
            steps: vec![ScriptStep::WouldBlock],
        });
        assert!(matches!(r.read_frame(), Err(FrameError::Idle)));
    }

    #[test]
    fn timeout_mid_prefix_is_stalled() {
        let mut r = FrameReader::new(Scripted {
            steps: vec![ScriptStep::Bytes(vec![5, 0]), ScriptStep::WouldBlock],
        });
        assert!(matches!(r.read_frame(), Err(FrameError::Stalled)));
    }

    #[test]
    fn timeout_mid_payload_is_stalled() {
        let mut r = FrameReader::new(Scripted {
            steps: vec![
                ScriptStep::Bytes(vec![5, 0, 0, 0]),
                ScriptStep::Bytes(vec![1, 2]),
                ScriptStep::WouldBlock,
            ],
        });
        assert!(matches!(r.read_frame(), Err(FrameError::Stalled)));
    }

    #[test]
    fn timeout_with_empty_payload_pending_is_stalled() {
        // Prefix complete, zero payload bytes delivered, then a timeout:
        // the frame has started, so this is a stall, not idleness.
        let mut r = FrameReader::new(Scripted {
            steps: vec![ScriptStep::Bytes(vec![5, 0, 0, 0]), ScriptStep::WouldBlock],
        });
        assert!(matches!(r.read_frame(), Err(FrameError::Stalled)));
    }

    #[test]
    fn eof_mid_payload_is_truncated() {
        let mut r = FrameReader::new(Scripted {
            steps: vec![
                ScriptStep::Bytes(vec![5, 0, 0, 0]),
                ScriptStep::Bytes(vec![1, 2]),
                ScriptStep::Eof,
            ],
        });
        assert!(matches!(r.read_frame(), Err(FrameError::Truncated)));
    }

    #[test]
    fn reader_recovers_after_idle() {
        // An Idle result leaves the stream positioned at the boundary; the
        // next read sees the following frame intact.
        let frame = framed(&[b"later"]);
        let mut steps = vec![ScriptStep::WouldBlock];
        steps.push(ScriptStep::Bytes(frame[..4].to_vec()));
        steps.push(ScriptStep::Bytes(frame[4..].to_vec()));
        let mut r = FrameReader::new(Scripted { steps });
        assert!(matches!(r.read_frame(), Err(FrameError::Idle)));
        assert_eq!(r.read_frame().unwrap(), Some(&b"later"[..]));
    }

    #[test]
    fn decoder_reassembles_frames_split_at_every_offset() {
        let bytes = framed(&[b"hello", b"", b"world"]);
        for split in 0..=bytes.len() {
            let mut d = FrameDecoder::new();
            d.extend(&bytes[..split]);
            let mut got: Vec<Vec<u8>> = Vec::new();
            while let Some(p) = d.next_frame().unwrap() {
                got.push(p.to_vec());
            }
            d.extend(&bytes[split..]);
            while let Some(p) = d.next_frame().unwrap() {
                got.push(p.to_vec());
            }
            assert_eq!(
                got,
                vec![b"hello".to_vec(), b"".to_vec(), b"world".to_vec()]
            );
            assert!(!d.mid_frame(), "split {split} left residue");
        }
    }

    #[test]
    fn decoder_byte_at_a_time_matches_whole_buffer() {
        let bytes = framed(&[b"abc", b"defg"]);
        let mut d = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &bytes {
            d.extend(std::slice::from_ref(b));
            while let Some(p) = d.next_frame().unwrap() {
                got.push(p.to_vec());
            }
        }
        assert_eq!(got, vec![b"abc".to_vec(), b"defg".to_vec()]);
    }

    #[test]
    fn decoder_mid_frame_and_ready_track_progress() {
        let bytes = framed(&[b"hello"]);
        let mut d = FrameDecoder::new();
        assert!(!d.mid_frame());
        assert!(!d.frame_ready());
        d.extend(&bytes[..2]); // half a prefix
        assert!(d.mid_frame());
        assert!(!d.frame_ready());
        d.extend(&bytes[2..6]); // full prefix + 2 payload bytes
        assert!(d.mid_frame());
        assert!(!d.frame_ready());
        d.extend(&bytes[6..]);
        assert!(d.frame_ready());
        assert_eq!(d.next_frame().unwrap(), Some(&b"hello"[..]));
        assert!(!d.mid_frame());
        assert!(!d.frame_ready());
    }

    #[test]
    fn decoder_rejects_oversized_prefix_before_buffering_payload() {
        let mut d = FrameDecoder::new();
        d.extend(&u32::MAX.to_le_bytes());
        assert!(d.frame_ready(), "oversized prefix is reportable work");
        match d.next_frame() {
            Err(FrameError::Oversized { declared }) => {
                assert_eq!(declared, u64::from(u32::MAX));
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        // The error is sticky: the stream offset is unrecoverable.
        assert!(matches!(d.next_frame(), Err(FrameError::Oversized { .. })));
    }

    #[test]
    fn decoder_accepts_frame_max_boundary() {
        let payload = vec![0x5Au8; FRAME_MAX];
        let bytes = framed(&[&payload]);
        let mut d = FrameDecoder::new();
        d.extend(&bytes);
        assert_eq!(d.next_frame().unwrap(), Some(&payload[..]));
    }

    #[test]
    fn decoder_compacts_consumed_space() {
        // Push many frames through one decoder; the buffer must not grow
        // with total throughput, only with unconsumed backlog.
        let frame = framed(&[&[0xA5u8; 1024][..]]);
        let mut d = FrameDecoder::new();
        for _ in 0..1024 {
            d.extend(&frame);
            assert!(d.next_frame().unwrap().is_some());
        }
        assert!(
            d.buf.capacity() < 4 * DECODER_COMPACT_AT,
            "decoder buffer grew unboundedly: {}",
            d.buf.capacity()
        );
    }

    #[test]
    fn wire_round_trips_primitives() {
        let mut buf = Vec::new();
        wire::put_varint(&mut buf, 0);
        wire::put_varint(&mut buf, 300);
        wire::put_varint(&mut buf, u64::MAX);
        wire::put_signed(&mut buf, -12345);
        wire::put_f64(&mut buf, -0.0);
        wire::put_f64(&mut buf, 1.2345678901234567);
        buf.push(0x42);

        let mut pos = 0usize;
        assert_eq!(wire::read_varint(&buf, &mut pos).unwrap(), 0);
        assert_eq!(wire::read_varint(&buf, &mut pos).unwrap(), 300);
        assert_eq!(wire::read_varint(&buf, &mut pos).unwrap(), u64::MAX);
        assert_eq!(wire::read_signed(&buf, &mut pos).unwrap(), -12345);
        assert_eq!(
            wire::read_f64(&buf, &mut pos).unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(
            wire::read_f64(&buf, &mut pos).unwrap(),
            1.2345678901234567f64
        );
        assert_eq!(wire::read_u8(&buf, &mut pos).unwrap(), 0x42);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn wire_reads_fail_cleanly_on_truncation() {
        let mut pos = 0usize;
        assert!(wire::read_varint(&[], &mut pos).is_err());
        assert!(wire::read_f64(&[1, 2, 3], &mut pos).is_err());
        assert!(wire::read_u8(&[], &mut pos).is_err());
    }
}
