//! The [`IntervalSink`] consumer interface for interval streams.
//!
//! Everything downstream of the trace layer — the phase classifier, BBV
//! collection, metric accumulators — consumes the same per-interval event
//! stream: every committed-branch event of the interval, then the interval
//! summary. [`IntervalSink`] names that contract, and [`drive`] fans one
//! pass over an [`IntervalSource`] out to any number of sinks, so a trace
//! is decoded and replayed once no matter how many consumers observe it.

use crate::event::BranchEvent;
use crate::interval::{IntervalSource, IntervalSummary};

/// A consumer of an interval-structured event stream.
///
/// For each interval, [`observe`](IntervalSink::observe) is called once per
/// committed-branch event, then [`end_interval`](IntervalSink::end_interval)
/// once with the interval's summary. This mirrors the paper's hardware
/// model: per-branch accumulation during the interval, bookkeeping at the
/// interval boundary.
pub trait IntervalSink {
    /// Observes one committed-branch event of the current interval.
    fn observe(&mut self, ev: &BranchEvent);

    /// Closes the current interval with its summary.
    fn end_interval(&mut self, summary: &IntervalSummary);
}

impl<S: IntervalSink + ?Sized> IntervalSink for &mut S {
    fn observe(&mut self, ev: &BranchEvent) {
        (**self).observe(ev);
    }

    fn end_interval(&mut self, summary: &IntervalSummary) {
        (**self).end_interval(summary);
    }
}

impl<S: IntervalSink + ?Sized> IntervalSink for Box<S> {
    fn observe(&mut self, ev: &BranchEvent) {
        (**self).observe(ev);
    }

    fn end_interval(&mut self, summary: &IntervalSummary) {
        (**self).end_interval(summary);
    }
}

/// Replays `source` to completion, fanning every event and interval
/// boundary out to all `sinks` in order. Returns the number of intervals
/// replayed.
///
/// This is the single-replay hot loop: one pass over the source feeds every
/// registered consumer.
pub fn drive(source: &mut dyn IntervalSource, sinks: &mut [&mut dyn IntervalSink]) -> usize {
    let mut intervals = 0;
    loop {
        let summary = {
            let sinks = &mut *sinks;
            source.next_interval(&mut |ev| {
                for sink in sinks.iter_mut() {
                    sink.observe(&ev);
                }
            })
        };
        match summary {
            Some(summary) => {
                for sink in sinks.iter_mut() {
                    sink.end_interval(&summary);
                }
                intervals += 1;
            }
            None => return intervals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::IntervalCutter;

    #[derive(Default)]
    struct Counter {
        events: usize,
        intervals: usize,
        instructions: u64,
    }

    impl IntervalSink for Counter {
        fn observe(&mut self, _ev: &BranchEvent) {
            self.events += 1;
        }

        fn end_interval(&mut self, summary: &IntervalSummary) {
            self.intervals += 1;
            self.instructions += summary.instructions;
        }
    }

    #[test]
    fn drive_fans_out_to_all_sinks() {
        let events = (0..100u64).map(|i| (BranchEvent::new(0x400 + (i % 5) * 8, 10), 20u64));
        let mut source = IntervalCutter::from_iter(250, events);
        let mut a = Counter::default();
        let mut b = Counter::default();
        let n = drive(&mut source, &mut [&mut a, &mut b]);
        assert_eq!(n, 4);
        for c in [&a, &b] {
            assert_eq!(c.events, 100);
            assert_eq!(c.intervals, 4);
            assert_eq!(c.instructions, 1000);
        }
    }
}
